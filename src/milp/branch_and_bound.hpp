// Mixed-integer linear programming by LP-based branch and bound.
//
// Layers integrality (Variable::is_integer) on top of the np::lp
// simplex: best-first node selection on the LP bound, most-fractional
// branching, a fix-and-resolve rounding heuristic to find incumbents
// early, optional warm-start incumbents (the paper's §3.2 "warm-start
// to feed potential feasible solutions to ILP solvers"), and time /
// node / gap limits. This is the role Gurobi's MIP engine plays in the
// paper; the pruned second-stage NeuroPlan ILPs and the exact/heuristic
// baselines all run through it.
#pragma once

#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace np::milp {

enum class MilpStatus {
  kOptimal,        // proven optimal incumbent
  kInfeasible,     // no integer-feasible point exists
  kTimeLimit,      // stopped on time; incumbent may exist
  kNodeLimit,      // stopped on node budget; incumbent may exist
  kUnbounded,      // LP relaxation unbounded
};

const char* to_string(MilpStatus status);

struct MilpOptions {
  double integrality_tolerance = 1e-6;
  /// Stop when (incumbent - bound) / max(1, |incumbent|) <= gap.
  double relative_gap = 1e-6;
  double time_limit_seconds = lp::kInfinity;
  long max_nodes = 1000000;
  /// Run the fix-integers-and-resolve rounding heuristic at the root
  /// and then every this many nodes (0 disables).
  int heuristic_interval = 20;
  /// Optional integer-feasible starting point (size = num_variables).
  const std::vector<double>* warm_start = nullptr;
  /// Optional integer-only warm start (size = num_variables; continuous
  /// entries ignored): the solver fixes the integer variables to these
  /// values, re-solves the continuous LP, and accepts the result as the
  /// initial incumbent when feasible. Unlike warm_start, this does not
  /// require knowing the continuous part of a feasible point.
  const std::vector<double>* integer_warm_start = nullptr;
  lp::SimplexOptions lp_options;
};

struct MilpResult {
  MilpStatus status = MilpStatus::kInfeasible;
  bool has_incumbent = false;
  double objective = 0.0;        // incumbent objective (when has_incumbent)
  std::vector<double> x;         // incumbent point (when has_incumbent)
  double best_bound = -lp::kInfinity;
  double gap = lp::kInfinity;
  long nodes_explored = 0;
  long lp_iterations = 0;
  double solve_seconds = 0.0;
};

MilpResult solve(const lp::Model& model, const MilpOptions& options = {});

}  // namespace np::milp
