#!/usr/bin/env bash
# Run the curated clang-tidy gate (.clang-tidy at the repo root) over
# the library and CLI sources, using the compile database exported by
# CMake (CMAKE_EXPORT_COMPILE_COMMANDS is on by default).
#
# Usage:
#   scripts/run_clang_tidy.sh [--changed] [build-dir]
#
# --changed lints only the .cpp files under src/ and tools/ that differ
# from the merge base with origin/main (falling back to main when no
# remote is configured) — the fast pre-push loop. CI always runs the
# full sweep so a clean --changed pass can never hide a finding that a
# header edit introduced into an untouched translation unit.
#
# Environment:
#   CLANG_TIDY              clang-tidy binary to use (default: clang-tidy)
#   NEUROPLAN_TIDY_STRICT   when 1, a missing clang-tidy is an error
#                           instead of a skip (CI sets this)
#   NEUROPLAN_TIDY_JOBS     parallel jobs (default: nproc)
#
# Exit status: 0 when every file is clean (or the tool is absent and
# strict mode is off), non-zero on any finding or infrastructure error.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
changed_only=0
if [[ "${1:-}" == "--changed" ]]; then
  changed_only=1
  shift
fi
build_dir="${1:-"${repo_root}/build"}"
tidy_bin="${CLANG_TIDY:-clang-tidy}"
strict="${NEUROPLAN_TIDY_STRICT:-0}"
jobs="${NEUROPLAN_TIDY_JOBS:-$(nproc 2>/dev/null || echo 2)}"

if ! command -v "${tidy_bin}" >/dev/null 2>&1; then
  if [[ "${strict}" == "1" ]]; then
    echo "error: ${tidy_bin} not found and NEUROPLAN_TIDY_STRICT=1" >&2
    exit 1
  fi
  echo "warning: ${tidy_bin} not found; skipping the clang-tidy gate" >&2
  echo "         (install clang-tidy or set CLANG_TIDY; CI runs this strictly)" >&2
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: ${build_dir}/compile_commands.json not found." >&2
  echo "       Configure first: cmake --preset default" >&2
  exit 1
fi

# Library and CLI translation units only: test files are dominated by
# gtest macro expansions, which drown the signal of the curated set.
if [[ "${changed_only}" == "1" ]]; then
  base="origin/main"
  git -C "${repo_root}" rev-parse --verify -q "${base}" >/dev/null || base="main"
  mapfile -t files < <(
    git -C "${repo_root}" diff --name-only --diff-filter=d "${base}..." -- \
        'src/*.cpp' 'tools/*.cpp' \
      | sed "s|^|${repo_root}/|" | sort)
  if [[ ${#files[@]} -eq 0 ]]; then
    echo "clang-tidy --changed: no src/ or tools/ .cpp files differ from ${base}"
    exit 0
  fi
else
  mapfile -t files < <(find "${repo_root}/src" "${repo_root}/tools" -name '*.cpp' | sort)
fi
echo "clang-tidy ($("${tidy_bin}" --version | head -n1)) over ${#files[@]} files, ${jobs} jobs"

status=0
printf '%s\n' "${files[@]}" \
  | xargs -P "${jobs}" -n 1 "${tidy_bin}" -p "${build_dir}" --quiet \
  || status=$?

if [[ ${status} -ne 0 ]]; then
  echo "clang-tidy gate FAILED (exit ${status})" >&2
  exit "${status}"
fi
echo "clang-tidy gate clean"
