#include "la/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace np::la::kernels {

namespace {

// Cache tiles match la::Matrix::matmul so the tape and fast paths have
// identical k-chain segmentation (bit-identity needs identical ORDER,
// which any segmentation of an ascending k loop preserves — but keeping
// the constants aligned makes the cache behavior comparable too).
constexpr std::size_t kTileK = 64;
constexpr std::size_t kTileJ = 128;
// Register blocking: 4 output rows share every load of a B row, and
// give the compiler 4 independent accumulation chains to vectorize and
// interleave across the contiguous j loop.
constexpr std::size_t kRowBlock = 4;

/// The register-blocked inner kernel over a [kk, kend) x [jj, jend)
/// panel for rows [i0, i0 + rows), rows <= kRowBlock. Each out(i, j)
/// accumulates in ascending k within the panel.
inline void panel(const double* a, std::size_t lda, const double* b,
                  std::size_t ldb, double* out, std::size_t ldo,
                  std::size_t i0, std::size_t rows, std::size_t kk,
                  std::size_t kend, std::size_t jj, std::size_t jend) {
  if (rows == kRowBlock) {
    double* o0 = out + (i0 + 0) * ldo;
    double* o1 = out + (i0 + 1) * ldo;
    double* o2 = out + (i0 + 2) * ldo;
    double* o3 = out + (i0 + 3) * ldo;
    const double* a0 = a + (i0 + 0) * lda;
    const double* a1 = a + (i0 + 1) * lda;
    const double* a2 = a + (i0 + 2) * lda;
    const double* a3 = a + (i0 + 3) * lda;
    for (std::size_t k = kk; k < kend; ++k) {
      const double v0 = a0[k], v1 = a1[k], v2 = a2[k], v3 = a3[k];
      const double* brow = b + k * ldb;
      for (std::size_t j = jj; j < jend; ++j) {
        const double bj = brow[j];
        o0[j] += v0 * bj;
        o1[j] += v1 * bj;
        o2[j] += v2 * bj;
        o3[j] += v3 * bj;
      }
    }
    return;
  }
  for (std::size_t i = i0; i < i0 + rows; ++i) {
    const double* arow = a + i * lda;
    double* orow = out + i * ldo;
    for (std::size_t k = kk; k < kend; ++k) {
      const double aik = arow[k];
      const double* brow = b + k * ldb;
      for (std::size_t j = jj; j < jend; ++j) orow[j] += aik * brow[j];
    }
  }
}

}  // namespace

void matmul(const double* a, std::size_t n, std::size_t k, const double* b,
            std::size_t m, double* out) {
  std::fill(out, out + n * m, 0.0);
  if (k <= kTileK && m <= kTileJ) {
    std::size_t i = 0;
    for (; i + kRowBlock <= n; i += kRowBlock) {
      panel(a, k, b, m, out, m, i, kRowBlock, 0, k, 0, m);
    }
    if (i < n) panel(a, k, b, m, out, m, i, n - i, 0, k, 0, m);
    return;
  }
  for (std::size_t jj = 0; jj < m; jj += kTileJ) {
    const std::size_t jend = std::min(m, jj + kTileJ);
    for (std::size_t kk = 0; kk < k; kk += kTileK) {
      const std::size_t kend = std::min(k, kk + kTileK);
      std::size_t i = 0;
      for (; i + kRowBlock <= n; i += kRowBlock) {
        panel(a, k, b, m, out, m, i, kRowBlock, kk, kend, jj, jend);
      }
      if (i < n) panel(a, k, b, m, out, m, i, n - i, kk, kend, jj, jend);
    }
  }
}

void bias_relu(double* x, std::size_t n, std::size_t m, const double* bias,
               Activation act) {
  for (std::size_t i = 0; i < n; ++i) {
    double* row = x + i * m;
    if (bias != nullptr) {
      for (std::size_t j = 0; j < m; ++j) row[j] += bias[j];
    }
    if (act == Activation::kRelu) {
      for (std::size_t j = 0; j < m; ++j) row[j] = row[j] > 0.0 ? row[j] : 0.0;
    }
  }
}

void matmul_bias_act(const double* a, std::size_t n, std::size_t k,
                     const double* b, std::size_t m, const double* bias,
                     Activation act, double* out) {
  matmul(a, n, k, b, m, out);
  bias_relu(out, n, m, bias, act);
  NP_CHECK_FINITE(out, n * m, "kernels::matmul_bias_act");
}

void spmm(const CsrMatrix& a, const double* x, std::size_t cols, double* out) {
  const std::size_t rows = a.rows();
  const std::size_t* offsets = a.row_offsets().data();
  const std::size_t* indices = a.col_indices().data();
  const double* values = a.values().data();
  // Row-chunked: bounded batches of output rows keep the touched panel
  // of x warm across nearby rows (adjacency rows index overlapping
  // neighborhoods). Per-row nnz order is ascending, matching
  // CsrMatrix::multiply bitwise.
  constexpr std::size_t kRowChunk = 64;
  for (std::size_t r0 = 0; r0 < rows; r0 += kRowChunk) {
    const std::size_t r1 = std::min(rows, r0 + kRowChunk);
    for (std::size_t r = r0; r < r1; ++r) {
      double* orow = out + r * cols;
      std::fill(orow, orow + cols, 0.0);
      for (std::size_t e = offsets[r]; e < offsets[r + 1]; ++e) {
        const double v = values[e];
        const double* xrow = x + indices[e] * cols;
        for (std::size_t j = 0; j < cols; ++j) orow[j] += v * xrow[j];
      }
    }
  }
  NP_CHECK_FINITE(out, rows * cols, "kernels::spmm");
}

void mean_rows(const double* x, std::size_t n, std::size_t c, double* out) {
  std::fill(out, out + c, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const double* xrow = x + r * c;
    for (std::size_t j = 0; j < c; ++j) out[j] += xrow[j];
  }
  const double inv = 1.0 / static_cast<double>(n);
  for (std::size_t j = 0; j < c; ++j) out[j] *= inv;
}

void masked_log_softmax(const double* logits, const std::uint8_t* mask,
                        std::size_t k, double* out) {
  constexpr double kMaskedLogProb = -1e30;  // matches ad::Tape
  double max_valid = -1e300;
  std::size_t valid_count = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (mask[i]) {
      max_valid = std::max(max_valid, logits[i]);
      ++valid_count;
    }
  }
  if (valid_count == 0) {
    throw std::invalid_argument("kernels::masked_log_softmax: no valid entries");
  }
  double sum_exp = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    if (mask[i]) sum_exp += std::exp(logits[i] - max_valid);
  }
  const double log_z = max_valid + std::log(sum_exp);
  for (std::size_t i = 0; i < k; ++i) {
    out[i] = mask[i] ? logits[i] - log_z : kMaskedLogProb;
  }
}

void gat_aggregate(const CsrMatrix& adjacency, const double* src,
                   const double* dst, const double* z, std::size_t cols,
                   double leaky_slope, double* scratch, double* out) {
  const std::size_t n = adjacency.rows();
  const std::size_t* offsets = adjacency.row_offsets().data();
  const std::size_t* indices = adjacency.col_indices().data();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t begin = offsets[i], end = offsets[i + 1];
    const std::size_t deg = end - begin;
    if (deg == 0) {
      throw std::invalid_argument(
          "kernels::gat_aggregate: node without neighbors (self loops required)");
    }
    double max_e = -1e300;
    for (std::size_t e = 0; e < deg; ++e) {
      const double pre = src[i] + dst[indices[begin + e]];
      scratch[e] = pre > 0.0 ? pre : leaky_slope * pre;
      max_e = std::max(max_e, scratch[e]);
    }
    double total = 0.0;
    for (std::size_t e = 0; e < deg; ++e) {
      scratch[e] = std::exp(scratch[e] - max_e);
      total += scratch[e];
    }
    double* orow = out + i * cols;
    std::fill(orow, orow + cols, 0.0);
    for (std::size_t e = 0; e < deg; ++e) {
      const double alpha = scratch[e] / total;
      const double* zrow = z + indices[begin + e] * cols;
      for (std::size_t j = 0; j < cols; ++j) orow[j] += alpha * zrow[j];
    }
  }
  NP_CHECK_FINITE(out, n * cols, "kernels::gat_aggregate");
}

}  // namespace np::la::kernels
