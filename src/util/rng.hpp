// Deterministic pseudo-random number generation for the whole project.
//
// Every stochastic component (topology generators, policy sampling,
// parameter init) takes an explicit Rng so runs are reproducible
// bit-for-bit given a seed. The generator is xoshiro256**, which is
// fast, has a 256-bit state and passes BigCrush; we deliberately avoid
// std::mt19937 so results do not depend on the standard library
// implementation of distributions.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace np {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via splitmix64, which
  /// guarantees a well-mixed, never-all-zero state.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  /// modulo bias.
  std::size_t uniform_index(std::size_t n) {
    const std::uint64_t bound = n;
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return static_cast<std::size_t>(r % bound);
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  long uniform_int(long lo, long hi) {
    return lo + static_cast<long>(uniform_index(static_cast<std::size_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (no cached spare: keeps state simple).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Sample an index from unnormalized non-negative weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0.0) return i;
    }
    return weights.size() - 1;  // numeric slack: fall through to last
  }

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[uniform_index(i)]);
    }
  }

  /// Derive an independent child stream (for parallel components).
  Rng split() { return Rng((*this)() ^ 0xd1342543de82ef95ULL); }

  /// Raw generator state, for crash-safe checkpoints: restoring it with
  /// set_state() resumes the stream exactly where it left off.
  std::array<std::uint64_t, 4> state() const { return state_; }

  /// Restore a state captured by state(). Rejects the all-zero state,
  /// which xoshiro256** can never reach (and never leaves).
  void set_state(const std::array<std::uint64_t, 4>& state) {
    if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0) {
      throw std::invalid_argument("Rng::set_state: all-zero state");
    }
    state_ = state;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace np
