#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "la/sparse_vector.hpp"
#include "lp/factor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/stopwatch.hpp"

namespace np::lp {

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
    case SolveStatus::kTimeLimit: return "time-limit";
  }
  return "unknown";
}

const char* to_string(SimplexEngine engine) {
  switch (engine) {
    case SimplexEngine::kSparseLu: return "sparse-lu";
    case SimplexEngine::kDenseInverse: return "dense-inverse";
  }
  return "unknown";
}

const char* to_string(PricingRule rule) {
  switch (rule) {
    case PricingRule::kDantzig: return "dantzig";
    case PricingRule::kDevex: return "devex";
    case PricingRule::kSteepestEdge: return "steepest-edge";
  }
  return "unknown";
}

namespace {

constexpr double kPivotTolerance = 1e-9;

// Partial-pricing candidate list sizing. The list holds at most
// kMaxCandidates (column, score) pairs; a refill scan stops once it
// reaches kCandidateRefill live candidates, and runs at all only when
// re-pricing left fewer than kCandidateLowWater survivors. Values
// picked by sweeping the lp_throughput bench on topology B; larger
// lists bought no iterations and cost scan time.
constexpr int kMaxCandidates = 32;
constexpr int kCandidateRefill = 8;
constexpr int kCandidateLowWater = 4;

/// Basis linear-algebra backend. The simplex only ever touches the
/// basis through these primitives, so the sparse LU engine and the
/// dense-inverse reference are interchangeable (and differentially
/// testable). Index conventions: "row" is a constraint row of the
/// computational form, "position" is a basis slot 0..m-1.
class BasisEngine {
 public:
  virtual ~BasisEngine() = default;
  /// Factorize the basis given by its column pointers (one per
  /// position). Returns false when the basis is numerically singular.
  virtual bool refactor(const std::vector<ColumnView>& cols) = 0;
  /// w = B^{-1} a for one sparse column; w dense, by position.
  virtual void ftran_column(ColumnView a, std::vector<double>& w) const = 0;
  /// x := B^{-1} x with a dense right-hand side (rows in, positions out).
  virtual void ftran_dense(std::vector<double>& x) const = 0;
  /// x := B^{-T} x with a dense right-hand side (positions in, rows out).
  virtual void btran_dense(std::vector<double>& x) const = 0;
  /// rho = e_p^T B^{-1}: row p of the basis inverse, indexed by row —
  /// the dual simplex pivot row.
  virtual void btran_unit(int p, std::vector<double>& rho) const = 0;
  /// Rank-one update after the basis exchange at position p, where w is
  /// the FTRAN result of the entering column.
  virtual void update(int p, const std::vector<double>& w) = 0;
  /// ||B^{-1} a||^2 — exact steepest-edge column norm, used for the
  /// slack-basis initialization and the debug weight audit.
  virtual double ftran_norm2(ColumnView a) const = 0;
  /// Engine-initiated early refactorization (sparse eta-file growth).
  virtual bool prefers_refactor() const = 0;
};

/// Dense m x m basis inverse updated in product form — the original
/// engine, kept as the differential-testing reference.
class DenseInverseEngine final : public BasisEngine {
 public:
  bool refactor(const std::vector<ColumnView>& cols) override {
    // Gauss-Jordan inversion of the basis matrix with partial pivoting.
    m_ = static_cast<int>(cols.size());
    std::vector<double> mat(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int p = 0; p < m_; ++p) {
      for (const auto& [r, coeff] : cols[p]) {
        mat[static_cast<std::size_t>(r) * m_ + p] = coeff;
      }
    }
    binv_.assign(static_cast<std::size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) binv_[static_cast<std::size_t>(i) * m_ + i] = 1.0;
    for (int col = 0; col < m_; ++col) {
      int pivot_row = col;
      double best = std::abs(mat[static_cast<std::size_t>(col) * m_ + col]);
      for (int r = col + 1; r < m_; ++r) {
        const double cand = std::abs(mat[static_cast<std::size_t>(r) * m_ + col]);
        if (cand > best) { best = cand; pivot_row = r; }
      }
      if (best < kPivotTolerance) return false;  // singular basis
      if (pivot_row != col) {
        for (int c = 0; c < m_; ++c) {
          std::swap(mat[static_cast<std::size_t>(pivot_row) * m_ + c],
                    mat[static_cast<std::size_t>(col) * m_ + c]);
          std::swap(binv_[static_cast<std::size_t>(pivot_row) * m_ + c],
                    binv_[static_cast<std::size_t>(col) * m_ + c]);
        }
      }
      const double inv_pivot = 1.0 / mat[static_cast<std::size_t>(col) * m_ + col];
      for (int c = 0; c < m_; ++c) {
        mat[static_cast<std::size_t>(col) * m_ + c] *= inv_pivot;
        binv_[static_cast<std::size_t>(col) * m_ + c] *= inv_pivot;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double factor = mat[static_cast<std::size_t>(r) * m_ + col];
        if (factor == 0.0) continue;
        for (int c = 0; c < m_; ++c) {
          mat[static_cast<std::size_t>(r) * m_ + c] -=
              factor * mat[static_cast<std::size_t>(col) * m_ + c];
          binv_[static_cast<std::size_t>(r) * m_ + c] -=
              factor * binv_[static_cast<std::size_t>(col) * m_ + c];
        }
      }
    }
    return true;
  }

  void ftran_column(ColumnView a, std::vector<double>& w) const override {
    w.assign(m_, 0.0);
    for (const auto& [r, coeff] : a) {
      const double c = coeff;
      for (int p = 0; p < m_; ++p) {
        w[p] += binv_[static_cast<std::size_t>(p) * m_ + r] * c;
      }
    }
  }

  void ftran_dense(std::vector<double>& x) const override {
    scratch_.assign(m_, 0.0);
    for (int p = 0; p < m_; ++p) {
      double value = 0.0;
      const double* row = binv_.data() + static_cast<std::size_t>(p) * m_;
      for (int r = 0; r < m_; ++r) value += row[r] * x[r];
      scratch_[p] = value;
    }
    x = scratch_;
  }

  void btran_dense(std::vector<double>& x) const override {
    scratch_.assign(m_, 0.0);
    for (int p = 0; p < m_; ++p) {
      const double cb = x[p];
      if (cb == 0.0) continue;
      const double* row = binv_.data() + static_cast<std::size_t>(p) * m_;
      for (int r = 0; r < m_; ++r) scratch_[r] += cb * row[r];
    }
    x = scratch_;
  }

  void btran_unit(int p, std::vector<double>& rho) const override {
    const double* row = binv_.data() + static_cast<std::size_t>(p) * m_;
    rho.assign(row, row + m_);
  }

  void update(int p, const std::vector<double>& w) override {
    const double inv_pivot = 1.0 / w[p];
    double* prow = binv_.data() + static_cast<std::size_t>(p) * m_;
    for (int c = 0; c < m_; ++c) prow[c] *= inv_pivot;
    for (int q = 0; q < m_; ++q) {
      if (q == p || w[q] == 0.0) continue;
      double* row = binv_.data() + static_cast<std::size_t>(q) * m_;
      const double factor = w[q];
      for (int c = 0; c < m_; ++c) row[c] -= factor * prow[c];
    }
  }

  double ftran_norm2(ColumnView a) const override {
    ftran_column(a, scratch2_);
    double norm2 = 0.0;
    for (const double v : scratch2_) norm2 += v * v;
    return norm2;
  }

  bool prefers_refactor() const override { return false; }

 private:
  int m_ = 0;
  std::vector<double> binv_;
  mutable std::vector<double> scratch_;
  mutable std::vector<double> scratch2_;  // ftran_norm2 result
};

/// Sparse LU + product-form eta file (lp/factor.hpp).
class SparseLuEngine final : public BasisEngine {
 public:
  bool refactor(const std::vector<ColumnView>& cols) override {
    return factor_.factorize(static_cast<int>(cols.size()), cols);
  }
  void ftran_column(ColumnView a, std::vector<double>& w) const override {
    factor_.ftran_column(a, w);
  }
  void ftran_dense(std::vector<double>& x) const override { factor_.ftran(x); }
  void btran_dense(std::vector<double>& x) const override { factor_.btran(x); }
  void btran_unit(int p, std::vector<double>& rho) const override {
    factor_.btran_unit(p, rho);
  }
  void update(int p, const std::vector<double>& w) override {
    factor_.append_eta(p, w);
  }
  double ftran_norm2(ColumnView a) const override {
    return factor_.ftran_column_norm2(a);
  }
  bool prefers_refactor() const override { return factor_.prefers_refactor(); }

 private:
  BasisFactor factor_;
};

std::unique_ptr<BasisEngine> make_engine(SimplexEngine engine) {
  if (engine == SimplexEngine::kDenseInverse) {
    return std::make_unique<DenseInverseEngine>();
  }
  return std::make_unique<SparseLuEngine>();
}

/// Internal solver state over the computational form A z = 0 with
/// columns [structural | slack | artificial].
class Simplex {
 public:
  Simplex(const Model& model, const SimplexOptions& options)
      : model_(model), options_(options) {
    n_struct_ = model.num_variables();
    m_ = model.num_rows();
    n_real_ = n_struct_ + m_;        // structural + slacks
    n_total_ = n_real_ + m_;         // + artificials
    pricing_ = options.pricing;
    engine_ = make_engine(options.engine);
    build_columns();
    build_bounds();
  }

  Solution run() {
    Stopwatch watch;
    Solution solution;
    WarmState warm = try_warm_start();
    if (warm == WarmState::kPrimalFeasible) {
      solution.start_path = StartPath::kWarmPrimal;
    }

    if (warm == WarmState::kBasisOnly) {
      check_basis_invariants("Simplex::run warm start");
      // The warm basis is primal infeasible (typical after a bound
      // change, e.g. a branch-and-bound child). If it is still DUAL
      // feasible, the dual simplex repairs primal feasibility in a few
      // pivots instead of a full phase-1 restart.
      fix_artificials();
      set_phase2_costs();
      const std::optional<SolveStatus> repaired = dual_iterate(watch);
      if (repaired.has_value()) {
        solution.start_path = StartPath::kDualRepair;
        if (*repaired == SolveStatus::kOptimal) {
          const SolveStatus st = phase2_verified(watch);
          finish(solution, st, watch);
          return solution;
        }
        finish(solution, *repaired, watch);
        return solution;
      }
      warm = WarmState::kNone;  // dual repair gave up: cold start
      solution.start_path = StartPath::kWarmFailed;
    }
    if (warm == WarmState::kNone) {
      if (options_.warm_start != nullptr &&
          solution.start_path == StartPath::kCold) {
        solution.start_path = StartPath::kWarmFailed;
      }
      cold_start();
      check_basis_invariants("Simplex::run cold start");
    }

    // Phase 1: drive artificial variables (and, for warm starts that
    // turned out infeasible, re-cold-start) to zero total.
    if (warm == WarmState::kNone && needs_phase1_) {
      set_phase1_costs();
      const SolveStatus st = iterate(watch, /*phase1=*/true);
      if (st != SolveStatus::kOptimal) {
        finish(solution, st, watch);
        return solution;
      }
      // The infeasibility verdict must be read off exact basic values,
      // not the incrementally-updated (drift-prone) ones.
      refresh_factorization();
      if (phase_objective() > 1e3 * options_.feasibility_tolerance) {
        finish(solution, SolveStatus::kInfeasible, watch);
        return solution;
      }
    }
    // On every path (including warm starts and already-feasible cold
    // starts) artificials must be pinned to zero before phase 2: they
    // carry zero cost there and would otherwise be free to re-enter.
    fix_artificials();

    set_phase2_costs();
    const SolveStatus st = phase2_verified(watch);
    finish(solution, st, watch);
    return solution;
  }

 private:
  // ---- setup ----

  /// Builds the computational-form matrix as one flat CSC arena
  /// (col_entries_ sliced by col_start_). A solve constructs a Simplex
  /// per call, so per-column vectors would mean ~n_total_ small
  /// allocations on every solve — measurable against warm solves that
  /// finish in a few dozen pivots.
  void build_columns() {
    col_start_.assign(n_total_ + 1, 0);
    for (int r = 0; r < m_; ++r) {
      for (const auto& [var, coeff] : model_.row(r).coefficients) {
        if (coeff != 0.0) ++col_start_[var + 1];
      }
      col_start_[n_struct_ + r + 1] = 1;  // slack
      col_start_[n_real_ + r + 1] = 1;    // artificial
    }
    for (int j = 0; j < n_total_; ++j) col_start_[j + 1] += col_start_[j];
    col_entries_.resize(col_start_[n_total_]);
    std::vector<int> cursor(col_start_.begin(), col_start_.end() - 1);
    for (int r = 0; r < m_; ++r) {
      for (const auto& [var, coeff] : model_.row(r).coefficients) {
        if (coeff != 0.0) col_entries_[cursor[var]++] = {r, coeff};
      }
      col_entries_[cursor[n_struct_ + r]++] = {r, -1.0};  // slack: a.x - s = 0
      col_entries_[cursor[n_real_ + r]++] = {r, 1.0};  // artificial sign set at start
    }
  }

  ColumnView col(int j) const {
    return {col_entries_.data() + col_start_[j], col_start_[j + 1] - col_start_[j]};
  }

  void build_bounds() {
    lb_.assign(n_total_, 0.0);
    ub_.assign(n_total_, 0.0);
    for (int j = 0; j < n_struct_; ++j) {
      lb_[j] = model_.variable(j).lower;
      ub_[j] = model_.variable(j).upper;
    }
    for (int r = 0; r < m_; ++r) {
      lb_[n_struct_ + r] = model_.row(r).lower;
      ub_[n_struct_ + r] = model_.row(r).upper;
    }
    for (int r = 0; r < m_; ++r) {
      lb_[n_real_ + r] = 0.0;
      ub_[n_real_ + r] = kInfinity;
    }
  }

  /// Nonbasic resting value for variable j: the finite bound nearest
  /// zero, or zero for free variables.
  double resting_value(int j, VarStatus* status_out) const {
    const bool lo_finite = std::isfinite(lb_[j]);
    const bool hi_finite = std::isfinite(ub_[j]);
    if (lo_finite && hi_finite) {
      if (std::abs(lb_[j]) <= std::abs(ub_[j])) {
        *status_out = VarStatus::kAtLower;
        return lb_[j];
      }
      *status_out = VarStatus::kAtUpper;
      return ub_[j];
    }
    if (lo_finite) {
      *status_out = VarStatus::kAtLower;
      return lb_[j];
    }
    if (hi_finite) {
      *status_out = VarStatus::kAtUpper;
      return ub_[j];
    }
    *status_out = VarStatus::kNonbasicFree;
    return 0.0;
  }

  /// Cold start with a slack crash. Structural variables rest at a
  /// bound; each row's slack then has implied value equal to the row
  /// activity (slack coefficient is -1, so A z = 0 gives s_r =
  /// activity_r). Where that value fits the slack's own bounds the
  /// slack goes basic and the row starts feasible — no artificial.
  /// Only rows whose activity violates the slack bounds (equality rows
  /// with nonzero rhs, here the commodity source/sink conservation
  /// rows) get an artificial, with the slack parked at the nearest
  /// bound so the artificial absorbs the smallest possible residual.
  /// This is what lets phase 1 scale with the number of *violated*
  /// rows instead of all of m, and it keeps the initial basis a signed
  /// diagonal (slack -1 / artificial +-1), which the steepest-edge
  /// initializer exploits.
  void cold_start() {
    status_.assign(n_total_, VarStatus::kAtLower);
    val_.assign(n_total_, 0.0);
    for (int j = 0; j < n_struct_; ++j) {
      VarStatus st{};
      val_[j] = resting_value(j, &st);
      status_[j] = st;
    }
    // Row activity of the structural columns at their resting values.
    std::vector<double> activity(m_, 0.0);
    for (int j = 0; j < n_struct_; ++j) {
      if (val_[j] == 0.0) continue;
      for (const auto& [r, coeff] : col(j)) activity[r] += coeff * val_[j];
    }
    basis_.resize(m_);
    needs_phase1_ = false;
    for (int r = 0; r < m_; ++r) {
      const int slack = n_struct_ + r;
      const int art = n_real_ + r;
      if (activity[r] >= lb_[slack] - options_.feasibility_tolerance &&
          activity[r] <= ub_[slack] + options_.feasibility_tolerance) {
        status_[slack] = VarStatus::kBasic;
        val_[slack] = activity[r];
        basis_[r] = slack;
        status_[art] = VarStatus::kAtLower;
        val_[art] = 0.0;
        continue;
      }
      // Nearest slack bound to the activity minimizes the residual the
      // artificial has to carry.
      if (activity[r] > ub_[slack]) {
        status_[slack] = VarStatus::kAtUpper;
        val_[slack] = ub_[slack];
      } else {
        status_[slack] = VarStatus::kAtLower;
        val_[slack] = lb_[slack];
      }
      const double residual = val_[slack] - activity[r];
      col_entries_[col_start_[art]].second = residual >= 0.0 ? 1.0 : -1.0;
      val_[art] = std::abs(residual);
      status_[art] = VarStatus::kBasic;
      basis_[r] = art;
      if (val_[art] > options_.feasibility_tolerance) needs_phase1_ = true;
    }
    if (!refactor()) {
      throw std::logic_error("Simplex: crash basis must be invertible");
    }
    compute_basic_values();
    factor_fresh_ = true;
  }

  enum class WarmState { kNone, kPrimalFeasible, kBasisOnly };

  WarmState try_warm_start() {
    const Basis* warm = options_.warm_start;
    if (warm == nullptr || warm->statuses.size() != static_cast<std::size_t>(n_real_)) {
      return WarmState::kNone;
    }
    status_.assign(n_total_, VarStatus::kAtLower);
    val_.assign(n_total_, 0.0);
    basis_.clear();
    for (int j = 0; j < n_real_; ++j) {
      const VarStatus st = warm->statuses[j];
      if (st == VarStatus::kBasic) {
        basis_.push_back(j);
        status_[j] = VarStatus::kBasic;
        continue;
      }
      VarStatus snapped{};
      double v = 0.0;
      switch (st) {
        case VarStatus::kAtLower:
          if (!std::isfinite(lb_[j])) { v = resting_value(j, &snapped); break; }
          snapped = VarStatus::kAtLower; v = lb_[j];
          break;
        case VarStatus::kAtUpper:
          if (!std::isfinite(ub_[j])) { v = resting_value(j, &snapped); break; }
          snapped = VarStatus::kAtUpper; v = ub_[j];
          break;
        default:
          v = resting_value(j, &snapped);
      }
      status_[j] = snapped;
      val_[j] = v;
    }
    if (static_cast<int>(basis_.size()) != m_) return WarmState::kNone;
    for (int r = 0; r < m_; ++r) {
      status_[n_real_ + r] = VarStatus::kAtLower;  // artificials parked at 0
      val_[n_real_ + r] = 0.0;
    }
    if (!refactor()) return WarmState::kNone;
    compute_basic_values();
    factor_fresh_ = true;
    needs_phase1_ = false;
    for (int r = 0; r < m_; ++r) {
      const int j = basis_[r];
      if (val_[j] < lb_[j] - options_.feasibility_tolerance ||
          val_[j] > ub_[j] + options_.feasibility_tolerance) {
        return WarmState::kBasisOnly;  // valid basis, primal infeasible
      }
    }
    return WarmState::kPrimalFeasible;
  }

  /// Dual simplex repair from a dual-feasible basis. Returns:
  ///   kOptimal        — primal feasibility restored (dual feasibility
  ///                     maintained, so the point is optimal up to a
  ///                     cleanup primal pass);
  ///   kInfeasible     — a row proves the LP primal infeasible;
  ///   kTime/IterLimit — resource limits;
  ///   nullopt         — not dual feasible / too many degenerate pivots:
  ///                     caller should cold start.
  std::optional<SolveStatus> dual_iterate(const Stopwatch& watch) {
    std::vector<double> y, rho, w;
    // Initial dual feasibility check against phase-2 costs.
    compute_duals(y);
    for (int j = 0; j < n_total_; ++j) {
      if (status_[j] == VarStatus::kBasic || lb_[j] == ub_[j]) continue;
      double dj = cost_[j];
      for (const auto& [r, coeff] : col(j)) dj -= y[r] * coeff;
      const double slack = 1e-6;
      if ((status_[j] == VarStatus::kAtLower && dj < -slack) ||
          (status_[j] == VarStatus::kAtUpper && dj > slack) ||
          (status_[j] == VarStatus::kNonbasicFree && std::abs(dj) > slack)) {
        return std::nullopt;
      }
    }

    long dual_pivots = 0;
    const long pivot_cap = 4L * m_ + 1000;
    int pivots_since_refactor = 0;
    // Long-solve liveness for the obs watchdog: one beat per 128
    // pivots keeps the cost invisible while a genuinely wedged solve
    // (cycling, numerical livelock) goes quiet and gets flagged.
    obs::HeartbeatScope heartbeat("hb.lp_solve");
    // Terminal verdicts (optimal / dual ray) are only trusted after the
    // basis has been refactored and the basic values recomputed: the
    // incremental val_ updates drift, and a verdict read off drifted
    // numbers can be wrong in either direction (a marginally infeasible
    // LP "repaired" to optimal, or a near-degenerate basis presenting a
    // spurious ray).
    bool verified_terminal = false;
    for (;;) {
      if (watch.seconds() > options_.time_limit_seconds ||
          options_.deadline.expired()) {
        return SolveStatus::kTimeLimit;
      }
      if (iterations_ >= options_.max_iterations) {
        return SolveStatus::kIterationLimit;
      }
      if (++dual_pivots > pivot_cap) return std::nullopt;
      ++iterations_;
      if ((iterations_ & 127) == 0) heartbeat.beat(iterations_);

      // Leaving variable: the most bound-violated basic.
      int p_leave = -1;
      double worst = options_.feasibility_tolerance;
      bool above_upper = false;
      for (int p = 0; p < m_; ++p) {
        const int bj = basis_[p];
        const double over = val_[bj] - ub_[bj];
        const double under = lb_[bj] - val_[bj];
        if (over > worst) { worst = over; p_leave = p; above_upper = true; }
        if (under > worst) { worst = under; p_leave = p; above_upper = false; }
      }
      if (p_leave < 0) {  // primal feasible
        if (!verified_terminal) {
          if (!refactor()) return std::nullopt;
          compute_basic_values();
          factor_fresh_ = true;
          pivots_since_refactor = 0;
          verified_terminal = true;
          continue;
        }
        return SolveStatus::kOptimal;
      }

      compute_duals(y);
      engine_->btran_unit(p_leave, rho);

      // Entering variable: dual ratio test, min |d_j / alpha_j| over the
      // columns that can move the leaving variable toward its bound.
      int enter = -1;
      double enter_alpha = 0.0;
      double best_ratio = kInfinity;
      for (int j = 0; j < n_total_; ++j) {
        if (status_[j] == VarStatus::kBasic || lb_[j] == ub_[j]) continue;
        double alpha = 0.0;
        for (const auto& [r, coeff] : col(j)) alpha += rho[r] * coeff;
        if (std::abs(alpha) < kPivotTolerance) continue;
        bool eligible;
        if (above_upper) {
          // x_leave must decrease: AtLower columns with alpha > 0 (they
          // increase), AtUpper with alpha < 0 (they decrease), free both.
          eligible = (status_[j] == VarStatus::kAtLower && alpha > 0.0) ||
                     (status_[j] == VarStatus::kAtUpper && alpha < 0.0) ||
                     status_[j] == VarStatus::kNonbasicFree;
        } else {
          eligible = (status_[j] == VarStatus::kAtLower && alpha < 0.0) ||
                     (status_[j] == VarStatus::kAtUpper && alpha > 0.0) ||
                     status_[j] == VarStatus::kNonbasicFree;
        }
        if (!eligible) continue;
        double dj = cost_[j];
        for (const auto& [r, coeff] : col(j)) dj -= y[r] * coeff;
        const double ratio = std::abs(dj / alpha);
        if (ratio < best_ratio - 1e-12 ||
            (ratio < best_ratio + 1e-12 && enter >= 0 &&
             std::abs(alpha) > std::abs(enter_alpha))) {
          best_ratio = ratio;
          enter = j;
          enter_alpha = alpha;
        }
      }
      if (enter < 0) {  // dual ray: no primal point
        if (!verified_terminal) {
          if (!refactor()) return std::nullopt;
          compute_basic_values();
          factor_fresh_ = true;
          pivots_since_refactor = 0;
          verified_terminal = true;
          continue;
        }
        return SolveStatus::kInfeasible;
      }

      ftran(enter, w);
      const int leave = basis_[p_leave];
      const double target = above_upper ? ub_[leave] : lb_[leave];
      const double t_enter = (val_[leave] - target) / enter_alpha;
      factor_fresh_ = false;
      val_[enter] += t_enter;
      for (int p = 0; p < m_; ++p) {
        if (w[p] != 0.0) val_[basis_[p]] -= t_enter * w[p];
      }
      status_[leave] = above_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      val_[leave] = target;
      status_[enter] = VarStatus::kBasic;
      basis_[p_leave] = enter;

      engine_->update(p_leave, w);
      // Primal pricing weights do not track dual pivots; rebuild them
      // lazily when (if) the primal loop runs next.
      weights_valid_ = false;
      verified_terminal = false;
      if (++pivots_since_refactor >= options_.refactor_interval ||
          engine_->prefers_refactor()) {
        pivots_since_refactor = 0;
        if (!refactor()) return std::nullopt;
        compute_basic_values();
        factor_fresh_ = true;
      }
    }
  }

  void set_phase1_costs() {
    cost_.assign(n_total_, 0.0);
    for (int r = 0; r < m_; ++r) cost_[n_real_ + r] = 1.0;
  }

  void set_phase2_costs() {
    cost_.assign(n_total_, 0.0);
    for (int j = 0; j < n_struct_; ++j) cost_[j] = model_.variable(j).objective;
  }

  void fix_artificials() {
    for (int r = 0; r < m_; ++r) {
      const int art = n_real_ + r;
      ub_[art] = 0.0;
      if (status_[art] != VarStatus::kBasic) {
        status_[art] = VarStatus::kAtLower;
        val_[art] = 0.0;
      } else {
        val_[art] = std::min(val_[art], 0.0);
        val_[art] = std::max(val_[art], 0.0);
      }
    }
  }

  double phase_objective() const {
    double total = 0.0;
    for (int r = 0; r < m_; ++r) total += val_[n_real_ + r];
    return total;
  }

  /// Recompute binv_ and the basic values from scratch unless nothing
  /// touched them since the last factorization. Throws on a singular
  /// basis (solve() retries cold with frequent refactorization).
  void refresh_factorization() {
    if (factor_fresh_) return;
    if (!refactor()) {
      throw std::logic_error("Simplex: basis became singular at a terminal");
    }
    compute_basic_values();
    factor_fresh_ = true;
  }

  bool basics_within_bounds() const {
    const double tol = options_.feasibility_tolerance;
    for (int p = 0; p < m_; ++p) {
      const int j = basis_[p];
      if (!std::isfinite(val_[j])) return false;
      if (std::isfinite(lb_[j]) && val_[j] < lb_[j] - tol * (1.0 + std::abs(lb_[j]))) {
        return false;
      }
      if (std::isfinite(ub_[j]) && val_[j] > ub_[j] + tol * (1.0 + std::abs(ub_[j]))) {
        return false;
      }
    }
    return true;
  }

  /// Phase-2 optimum with a verified terminal. The primal loop's
  /// kOptimal verdict is read off incrementally-updated values; a
  /// near-singular pivot can corrupt them arbitrarily (not just by
  /// rounding drift), leaving an "optimal" basic variable far outside
  /// its bounds. So: recompute from a fresh factorization, and if a
  /// basic variable escaped its bounds, repair with dual pivots (the
  /// duals are optimal at this point, so dual repair preserves
  /// optimality) and re-polish. A basis that cannot be verified within
  /// a few rounds is handed to solve()'s conservative cold retry.
  SolveStatus phase2_verified(const Stopwatch& watch) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      const SolveStatus st = iterate(watch, /*phase1=*/false);
      if (st != SolveStatus::kOptimal) return st;
      refresh_factorization();
      if (basics_within_bounds()) return SolveStatus::kOptimal;
      const std::optional<SolveStatus> repaired = dual_iterate(watch);
      if (!repaired.has_value()) break;
      if (*repaired != SolveStatus::kOptimal) return *repaired;
    }
    throw std::logic_error(
        "Simplex: could not verify primal feasibility at the optimum");
  }

  // ---- basis linear algebra (through the engine) ----

  /// Deep basis/bound invariants (Debug and sanitizer builds only):
  /// exactly m_ basic variables, basis_ and status_ agree, lb <= ub
  /// everywhere, and every nonbasic variable rests on its bound.
  void check_basis_invariants(const char* where) const {
#if NP_CHECKS_ENABLED
    NP_ASSERT(static_cast<int>(basis_.size()) == m_,
              where, ": basis has ", basis_.size(), " entries for ", m_, " rows");
    int basic_count = 0;
    for (int j = 0; j < n_total_; ++j) {
      if (status_[j] == VarStatus::kBasic) ++basic_count;
    }
    NP_ASSERT(basic_count == m_,
              where, ": ", basic_count, " variables marked basic for ", m_, " rows");
    for (int p = 0; p < m_; ++p) {
      NP_ASSERT(basis_[p] >= 0 && basis_[p] < n_total_,
                where, ": basis position ", p, " holds out-of-range index ", basis_[p]);
      NP_ASSERT(status_[basis_[p]] == VarStatus::kBasic,
                where, ": variable ", basis_[p], " in the basis but not marked basic");
    }
    const double tol = options_.feasibility_tolerance;
    for (int j = 0; j < n_total_; ++j) {
      NP_ASSERT(!(lb_[j] > ub_[j]),
                where, ": bound inversion on variable ", j,
                " [", lb_[j], ", ", ub_[j], "]");
      const double rest_tol = tol * (1.0 + std::abs(val_[j]));
      switch (status_[j]) {
        case VarStatus::kAtLower:
          NP_ASSERT(!std::isfinite(lb_[j]) || std::abs(val_[j] - lb_[j]) <= rest_tol,
                    where, ": variable ", j, " at-lower but val ", val_[j],
                    " != lb ", lb_[j]);
          break;
        case VarStatus::kAtUpper:
          NP_ASSERT(!std::isfinite(ub_[j]) || std::abs(val_[j] - ub_[j]) <= rest_tol,
                    where, ": variable ", j, " at-upper but val ", val_[j],
                    " != ub ", ub_[j]);
          break;
        case VarStatus::kNonbasicFree:
          NP_ASSERT(val_[j] == 0.0,
                    where, ": free nonbasic variable ", j, " not at zero");
          break;
        case VarStatus::kBasic:
          break;
      }
    }
#else
    (void)where;
#endif
  }

  bool refactor() {
    // Chaos site: refactorization is the solver's allocation-heavy
    // moment (fresh LU fill, eta-file reset) — the realistic place for
    // a bad_alloc-shaped failure mid-solve.
    NP_FAULT_POINT("lp.refactor");
    static obs::Counter& refactorizations = obs::counter("lp.refactorizations");
    refactorizations.add(1);
    basis_cols_.resize(m_);
    for (int p = 0; p < m_; ++p) basis_cols_[p] = col(basis_[p]);
    return engine_->refactor(basis_cols_);
  }

  void compute_basic_values() {
    // x_B = B^{-1} (0 - N x_N).
    std::vector<double> rhs(m_, 0.0);
    for (int j = 0; j < n_total_; ++j) {
      if (status_[j] == VarStatus::kBasic || val_[j] == 0.0) continue;
      for (const auto& [r, coeff] : col(j)) rhs[r] -= coeff * val_[j];
    }
    engine_->ftran_dense(rhs);
    for (int p = 0; p < m_; ++p) val_[basis_[p]] = rhs[p];
  }

  /// w = B^{-1} a_j.
  void ftran(int j, std::vector<double>& w) const {
    engine_->ftran_column(col(j), w);
  }

  /// y = (c_B^T B^{-1})^T.
  void compute_duals(std::vector<double>& y) const {
    y.assign(m_, 0.0);
    bool any = false;
    for (int p = 0; p < m_; ++p) {
      const double cb = cost_[basis_[p]];
      if (cb != 0.0) { y[p] = cb; any = true; }
    }
    if (any) engine_->btran_dense(y);
  }

  // ---- pricing ----
  //
  // Entering-variable selection is pluggable (options.pricing). All
  // rules maximize violation^2 / weight_j, where the violation is the
  // reduced-cost excess past the optimality tolerance in the movable
  // direction and the weight is rule-specific:
  //
  //   Dantzig        weight_j = 1 (same argmax as max |d_j|);
  //   devex          weight_j approximates ||B^{-1} a_j||^2 against a
  //                  reference framework (Forrest-Goldfarb), reset to
  //                  all-ones on refactorization, invariant >= 1;
  //   steepest edge  weight_j = gamma_j = 1 + ||B^{-1} a_j||^2 exactly,
  //                  maintained by the recurrence below; survives
  //                  refactorization (norms depend on the basis, not on
  //                  how it is factorized).
  //
  // Per pivot (entering q at position p with FTRAN column w, pivot
  // alpha_p = w[p], pivot row alpha_j = rho . a_j with
  // rho = e_p^T B^{-1}):
  //
  //   devex:  gamma_j <- max(gamma_j, (alpha_j/alpha_p)^2 gamma_q)
  //           gamma_r <- max(gamma_q / alpha_p^2, 1)    (leaving var r)
  //   SE:     gamma_j <- gamma_j - 2 (alpha_j/alpha_p)(a_j . tau)
  //                      + (alpha_j/alpha_p)^2 gamma_q
  //           with tau = B^{-T} w (one extra BTRAN), exact
  //           gamma_q = 1 + ||w||^2, and the provable floor
  //           gamma_j >= 1 + (alpha_j/alpha_p)^2 clamped on;
  //           gamma_r <- gamma_q / alpha_p^2  (>= 1 + 1/alpha_p^2).
  //
  // Columns with alpha_j = 0 are untouched, so both updates cost
  // O(nnz of the rows hit by rho), hyper-sparse in the scenario LPs.

  bool needs_weights() const { return pricing_ != PricingRule::kDantzig; }

  double weight_for(int j) const {
    return needs_weights() ? weight_[j] : 1.0;
  }

  /// Lazily (re)build the weight vector. Devex resets to the reference
  /// framework (all ones). Steepest edge computes exact norms: free for
  /// the crash basis, where every basic column is its own row's slack
  /// or artificial so B is a signed diagonal and ||B^{-1} a_j|| =
  /// ||a_j||; one hyper-sparse FTRAN per nonbasic column otherwise
  /// (warm starts — which is why warm callers prefer devex or Dantzig).
  void ensure_pricing_weights() {
    if (!needs_weights() || weights_valid_) return;
    Stopwatch stopwatch;
    weight_.assign(n_total_, 1.0);
    ++weight_resets_;
    if (pricing_ == PricingRule::kSteepestEdge) {
      bool signed_diagonal = true;
      for (int r = 0; r < m_; ++r) {
        if (basis_[r] != n_real_ + r && basis_[r] != n_struct_ + r) {
          signed_diagonal = false;
          break;
        }
      }
      for (int j = 0; j < n_total_; ++j) {
        if (status_[j] == VarStatus::kBasic || lb_[j] == ub_[j]) continue;
        if (signed_diagonal) {
          double norm2 = 0.0;
          for (const auto& [r, coeff] : col(j)) norm2 += coeff * coeff;
          weight_[j] = 1.0 + norm2;
        } else {
          weight_[j] = 1.0 + engine_->ftran_norm2(col(j));
        }
      }
    }
    weights_valid_ = true;
    pricing_seconds_ += stopwatch.seconds();
  }

  /// Scatter the pivot row alpha = rho^T A into alpha_ (rho = row p of
  /// the basis inverse). Row-wise: for every row touched by rho, walk
  /// the model row plus that row's slack and artificial columns —
  /// O(nnz of the touched rows) instead of one dot product per column.
  void compute_pivot_row(const std::vector<double>& rho) {
    if (alpha_.size() != n_total_) alpha_.resize(n_total_);  // O(n) once
    alpha_.clear();                                          // O(pattern)
    for (int r = 0; r < m_; ++r) {
      const double rr = rho[r];
      if (rr == 0.0) continue;
      for (const auto& [var, coeff] : model_.row(r).coefficients) {
        if (coeff != 0.0) alpha_.add(var, rr * coeff);
      }
      alpha_.add(n_struct_ + r, -rr);  // slack: coefficient -1
      alpha_.add(n_real_ + r,
                 rr * col_entries_[col_start_[n_real_ + r]].second);
    }
  }

  /// Apply the per-pivot weight recurrences (see block comment above).
  /// Must run BEFORE the basis exchange mutates status_/basis_ and
  /// BEFORE engine_->update: rho and tau are rows of the OLD basis
  /// inverse. `entering` enters at position p; w is its FTRAN column.
  void update_pricing_weights(int entering, int p,
                              const std::vector<double>& w) {
    const double alpha_p = w[p];
    if (std::abs(alpha_p) < kPivotTolerance) return;
    engine_->btran_unit(p, rho_);
    compute_pivot_row(rho_);
    const int leaving = basis_[p];
    const double inv_ap2 = 1.0 / (alpha_p * alpha_p);
    if (pricing_ == PricingRule::kDevex) {
      const double gamma_q = std::max(weight_[entering], 1.0);
      for (const int j : alpha_.pattern()) {
        if (j == entering || status_[j] == VarStatus::kBasic ||
            lb_[j] == ub_[j]) {
          continue;
        }
        const double aj = alpha_[j];
        if (aj == 0.0) continue;
        const double candidate = aj * aj * inv_ap2 * gamma_q;
        if (candidate > weight_[j]) weight_[j] = candidate;
      }
      weight_[leaving] = std::max(gamma_q * inv_ap2, 1.0);
    } else {  // steepest edge
      double wnorm2 = 0.0;
      for (const double v : w) wnorm2 += v * v;
      const double gamma_q = 1.0 + wnorm2;  // exact norm of the entering col
      tau_ = w;
      engine_->btran_dense(tau_);  // tau = B^{-T} w, indexed by row
      for (const int j : alpha_.pattern()) {
        if (j == entering || status_[j] == VarStatus::kBasic ||
            lb_[j] == ub_[j]) {
          continue;
        }
        const double aj = alpha_[j];
        if (aj == 0.0) continue;
        const double ratio = aj / alpha_p;
        double dot = 0.0;
        for (const auto& [r, coeff] : col(j)) dot += tau_[r] * coeff;
        const double updated =
            weight_[j] - 2.0 * ratio * dot + ratio * ratio * gamma_q;
        weight_[j] = std::max(updated, 1.0 + ratio * ratio);
      }
      weight_[leaving] = std::max(gamma_q * inv_ap2, 1.0 + inv_ap2);
    }
    // The entering variable turns basic; park its weight at the
    // reference floor so no stale value leaks if it later leaves the
    // basis through a path that skips the leaving-variable formula.
    weight_[entering] = 1.0;
  }

  /// Weight contracts (debug / sanitizer builds): devex weights never
  /// drop below the reference floor of 1; steepest-edge weights match
  /// an exact norm recomputation on a bounded rotating sample of
  /// nonbasic columns. The SE tolerance is loose — it exists to catch
  /// index/sign bugs (orders-of-magnitude errors), not to bound honest
  /// floating-point drift between refactorizations.
  void check_pricing_weights(const char* where) {
#if NP_CHECKS_ENABLED
    if (!needs_weights() || !weights_valid_) return;
    if (pricing_ == PricingRule::kDevex) {
      for (int j = 0; j < n_total_; ++j) {
        if (status_[j] == VarStatus::kBasic || lb_[j] == ub_[j]) continue;
        NP_ASSERT(weight_[j] >= 1.0,
                  where, ": devex weight of column ", j, " is ", weight_[j],
                  " (must stay >= 1)");
      }
    } else {
      const int sample = std::min(n_total_, 32);
      int checked = 0;
      for (int step = 0; step < n_total_ && checked < sample; ++step) {
        const int j = (weight_audit_cursor_ + step) % n_total_;
        if (status_[j] == VarStatus::kBasic || lb_[j] == ub_[j]) continue;
        const double exact = 1.0 + engine_->ftran_norm2(col(j));
        NP_ASSERT(std::abs(weight_[j] - exact) <= 5e-2 * exact + 1e-6,
                  where, ": steepest-edge weight of column ", j, " is ",
                  weight_[j], " but the exact norm is ", exact);
        ++checked;
      }
      weight_audit_cursor_ = (weight_audit_cursor_ + sample) % n_total_;
    }
#else
    (void)where;
#endif
  }

  /// Refactorization hook for the pricing state: devex resets to the
  /// reference framework (its weights approximate against the last
  /// reset point and degrade as the basis drifts from it); exact
  /// steepest-edge norms are basis-dependent only and survive — they
  /// are audited instead.
  void on_refactorized() {
    if (pricing_ == PricingRule::kDevex && weights_valid_) {
      Stopwatch stopwatch;
      std::fill(weight_.begin(), weight_.end(), 1.0);
      ++weight_resets_;
      pricing_seconds_ += stopwatch.seconds();
    }
    check_pricing_weights("Simplex::on_refactorized");
  }

  /// Violation of column j against the current duals: reduced-cost
  /// excess past the optimality tolerance in a direction j can move.
  /// Returns false for basic/fixed/non-violating columns.
  bool violation_of(int j, const std::vector<double>& y, double* violation,
                    int* dir) const {
    if (status_[j] == VarStatus::kBasic) return false;
    if (lb_[j] == ub_[j]) return false;  // fixed (incl. retired artificials)
    double d = cost_[j];
    for (const auto& [r, coeff] : col(j)) d -= y[r] * coeff;
    if (status_[j] == VarStatus::kAtLower &&
        d < -options_.optimality_tolerance) {
      *dir = +1; *violation = -d; return true;
    }
    if (status_[j] == VarStatus::kAtUpper &&
        d > options_.optimality_tolerance) {
      *dir = -1; *violation = d; return true;
    }
    if (status_[j] == VarStatus::kNonbasicFree &&
        std::abs(d) > options_.optimality_tolerance) {
      *dir = d < 0.0 ? +1 : -1; *violation = std::abs(d); return true;
    }
    return false;
  }

  struct PricingChoice {
    int j = -1;
    int dir = 0;
  };

  /// Candidate-list entry: a column that violated optimality when last
  /// priced, with its weighted score at that time (scores are refreshed
  /// every iteration; the stored value only orders evictions).
  struct Candidate {
    int j = 0;
    double score = 0.0;
  };

  void reset_candidates() {
    candidates_.clear();
    in_candidates_.assign(n_total_, 0);
  }

  /// Select the entering variable. Bland mode scans for the lowest
  /// eligible index (anti-cycling). Otherwise, below the partial
  /// threshold every column is priced; above it the candidate list is
  /// re-priced against the current duals and refilled round-robin from
  /// column shards when it runs thin. Optimality (j = -1) is only ever
  /// returned from a scan that covered all columns with the current
  /// duals: either the full sweep, or a refill pass that visited every
  /// shard and found nothing.
  PricingChoice price_entering(const std::vector<double>& y, bool bland) {
    PricingChoice best;
    if (bland) {
      for (int j = 0; j < n_total_; ++j) {
        double violation; int dir;
        if (violation_of(j, y, &violation, &dir)) {
          best.j = j; best.dir = dir;
          break;
        }
      }
      return best;
    }

    double best_score = 0.0;
    auto consider = [&](int j, double violation, int dir) {
      const double score = violation * violation / weight_for(j);
      if (score > best_score) {
        best_score = score;
        best.j = j;
        best.dir = dir;
      }
      return score;
    };

    const bool partial = options_.partial_pricing_threshold > 0 &&
                         n_total_ > options_.partial_pricing_threshold;
    if (!partial) {
      for (int j = 0; j < n_total_; ++j) {
        double violation; int dir;
        if (violation_of(j, y, &violation, &dir)) consider(j, violation, dir);
      }
      candidates_scanned_ += n_total_;
      return best;
    }

    // Re-price the surviving candidates in place.
    std::size_t keep = 0;
    for (Candidate& cand : candidates_) {
      ++candidates_scanned_;
      double violation; int dir;
      if (violation_of(cand.j, y, &violation, &dir)) {
        cand.score = consider(cand.j, violation, dir);
        candidates_[keep++] = cand;
      } else {
        in_candidates_[cand.j] = 0;
      }
    }
    candidates_.resize(keep);

    if (static_cast<int>(candidates_.size()) >= kCandidateLowWater) {
      return best;  // healthy list: pivot on its best
    }

    // Refill round-robin from column shards. The cursor advances past
    // every scanned shard unconditionally, so consecutive iterations
    // never rescan the same shard while others still hold candidates
    // (the seed's rotating-window bug under degenerate pricing).
    ++heap_rebuilds_;
    const int shard_size = std::max(64, n_total_ / 16);
    const int num_shards = (n_total_ + shard_size - 1) / shard_size;
    if (shard_cursor_ >= num_shards) shard_cursor_ = 0;
    for (int scanned = 0; scanned < num_shards; ++scanned) {
      if (static_cast<int>(candidates_.size()) >= kCandidateRefill) break;
      const int shard = shard_cursor_;
      shard_cursor_ = shard_cursor_ + 1 == num_shards ? 0 : shard_cursor_ + 1;
      const int begin = shard * shard_size;
      const int end = std::min(n_total_, begin + shard_size);
      for (int j = begin; j < end; ++j) {
        if (in_candidates_[j]) continue;  // already re-priced above
        ++candidates_scanned_;
        double violation; int dir;
        if (!violation_of(j, y, &violation, &dir)) continue;
        const double score = consider(j, violation, dir);
        if (static_cast<int>(candidates_.size()) < kMaxCandidates) {
          candidates_.push_back({j, score});
          in_candidates_[j] = 1;
        } else {
          // Full list: evict the weakest entry if this one beats it.
          std::size_t worst = 0;
          for (std::size_t k = 1; k < candidates_.size(); ++k) {
            if (candidates_[k].score < candidates_[worst].score) worst = k;
          }
          if (candidates_[worst].score < score) {
            in_candidates_[candidates_[worst].j] = 0;
            candidates_[worst] = {j, score};
            in_candidates_[j] = 1;
          }
        }
      }
    }
    // best.j < 0 here implies the survivors list was empty AND the
    // refill visited all shards (it only stops early once it has found
    // candidates) — i.e. a full sweep with current duals found nothing.
    return best;
  }

  // ---- main loop ----

  SolveStatus iterate(const Stopwatch& watch, bool phase1) {
    std::vector<double> y, w;
    int degenerate_streak = 0;
    int pivots_since_refactor = 0;
    // Stale candidate scores from the other phase (different costs) are
    // useless; the list restarts empty.
    reset_candidates();
    // Watchdog liveness, as in the dual loop above.
    obs::HeartbeatScope heartbeat("hb.lp_solve");
    for (;;) {
      if (iterations_ >= options_.max_iterations) return SolveStatus::kIterationLimit;
      if (watch.seconds() > options_.time_limit_seconds ||
          options_.deadline.expired()) {
        return SolveStatus::kTimeLimit;
      }
      ++iterations_;
      if ((iterations_ & 127) == 0) heartbeat.beat(iterations_);

      compute_duals(y);
      const bool bland = degenerate_streak > 256;
      if (!bland) ensure_pricing_weights();
      PricingChoice choice;
      {
        // Timed, not spanned: the per-solve "lp.price" trace event is
        // emitted once in finish() from the accumulated total — a
        // per-iteration RAII span would flood the trace buffers.
        Stopwatch stopwatch;
        choice = price_entering(y, bland);
        pricing_seconds_ += stopwatch.seconds();
      }
      if (choice.j < 0) {
        check_pricing_weights("Simplex::iterate optimal");
        return SolveStatus::kOptimal;
      }
      const int entering = choice.j;
      const int entering_dir = choice.dir;

      ftran(entering, w);

      // Ratio test: largest step t >= 0 for x_entering moving `dir`.
      double t_limit = ub_[entering] - lb_[entering];  // own span (may be inf)
      int leaving_pos = -1;
      double leaving_pivot = 0.0;
      for (int p = 0; p < m_; ++p) {
        const double delta = entering_dir * w[p];
        if (std::abs(delta) < kPivotTolerance) continue;
        const int bj = basis_[p];
        double ratio;
        if (delta > 0.0) {
          if (!std::isfinite(lb_[bj])) continue;
          ratio = (val_[bj] - lb_[bj]) / delta;
        } else {
          if (!std::isfinite(ub_[bj])) continue;
          ratio = (val_[bj] - ub_[bj]) / delta;
        }
        ratio = std::max(ratio, 0.0);
        const bool better =
            ratio < t_limit - 1e-12 ||
            (ratio < t_limit + 1e-12 && leaving_pos >= 0 &&
             (bland ? basis_[p] < basis_[leaving_pos]
                    : std::abs(w[p]) > std::abs(leaving_pivot)));
        if (leaving_pos < 0 ? ratio < t_limit : better) {
          t_limit = ratio;
          leaving_pos = p;
          leaving_pivot = w[p];
        }
      }

      if (!std::isfinite(t_limit)) {
        return phase1 ? SolveStatus::kInfeasible  // cannot happen: phase-1 bounded
                      : SolveStatus::kUnbounded;
      }

      degenerate_streak = t_limit < 1e-10 ? degenerate_streak + 1 : 0;

      // Apply the step to the entering variable and the basics.
      factor_fresh_ = false;
      val_[entering] += entering_dir * t_limit;
      if (t_limit > 0.0) {
        for (int p = 0; p < m_; ++p) {
          if (w[p] != 0.0) val_[basis_[p]] -= entering_dir * t_limit * w[p];
        }
      }

      if (leaving_pos < 0) {
        // Bound flip: entering traveled its whole span, no basis change.
        status_[entering] =
            entering_dir > 0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
        val_[entering] = entering_dir > 0 ? ub_[entering] : lb_[entering];
        continue;
      }

      // Weight recurrences need the OLD basis inverse (rho, tau) and
      // the pre-exchange status_/basis_, so they run before the swap.
      // Pivots taken under Bland's rule skip the update; devex degrades
      // gracefully (weights stay >= 1, still an approximation) but
      // exact steepest-edge norms are invalidated and rebuilt when
      // regular pricing resumes.
      if (!bland && needs_weights() && weights_valid_) {
        Stopwatch stopwatch;
        update_pricing_weights(entering, leaving_pos, w);
        pricing_seconds_ += stopwatch.seconds();
      } else if (bland && pricing_ == PricingRule::kSteepestEdge) {
        weights_valid_ = false;
      }

      const int leaving = basis_[leaving_pos];
      const double delta = entering_dir * leaving_pivot;
      status_[leaving] = delta > 0.0 ? VarStatus::kAtLower : VarStatus::kAtUpper;
      val_[leaving] = delta > 0.0 ? lb_[leaving] : ub_[leaving];
      status_[entering] = VarStatus::kBasic;
      basis_[leaving_pos] = entering;

      engine_->update(leaving_pos, w);

      if (++pivots_since_refactor >= options_.refactor_interval ||
          engine_->prefers_refactor()) {
        pivots_since_refactor = 0;
        if (!refactor()) {
          throw std::logic_error("Simplex: basis became singular");
        }
        compute_basic_values();
        factor_fresh_ = true;
        on_refactorized();
      }
    }
  }

  /// Swap basic artificials (parked at zero) for real columns via
  /// degenerate pivots so the exported basis is expressible over
  /// structural + slack variables and therefore warm-startable.
  void purge_artificials() {
    std::vector<double> rho;
    for (int p = 0; p < m_; ++p) {
      if (basis_[p] < n_real_) continue;
      engine_->btran_unit(p, rho);
      int enter = -1;
      double enter_pivot = 0.0;
      for (int j = 0; j < n_real_; ++j) {
        if (status_[j] == VarStatus::kBasic) continue;
        double pivot = 0.0;
        for (const auto& [r, coeff] : col(j)) pivot += rho[r] * coeff;
        if (std::abs(pivot) > 1e-7 && std::abs(pivot) > std::abs(enter_pivot)) {
          enter = j;
          enter_pivot = pivot;
          if (std::abs(enter_pivot) > 0.1) break;  // good enough
        }
      }
      if (enter < 0) continue;  // redundant row: artificial must stay
      std::vector<double> w;
      ftran(enter, w);
      factor_fresh_ = false;
      const int leave = basis_[p];
      status_[leave] = VarStatus::kAtLower;
      val_[leave] = 0.0;
      status_[enter] = VarStatus::kBasic;
      basis_[p] = enter;
      engine_->update(p, w);
      weights_valid_ = false;  // pivots the pricing loop never saw
    }
  }

  void finish(Solution& solution, SolveStatus status, const Stopwatch& watch) {
    solution.status = status;
    solution.iterations = iterations_;
    solution.solve_seconds = watch.seconds();
    solution.pricing_seconds = pricing_seconds_;
    // Pricing telemetry, accumulated locally and flushed once per solve
    // (the counters are shared atomics; per-iteration adds would put
    // contended RMWs in the hot loop under the parallel evaluator).
    static obs::Counter& scanned = obs::counter("lp.pricing.candidates_scanned");
    static obs::Counter& rebuilds = obs::counter("lp.pricing.heap_rebuilds");
    static obs::Counter& resets = obs::counter("lp.pricing.weight_resets");
    if (candidates_scanned_ > 0) scanned.add(candidates_scanned_);
    if (heap_rebuilds_ > 0) rebuilds.add(heap_rebuilds_);
    if (weight_resets_ > 0) resets.add(weight_resets_);
    obs::record_aggregate_span("lp.price", pricing_seconds_ * 1e6);
    if (status == SolveStatus::kOptimal) {
      purge_artificials();
      check_basis_invariants("Simplex::finish optimal");
#if NP_CHECKS_ENABLED
      // Optimal points must respect the variable bounds (within the
      // feasibility tolerance) and be finite.
      {
        const double tol = options_.feasibility_tolerance;
        for (int j = 0; j < n_struct_; ++j) {
          NP_ASSERT(std::isfinite(val_[j]),
                    "Simplex::finish: non-finite value for variable ", j);
          NP_ASSERT(val_[j] >= lb_[j] - tol * (1.0 + std::abs(lb_[j])),
                    "Simplex::finish: variable ", j, " below lower bound: ",
                    val_[j], " < ", lb_[j]);
          NP_ASSERT(val_[j] <= ub_[j] + tol * (1.0 + std::abs(ub_[j])),
                    "Simplex::finish: variable ", j, " above upper bound: ",
                    val_[j], " > ", ub_[j]);
        }
      }
#endif
      solution.x.assign(val_.begin(), val_.begin() + n_struct_);
      double obj = 0.0;
      for (int j = 0; j < n_struct_; ++j) obj += model_.variable(j).objective * val_[j];
      solution.objective = obj;
      solution.basis.statuses.assign(status_.begin(), status_.begin() + n_real_);
    }
  }

  const Model& model_;
  const SimplexOptions& options_;
  int n_struct_ = 0;
  int m_ = 0;
  int n_real_ = 0;
  int n_total_ = 0;
  bool needs_phase1_ = true;
  // True while the basis is freshly factorized AND the basic values
  // were computed from it with no incremental (product-form / step)
  // updates since — i.e. val_ can be trusted for terminal verdicts.
  bool factor_fresh_ = false;
  long iterations_ = 0;

  // ---- pricing state ----
  PricingRule pricing_ = PricingRule::kDevex;
  // True while weight_ tracks the current basis (devex: since the last
  // reference reset; steepest edge: exact norms). Invalidated by pivots
  // the pricing loop never sees (dual repair, artificial purging,
  // Bland-mode pivots under steepest edge) and rebuilt lazily.
  bool weights_valid_ = false;
  std::vector<double> weight_;
  std::vector<Candidate> candidates_;   // partial-pricing candidate list
  std::vector<char> in_candidates_;     // column -> on candidates_?
  int shard_cursor_ = 0;                // round-robin refill position
  int weight_audit_cursor_ = 0;         // rotating debug-audit sample
  double pricing_seconds_ = 0.0;
  long candidates_scanned_ = 0;
  long heap_rebuilds_ = 0;
  long weight_resets_ = 0;
  std::vector<double> rho_;   // btran_unit scratch (pivot row of B^{-1})
  std::vector<double> tau_;   // steepest-edge B^{-T} w scratch
  la::ScatterVector alpha_;   // pivot row rho^T A, stamp-deduplicated

  // Computational-form matrix in flat CSC layout: column j's (row,
  // coeff) entries are col_entries_[col_start_[j] .. col_start_[j+1]).
  std::vector<std::pair<int, double>> col_entries_;
  std::vector<int> col_start_;
  std::vector<double> lb_, ub_, cost_, val_;
  std::vector<VarStatus> status_;
  std::vector<int> basis_;       // variable index per basis position
  std::unique_ptr<BasisEngine> engine_;
  std::vector<ColumnView> basis_cols_;  // refactor() scratch
};

}  // namespace

namespace {

Solution solve_impl(const Model& model, const SimplexOptions& options) {
  model.validate();
  try {
    Simplex simplex(model, options);
    return simplex.run();
  } catch (const util::ContractViolation&) {
    throw;  // contract bugs must surface, never be retried away
  } catch (const std::logic_error&) {
    // Numerically singular basis from accumulated product-form drift.
    // Retry once, cold, with frequent refactorization; if even that
    // fails, report a resource-limit status instead of crashing the
    // caller (branch-and-bound treats it like any other failed node).
    static obs::Counter& singular_retries = obs::counter("lp.singular_retries");
    singular_retries.add(1);
    SimplexOptions conservative = options;
    conservative.warm_start = nullptr;
    conservative.refactor_interval = 50;
    try {
      Simplex retry(model, conservative);
      return retry.run();
    } catch (const util::ContractViolation&) {
      throw;
    } catch (const std::logic_error&) {
      Solution failed;
      failed.status = SolveStatus::kIterationLimit;
      return failed;
    }
  }
}

/// Per-solve telemetry: volume (solves, iterations), how each solve
/// started (warm-start efficacy), and — when detail metrics are on —
/// the solve-time distribution.
void record_solve_metrics(const Solution& solution) {
  static obs::Counter& solves = obs::counter("lp.solves");
  static obs::Counter& iterations = obs::counter("lp.iterations");
  solves.add(1);
  iterations.add(solution.iterations);
  // Resource-limit verdicts feed the degradation dashboards: a solve
  // stopped by its wall-clock deadline/time limit or iteration cap is a
  // recovery event upstream (scenario reported unknown, env degrades).
  if (solution.status == SolveStatus::kTimeLimit) {
    static obs::Counter& c = obs::counter("lp.deadline_hits");
    c.add(1);
    obs::fr_record(obs::FrEventKind::kDeadlineHit, "lp.deadline",
                   solution.iterations);
  } else if (solution.status == SolveStatus::kIterationLimit) {
    static obs::Counter& c = obs::counter("lp.iteration_limit_hits");
    c.add(1);
  }
  switch (solution.start_path) {
    case StartPath::kCold: {
      static obs::Counter& c = obs::counter("lp.start.cold");
      c.add(1);
      break;
    }
    case StartPath::kWarmPrimal: {
      static obs::Counter& c = obs::counter("lp.start.warm_primal");
      c.add(1);
      break;
    }
    case StartPath::kDualRepair: {
      static obs::Counter& c = obs::counter("lp.start.dual_repair");
      c.add(1);
      break;
    }
    case StartPath::kWarmFailed: {
      static obs::Counter& c = obs::counter("lp.start.warm_failed");
      c.add(1);
      break;
    }
  }
  if (obs::detail_enabled()) {
    static obs::Histogram& solve_us = obs::histogram(
        "lp.solve_us", obs::exponential_buckets(1.0, 4.0, 12));
    solve_us.observe(solution.solve_seconds * 1e6);
  }
}

}  // namespace

Solution solve(const Model& model, const SimplexOptions& options) {
  NP_SPAN("simplex.solve");
  Solution solution = solve_impl(model, options);
  record_solve_metrics(solution);
  return solution;
}

}  // namespace np::lp
