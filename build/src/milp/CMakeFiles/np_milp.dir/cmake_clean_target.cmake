file(REMOVE_RECURSE
  "libnp_milp.a"
)
