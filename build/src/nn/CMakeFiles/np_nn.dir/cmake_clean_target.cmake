file(REMOVE_RECURSE
  "libnp_nn.a"
)
