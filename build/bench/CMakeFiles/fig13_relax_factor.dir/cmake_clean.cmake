file(REMOVE_RECURSE
  "CMakeFiles/fig13_relax_factor.dir/fig13_relax_factor.cpp.o"
  "CMakeFiles/fig13_relax_factor.dir/fig13_relax_factor.cpp.o.d"
  "fig13_relax_factor"
  "fig13_relax_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_relax_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
