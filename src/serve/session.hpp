// One client connection's protocol state machine: bytes in, framed
// replies out. Transport-agnostic — np_serve wires it to a socket, the
// --stdio mode to pipes, and tests to in-memory byte strings.
//
// Fault containment per connection:
//   * a malformed payload (ParseError) costs one typed ERROR reply
//     (id=-1) and nothing else — the connection keeps serving;
//   * an unframeable stream (corrupt length prefix) gets one final
//     ERROR reply, then the session reports dead() and the owner hangs
//     up — there is no resynchronizing after a corrupt length;
//   * engine replies are written through the same write hook and may
//     arrive from worker threads; the hook must be thread-safe (np_serve
//     serializes writes per connection with a mutex).
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "serve/engine.hpp"
#include "serve/protocol.hpp"

namespace np::serve {

class Session {
 public:
  /// `write_frame` receives fully framed bytes (length prefix included)
  /// ready for the wire. It may be called from engine worker threads
  /// and must not throw for transport errors it can swallow (a throw is
  /// counted by the engine, not propagated).
  using WriteFn = std::function<void(const std::string& framed)>;

  Session(Engine& engine, WriteFn write_frame);

  /// Feed raw bytes from the transport; parses every complete frame and
  /// dispatches it (replies flow through the write hook, possibly
  /// asynchronously). Safe to call with any garbage.
  void on_bytes(const char* data, std::size_t size);

  /// True once the byte stream is unframeable; the owner should close
  /// the connection after flushing pending writes.
  bool dead() const { return dead_; }

 private:
  void dispatch(const std::string& payload);
  void write_reply(const Reply& reply);

  Engine& engine_;
  WriteFn write_frame_;
  FrameReader reader_;
  bool dead_ = false;
};

}  // namespace np::serve
