#include "la/sparse_vector.hpp"

namespace np::la {

void ScatterVector::resize(int n) {
  values_.assign(static_cast<std::size_t>(n), 0.0);
  touched_.assign(static_cast<std::size_t>(n), 0);
  pattern_.clear();
}

void ScatterVector::clear() {
  for (int i : pattern_) {
    values_[i] = 0.0;
    touched_[i] = 0;
  }
  pattern_.clear();
}

void ScatterVector::gather(std::vector<std::pair<int, double>>& out) const {
  for (int i : pattern_) {
    if (values_[i] != 0.0) out.emplace_back(i, values_[i]);
  }
}

}  // namespace np::la
