
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/actor_critic.cpp" "src/nn/CMakeFiles/np_nn.dir/actor_critic.cpp.o" "gcc" "src/nn/CMakeFiles/np_nn.dir/actor_critic.cpp.o.d"
  "/root/repo/src/nn/gat.cpp" "src/nn/CMakeFiles/np_nn.dir/gat.cpp.o" "gcc" "src/nn/CMakeFiles/np_nn.dir/gat.cpp.o.d"
  "/root/repo/src/nn/gcn.cpp" "src/nn/CMakeFiles/np_nn.dir/gcn.cpp.o" "gcc" "src/nn/CMakeFiles/np_nn.dir/gcn.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/np_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/np_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/nn/CMakeFiles/np_nn.dir/mlp.cpp.o" "gcc" "src/nn/CMakeFiles/np_nn.dir/mlp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ad/CMakeFiles/np_ad.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/np_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/np_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
