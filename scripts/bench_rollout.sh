#!/usr/bin/env bash
# Build and run the rollout-throughput and LP-engine benches, writing
# BENCH_rollout.json (steps/sec at 1, 2 and 4 rollout workers, with the
# LP share of stepping time) and BENCH_lp.json (dense vs sparse simplex
# engine, cold vs warm starts) at the repo root.
#
#   scripts/bench_rollout.sh [build-dir]
#
# Scale knobs:
#   NEUROPLAN_TOPOS=B            preset topology (first letter is used)
#   NEUROPLAN_ROLLOUT_STEPS=768  env steps per measured collect
#   NEUROPLAN_LP_CHECKS=48       env steps in the LP workload
#   NEUROPLAN_SEED=7             RNG seed
set -euo pipefail

build_dir="${1:-build}"
root="$(cd "$(dirname "$0")/.." && pwd)"

cmake --build "$root/$build_dir" --target rollout_throughput --target lp_throughput
"$root/$build_dir/bench/rollout_throughput" "$root/BENCH_rollout.json"
echo "wrote $root/BENCH_rollout.json"
"$root/$build_dir/bench/lp_throughput" "$root/BENCH_lp.json"
echo "wrote $root/BENCH_lp.json"
