#include "obs/obs.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/flight.hpp"
#include "obs/watchdog.hpp"
#include "util/mutex.hpp"

namespace np::obs {

namespace {

// One mutex guards all sink state: configuration happens a handful of
// times per process and emit_metrics_record() once per training epoch,
// so contention is irrelevant; the registry hot path never comes here.
util::Mutex g_sink_mutex;
std::string g_trace_path NP_GUARDED_BY(g_sink_mutex);  // empty = no trace
std::FILE* g_metrics_out NP_GUARDED_BY(g_sink_mutex) = nullptr;

void write_metrics_record_locked(const char* record, long index)
    NP_REQUIRES(g_sink_mutex) {
  if (g_metrics_out == nullptr) return;
  const std::string snapshot = Registry::instance().snapshot_json();
  std::fprintf(g_metrics_out,
               "{\"record\":\"%s\",\"index\":%ld,\"elapsed_us\":%.1f,"
               "\"metrics\":%s}\n",
               record, index, now_us(), snapshot.c_str());
  std::fflush(g_metrics_out);
}

}  // namespace

void configure_from_env() {
  // std::getenv, not util/env.hpp: np_util links np_obs, not the other
  // way around.
  const char* trace = std::getenv("NEUROPLAN_TRACE_OUT");
  if (trace != nullptr && trace[0] != '\0') set_trace_out(trace);
  const char* metrics = std::getenv("NEUROPLAN_METRICS_OUT");
  if (metrics != nullptr && metrics[0] != '\0') set_metrics_out(metrics);
  const char* flight = std::getenv("NEUROPLAN_FLIGHT_RECORD_OUT");
  if (flight != nullptr && flight[0] != '\0') set_flight_record_path(flight);
  configure_watchdog_from_env();
}

void set_trace_out(std::string path) {
  util::LockGuard lock(g_sink_mutex);
  g_trace_path = std::move(path);
  set_tracing_enabled(!g_trace_path.empty());
}

void set_metrics_out(const std::string& path) {
  util::LockGuard lock(g_sink_mutex);
  if (g_metrics_out != nullptr) {
    std::fclose(g_metrics_out);
    g_metrics_out = nullptr;
  }
  if (path.empty()) {
    set_detail_enabled(false);
    return;
  }
  g_metrics_out = std::fopen(path.c_str(), "w");
  if (g_metrics_out == nullptr) {
    std::fprintf(stderr, "[np obs] cannot open metrics output %s\n",
                 path.c_str());
    return;
  }
  set_detail_enabled(true);
}

bool metrics_out_open() {
  util::LockGuard lock(g_sink_mutex);
  return g_metrics_out != nullptr;
}

void emit_metrics_record(const char* record, long index) {
  util::LockGuard lock(g_sink_mutex);
  write_metrics_record_locked(record, index);
}

void shutdown() {
  // Join the watchdog monitor before tearing sinks down; the explicit
  // --flight-record-out exit dump happens after the final metrics
  // record below so the report carries the run's closing counters.
  Watchdog::instance().stop();
  util::LockGuard lock(g_sink_mutex);
  if (!g_trace_path.empty()) {
    std::FILE* out = std::fopen(g_trace_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "[np obs] cannot open trace output %s\n",
                   g_trace_path.c_str());
    } else {
      const std::size_t events = write_chrome_trace(out);
      std::fclose(out);
      std::fprintf(stderr, "[np obs] wrote %zu trace events to %s", events,
                   g_trace_path.c_str());
      const std::size_t dropped = trace_dropped_count();
      if (dropped > 0) {
        std::fprintf(stderr, " (%zu dropped at per-thread cap)", dropped);
      }
      std::fputc('\n', stderr);
    }
    g_trace_path.clear();
    set_tracing_enabled(false);
  }
  if (g_metrics_out != nullptr) {
    write_metrics_record_locked("final", -1);
    std::fclose(g_metrics_out);
    g_metrics_out = nullptr;
    set_detail_enabled(false);
  }
  fr_dump_at_exit();
}

}  // namespace np::obs
