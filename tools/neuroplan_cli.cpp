// neuroplan_cli — command-line front end for the library.
//
//   neuroplan_cli generate <A-E> <out.topo> [seed]     write a preset topology
//   neuroplan_cli show <topo>                          summarize a topology
//   neuroplan_cli evaluate <topo> <u0,u1,...>          check a plan (ADDED units)
//   neuroplan_cli plan <topo> <planner> [out.plan]     run a planner:
//       neuroplan | ilp | ilp-heur | greedy | decomposition
//   neuroplan_cli train <topo> <agent.ckpt> [epochs]
//       [--rollout-workers N] [--batched-updates]      train + checkpoint an agent
//       [--checkpoint-every N] [--resume <state>]      crash-safe full-state
//                                                      snapshots -> <agent>.state
//   neuroplan_cli report <topo> <plan-file>            operator report for a plan
//
// Global flags (any command, position-independent):
//   --metrics-out <file.jsonl>   JSONL metrics registry snapshots (one
//                                record per training epoch + a final one)
//   --trace-out <file.json>      Chrome trace-event JSON of NP_SPAN
//                                scopes, loadable in Perfetto
//   --flight-record-out <file.npcrash>
//                                flight-recorder dump at exit (crashes
//                                and contract violations dump here too;
//                                inspect with np_postmortem)
// The NEUROPLAN_METRICS_OUT / NEUROPLAN_TRACE_OUT /
// NEUROPLAN_FLIGHT_RECORD_OUT environment variables set the same
// outputs; the flags win when both are given.
//
// `plan ... neuroplan` honors NEUROPLAN_AGENT=<ckpt>: the agent loads
// the checkpoint before (briefly) fine-tuning, so trained policies are
// reusable across planning cycles. NEUROPLAN_ROLLOUT_WORKERS=<K> sets
// the rollout worker count for `plan ... neuroplan` (default 1, the
// bit-reproducible serial path).
//
// NEUROPLAN_INFERENCE=fast|tape selects the acting forward path:
// "fast" (default) uses the tape-free nn::InferenceEngine, "tape" is
// the escape hatch back to the autodiff forwards. The two are
// bit-identical in actions and results; the switch exists for
// debugging and A/B timing, not correctness.
//
// Plans are stored one integer per line (added units per link, in link
// order). Exit code 0 = success / feasible, 1 = failure / infeasible,
// 2 = usage error.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ad/checkpoint.hpp"
#include "core/baselines.hpp"
#include "core/decomposition.hpp"
#include "core/neuroplan.hpp"
#include "obs/obs.hpp"
#include "plan/evaluator.hpp"
#include "plan/report.hpp"
#include "topo/generator.hpp"
#include "topo/serialize.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace {

using namespace np;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  neuroplan_cli generate <A-E> <out.topo> [seed]\n"
               "  neuroplan_cli show <topo>\n"
               "  neuroplan_cli evaluate <topo> <u0,u1,...>\n"
               "  neuroplan_cli plan <topo> <neuroplan|ilp|ilp-heur|greedy|"
               "decomposition> [out.plan]\n"
               "  neuroplan_cli train <topo> <agent.ckpt> [epochs]"
               " [--rollout-workers N] [--batched-updates]\n"
               "                [--checkpoint-every N] [--resume <state-file>]\n"
               "  neuroplan_cli report <topo> <plan-file>\n"
               "global flags: [--metrics-out <file.jsonl>]"
               " [--trace-out <file.json>]\n"
               "              [--flight-record-out <file.npcrash>]\n"
               "env: NEUROPLAN_INFERENCE=fast|tape  acting forward path\n"
               "     (fast = tape-free inference engine, the default;\n"
               "      tape = autodiff forwards; bit-identical results)\n");
  return 2;
}

/// Strict decimal-integer argument parsing: the whole token must be a
/// number in [min_value, max_value]. Anything else — letters, empty
/// strings, trailing junk, out-of-range values — is a one-line error
/// and a non-zero exit (via main's catch), never atoi's silent 0.
long parse_long_arg(const char* what, const char* text, long min_value,
                    long max_value) {
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    throw std::runtime_error(std::string(what) + ": expected an integer, got '" +
                             text + "'");
  }
  if (value < min_value || value > max_value) {
    throw std::runtime_error(std::string(what) + ": value " + text +
                             " out of range [" + std::to_string(min_value) +
                             ", " + std::to_string(max_value) + "]");
  }
  return value;
}

std::vector<int> parse_plan_list(const std::string& csv) {
  std::vector<int> units;
  std::stringstream is(csv);
  std::string token;
  while (std::getline(is, token, ',')) {
    units.push_back(static_cast<int>(
        parse_long_arg("plan units", token.c_str(), 0, 1000000)));
  }
  return units;
}

std::vector<int> load_plan_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open plan file: " + path);
  std::vector<int> units;
  int value = 0;
  while (in >> value) units.push_back(value);
  return units;
}

void save_plan_file(const std::string& path, const std::vector<int>& units) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open plan file for writing: " + path);
  for (int u : units) out << u << "\n";
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4) return usage();
  const unsigned seed =
      argc > 4
          ? static_cast<unsigned>(parse_long_arg("seed", argv[4], 0, 0xffffffffL))
          : 1u;
  const topo::Topology t = topo::make_preset(argv[2][0], seed);
  topo::save_file(t, argv[3]);
  std::printf("wrote %s: %d sites, %d fibers, %d links, %d flows, %d failures\n",
              argv[3], t.num_sites(), t.num_fibers(), t.num_links(), t.num_flows(),
              t.num_failures());
  return 0;
}

int cmd_show(int argc, char** argv) {
  if (argc < 3) return usage();
  const topo::Topology t = topo::load_file(argv[2]);
  t.validate();
  double demand = 0.0;
  for (int f = 0; f < t.num_flows(); ++f) demand += t.flow(f).demand_gbps;
  long existing = 0;
  for (int l = 0; l < t.num_links(); ++l) existing += t.link(l).initial_units;
  std::printf("topology '%s'\n", t.name().c_str());
  std::printf("  sites    %d\n  fibers   %d\n  IP links %d\n  flows    %d "
              "(%.1f Tbps total)\n  failures %d\n  existing %ld units @ %.0f Gbps\n",
              t.num_sites(), t.num_fibers(), t.num_links(), t.num_flows(),
              demand / 1000.0, t.num_failures(), existing, t.capacity_unit_gbps());
  return 0;
}

int cmd_evaluate(int argc, char** argv) {
  if (argc < 4) return usage();
  const topo::Topology t = topo::load_file(argv[2]);
  const std::vector<int> added = parse_plan_list(argv[3]);
  if (added.size() != static_cast<std::size_t>(t.num_links())) {
    std::fprintf(stderr, "plan has %zu entries, topology has %d links\n",
                 added.size(), t.num_links());
    return 2;
  }
  std::vector<int> total = t.initial_units();
  for (int l = 0; l < t.num_links(); ++l) total[l] += added[l];
  plan::PlanEvaluator evaluator(t);
  const plan::CheckResult r = evaluator.check(total);
  std::printf("feasible: %s  cost: %.1f\n", r.feasible ? "yes" : "no",
              t.plan_cost(added));
  if (!r.feasible) {
    const std::string name = r.violated_scenario == plan::kHealthyScenario
                                 ? "healthy network"
                                 : t.failure(r.violated_scenario - 1).name;
    std::printf("violated scenario: %s (%.1f Gbps unserved)\n", name.c_str(),
                r.unserved_gbps);
  }
  return r.feasible ? 0 : 1;
}

int cmd_plan(int argc, char** argv) {
  if (argc < 4) return usage();
  const topo::Topology t = topo::load_file(argv[2]);
  const std::string planner = argv[3];
  core::PlanResult result;
  if (planner == "neuroplan") {
    core::NeuroPlanConfig config;
    config.train = core::default_train_config(
        t, static_cast<unsigned>(env_long("NEUROPLAN_SEED", 7)));
    const long epochs = env_long("NEUROPLAN_EPOCHS", 0);
    if (epochs > 0) config.train.epochs = static_cast<int>(epochs);
    const long rollout_workers = env_long("NEUROPLAN_ROLLOUT_WORKERS", 0);
    if (rollout_workers > 0) {
      config.train.rollout_workers = static_cast<int>(rollout_workers);
    }
    config.relax_factor = env_double("NEUROPLAN_ALPHA", 1.5);
    const std::string agent_path = env_string("NEUROPLAN_AGENT", "");
    if (agent_path.empty()) {
      const core::NeuroPlanResult np_result = core::neuroplan(t, config);
      std::printf("first stage: cost %.1f (%.1fs)\n", np_result.first_stage.cost,
                  np_result.train_seconds);
      result = np_result.final;
    } else {
      // Reuse a checkpointed agent: load, fine-tune briefly, plan.
      rl::A2cTrainer trainer(t, config.train);
      ad::load_parameters_file(trainer.network().all_parameters(), agent_path);
      std::printf("loaded agent from %s\n", agent_path.c_str());
      trainer.train();
      trainer.greedy_rollout();
      core::PlanResult first;
      if (trainer.has_feasible_plan()) {
        first.feasible = true;
        first.added_units = trainer.best_added_units();
        first.cost = trainer.best_cost();
      } else {
        first = core::solve_greedy(t);
      }
      if (!first.feasible) {
        std::fprintf(stderr, "no first-stage plan\n");
        return 1;
      }
      std::printf("first stage: cost %.1f\n", first.cost);
      result = core::second_stage(t, first.added_units, config.relax_factor,
                                  config.ilp_time_limit_seconds,
                                  config.ilp_relative_gap);
      if (!result.feasible) result = first;
    }
  } else if (planner == "ilp") {
    core::IlpConfig config;
    config.time_limit_seconds = env_double("NEUROPLAN_ILP_TIME", 300.0);
    result = core::solve_ilp(t, config);
  } else if (planner == "ilp-heur") {
    result = core::solve_ilp_heur(t);
  } else if (planner == "greedy") {
    result = core::solve_greedy(t);
  } else if (planner == "decomposition") {
    result = core::solve_region_decomposition(t).plan;
  } else {
    return usage();
  }
  std::printf("%s: %s, cost %.1f, %.1fs [%s]\n", planner.c_str(),
              result.feasible ? "feasible" : "NO PLAN", result.cost, result.seconds,
              result.detail.c_str());
  if (result.feasible && argc > 4) {
    save_plan_file(argv[4], result.added_units);
    std::printf("plan written to %s\n", argv[4]);
  }
  return result.feasible ? 0 : 1;
}

int cmd_train(int argc, char** argv) {
  if (argc < 4) return usage();
  const topo::Topology t = topo::load_file(argv[2]);
  rl::TrainConfig config = core::default_train_config(
      t, static_cast<unsigned>(env_long("NEUROPLAN_SEED", 7)));
  std::string resume_path;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rollout-workers") {
      if (i + 1 >= argc) return usage();
      config.rollout_workers =
          static_cast<int>(parse_long_arg("--rollout-workers", argv[++i], 1, 4096));
    } else if (arg == "--batched-updates") {
      config.batched_updates = true;
    } else if (arg == "--checkpoint-every") {
      if (i + 1 >= argc) return usage();
      config.checkpoint_every = static_cast<int>(
          parse_long_arg("--checkpoint-every", argv[++i], 1, 1000000));
      config.checkpoint_path = std::string(argv[3]) + ".state";
    } else if (arg == "--resume") {
      if (i + 1 >= argc) return usage();
      resume_path = argv[++i];
    } else if (i == 4) {
      // Positional epochs. Anything unrecognized here (including "-3")
      // goes through the strict parser so the error names the problem
      // instead of dumping usage.
      config.epochs =
          static_cast<int>(parse_long_arg("epochs", argv[i], 1, 1000000));
    } else {
      return usage();
    }
  }
  rl::A2cTrainer trainer(t, config);
  if (!resume_path.empty()) {
    trainer.resume_from_checkpoint(resume_path);
    std::printf("resumed from %s at epoch %d\n", resume_path.c_str(),
                trainer.epochs_completed());
  }
  const auto history = trainer.train();
  trainer.greedy_rollout();
  ad::save_parameters_file(trainer.network().all_parameters(), argv[3]);
  std::printf("trained %zu epochs; best first-stage cost %s; agent -> %s\n",
              history.size(),
              trainer.has_feasible_plan()
                  ? std::to_string(trainer.best_cost()).c_str()
                  : "none",
              argv[3]);
  return trainer.has_feasible_plan() ? 0 : 1;
}

int cmd_report(int argc, char** argv) {
  if (argc < 4) return usage();
  const topo::Topology t = topo::load_file(argv[2]);
  const std::vector<int> added = load_plan_file(argv[3]);
  const plan::PlanReport report = plan::analyze_plan(t, added);
  std::fputs(plan::to_text(t, report).c_str(), stdout);
  return report.feasible ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  obs::configure_from_env();
  // Chaos runs: NEUROPLAN_FAULT_SITES arms fault points (no-op unless
  // built with NEUROPLAN_FAULTS=ON; crash-forensics CI relies on it).
  util::FaultInjector::instance().configure_from_env();
  // Flight-recorder provenance: the full command line, captured before
  // any stripping, so a post-mortem shows exactly how the run started.
  {
    std::string cmdline;
    for (int i = 0; i < argc; ++i) {
      if (i > 0) cmdline += ' ';
      cmdline += argv[i];
    }
    obs::set_run_annotation(cmdline.c_str());
  }
  // Strip the global observability flags before command dispatch so
  // subcommand parsers (which reject unknown flags) never see them.
  std::vector<char*> args;
  args.reserve(argc);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics-out" || arg == "--trace-out" ||
        arg == "--flight-record-out") {
      if (i + 1 >= argc) return usage();
      if (arg == "--metrics-out") {
        obs::set_metrics_out(argv[++i]);
      } else if (arg == "--trace-out") {
        obs::set_trace_out(argv[++i]);
      } else {
        obs::set_flight_record_path(argv[++i]);
      }
      continue;
    }
    args.push_back(argv[i]);
  }
  obs::install_crash_handlers();
  argc = static_cast<int>(args.size());
  argv = args.data();
  if (argc < 2) return usage();
  int rc = 2;
  try {
    const std::string command = argv[1];
    if (command == "generate") rc = cmd_generate(argc, argv);
    else if (command == "show") rc = cmd_show(argc, argv);
    else if (command == "evaluate") rc = cmd_evaluate(argc, argv);
    else if (command == "plan") rc = cmd_plan(argc, argv);
    else if (command == "train") rc = cmd_train(argc, argv);
    else if (command == "report") rc = cmd_report(argc, argv);
    else rc = usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    // The process survives (clean error exit), but the run is dead —
    // dump the black box before the evidence goes away with it.
    obs::dump_flight_record("unhandled_exception", "main", e.what(),
                            /*fatal=*/true);
    rc = 1;
  }
  obs::shutdown();  // write the trace file + final metrics record
  return rc;
}
