#include "util/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace np {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_or_cross(double value, bool valid, int precision) {
  return valid ? fmt_double(value, precision) : std::string("x");
}

}  // namespace np
