#include "plan/parallel_evaluator.hpp"

#include <atomic>
#include <functional>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/fault.hpp"

namespace np::plan {

ParallelPlanEvaluator::ParallelPlanEvaluator(const topo::Topology& topology,
                                             int threads)
    : topology_(topology), threads_(threads) {
  if (threads < 1) {
    throw std::invalid_argument("ParallelPlanEvaluator: threads must be >= 1");
  }
  topology_.validate();
  threads_ = std::min(threads, num_scenarios());
  cached_.resize(threads_);
  groups_.resize(threads_);
  for (int scenario = 0; scenario < num_scenarios(); ++scenario) {
    groups_[scenario % threads_].push_back(scenario);
  }
  for (int t = 0; t < threads_; ++t) cached_[t].resize(groups_[t].size());
  lp_options_.max_iterations = 1000000;
  pool_ = std::make_unique<util::ThreadPool>(threads_ - 1);
}

CheckResult ParallelPlanEvaluator::check(const std::vector<int>& total_units) {
  if (total_units.size() != static_cast<std::size_t>(topology_.num_links())) {
    throw std::invalid_argument("ParallelPlanEvaluator::check: size mismatch");
  }
  for (int units : total_units) {
    if (units < 0) {
      throw std::invalid_argument("ParallelPlanEvaluator::check: negative units");
    }
  }

  std::vector<int> violated_per_thread(threads_, -1);
  std::vector<double> unserved_per_thread(threads_, 0.0);
  std::vector<Verdict> verdict_per_thread(threads_, Verdict::kFeasible);
  std::vector<long> iterations_per_thread(threads_, 0);
  std::vector<double> seconds_per_thread(threads_, 0.0);
  std::vector<int> deadline_hits_per_thread(threads_, 0);
  // Cooperative cancellation: the first worker that throws flips the
  // flag, the others stop before their next scenario, run_all joins
  // everything and rethrows the first exception. Without this a slow
  // group would keep solving LPs long after the check is doomed.
  std::atomic<bool> cancel{false};

  NP_SPAN("plan.parallel_check");
  static obs::Counter& checks = obs::counter("plan.parallel_checks");
  static obs::Counter& scenarios_checked = obs::counter("plan.scenarios_checked");
  checks.add(1);
  scenarios_checked.add(num_scenarios());

  auto worker = [&](int t) {
    // One span per scenario group — on the pool's worker threads, so a
    // trace shows the per-thread overlap (and any straggler group).
    NP_SPAN("plan.scenario_group");
    // Watchdog liveness: one beat per scenario. A worker wedged inside
    // a single scenario solve (or a stall fault) goes quiet here and
    // the monitor flags it with this thread's span stack.
    obs::HeartbeatScope heartbeat("hb.plan_worker");
    try {
      for (std::size_t k = 0; k < groups_[t].size(); ++k) {
        if (cancel.load(std::memory_order_relaxed)) return;
        heartbeat.beat(static_cast<long>(k));
        NP_FAULT_POINT("plan.worker");
        const int scenario = groups_[t][k];
        if (!cached_[t][k].has_value()) {
          cached_[t][k] =
              build_scenario_lp(topology_, scenario, /*aggregate=*/true);
        }
        ScenarioLp& lp = *cached_[t][k];
        set_plan_capacities(lp, topology_, total_units);
        lp::SimplexOptions options = lp_options_;
        // Same cold/warm pricing split as the serial stateful
        // evaluator: devex only pays off on the first (cold) solve.
        options.pricing = lp.has_basis ? lp::PricingRule::kDantzig
                                       : lp::PricingRule::kDevex;
        if (scenario_budget_seconds_ > 0.0) {
          options.deadline = util::Deadline::after_seconds(scenario_budget_seconds_);
        }
        const ScenarioCheck check = solve_scenario(lp, options, /*warm=*/true);
        iterations_per_thread[t] += check.lp_iterations;
        seconds_per_thread[t] += check.solve_seconds;
        if (check.deadline_hit) ++deadline_hits_per_thread[t];
        if (!check.feasible &&
            (violated_per_thread[t] < 0 || scenario < violated_per_thread[t])) {
          violated_per_thread[t] = scenario;
          unserved_per_thread[t] = check.unserved_gbps;
          verdict_per_thread[t] = check.verdict;
        }
      }
    } catch (...) {
      cancel.store(true, std::memory_order_relaxed);
      throw;
    }
  };

  std::vector<std::function<void()>> tasks;
  tasks.reserve(threads_);
  for (int t = 0; t < threads_; ++t) tasks.push_back([&worker, t] { worker(t); });
  pool_->run_all(std::move(tasks));

  CheckResult result;
  result.verdict = Verdict::kFeasible;
  result.scenarios_checked = num_scenarios();
  for (int t = 0; t < threads_; ++t) {
    result.lp_iterations += iterations_per_thread[t];
    result.lp_seconds += seconds_per_thread[t];
    result.deadline_hits += deadline_hits_per_thread[t];
    if (violated_per_thread[t] >= 0 &&
        (result.violated_scenario < 0 ||
         violated_per_thread[t] < result.violated_scenario)) {
      result.violated_scenario = violated_per_thread[t];
      result.unserved_gbps = unserved_per_thread[t];
      result.verdict = verdict_per_thread[t];
    }
  }
  result.feasible = result.violated_scenario < 0;
  total_lp_iterations_ += result.lp_iterations;
  total_lp_seconds_ += result.lp_seconds;
  return result;
}

}  // namespace np::plan
