file(REMOVE_RECURSE
  "CMakeFiles/np_nn.dir/actor_critic.cpp.o"
  "CMakeFiles/np_nn.dir/actor_critic.cpp.o.d"
  "CMakeFiles/np_nn.dir/gat.cpp.o"
  "CMakeFiles/np_nn.dir/gat.cpp.o.d"
  "CMakeFiles/np_nn.dir/gcn.cpp.o"
  "CMakeFiles/np_nn.dir/gcn.cpp.o.d"
  "CMakeFiles/np_nn.dir/linear.cpp.o"
  "CMakeFiles/np_nn.dir/linear.cpp.o.d"
  "CMakeFiles/np_nn.dir/mlp.cpp.o"
  "CMakeFiles/np_nn.dir/mlp.cpp.o.d"
  "libnp_nn.a"
  "libnp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
