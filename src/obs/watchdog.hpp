// Worker watchdog: long-running workers publish heartbeats through the
// flight recorder's per-thread records; a monitor thread flags threads
// whose heartbeat stops advancing.
//
//   void worker_body() {
//     obs::HeartbeatScope hb("hb.plan_worker");
//     for (...) { hb.beat(done); ... }
//   }  // scope exit restores the enclosing heartbeat (if any)
//
// A heartbeat is an *opt-in* liveness contract: only threads with an
// active HeartbeatScope are monitored, so blocking on a queue or a
// condition variable (idle pool workers) never trips the watchdog —
// scopes wrap the sections that are supposed to make progress (rollout
// step loops, parallel-evaluator scenario loops, simplex iteration
// loops, the epoch loop). Scopes nest: the innermost wins, and scope
// exit re-stamps the outer scope's timestamp so it does not inherit
// the inner section's elapsed time.
//
// On a stall the monitor records a kStall flight-recorder event
// carrying the stuck thread's heartbeat name and progress, logs the
// thread's active span stack to stderr, bumps watchdog.stalls, and —
// when configured — escalates to a non-fatal flight-record dump. The
// run is NOT killed: a stall is a symptom report, and the stalled
// thread may still recover (e.g. an LP solve that eventually returns).
#pragma once

#include "obs/flight.hpp"

namespace np::obs {

/// RAII heartbeat publisher. `name` must outlive the process (string
/// literal). Cost: a few relaxed stores at construction/destruction
/// and per beat().
class HeartbeatScope {
 public:
  explicit HeartbeatScope(const char* name);
  ~HeartbeatScope();
  HeartbeatScope(const HeartbeatScope&) = delete;
  HeartbeatScope& operator=(const HeartbeatScope&) = delete;

  /// Publish progress (monotone per scope by convention; any *change*
  /// re-arms the stall timer). progress < 0 increments the last value.
  void beat(long progress = -1);

 private:
  fr_detail::ThreadRecord* record_;
  const char* prev_name_;
  long prev_progress_;
};

struct WatchdogConfig {
  /// A monitored thread whose heartbeat timestamp is older than this
  /// is stalled. Seconds.
  double stall_seconds = 30.0;
  /// Monitor poll period; <= 0 derives stall_seconds / 4 clamped to
  /// [10ms, 5s].
  double poll_seconds = 0.0;
  /// Escalate each new stall to a non-fatal flight-record dump (needs
  /// an armed path; see set_flight_record_path).
  bool dump_on_stall = false;
};

class Watchdog {
 public:
  static Watchdog& instance();

  /// Start (or restart with a new config) the monitor thread.
  void start(const WatchdogConfig& config);
  /// Stop and join the monitor thread. Safe to call when not running.
  void stop();
  bool running() const;

  /// Stalls flagged since process start (mirrors watchdog.stalls).
  long stalls_flagged() const;

 private:
  Watchdog() = default;
  struct Impl;
  Impl& impl() const;
};

/// NEUROPLAN_WATCHDOG=<stall seconds> starts the watchdog (unset, 0 or
/// negative leaves it off); NEUROPLAN_WATCHDOG_DUMP=1 sets
/// dump_on_stall. Called from obs::configure_from_env().
void configure_watchdog_from_env();

}  // namespace np::obs
