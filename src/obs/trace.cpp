#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <vector>

#include "util/mutex.hpp"

namespace np::obs {

namespace {

std::atomic<bool> g_tracing{false};

/// Per-thread cap: ~24 MB of events before a thread starts dropping.
/// Protects long traced runs from unbounded memory, with a counter so
/// truncation is visible instead of silent.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

struct TraceEvent {
  const char* name;  ///< string literal owned by the call site
  double ts_us;
  double dur_us;
};

}  // namespace

namespace detail {

struct ThreadBuffer {
  explicit ThreadBuffer(int tid) : tid(tid) {}
  // The owning thread appends under this (uncontended) mutex; the
  // exporter takes it only while copying the events out.
  util::Mutex mutex;
  std::vector<TraceEvent> events NP_GUARDED_BY(mutex);
  std::size_t dropped NP_GUARDED_BY(mutex) = 0;
  int tid;
};

}  // namespace detail

namespace {

/// Owns every thread's buffer (shared with the thread_local below) so
/// events outlive pool workers and the exporter sees all threads.
class TraceCollector {
 public:
  static TraceCollector& instance() {
    // Leaked: spans may fire from static destructors after main().
    static TraceCollector* g = new TraceCollector();
    return *g;
  }

  std::shared_ptr<detail::ThreadBuffer> register_thread()
      NP_EXCLUDES(mutex_) {
    util::LockGuard lock(mutex_);
    auto buffer = std::make_shared<detail::ThreadBuffer>(next_tid_++);
    buffers_.push_back(buffer);
    return buffer;
  }

  /// Snapshot of the registered buffers. NP_EXCLUDES: the exporter
  /// (flush path) calls this before taking any per-buffer lock, so the
  /// collector lock and the hot-path buffer locks are never nested.
  std::vector<std::shared_ptr<detail::ThreadBuffer>> buffers()
      NP_EXCLUDES(mutex_) {
    util::LockGuard lock(mutex_);
    return buffers_;
  }

 private:
  util::Mutex mutex_;
  std::vector<std::shared_ptr<detail::ThreadBuffer>> buffers_
      NP_GUARDED_BY(mutex_);
  int next_tid_ NP_GUARDED_BY(mutex_) = 1;  // tid 1 = first traced thread
};

/// "simplex.solve" -> "simplex"; names without a dot are their own
/// category.
std::size_t category_length(const char* name) {
  const char* dot = std::strchr(name, '.');
  return dot != nullptr ? static_cast<std::size_t>(dot - name)
                        : std::strlen(name);
}

}  // namespace

double now_us() {
  // The anchor is initialized on first use (thread-safe magic static);
  // all timestamps are relative to it, so traces start near ts=0.
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool tracing_enabled() { return g_tracing.load(std::memory_order_relaxed); }

void set_tracing_enabled(bool enabled) {
  if (enabled) now_us();  // pin the timebase before the first span
  g_tracing.store(enabled, std::memory_order_relaxed);
}

namespace detail {

ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer =
      TraceCollector::instance().register_thread();
  return *buffer;
}

void record_span(ThreadBuffer& buffer, const char* name, double start_us,
                 double end_us) {
  util::LockGuard lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(TraceEvent{name, start_us, end_us - start_us});
}

}  // namespace detail

void record_aggregate_span(const char* name, double duration_us) {
  if (!tracing_enabled() || duration_us <= 0.0) return;
  const double end = now_us();
  detail::record_span(detail::thread_buffer(), name,
                      std::max(0.0, end - duration_us), end);
}

std::size_t trace_event_count() {
  std::size_t total = 0;
  for (const auto& buffer : TraceCollector::instance().buffers()) {
    util::LockGuard lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

std::size_t trace_dropped_count() {
  std::size_t total = 0;
  for (const auto& buffer : TraceCollector::instance().buffers()) {
    util::LockGuard lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

void clear_trace() {
  for (const auto& buffer : TraceCollector::instance().buffers()) {
    util::LockGuard lock(buffer->mutex);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

std::size_t write_chrome_trace(std::FILE* out) {
  std::fputs("{\"traceEvents\":[", out);
  std::size_t written = 0;
  for (const auto& buffer : TraceCollector::instance().buffers()) {
    // Copy under the buffer lock, format outside it: formatting is the
    // slow part and must not stall a live thread's span recording.
    std::vector<TraceEvent> events;
    int tid = 0;
    {
      util::LockGuard lock(buffer->mutex);
      events = buffer->events;
      tid = buffer->tid;
    }
    for (const TraceEvent& e : events) {
      std::fprintf(out,
                   "%s\n{\"name\":\"%s\",\"cat\":\"%.*s\",\"ph\":\"X\","
                   "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d}",
                   written > 0 ? "," : "", e.name,
                   static_cast<int>(category_length(e.name)), e.name, e.ts_us,
                   e.dur_us, tid);
      ++written;
    }
  }
  std::fputs("\n]}\n", out);
  return written;
}

}  // namespace np::obs
