file(REMOVE_RECURSE
  "CMakeFiles/long_term_planning.dir/long_term_planning.cpp.o"
  "CMakeFiles/long_term_planning.dir/long_term_planning.cpp.o.d"
  "long_term_planning"
  "long_term_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_term_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
