// End-to-end planner tests: baselines and the two-stage NeuroPlan
// pipeline on the Figure 1 example and generator presets.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/neuroplan.hpp"
#include "plan/evaluator.hpp"
#include "topo/generator.hpp"

namespace np::core {
namespace {

topo::Topology preset_a() { return topo::make_preset('A'); }

rl::TrainConfig tiny_train(const topo::Topology& t, unsigned seed = 3) {
  rl::TrainConfig c = default_train_config(t, seed);
  c.epochs = 4;
  c.steps_per_epoch = 128;
  c.network.gcn_hidden = 16;
  c.network.mlp_hidden = {32};
  return c;
}

TEST(Greedy, ProducesFeasiblePlans) {
  for (char id : {'A', 'B'}) {
    topo::Topology t = topo::make_preset(id);
    PlanResult r = solve_greedy(t);
    EXPECT_TRUE(r.feasible) << id;
    EXPECT_GT(r.cost, 0.0) << id;
    PlanResult verified = verify_result(t, r);
    EXPECT_TRUE(verified.feasible) << id;
    EXPECT_DOUBLE_EQ(verified.cost, r.cost) << id;
  }
}

TEST(Ilp, SolvesPresetAOptimally) {
  topo::Topology t = preset_a();
  IlpConfig config;
  config.time_limit_seconds = 120.0;
  PlanResult r = solve_ilp(t, config);
  ASSERT_TRUE(r.feasible);
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(verify_result(t, r).feasible);
  // Exact optimum can never be beaten by the greedy design.
  PlanResult greedy = solve_greedy(t);
  EXPECT_LE(r.cost, greedy.cost + 1e-6);
}

TEST(Ilp, TimesOutGracefully) {
  topo::Topology t = topo::make_preset('C');
  IlpConfig config;
  config.time_limit_seconds = 0.2;
  PlanResult r = solve_ilp(t, config);
  EXPECT_TRUE(r.timed_out || r.feasible);  // tiny budget: expect the cross
}

TEST(IlpHeur, FindsFeasiblePlanOnPresets) {
  for (char id : {'A', 'B'}) {
    topo::Topology t = topo::make_preset(id);
    IlpHeurConfig config;
    config.time_limit_per_solve_seconds = 30.0;
    PlanResult r = solve_ilp_heur(t, config);
    ASSERT_TRUE(r.feasible) << id << " " << r.detail;
    EXPECT_TRUE(verify_result(t, r).feasible) << id;
  }
}

TEST(IlpHeur, CoarseUnitsCostAtLeastOptimal) {
  topo::Topology t = preset_a();
  PlanResult exact = solve_ilp(t, {});
  ASSERT_TRUE(exact.feasible);
  PlanResult heur = solve_ilp_heur(t, {});
  ASSERT_TRUE(heur.feasible);
  EXPECT_GE(heur.cost + 1e-6, exact.cost);
}

TEST(SecondStage, AlphaOneRecoversAtMostFirstStageCost) {
  topo::Topology t = preset_a();
  PlanResult greedy = solve_greedy(t);
  ASSERT_TRUE(greedy.feasible);
  PlanResult pruned = second_stage(t, greedy.added_units, 1.0, 120.0);
  ASSERT_TRUE(pruned.feasible) << pruned.detail;
  // The first-stage plan lies inside the pruned space, so the ILP can
  // only improve on it.
  EXPECT_LE(pruned.cost, greedy.cost + 1e-6);
  EXPECT_TRUE(verify_result(t, pruned).feasible);
}

TEST(SecondStage, LargerAlphaNeverHurts) {
  topo::Topology t = preset_a();
  PlanResult greedy = solve_greedy(t);
  ASSERT_TRUE(greedy.feasible);
  PlanResult a1 = second_stage(t, greedy.added_units, 1.0, 120.0);
  PlanResult a2 = second_stage(t, greedy.added_units, 2.0, 120.0);
  ASSERT_TRUE(a1.feasible);
  ASSERT_TRUE(a2.feasible);
  EXPECT_LE(a2.cost, a1.cost + 1e-6);
}

TEST(SecondStage, ValidatesArguments) {
  topo::Topology t = preset_a();
  std::vector<int> plan(t.num_links(), 1);
  EXPECT_THROW(second_stage(t, plan, 0.5), std::invalid_argument);
  EXPECT_THROW(second_stage(t, {1, 2}, 1.5), std::invalid_argument);
}

TEST(NeuroPlan, EndToEndPipeline) {
  topo::Topology t = preset_a();
  NeuroPlanConfig config;
  config.train = tiny_train(t);
  config.relax_factor = 2.0;
  config.ilp_time_limit_seconds = 120.0;
  NeuroPlanResult r = neuroplan(t, config);
  ASSERT_TRUE(r.first_stage.feasible) << r.first_stage.detail;
  ASSERT_TRUE(r.final.feasible) << r.final.detail;
  // Stage 2 searches a space containing the first-stage plan.
  EXPECT_LE(r.final.cost, r.first_stage.cost + 1e-6);
  EXPECT_TRUE(verify_result(t, r.final).feasible);
  EXPECT_FALSE(r.history.empty());
  EXPECT_GT(r.train_seconds, 0.0);
}

TEST(NeuroPlan, FinalCostBoundedByOptimal) {
  topo::Topology t = preset_a();
  PlanResult exact = solve_ilp(t, {});
  ASSERT_TRUE(exact.feasible);
  NeuroPlanConfig config;
  config.train = tiny_train(t);
  config.relax_factor = 1.5;
  NeuroPlanResult r = neuroplan(t, config);
  ASSERT_TRUE(r.final.feasible);
  // The pruned search space is a subset of the full one.
  EXPECT_GE(r.final.cost + 1e-6, exact.cost);
}

TEST(NeuroPlan, GreedyFallbackWhenRlBudgetTooSmall) {
  topo::Topology t = preset_a();
  NeuroPlanConfig config;
  config.train = tiny_train(t);
  config.train.epochs = 1;
  config.train.steps_per_epoch = 4;   // far too few to find a plan
  config.train.env.max_trajectory_steps = 2;
  config.fallback_to_greedy = true;
  NeuroPlanResult r = neuroplan(t, config);
  ASSERT_TRUE(r.first_stage.feasible);
  EXPECT_NE(r.first_stage.detail.find("greedy"), std::string::npos);
  EXPECT_TRUE(r.final.feasible);
}

TEST(NeuroPlan, BeatsHeuristicBaselineOnB) {
  // The paper's headline direction (Fig. 9): on topologies beyond A,
  // NeuroPlan's final plan costs less than the production-style
  // heuristic recipe's. Budgets here are generous enough that the
  // comparison is stable across machines.
  topo::Topology t = topo::make_preset('B');
  NeuroPlanConfig config;
  config.train = default_train_config(t, 7);
  config.train.epochs = 10;
  config.relax_factor = 1.5;
  config.ilp_time_limit_seconds = 60.0;
  config.ilp_relative_gap = 1e-2;
  const NeuroPlanResult np_result = neuroplan(t, config);
  ASSERT_TRUE(np_result.final.feasible);

  IlpHeurConfig heur_config;
  heur_config.time_limit_per_solve_seconds = 20.0;
  heur_config.relative_gap = 1e-2;
  const PlanResult heur = solve_ilp_heur(t, heur_config);
  ASSERT_TRUE(heur.feasible);

  EXPECT_LT(np_result.final.cost, heur.cost * 1.05)
      << "NeuroPlan " << np_result.final.cost << " vs heur " << heur.cost;
  // And the second stage improved (or matched) the first.
  EXPECT_LE(np_result.final.cost, np_result.first_stage.cost + 1e-6);
}

TEST(VerifyResult, CatchesInfeasiblePlans) {
  topo::Topology t = preset_a();
  PlanResult bogus;
  bogus.feasible = true;
  bogus.added_units.assign(t.num_links(), 0);
  bogus.cost = 0.0;
  // All-zero additions on the 25%-provisioned preset cannot satisfy the
  // demand under failures.
  PlanResult verified = verify_result(t, bogus);
  EXPECT_FALSE(verified.feasible);
  EXPECT_THROW(verify_result(t, PlanResult{.feasible = true,
                                           .timed_out = false,
                                           .added_units = {1},
                                           .cost = 0,
                                           .seconds = 0,
                                           .detail = ""}),
               std::invalid_argument);
}

TEST(DefaultTrainConfig, ScalesWithTopology) {
  topo::Topology a = topo::make_preset('A');
  topo::Topology d = topo::make_preset('D');
  const rl::TrainConfig ca = default_train_config(a);
  const rl::TrainConfig cd = default_train_config(d);
  EXPECT_LT(ca.env.max_units_per_step, cd.env.max_units_per_step);
  EXPECT_GE(ca.epochs, cd.epochs);
}

}  // namespace
}  // namespace np::core
