# Empty dependencies file for short_term_planning.
# This may be replaced when dependencies are built.
