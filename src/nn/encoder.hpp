// Common interface for graph encoders so the actor-critic can swap the
// GCN for the GAT the paper also evaluated (§4.2 "We have also
// experimented NeuroPlan with a Graph Attention Network").
#pragma once

#include <memory>
#include <vector>

#include "ad/tape.hpp"
#include "la/sparse.hpp"

namespace np::nn {

class GraphEncoder {
 public:
  virtual ~GraphEncoder() = default;

  /// features: (n x in) -> embedding (n x output_dim()). The adjacency
  /// is the normalized operator from topo::node_link_transform (its
  /// sparsity pattern, including self loops, defines the neighborhoods).
  virtual ad::Tensor forward(ad::Tape& tape,
                             std::shared_ptr<const la::CsrMatrix> adjacency,
                             ad::Tensor features) = 0;

  virtual std::vector<ad::Parameter*> parameters() = 0;
  virtual int output_dim() const = 0;
};

}  // namespace np::nn
