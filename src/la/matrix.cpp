#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace np::la {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  if ((rows == 0) != (cols == 0)) {
    throw std::invalid_argument("Matrix: one dimension zero but not both");
  }
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::row_vector(const std::vector<double>& data) {
  Matrix m(1, data.size());
  m.data_ = data;
  return m;
}

Matrix Matrix::col_vector(const std::vector<double>& data) {
  Matrix m(data.size(), 1);
  m.data_ = data;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

void Matrix::require_same_shape(const Matrix& other, const char* op) const {
  if (!same_shape(other)) {
    throw std::invalid_argument(std::string("Matrix::") + op + ": shape mismatch " +
                                shape_string() + " vs " + other.shape_string());
  }
}

Matrix& Matrix::operator+=(const Matrix& other) {
  require_same_shape(other, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  require_same_shape(other, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out = *this;
  out -= other;
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Matrix Matrix::operator-() const { return *this * -1.0; }

Matrix Matrix::matmul(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::matmul: inner dimension mismatch " +
                                shape_string() + " vs " + other.shape_string());
  }
  Matrix out(rows_, other.cols_, 0.0);
  // ikj order keeps the inner loop contiguous in both `other` and `out`;
  // for operands past the tile sizes, blocking over k and j keeps the
  // touched panel of `other` (tile_k x tile_j doubles) cache-resident
  // across all rows. Both paths accumulate each out(i, j) in strictly
  // ascending k order, so results are bit-identical regardless of shape.
  constexpr std::size_t kTileK = 64;
  constexpr std::size_t kTileJ = 128;
  const std::size_t n = rows_, kd = cols_, m = other.cols_;
  if (kd <= kTileK && m <= kTileJ) {
    for (std::size_t i = 0; i < n; ++i) {
      const double* arow = data() + i * kd;
      double* orow = out.data() + i * m;
      for (std::size_t k = 0; k < kd; ++k) {
        const double aik = arow[k];
        const double* brow = other.data() + k * m;
        for (std::size_t j = 0; j < m; ++j) orow[j] += aik * brow[j];
      }
    }
    NP_CHECK_FINITE(out.data(), out.size(), "Matrix::matmul");
    return out;
  }
  for (std::size_t jj = 0; jj < m; jj += kTileJ) {
    const std::size_t jend = std::min(m, jj + kTileJ);
    for (std::size_t kk = 0; kk < kd; kk += kTileK) {
      const std::size_t kend = std::min(kd, kk + kTileK);
      for (std::size_t i = 0; i < n; ++i) {
        const double* arow = data() + i * kd;
        double* orow = out.data() + i * m;
        for (std::size_t k = kk; k < kend; ++k) {
          const double aik = arow[k];
          const double* brow = other.data() + k * m;
          for (std::size_t j = jj; j < jend; ++j) orow[j] += aik * brow[j];
        }
      }
    }
  }
  NP_CHECK_FINITE(out.data(), out.size(), "Matrix::matmul");
  return out;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  require_same_shape(other, "hadamard");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::map(const std::function<double(double)>& fn) const {
  Matrix out = *this;
  for (double& x : out.data_) x = fn(x);
  return out;
}

Matrix Matrix::add_row_broadcast(const Matrix& row) const {
  if (row.rows_ != 1 || row.cols_ != cols_) {
    throw std::invalid_argument("Matrix::add_row_broadcast: need 1x" +
                                std::to_string(cols_) + ", got " + row.shape_string());
  }
  Matrix out = *this;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(r, c) += row(0, c);
  }
  return out;
}

Matrix Matrix::sum_rows() const {
  Matrix out(1, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(0, c) += (*this)(r, c);
  }
  return out;
}

Matrix Matrix::sum_cols() const {
  Matrix out(rows_, 1, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(r, 0) += (*this)(r, c);
  }
  return out;
}

double Matrix::sum() const {
  double total = 0.0;
  for (double x : data_) total += x;
  return total;
}

double Matrix::mean() const {
  if (data_.empty()) throw std::invalid_argument("Matrix::mean: empty matrix");
  return sum() / static_cast<double>(data_.size());
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::abs(x));
  return best;
}

bool Matrix::has_non_finite() const {
  return std::any_of(data_.begin(), data_.end(),
                     [](double x) { return !std::isfinite(x); });
}

std::string Matrix::shape_string() const {
  return std::to_string(rows_) + "x" + std::to_string(cols_);
}

Matrix vstack(const std::vector<const Matrix*>& parts) {
  if (parts.empty()) throw std::invalid_argument("vstack: no matrices");
  std::size_t rows = 0;
  const std::size_t cols = parts.front()->cols();
  for (const Matrix* part : parts) {
    if (part == nullptr) throw std::invalid_argument("vstack: null matrix");
    if (part->cols() != cols) {
      throw std::invalid_argument("vstack: column mismatch " + part->shape_string());
    }
    rows += part->rows();
  }
  Matrix out(rows, cols);
  double* dst = out.data();
  for (const Matrix* part : parts) {
    std::copy(part->data(), part->data() + part->size(), dst);
    dst += part->size();
  }
  return out;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double best = 0.0;
  for (std::size_t i = 0; i < a.flat().size(); ++i) {
    best = std::max(best, std::abs(a.flat()[i] - b.flat()[i]));
  }
  return best;
}

}  // namespace np::la
