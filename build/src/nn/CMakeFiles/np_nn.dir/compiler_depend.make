# Empty compiler generated dependencies file for np_nn.
# This may be replaced when dependencies are built.
