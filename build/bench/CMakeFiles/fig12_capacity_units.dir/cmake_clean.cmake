file(REMOVE_RECURSE
  "CMakeFiles/fig12_capacity_units.dir/fig12_capacity_units.cpp.o"
  "CMakeFiles/fig12_capacity_units.dir/fig12_capacity_units.cpp.o.d"
  "fig12_capacity_units"
  "fig12_capacity_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_capacity_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
