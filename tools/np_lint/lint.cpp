#include "np_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

namespace np::lint {

namespace fs = std::filesystem;

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << file << ':' << line << ": " << rule << ": ";
  if (warning) os << "warning: ";
  os << message;
  return os.str();
}

namespace detail {

FileViews make_views(const std::string& text) {
  enum class State {
    kNormal,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  FileViews views;
  std::string code_line;
  std::string token_line;
  State state = State::kNormal;
  std::string raw_delim;  // for R"delim( ... )delim"
  const std::size_t n = text.size();
  auto flush_line = [&] {
    views.code.push_back(code_line);
    views.tokens.push_back(token_line);
    code_line.clear();
    token_line.clear();
  };
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kNormal;
      flush_line();
      continue;
    }
    switch (state) {
      case State::kNormal:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          token_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          token_line += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (code_line.empty() ||
                    (!std::isalnum(static_cast<unsigned char>(code_line.back())) &&
                     code_line.back() != '_'))) {
          // Raw string literal: read the delimiter up to '('.
          raw_delim.clear();
          std::size_t j = i + 2;
          while (j < n && text[j] != '(' && text[j] != '\n') {
            raw_delim += text[j];
            ++j;
          }
          state = State::kRawString;
          code_line += c;
          token_line += c;
        } else if (c == '"') {
          state = State::kString;
          code_line += c;
          token_line += c;
        } else if (c == '\'') {
          state = State::kChar;
          code_line += c;
          token_line += c;
        } else {
          code_line += c;
          token_line += c;
        }
        break;
      case State::kLineComment:
        code_line += ' ';
        token_line += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kNormal;
          code_line += "  ";
          token_line += "  ";
          ++i;
        } else {
          code_line += ' ';
          token_line += ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0' && next != '\n') {
          code_line += c;
          code_line += next;
          token_line += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kNormal;
          code_line += c;
          token_line += c;
        } else {
          code_line += c;
          token_line += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0' && next != '\n') {
          code_line += c;
          code_line += next;
          token_line += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kNormal;
          code_line += c;
          token_line += c;
        } else {
          code_line += c;
          token_line += ' ';
        }
        break;
      case State::kRawString: {
        // End marker is )delim" — scan for it from here.
        const std::string end = ")" + raw_delim + "\"";
        if (text.compare(i, end.size(), end) == 0) {
          state = State::kNormal;
          for (char e : end) {
            code_line += e;
            token_line += e;
          }
          i += end.size() - 1;
        } else {
          code_line += c;
          token_line += ' ';  // raw-string contents are not tokens
        }
        break;
      }
    }
  }
  flush_line();  // final (possibly empty) line
  return views;
}

std::vector<std::pair<std::string, int>> read_registry(const fs::path& file) {
  std::ifstream in(file);
  if (!in) {
    throw std::runtime_error("np_lint: cannot read registry file " +
                             file.string());
  }
  std::vector<std::pair<std::string, int>> names;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Trim whitespace.
    const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
    while (!line.empty() && is_space(line.back())) line.pop_back();
    std::size_t start = 0;
    while (start < line.size() && is_space(line[start])) ++start;
    if (start > 0) line.erase(0, start);
    if (!line.empty()) names.emplace_back(line, line_no);
  }
  return names;
}

}  // namespace detail

namespace {

struct SourceFile {
  std::string display;   // <root-basename>/<relative-path>
  std::string relative;  // path relative to its scan root (generic form)
  bool is_header = false;
  detail::FileViews views;
};

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("np_lint: cannot read " + path.string());
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool is_source_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

std::vector<SourceFile> collect_files(const Options& options) {
  std::vector<SourceFile> files;
  for (const fs::path& root : options.scan_roots) {
    if (!fs::is_directory(root)) {
      throw std::runtime_error("np_lint: scan root is not a directory: " +
                               root.string());
    }
    const std::string base = root.filename().string();
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() && is_source_extension(entry.path())) {
        paths.push_back(entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& path : paths) {
      SourceFile file;
      file.relative = path.lexically_relative(root).generic_string();
      file.display = base + "/" + file.relative;
      const std::string ext = path.extension().string();
      file.is_header = ext == ".hpp" || ext == ".h";
      file.views = detail::make_views(read_file(path));
      files.push_back(std::move(file));
    }
  }
  return files;
}

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// All positions where `token` occurs as a whole word in `line`.
std::vector<std::size_t> find_word(const std::string& line,
                                   const std::string& token) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_word_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !is_word_char(line[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

struct NameUse {
  std::string name;
  std::string file;
  int line;
};

/// Extract the literal first-argument names of `call(...)` style macros
/// and functions: call sites look like `<call> ( "name"`, possibly with
/// the name on the following line, so the search runs over the joined
/// code view (\s in the pattern crosses newlines). Non-literal first
/// arguments (variables, parameters) are out of lexical reach and
/// skipped — the registries cover the literal names the dashboards use.
void extract_names(const SourceFile& file, const std::regex& call_re,
                   std::vector<NameUse>& out) {
  std::string joined;
  for (const std::string& line : file.views.code) {
    joined += line;
    joined += '\n';
  }
  auto begin = std::sregex_iterator(joined.begin(), joined.end(), call_re);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const auto offset = static_cast<std::size_t>(it->position(0));
    const int line = 1 + static_cast<int>(std::count(
                             joined.begin(), joined.begin() + offset, '\n'));
    out.push_back(NameUse{(*it)[2].str(), file.display, line});
  }
}

/// obs-nesting scan over one file: walk the token view's brace
/// structure while matching NP_SPAN call sites in the code view (the
/// two views are position-aligned by construction). A span opened at
/// brace depth d stays "active" until its enclosing block closes, so a
/// later span opened while it is active is its lexical child — the
/// same parent/child the RAII Span objects produce at runtime, as long
/// as the child's scope is lexically inside (true for nested blocks
/// and the in-function lambdas the thread pools run). A child with
/// declared parents must only ever appear under one of them.
void check_span_nesting(
    const SourceFile& file,
    const std::map<std::string, std::set<std::string>>& parents_of,
    const std::string& registry_name, std::vector<Diagnostic>& out) {
  static const std::regex kSpanRe("\\bNP_SPAN\\s*\\(\\s*\"([^\"]*)\"");
  std::string code, tokens;
  for (const std::string& line : file.views.code) {
    code += line;
    code += '\n';
  }
  for (const std::string& line : file.views.tokens) {
    tokens += line;
    tokens += '\n';
  }
  struct Site {
    std::size_t offset = 0;
    std::string name;
  };
  std::vector<Site> sites;
  auto begin = std::sregex_iterator(code.begin(), code.end(), kSpanRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    sites.push_back(
        Site{static_cast<std::size_t>(it->position(0)), (*it)[1].str()});
  }
  if (sites.empty()) return;

  struct Open {
    int depth = 0;
    std::string name;
  };
  std::vector<Open> stack;
  int depth = 0;
  std::size_t next_site = 0;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (next_site < sites.size() && sites[next_site].offset == i) {
      const Site& site = sites[next_site++];
      if (!stack.empty()) {
        const auto it = parents_of.find(site.name);
        if (it != parents_of.end() &&
            it->second.count(stack.back().name) == 0) {
          const int line = 1 + static_cast<int>(std::count(
                                   code.begin(),
                                   code.begin() + static_cast<long>(i), '\n'));
          std::string allowed;
          for (const std::string& parent : it->second) {
            if (!allowed.empty()) allowed += ", ";
            allowed += "\"" + parent + "\"";
          }
          out.push_back(Diagnostic{
              file.display, line, "obs-nesting",
              "span \"" + site.name + "\" opens under \"" + stack.back().name +
                  "\" but " + registry_name + " declares parent(s) " + allowed +
                  " — fix the call site or the hierarchy"});
        }
      }
      stack.push_back(Open{depth, site.name});
    }
    const char c = tokens[i];
    if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      while (!stack.empty() && stack.back().depth > depth) stack.pop_back();
    }
  }
}

/// np-check scan over one .cpp file: find out-of-line member-function
/// definitions (`Qualified::name(...) ... {`), extract each body via
/// the token view's brace structure, and flag bodies that contain no
/// NP_ASSERT / NP_CHECK_* contract. Purely lexical, so the matcher is
/// deliberately conservative: anything that does not look exactly like
/// a definition (assignments, calls, declarations, destructors) is
/// skipped rather than guessed at.
void check_np_check_coverage(const SourceFile& file,
                             std::vector<Diagnostic>& out) {
  // Qualified name followed by an open paren. Free functions are out of
  // scope on purpose — the rule targets class entry points, and a
  // qualified-name definition is lexically unambiguous enough to match.
  static const std::regex kDefRe(
      "([A-Za-z_]\\w*(?:::~?[A-Za-z_]\\w*)+)\\s*\\(");
  std::string code, tokens;
  for (const std::string& line : file.views.code) {
    code += line;
    code += '\n';
  }
  for (const std::string& line : file.views.tokens) {
    tokens += line;
    tokens += '\n';
  }
  const auto line_of = [&](std::size_t offset) {
    return 1 + static_cast<int>(
                   std::count(code.begin(),
                              code.begin() + static_cast<long>(offset), '\n'));
  };
  auto begin = std::sregex_iterator(code.begin(), code.end(), kDefRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (name.find("::~") != std::string::npos) continue;  // destructors
    const auto name_pos = static_cast<std::size_t>(it->position(0));
    const auto paren_pos =
        static_cast<std::size_t>(it->position(0) + it->length(0)) - 1;

    // Back-scan: the text between the previous statement/brace boundary
    // and the name must look like a declaration prefix (return type,
    // qualifiers, templates) — an '=', '(', '.', '"' or any operator
    // character means expression context, not a definition.
    // Preprocessor lines in the gap are ignored.
    std::size_t prefix_start = name_pos;
    while (prefix_start > 0) {
      const char c = code[prefix_start - 1];
      if (c == ';' || c == '{' || c == '}') break;
      --prefix_start;
    }
    bool prefix_ok = true;
    {
      std::istringstream prefix(code.substr(prefix_start, name_pos - prefix_start));
      std::string line;
      while (std::getline(prefix, line)) {
        std::size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos) continue;
        if (line[first] == '#') continue;  // preprocessor line
        for (std::size_t i = first; i < line.size(); ++i) {
          const char c = line[i];
          const bool ok = is_word_char(c) || std::isspace(static_cast<unsigned char>(c)) != 0 ||
                          c == ':' || c == '<' || c == '>' || c == ',' ||
                          c == '*' || c == '&' || c == '[' || c == ']';
          if (!ok) {
            prefix_ok = false;
            break;
          }
        }
        if (!prefix_ok) break;
      }
    }
    if (!prefix_ok) continue;

    // Find the parameter list's matching close paren (token view:
    // parens inside string literals are blanked).
    std::size_t pos = paren_pos;
    int paren_depth = 0;
    while (pos < tokens.size()) {
      if (tokens[pos] == '(') ++paren_depth;
      else if (tokens[pos] == ')' && --paren_depth == 0) break;
      ++pos;
    }
    if (pos >= tokens.size()) continue;
    ++pos;

    // Between the parameter list and the body: qualifiers, noexcept
    // clauses, trailing return types and constructor-initializer lists
    // are fine; a ';' means declaration, a '.' means chained call, and
    // anything else unexpected means this was not a definition.
    std::size_t body_start = std::string::npos;
    while (pos < tokens.size()) {
      const char c = tokens[pos];
      if (c == '{') {
        body_start = pos;
        break;
      }
      if (c == '(') {  // skip a group: noexcept(...), member-init args
        int group = 0;
        while (pos < tokens.size()) {
          if (tokens[pos] == '(') ++group;
          else if (tokens[pos] == ')' && --group == 0) break;
          ++pos;
        }
        if (pos >= tokens.size()) break;
        ++pos;
        continue;
      }
      const bool ok = is_word_char(c) ||
                      std::isspace(static_cast<unsigned char>(c)) != 0 ||
                      c == ':' || c == ',' || c == '<' || c == '>' ||
                      c == '-' || c == '&' || c == '*';
      if (!ok) break;  // ';' (declaration), '.' (call chain), '=', ...
      ++pos;
    }
    if (body_start == std::string::npos) continue;

    // Body = matching brace block in the token view.
    std::size_t body_end = body_start;
    int brace_depth = 0;
    while (body_end < tokens.size()) {
      if (tokens[body_end] == '{') ++brace_depth;
      else if (tokens[body_end] == '}' && --brace_depth == 0) break;
      ++body_end;
    }
    if (body_end >= tokens.size()) continue;
    const std::string body = tokens.substr(body_start, body_end - body_start);

    // Trivial bodies (accessors, forwarding shims) are exempt: fewer
    // than three statements rarely have a contract worth stating.
    if (std::count(body.begin(), body.end(), ';') < 3) continue;
    if (body.find("NP_ASSERT") != std::string::npos ||
        body.find("NP_CHECK") != std::string::npos) {
      continue;
    }
    const bool serving = file.relative.rfind("serve/", 0) == 0;
    out.push_back(Diagnostic{
        file.display, line_of(name_pos), "np-check",
        serving
            ? "serving entry point '" + name +
                  "' has no NP_ASSERT / NP_CHECK_* contract — serve/ "
                  "definitions face untrusted input and must validate it"
            : "'" + name +
                  "' has no NP_ASSERT / NP_CHECK_* contract — consider "
                  "stating the function's preconditions",
        /*warning=*/!serving});
  }
}

const char* wrapper_for(const std::string& token) {
  if (token == "std::lock_guard" || token == "std::unique_lock" ||
      token == "std::scoped_lock" || token == "std::shared_lock") {
    return "util::LockGuard";
  }
  if (token == "std::condition_variable" ||
      token == "std::condition_variable_any") {
    return "util::CondVar";
  }
  return "util::Mutex";
}

}  // namespace

std::vector<Diagnostic> run(const Options& options) {
  std::vector<Diagnostic> diagnostics;
  const std::vector<SourceFile> files = collect_files(options);

  // ---- obs-name + fault-site: literal names vs checked-in registries.
  struct NameRule {
    const char* rule;
    fs::path registry_file;
    std::regex call_re;
    std::vector<NameUse> uses;
    const char* unknown_hint;
    const char* stale_hint;
  };
  std::vector<NameRule> name_rules;
  if (!options.obs_names_file.empty()) {
    // HeartbeatScope declarations carry a variable name between the
    // type and the literal (`obs::HeartbeatScope hb("name")`), hence
    // the \s+\w+ alternative inside the call group.
    name_rules.push_back(NameRule{
        "obs-name", options.obs_names_file,
        std::regex("\\b(NP_SPAN|record_aggregate_span|obs::counter|"
                   "obs::gauge|obs::histogram|"
                   "obs::HeartbeatScope\\s+\\w+)\\s*\\(\\s*\"([^\"]*)\""),
        {},
        "register it or fix the call site so dashboards never dangle",
        "remove it or instrument the code"});
  }
  if (!options.fault_sites_file.empty()) {
    name_rules.push_back(NameRule{
        "fault-site", options.fault_sites_file,
        std::regex("\\b(NP_FAULT_POINT)\\s*\\(\\s*\"([^\"]*)\""),
        {},
        "register it so NEUROPLAN_FAULT_SITES chaos configs stay valid",
        "remove it or add the NP_FAULT_POINT call site back"});
  }
  // Span-nesting hierarchy: `parent > child` lines in obs_names.txt
  // declare the only spans a child may lexically open under. Parsed
  // here (and excluded from the plain-name registry) so the nesting
  // scan below can check call sites against them.
  struct NestEdge {
    std::string parent;
    std::string child;
    int line = 0;
  };
  std::vector<NestEdge> nest_edges;
  std::set<std::string> obs_known;
  std::string obs_registry_name;
  const auto trim = [](std::string s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
      s.pop_back();
    std::size_t start = 0;
    while (start < s.size() &&
           std::isspace(static_cast<unsigned char>(s[start])))
      ++start;
    return s.substr(start);
  };
  for (NameRule& rule : name_rules) {
    const bool is_obs = std::string(rule.rule) == "obs-name";
    for (const SourceFile& file : files) {
      extract_names(file, rule.call_re, rule.uses);
    }
    const auto registered = detail::read_registry(rule.registry_file);
    std::vector<std::pair<std::string, int>> plain_names;
    std::set<std::string> known;
    for (const auto& [name, line] : registered) {
      const std::size_t gt = name.find('>');
      if (gt != std::string::npos) {
        if (is_obs) {
          nest_edges.push_back(NestEdge{trim(name.substr(0, gt)),
                                        trim(name.substr(gt + 1)), line});
        }
        continue;  // hierarchy edges are not instrument names
      }
      known.insert(name);
      plain_names.emplace_back(name, line);
    }
    std::set<std::string> used;
    for (const NameUse& use : rule.uses) {
      used.insert(use.name);
      if (known.count(use.name) == 0) {
        diagnostics.push_back(
            Diagnostic{use.file, use.line, rule.rule,
                       "name \"" + use.name + "\" is not in " +
                           rule.registry_file.filename().string() + " — " +
                           rule.unknown_hint});
      }
    }
    for (const auto& [name, line] : plain_names) {
      if (used.count(name) == 0) {
        diagnostics.push_back(
            Diagnostic{rule.registry_file.filename().string(), line, rule.rule,
                       "registered name \"" + name +
                           "\" has no call site in the scanned sources — " +
                           rule.stale_hint});
      }
    }
    if (is_obs) {
      obs_known = known;
      obs_registry_name = rule.registry_file.filename().string();
    }
  }

  // ---- obs-nesting: declared span hierarchy vs lexical call sites.
  // An edge whose endpoints are not registered span names would never
  // fire — a silent typo — so the registry is validated first.
  std::map<std::string, std::set<std::string>> parents_of;
  for (const NestEdge& edge : nest_edges) {
    for (const std::string* end : {&edge.parent, &edge.child}) {
      if (obs_known.count(*end) == 0) {
        diagnostics.push_back(Diagnostic{
            obs_registry_name, edge.line, "obs-nesting",
            "hierarchy edge \"" + edge.parent + " > " + edge.child +
                "\" references \"" + *end +
                "\" which is not a registered name"});
      }
    }
    parents_of[edge.child].insert(edge.parent);
  }
  if (!parents_of.empty()) {
    for (const SourceFile& file : files) {
      check_span_nesting(file, parents_of, obs_registry_name, diagnostics);
    }
  }

  // ---- raw-mutex: annotated wrappers only, outside util/.
  static const std::vector<std::string> kRawMutexTokens = {
      "std::mutex",
      "std::recursive_mutex",
      "std::timed_mutex",
      "std::recursive_timed_mutex",
      "std::shared_mutex",
      "std::shared_timed_mutex",
      "std::condition_variable",
      "std::condition_variable_any",
      "std::lock_guard",
      "std::unique_lock",
      "std::scoped_lock",
      "std::shared_lock",
  };
  for (const SourceFile& file : files) {
    if (file.relative.rfind("util/", 0) == 0) continue;  // wrappers live here
    for (std::size_t i = 0; i < file.views.tokens.size(); ++i) {
      for (const std::string& token : kRawMutexTokens) {
        if (!find_word(file.views.tokens[i], token).empty()) {
          diagnostics.push_back(Diagnostic{
              file.display, static_cast<int>(i) + 1, "raw-mutex",
              "raw " + token + " outside util/ — use " + wrapper_for(token) +
                  " (util/mutex.hpp) so clang thread-safety analysis sees "
                  "the lock"});
        }
      }
    }
  }

  // ---- raw-assert: contracts go through NP_ASSERT / NP_CHECK_*.
  for (const SourceFile& file : files) {
    if (file.relative == "util/check.hpp") continue;
    for (std::size_t i = 0; i < file.views.tokens.size(); ++i) {
      const std::string& line = file.views.tokens[i];
      for (std::size_t pos : find_word(line, "assert")) {
        // Word-boundary search already excludes static_assert and
        // NP_ASSERT; require a call — `assert` as part of a comment was
        // blanked, `assert` as an identifier without '(' is not the
        // macro.
        std::size_t after = pos + 6;
        while (after < line.size() && line[after] == ' ') ++after;
        if (after < line.size() && line[after] == '(') {
          diagnostics.push_back(Diagnostic{
              file.display, static_cast<int>(i) + 1, "raw-assert",
              "raw assert() outside util/check.hpp — use NP_ASSERT / "
              "NP_CHECK_* so Release semantics stay uniform"});
        }
      }
      if (line.find("<cassert>") != std::string::npos ||
          line.find("<assert.h>") != std::string::npos) {
        diagnostics.push_back(Diagnostic{
            file.display, static_cast<int>(i) + 1, "raw-assert",
            "#include <cassert> outside util/check.hpp — contracts go "
            "through util/check.hpp"});
      }
    }
  }

  // ---- include-hygiene: project-relative quoted includes + #pragma once.
  static const std::regex kIncludeRe("^\\s*#\\s*include\\s+\"([^\"]+)\"");
  for (const SourceFile& file : files) {
    bool has_pragma_once = false;
    for (std::size_t i = 0; i < file.views.code.size(); ++i) {
      const std::string& line = file.views.code[i];
      if (line.find("#pragma once") != std::string::npos) {
        has_pragma_once = true;
      }
      std::smatch match;
      if (!std::regex_search(line, match, kIncludeRe)) continue;
      const std::string inc = match[1].str();
      const int line_no = static_cast<int>(i) + 1;
      if (inc.find("..") != std::string::npos) {
        diagnostics.push_back(Diagnostic{
            file.display, line_no, "include-hygiene",
            "relative-parent include \"" + inc +
                "\" — includes must be project-relative"});
        continue;
      }
      if (inc.rfind("build/", 0) == 0) {
        diagnostics.push_back(Diagnostic{
            file.display, line_no, "include-hygiene",
            "include \"" + inc + "\" reaches into the build tree"});
        continue;
      }
      bool resolves = false;
      for (const fs::path& root : options.include_roots) {
        if (fs::exists(root / inc)) {
          resolves = true;
          break;
        }
      }
      if (!resolves) {
        diagnostics.push_back(Diagnostic{
            file.display, line_no, "include-hygiene",
            "include \"" + inc +
                "\" does not resolve under any include root — quoted "
                "includes must be project-relative"});
      }
    }
    if (file.is_header && !has_pragma_once) {
      diagnostics.push_back(Diagnostic{file.display, 1, "include-hygiene",
                                       "header is missing #pragma once"});
    }
  }

  // ---- np-check: contract coverage for out-of-line definitions.
  // Headers are exempt: inline accessors and template bodies live there,
  // and the rule targets the .cpp entry points that do the real work.
  for (const SourceFile& file : files) {
    if (file.is_header) continue;
    check_np_check_coverage(file, diagnostics);
  }

  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return diagnostics;
}

}  // namespace np::lint
