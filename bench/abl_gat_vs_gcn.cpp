// Ablation: GCN vs GAT encoder (§4.2).
//
// The paper: "GATs did not perform as well as GCNs for our problem.
// Moreover, GAT has larger memory requirement." This bench trains both
// encoders on the A-x variants with the same budget and reports
// First-stage cost normalized to the exact optimum, plus per-epoch
// wall time (the compute/memory proxy).
#include "bench_common.hpp"
#include "core/baselines.hpp"
#include "rl/trainer.hpp"

int main() {
  using namespace np;
  bench::print_header(
      "Ablation: GCN vs GAT encoder",
      "First-stage cost normalized to optimal; seconds per epoch in braces.");

  const topo::Topology base = topo::make_preset('A');
  Table table({"variant", "GCN", "GCN s/epoch", "GAT", "GAT s/epoch"});
  for (double fraction : {0.0, 1.0}) {
    const topo::Topology variant = topo::scale_initial_capacity(base, fraction);
    core::IlpConfig ilp_config;
    ilp_config.time_limit_seconds = bench::ilp_time_budget();
    const core::PlanResult exact = core::solve_ilp(variant, ilp_config);
    const bool have_opt = exact.feasible && !exact.timed_out;

    std::vector<std::string> row = {"A-" + fmt_double(fraction, 1)};
    for (nn::GnnType type : {nn::GnnType::kGcn, nn::GnnType::kGat}) {
      rl::TrainConfig config =
          bench::bench_train_config(variant, 'A', bench::bench_seed());
      config.network.gnn_type = type;
      rl::A2cTrainer trainer(variant, config);
      const auto history = trainer.train();
      trainer.greedy_rollout();
      double seconds = 0.0;
      for (const rl::EpochStats& s : history) seconds += s.seconds;
      row.push_back(fmt_or_cross(trainer.best_cost() / exact.cost,
                                 have_opt && trainer.has_feasible_plan(), 3));
      row.push_back(fmt_double(seconds / history.size(), 2));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nExpected shape (paper): GAT no better than GCN on final cost\n"
              "and more expensive per step.\n");
  return 0;
}
