// Crash-safe checkpoint/resume: the atomic snapshot container rejects
// every class of torn or tampered file with a clean error, and a
// trainer killed mid-run and resumed from its last checkpoint finishes
// bit-for-bit identical to the uninterrupted run.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ad/snapshot.hpp"
#include "la/matrix.hpp"
#include "rl/trainer.hpp"
#include "topo/generator.hpp"
#include "util/rng.hpp"

namespace np::rl {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---- snapshot container ----

TEST(Snapshot, RoundTripsBinaryPayload) {
  const std::string path = temp_path("snap_roundtrip.state");
  std::string payload = "line one\nline two\n";
  payload.push_back('\0');
  payload += "binary\xff\xfe tail";
  ad::write_snapshot_file(path, "unit", payload);
  EXPECT_EQ(ad::read_snapshot_file(path, "unit"), payload);
  // The temp file of the write-rename dance must not survive success.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(Snapshot, OverwriteReplacesAtomically) {
  const std::string path = temp_path("snap_overwrite.state");
  ad::write_snapshot_file(path, "unit", "first");
  ad::write_snapshot_file(path, "unit", "second");
  EXPECT_EQ(ad::read_snapshot_file(path, "unit"), "second");
}

TEST(Snapshot, MissingFileThrows) {
  EXPECT_THROW(ad::read_snapshot_file(temp_path("snap_nope.state"), "unit"),
               std::runtime_error);
}

TEST(Snapshot, GarbageFileThrows) {
  const std::string path = temp_path("snap_garbage.state");
  spit(path, "not a snapshot at all\n\x01\x02\x03");
  EXPECT_THROW(ad::read_snapshot_file(path, "unit"), std::runtime_error);
}

TEST(Snapshot, TruncatedPayloadThrows) {
  const std::string path = temp_path("snap_truncated.state");
  ad::write_snapshot_file(path, "unit", "a payload long enough to truncate");
  const std::string bytes = slurp(path);
  spit(path, bytes.substr(0, bytes.size() - 5));
  EXPECT_THROW(ad::read_snapshot_file(path, "unit"), std::runtime_error);
}

TEST(Snapshot, TrailingBytesThrow) {
  const std::string path = temp_path("snap_trailing.state");
  ad::write_snapshot_file(path, "unit", "payload");
  spit(path, slurp(path) + "extra");
  EXPECT_THROW(ad::read_snapshot_file(path, "unit"), std::runtime_error);
}

TEST(Snapshot, FlippedPayloadByteFailsChecksum) {
  const std::string path = temp_path("snap_bitflip.state");
  ad::write_snapshot_file(path, "unit", "payload payload payload");
  std::string bytes = slurp(path);
  bytes[bytes.size() - 3] ^= 0x20;
  spit(path, bytes);
  EXPECT_THROW(ad::read_snapshot_file(path, "unit"), std::runtime_error);
}

TEST(Snapshot, KindMismatchThrows) {
  const std::string path = temp_path("snap_kind.state");
  ad::write_snapshot_file(path, "trainer", "payload");
  EXPECT_THROW(ad::read_snapshot_file(path, "other"), std::runtime_error);
}

TEST(Snapshot, UnsupportedVersionThrows) {
  const std::string path = temp_path("snap_version.state");
  const std::string payload = "p";
  std::ostringstream out;
  out << "neuroplan-snapshot " << (ad::kSnapshotVersion + 1) << " unit "
      << payload.size() << " " << std::hex << ad::fnv1a64(payload) << "\n"
      << payload;
  spit(path, out.str());
  EXPECT_THROW(ad::read_snapshot_file(path, "unit"), std::runtime_error);
}

TEST(Snapshot, BadKindRejectedAtWrite) {
  EXPECT_THROW(
      ad::write_snapshot_file(temp_path("snap_badkind.state"), "has space", "p"),
      std::invalid_argument);
}

TEST(Snapshot, FailedWriteLeavesPreviousSnapshotIntact) {
  const std::string path = temp_path("snap_atomic.state");
  ad::write_snapshot_file(path, "unit", "the good state");
  // Make the temp slot unopenable: a directory squatting on path+".tmp"
  // forces fopen to fail, which must leave the destination untouched.
  std::filesystem::create_directory(path + ".tmp");
  EXPECT_THROW(ad::write_snapshot_file(path, "unit", "the doomed state"),
               std::runtime_error);
  EXPECT_EQ(ad::read_snapshot_file(path, "unit"), "the good state");
  std::filesystem::remove(path + ".tmp");
}

TEST(Snapshot, FuzzRandomBytesAlwaysThrowCleanly) {
  Rng rng(20260805);
  const std::string path = temp_path("snap_fuzz.state");
  // A valid header prefix followed by noise probes the parser's
  // deepest branches; pure noise probes the shallow ones.
  const std::string prefix = "neuroplan-snapshot 1 trainer ";
  for (int round = 0; round < 200; ++round) {
    std::string bytes;
    if (round % 2 == 0) bytes = prefix;
    const std::size_t n = rng.uniform_index(256);
    for (std::size_t i = 0; i < n; ++i) {
      bytes.push_back(static_cast<char>(rng.uniform_index(256)));
    }
    spit(path, bytes);
    EXPECT_THROW(ad::read_snapshot_file(path, "trainer"), std::runtime_error)
        << "round " << round;
  }
}

// ---- trainer checkpoint/resume ----

topo::Topology small_topology() { return topo::make_preset('A'); }

TrainConfig small_config() {
  TrainConfig c;
  c.env.max_units_per_step = 4;
  c.env.max_trajectory_steps = 200;
  c.network.gcn_layers = 2;
  c.network.gcn_hidden = 16;
  c.network.mlp_hidden = {32, 32};
  c.epochs = 4;
  c.steps_per_epoch = 128;
  c.chunk_steps = 32;
  c.seed = 3;
  return c;
}

void expect_parameters_identical(A2cTrainer& a, A2cTrainer& b) {
  auto pa = a.network().all_parameters();
  auto pb = b.network().all_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(la::max_abs_diff(pa[i]->value, pb[i]->value), 0.0)
        << pa[i]->name;
    EXPECT_DOUBLE_EQ(la::max_abs_diff(pa[i]->adam_m, pb[i]->adam_m), 0.0)
        << pa[i]->name;
    EXPECT_DOUBLE_EQ(la::max_abs_diff(pa[i]->adam_v, pb[i]->adam_v), 0.0)
        << pa[i]->name;
  }
}

TEST(Checkpoint, KillAndResumeIsBitIdentical) {
  const topo::Topology t = small_topology();
  const TrainConfig config = small_config();

  // Reference: 4 epochs, never interrupted.
  A2cTrainer reference(t, config);
  const auto ref_history = reference.train();
  ASSERT_EQ(ref_history.size(), 4u);

  // "Killed" run: 2 epochs, checkpoint, process dies (trainer dropped).
  const std::string path = temp_path("trainer_kill.state");
  {
    TrainConfig first_half = config;
    first_half.epochs = 2;
    A2cTrainer killed(t, first_half);
    killed.train();
    killed.save_checkpoint(path);
  }

  // Fresh process: construct from scratch, resume, finish the run.
  A2cTrainer resumed(t, config);
  resumed.resume_from_checkpoint(path);
  EXPECT_EQ(resumed.epochs_completed(), 2);
  const auto tail = resumed.train();
  ASSERT_EQ(tail.size(), 2u);

  // Epochs 3 and 4 must match the uninterrupted run exactly.
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const EpochStats& r = ref_history[2 + i];
    EXPECT_EQ(tail[i].epoch, r.epoch);
    EXPECT_EQ(tail[i].steps, r.steps);
    EXPECT_EQ(tail[i].trajectories, r.trajectories);
    EXPECT_EQ(tail[i].feasible_trajectories, r.feasible_trajectories);
    EXPECT_DOUBLE_EQ(tail[i].mean_return, r.mean_return);
    EXPECT_DOUBLE_EQ(tail[i].best_cost_in_epoch, r.best_cost_in_epoch);
    EXPECT_DOUBLE_EQ(tail[i].best_cost_so_far, r.best_cost_so_far);
  }
  EXPECT_DOUBLE_EQ(resumed.best_cost(), reference.best_cost());
  EXPECT_EQ(resumed.best_added_units(), reference.best_added_units());
  expect_parameters_identical(resumed, reference);
}

TEST(Checkpoint, KillAndResumeIsBitIdenticalWithOwnedWorkers) {
  const topo::Topology t = small_topology();
  TrainConfig config = small_config();
  config.epochs = 2;
  config.rollout_workers = 3;

  A2cTrainer reference(t, config);
  const auto ref_history = reference.train();
  ASSERT_EQ(ref_history.size(), 2u);

  const std::string path = temp_path("trainer_kill_workers.state");
  {
    TrainConfig first_half = config;
    first_half.epochs = 1;
    A2cTrainer killed(t, first_half);
    killed.train();
    killed.save_checkpoint(path);
  }

  A2cTrainer resumed(t, config);
  resumed.resume_from_checkpoint(path);
  const auto tail = resumed.train();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_DOUBLE_EQ(tail[0].mean_return, ref_history[1].mean_return);
  EXPECT_EQ(tail[0].trajectories, ref_history[1].trajectories);
  EXPECT_DOUBLE_EQ(resumed.best_cost(), reference.best_cost());
  expect_parameters_identical(resumed, reference);
}

TEST(Checkpoint, TrainWritesPeriodicCheckpoints) {
  const topo::Topology t = small_topology();
  TrainConfig config = small_config();
  config.epochs = 2;
  config.checkpoint_every = 1;
  config.checkpoint_path = temp_path("trainer_periodic.state");
  A2cTrainer trainer(t, config);
  trainer.train();
  // The last save happened after epoch 2; a fresh trainer resumes there.
  A2cTrainer resumed(t, config);
  resumed.resume_from_checkpoint(config.checkpoint_path);
  EXPECT_EQ(resumed.epochs_completed(), 2);
  EXPECT_DOUBLE_EQ(resumed.best_cost(), trainer.best_cost());
  expect_parameters_identical(resumed, trainer);
}

TEST(Checkpoint, ResumeRejectsMismatchedConfig) {
  const topo::Topology t = small_topology();
  TrainConfig config = small_config();
  config.epochs = 1;
  const std::string path = temp_path("trainer_mismatch.state");
  {
    A2cTrainer writer(t, config);
    writer.train();
    writer.save_checkpoint(path);
  }
  TrainConfig other = config;
  other.seed = config.seed + 1;  // different RNG stream => divergent resume
  A2cTrainer reader(t, other);
  EXPECT_THROW(reader.resume_from_checkpoint(path), std::runtime_error);
}

TEST(Checkpoint, ResumeRejectsCorruptedPayload) {
  const topo::Topology t = small_topology();
  TrainConfig config = small_config();
  config.epochs = 1;
  const std::string path = temp_path("trainer_corrupt.state");
  {
    A2cTrainer writer(t, config);
    writer.train();
    writer.save_checkpoint(path);
  }
  // Rewrite with a syntactically valid container holding a mangled
  // payload: the container checksum passes, the trainer parser must
  // still reject it.
  std::string payload = ad::read_snapshot_file(path, "trainer");
  payload.replace(0, 11, "fingerprynt");
  ad::write_snapshot_file(path, "trainer", payload);
  A2cTrainer reader(t, config);
  EXPECT_THROW(reader.resume_from_checkpoint(path), std::runtime_error);
}

TEST(Checkpoint, ResumeRejectsTruncatedPayload) {
  const topo::Topology t = small_topology();
  TrainConfig config = small_config();
  config.epochs = 1;
  const std::string path = temp_path("trainer_short.state");
  {
    A2cTrainer writer(t, config);
    writer.train();
    writer.save_checkpoint(path);
  }
  const std::string payload = ad::read_snapshot_file(path, "trainer");
  ad::write_snapshot_file(path, "trainer", payload.substr(0, payload.size() / 2));
  A2cTrainer reader(t, config);
  EXPECT_THROW(reader.resume_from_checkpoint(path), std::runtime_error);
}

}  // namespace
}  // namespace np::rl
