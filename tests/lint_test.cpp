// np_lint test suite: one golden-violation fixture per rule under
// tests/lint_fixtures/ (the deliberately-bad sample must produce
// exactly the diagnostics in its expected.txt), unit tests for the
// comment/string stripper the rules depend on, and a meta-test that
// the live src/ + tools/ tree is lint-clean — the same gate CI runs,
// so a PR that introduces a violation fails here first.
#include "np_lint/lint.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

namespace fs = std::filesystem;

// NP_LINT_REPO_ROOT is injected by tests/CMakeLists.txt.
const fs::path kRepoRoot = NP_LINT_REPO_ROOT;
const fs::path kFixtures = kRepoRoot / "tests" / "lint_fixtures";

std::vector<std::string> run_lint(const np::lint::Options& options) {
  std::vector<std::string> lines;
  for (const auto& diagnostic : np::lint::run(options)) {
    lines.push_back(diagnostic.to_string());
  }
  return lines;
}

std::vector<std::string> read_lines(const fs::path& file) {
  std::ifstream in(file);
  EXPECT_TRUE(in.is_open()) << "cannot read " << file;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Golden comparison: the fixture must produce exactly expected.txt.
void expect_fixture(const std::string& name, np::lint::Options options) {
  const fs::path root = kFixtures / name;
  options.scan_roots = {root / "src"};
  EXPECT_EQ(run_lint(options), read_lines(root / "expected.txt"))
      << "fixture " << name << " diverged from its golden file";
}

TEST(LintTest, ObsNamesFixtureMatchesGolden) {
  np::lint::Options options;
  options.obs_names_file = kFixtures / "obs_names" / "obs_names.txt";
  expect_fixture("obs_names", options);
}

// Headers are first-class scan targets: a span instrumented in an
// inline or template function (the header-only hot-path pattern) must
// be matched against the registry exactly like a .cpp call site.
TEST(LintTest, ObsNamesHeaderOnlyFixtureMatchesGolden) {
  np::lint::Options options;
  options.obs_names_file = kFixtures / "obs_names_header" / "obs_names.txt";
  expect_fixture("obs_names_header", options);
}

// Span-nesting hierarchy: `parent > child` registry lines constrain
// where a child span may lexically open. The fixture also carries an
// edge naming an unregistered span, which must be diagnosed rather
// than silently never firing.
TEST(LintTest, ObsNestingFixtureMatchesGolden) {
  np::lint::Options options;
  options.obs_names_file = kFixtures / "obs_nesting" / "obs_names.txt";
  expect_fixture("obs_nesting", options);
}

TEST(LintTest, FaultSitesFixtureMatchesGolden) {
  np::lint::Options options;
  options.fault_sites_file = kFixtures / "fault_sites" / "fault_sites.txt";
  expect_fixture("fault_sites", options);
}

TEST(LintTest, RawMutexFixtureMatchesGolden) {
  expect_fixture("raw_mutex", np::lint::Options{});
}

TEST(LintTest, RawAssertFixtureMatchesGolden) {
  expect_fixture("raw_assert", np::lint::Options{});
}

TEST(LintTest, IncludeHygieneFixtureMatchesGolden) {
  np::lint::Options options;
  options.include_roots = {kFixtures / "include_hygiene" / "src"};
  expect_fixture("include_hygiene", options);
}

// Contract-coverage rule: a non-trivial out-of-line definition with no
// NP_ASSERT / NP_CHECK_* is an error under serve/ and a warning
// elsewhere; covered and trivial definitions in the same file must stay
// silent.
TEST(LintTest, NpCheckFixtureMatchesGolden) {
  expect_fixture("np_check", np::lint::Options{});
}

// The gate itself: the live tree must be free of lint *errors* against
// the checked-in registries (np-check warnings outside serve/ are
// advisory coverage debt and do not gate, same as the CLI's exit
// status). A failure here means an unregistered name/site, a raw mutex
// or assert outside util/, an include-hygiene break, or a serve/
// definition missing its contract — the diagnostic in the failure
// message says which line to fix.
TEST(LintTest, LiveSourceTreeIsClean) {
  np::lint::Options options;
  options.scan_roots = {kRepoRoot / "src", kRepoRoot / "tools"};
  options.include_roots = {kRepoRoot / "src", kRepoRoot / "tools"};
  options.obs_names_file = kRepoRoot / "docs" / "obs_names.txt";
  options.fault_sites_file = kRepoRoot / "docs" / "fault_sites.txt";
  std::vector<std::string> errors;
  for (const auto& diagnostic : np::lint::run(options)) {
    if (!diagnostic.warning) errors.push_back(diagnostic.to_string());
  }
  std::ostringstream all;
  for (const auto& line : errors) all << "  " << line << "\n";
  EXPECT_TRUE(errors.empty())
      << errors.size() << " lint violation(s) in the live tree:\n"
      << all.str();
}

TEST(LintTest, UnknownScanRootIsAnErrorNotClean) {
  np::lint::Options options;
  options.scan_roots = {kRepoRoot / "no" / "such" / "dir"};
  EXPECT_THROW(np::lint::run(options), std::runtime_error);
}

// ---- stripper unit tests: the precision every rule rests on ----

TEST(LintStripperTest, BlanksLineAndBlockComments) {
  const auto views = np::lint::detail::make_views(
      "int a; // std::mutex here\nint /* std::mutex */ b;\n");
  ASSERT_EQ(views.tokens.size(), 3u);  // trailing newline -> empty line
  EXPECT_EQ(views.tokens[0].find("mutex"), std::string::npos);
  EXPECT_EQ(views.tokens[1].find("mutex"), std::string::npos);
  EXPECT_NE(views.tokens[1].find('b'), std::string::npos);
}

TEST(LintStripperTest, BlockCommentSpansLines) {
  const auto views =
      np::lint::detail::make_views("/* line one\nstd::mutex m;\n*/ int x;\n");
  EXPECT_EQ(views.tokens[1].find("mutex"), std::string::npos);
  EXPECT_NE(views.tokens[2].find('x'), std::string::npos);
}

TEST(LintStripperTest, KeepsStringsInCodeViewBlanksThemInTokens) {
  const auto views =
      np::lint::detail::make_views("const char* s = \"std::mutex\";\n");
  EXPECT_NE(views.code[0].find("std::mutex"), std::string::npos);
  EXPECT_EQ(views.tokens[0].find("std::mutex"), std::string::npos);
  // Quotes survive in both views so include parsing stays balanced.
  EXPECT_NE(views.tokens[0].find('"'), std::string::npos);
}

TEST(LintStripperTest, HandlesEscapedQuotesAndCharLiterals) {
  const auto views = np::lint::detail::make_views(
      "const char* s = \"a\\\"b\"; char c = '\"'; int assert_me;\n");
  // The escaped quote must not terminate the string early and leak
  // the rest of the line into a "string" state.
  EXPECT_NE(views.tokens[0].find("assert_me"), std::string::npos);
}

TEST(LintStripperTest, HandlesRawStrings) {
  const auto views = np::lint::detail::make_views(
      "auto s = R\"(std::mutex \" unbalanced)\"; int tail;\n");
  EXPECT_EQ(views.tokens[0].find("std::mutex"), std::string::npos);
  EXPECT_NE(views.tokens[0].find("tail"), std::string::npos);
  EXPECT_NE(views.code[0].find("std::mutex"), std::string::npos);
}

TEST(LintStripperTest, PreservesLineStructure) {
  const std::string text = "a\nbb\nccc\n";
  const auto views = np::lint::detail::make_views(text);
  ASSERT_EQ(views.code.size(), 4u);
  EXPECT_EQ(views.code[0], "a");
  EXPECT_EQ(views.code[1], "bb");
  EXPECT_EQ(views.code[2], "ccc");
  EXPECT_EQ(views.code[3], "");
}

TEST(LintRegistryTest, ParsesNamesCommentsAndBlanks) {
  const fs::path file = fs::temp_directory_path() / "np_lint_registry.txt";
  {
    std::ofstream out(file);
    out << "# header comment\n\nalpha.one\nbeta.two   # trailing\n"
        << "   gamma.three\n";
  }
  const auto names = np::lint::detail::read_registry(file);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0].first, "alpha.one");
  EXPECT_EQ(names[0].second, 3);
  EXPECT_EQ(names[1].first, "beta.two");
  EXPECT_EQ(names[2].first, "gamma.three");
  fs::remove(file);
}

}  // namespace
