// Deliberately-bad sample for the obs-name rule in a header-only
// context: spans instrumented inside inline and template functions
// (the pattern hot-path headers like an inference engine use) must be
// checked exactly like .cpp call sites — one registered name that must
// NOT be flagged, one rogue name that must.
#pragma once

inline void traced_inline() {
  NP_SPAN("header.registered.span");
}

template <typename T>
void traced_template(T& value) {
  NP_SPAN("header.rogue.span");
  (void)value;
}
