// np_loadgen — open-loop load generator and chaos client for np_serve.
//
//   np_loadgen --port <n> [options]
//
// Connects to a running np_serve, learns the topology shape with an
// `info` query, then fires plan-check queries at a fixed arrival rate
// regardless of how fast replies come back (open loop: overload shows
// up as SHED/DEGRADED rates and latency, not as a slower generator).
//
// Options:
//   --port <n>              np_serve port (required)
//   --host <a.b.c.d>        server address (default 127.0.0.1)
//   --connections <n>       parallel connections (default 1)
//   --rate <x>              queries/second across all connections
//                           (default 50)
//   --duration-s <x>        send window in seconds (default 2)
//   --deadline-ms-mix <a,b> per-query deadlines drawn uniformly from
//                           this list; 0 = no deadline (default "0")
//   --malformed-pct <x>     percent of frames replaced by garbage
//                           (parse errors and corrupt length prefixes)
//   --kill-connections <n>  abruptly close and reopen a connection
//                           mid-frame this many times (chaos)
//   --seed <n>              rng seed (default 1)
//   --help                  this text, exit 0
//
// Prints one summary line per status plus p50/p99 latency, and exits 0
// when the run completed (whatever the reply mix was — judging the mix
// is the caller's job).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/protocol.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace np;

int usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: np_loadgen --port <n> [options]\n"
      "  --host <addr>           server address (default 127.0.0.1)\n"
      "  --connections <n>       parallel connections (default 1)\n"
      "  --rate <x>              queries/second, open loop (default 50)\n"
      "  --duration-s <x>        send window seconds (default 2)\n"
      "  --deadline-ms-mix <csv> per-query deadline pool, 0 = none\n"
      "  --malformed-pct <x>     percent garbage frames (chaos)\n"
      "  --kill-connections <n>  mid-frame disconnects (chaos)\n"
      "  --seed <n>              rng seed (default 1)\n");
  return out == stdout ? 0 : 2;
}

long parse_long_arg(const char* what, const char* text, long min_value,
                    long max_value) {
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    throw std::runtime_error(std::string(what) + ": expected an integer, got '" +
                             text + "'");
  }
  if (value < min_value || value > max_value) {
    throw std::runtime_error(std::string(what) + ": value " + text +
                             " out of range [" + std::to_string(min_value) +
                             ", " + std::to_string(max_value) + "]");
  }
  return value;
}

double parse_double_arg(const char* what, const char* text, double min_value,
                        double max_value) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) {
    throw std::runtime_error(std::string(what) + ": expected a number, got '" +
                             text + "'");
  }
  if (!(value >= min_value && value <= max_value)) {
    throw std::runtime_error(std::string(what) + ": value " + text +
                             " out of range");
  }
  return value;
}

double steady_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int dial(const std::string& host, long port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad host address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    throw std::runtime_error("connect " + host + ":" + std::to_string(port) +
                             ": " + std::strerror(errno));
  }
  return fd;
}

void send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // connection chaos is expected; the tally shows it
    off += static_cast<std::size_t>(n);
  }
}

/// Synchronous framed request/reply on one connection (setup queries).
serve::Reply call(int fd, const serve::Request& request) {
  send_all(fd, serve::frame(serve::encode_request(request)));
  serve::FrameReader reader;
  std::string payload;
  std::string error;
  char buffer[4096];
  for (;;) {
    switch (reader.next(&payload, &error)) {
      case serve::FrameEvent::kFrame:
        return serve::parse_reply(payload);
      case serve::FrameEvent::kFatal:
        throw std::runtime_error("unframeable reply: " + error);
      case serve::FrameEvent::kNeedMore:
        break;
    }
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) throw std::runtime_error("server closed during setup");
    reader.feed(buffer, static_cast<std::size_t>(n));
  }
}

struct Tally {
  std::atomic<long> sent{0};
  std::atomic<long> ok{0};
  std::atomic<long> degraded{0};
  std::atomic<long> shed{0};
  std::atomic<long> error{0};
  std::atomic<long> malformed_sent{0};
  std::atomic<long> kills{0};
  util::Mutex mutex;
  std::vector<double> latencies_us NP_GUARDED_BY(mutex);
};

/// Send timestamps by id, shared between one connection's sender and
/// its reply reader for latency matching.
struct Pending {
  util::Mutex mutex;
  std::vector<std::pair<long, double>> sent NP_GUARDED_BY(mutex);
};

/// Reply reader for one connection: tally statuses and match ids back
/// to send times. Runs until the socket EOFs (peer close, our close, or
/// an unframeable reply stream).
void reader_loop(int fd, std::shared_ptr<Pending> pending, Tally& tally) {
  serve::FrameReader reader;
  std::string payload;
  std::string error;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) return;
    reader.feed(buffer, static_cast<std::size_t>(n));
    for (;;) {
      const serve::FrameEvent event = reader.next(&payload, &error);
      if (event == serve::FrameEvent::kNeedMore) break;
      if (event == serve::FrameEvent::kFatal) return;
      serve::Reply reply;
      try {
        reply = serve::parse_reply(payload);
      } catch (const std::exception&) {
        continue;  // count nothing for an unparseable reply
      }
      switch (reply.status) {
        case serve::ReplyStatus::kOk: tally.ok.fetch_add(1); break;
        case serve::ReplyStatus::kDegraded: tally.degraded.fetch_add(1); break;
        case serve::ReplyStatus::kShed: tally.shed.fetch_add(1); break;
        case serve::ReplyStatus::kError: tally.error.fetch_add(1); break;
      }
      double sent_at = -1.0;
      {
        util::LockGuard lock(pending->mutex);
        for (auto& entry : pending->sent) {
          if (entry.first == reply.id) {
            sent_at = entry.second;
            entry.first = -1;
            break;
          }
        }
      }
      if (sent_at >= 0.0) {
        util::LockGuard lock(tally.mutex);
        tally.latencies_us.push_back(steady_now_us() - sent_at);
      }
    }
  }
}

struct Options {
  std::string host = "127.0.0.1";
  long port = -1;
  long connections = 1;
  double rate = 50.0;
  double duration_s = 2.0;
  std::vector<double> deadline_mix = {0.0};
  double malformed_pct = 0.0;
  long kill_connections = 0;
  unsigned seed = 1;
};

/// One connection's open-loop sender. Chaos (garbage frames, mid-frame
/// disconnects) replaces the scheduled query and reconnects afterwards;
/// latencies for a dead connection's in-flight ids are simply lost.
void run_connection(const Options& options, int conn_index, long num_links,
                    Tally& tally) {
  Rng rng(options.seed + 7919ULL * static_cast<std::uint64_t>(conn_index));
  int fd = dial(options.host, options.port);
  auto pending = std::make_shared<Pending>();
  std::thread reader(
      [fd, pending, &tally] { reader_loop(fd, pending, tally); });
  const auto reconnect = [&] {
    // shutdown() before close(): close alone does not unblock a reader
    // parked in recv() on the same fd.
    ::shutdown(fd, SHUT_RDWR);
    reader.join();
    ::close(fd);
    fd = dial(options.host, options.port);
    pending = std::make_shared<Pending>();
    reader = std::thread(
        [fd, pending, &tally] { reader_loop(fd, pending, tally); });
  };

  const double interval_s =
      static_cast<double>(options.connections) / std::max(options.rate, 1e-6);
  Stopwatch clock;
  long query = 0;
  long kills_left = options.kill_connections;
  while (clock.seconds() < options.duration_s) {
    const double next_at = static_cast<double>(query) * interval_s;
    const double wait_s = next_at - clock.seconds();
    if (wait_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait_s));
    }
    ++query;
    const long id = conn_index + options.connections * query;

    if (options.malformed_pct > 0.0 &&
        rng.uniform() * 100.0 < options.malformed_pct) {
      // Chaos: either schema garbage inside a valid frame (typed error
      // reply expected, connection survives) or a corrupt length prefix
      // (server replies once and hangs up; reconnect and keep going).
      tally.malformed_sent.fetch_add(1);
      if (rng.uniform() < 0.5) {
        send_all(fd, serve::frame("np1 bogus id=!! plan="));
      } else {
        send_all(fd, std::string("\xff\xff\xff\xff garbage", 12));
        reconnect();
      }
      continue;
    }

    if (kills_left > 0 && rng.uniform() < 0.05) {
      // Chaos: die mid-frame (half a length prefix), then come back.
      --kills_left;
      tally.kills.fetch_add(1);
      send_all(fd, std::string("\x10\x00", 2));
      reconnect();
      continue;
    }

    serve::Request request;
    request.kind = serve::RequestKind::kCheck;
    request.id = id;
    request.deadline_ms =
        options.deadline_mix[rng.uniform_index(options.deadline_mix.size())];
    request.plan.assign(static_cast<std::size_t>(num_links), 0);
    // Random small additions keep warm bases honest: every query
    // patches different capacities.
    for (int touch = 0; touch < 3; ++touch) {
      request.plan[rng.uniform_index(request.plan.size())] +=
          static_cast<int>(rng.uniform_int(0, 3));
    }
    {
      util::LockGuard lock(pending->mutex);
      pending->sent.emplace_back(id, steady_now_us());
    }
    tally.sent.fetch_add(1);
    send_all(fd, serve::frame(serve::encode_request(request)));
  }

  // Give stragglers a beat to come home, then hang up; the reader exits
  // on the recv unblock.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ::shutdown(fd, SHUT_RDWR);
  reader.join();
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  int rc = 2;
  try {
    Options options;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> const char* {
        if (i + 1 >= argc) throw std::runtime_error(arg + ": missing value");
        return argv[++i];
      };
      if (arg == "--help") return usage(stdout);
      if (arg == "--port") {
        options.port = parse_long_arg("--port", value(), 1, 65535);
      } else if (arg == "--host") {
        options.host = value();
      } else if (arg == "--connections") {
        options.connections = parse_long_arg("--connections", value(), 1, 256);
      } else if (arg == "--rate") {
        options.rate = parse_double_arg("--rate", value(), 0.1, 1e6);
      } else if (arg == "--duration-s") {
        options.duration_s =
            parse_double_arg("--duration-s", value(), 0.01, 3600.0);
      } else if (arg == "--deadline-ms-mix") {
        options.deadline_mix.clear();
        std::stringstream is(value());
        std::string token;
        while (std::getline(is, token, ',')) {
          options.deadline_mix.push_back(
              parse_double_arg("--deadline-ms-mix", token.c_str(), 0.0, 1e9));
        }
        if (options.deadline_mix.empty()) {
          throw std::runtime_error("--deadline-ms-mix: empty list");
        }
      } else if (arg == "--malformed-pct") {
        options.malformed_pct =
            parse_double_arg("--malformed-pct", value(), 0.0, 100.0);
      } else if (arg == "--kill-connections") {
        options.kill_connections =
            parse_long_arg("--kill-connections", value(), 0, 1000000);
      } else if (arg == "--seed") {
        options.seed = static_cast<unsigned>(
            parse_long_arg("--seed", value(), 0, 1L << 31));
      } else {
        std::fprintf(stderr, "np_loadgen: unknown flag '%s'\n", arg.c_str());
        return usage(stderr);
      }
    }
    if (options.port < 0) return usage(stderr);

    // Learn the topology shape from the server itself.
    const int setup_fd = dial(options.host, options.port);
    serve::Request info;
    info.kind = serve::RequestKind::kInfo;
    info.id = 0;
    const serve::Reply shape = call(setup_fd, info);
    ::close(setup_fd);
    if (shape.links <= 0) {
      throw std::runtime_error("info query returned no link count");
    }

    Tally tally;
    std::vector<std::thread> threads;
    for (long c = 0; c < options.connections; ++c) {
      threads.emplace_back([&options, c, &shape, &tally] {
        run_connection(options, static_cast<int>(c) + 1, shape.links, tally);
      });
    }
    for (std::thread& thread : threads) thread.join();

    std::vector<double> latencies;
    {
      util::LockGuard lock(tally.mutex);
      latencies = tally.latencies_us;
    }
    std::sort(latencies.begin(), latencies.end());
    const auto pct = [&](double q) {
      if (latencies.empty()) return 0.0;
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(latencies.size() - 1));
      return latencies[idx];
    };
    const long answered = tally.ok.load() + tally.degraded.load() +
                          tally.shed.load() + tally.error.load();
    std::printf("np_loadgen: sent=%ld answered=%ld ok=%ld degraded=%ld "
                "shed=%ld error=%ld malformed_sent=%ld kills=%ld\n",
                tally.sent.load(), answered, tally.ok.load(),
                tally.degraded.load(), tally.shed.load(), tally.error.load(),
                tally.malformed_sent.load(), tally.kills.load());
    std::printf("np_loadgen: latency p50=%.0fus p99=%.0fus (n=%zu)\n",
                pct(0.50), pct(0.99), latencies.size());
    rc = 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  return rc;
}
