# Empty compiler generated dependencies file for fig11_mlp_hidden.
# This may be replaced when dependencies are built.
