file(REMOVE_RECURSE
  "libnp_la.a"
)
