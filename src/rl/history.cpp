#include "rl/history.hpp"

#include <fstream>
#include <stdexcept>

namespace np::rl {

void write_history_csv(const std::vector<EpochStats>& history, std::ostream& out) {
  out << "epoch,steps,trajectories,feasible,mean_return,best_cost,seconds,"
         "rollout_seconds\n";
  for (const EpochStats& s : history) {
    out << s.epoch << ',' << s.steps << ',' << s.trajectories << ','
        << s.feasible_trajectories << ',' << s.mean_return << ',';
    if (s.best_cost_so_far < 1e299) out << s.best_cost_so_far;
    out << ',' << s.seconds << ',' << s.rollout_seconds << '\n';
  }
}

void write_history_csv_file(const std::vector<EpochStats>& history,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_history_csv(history, out);
}

}  // namespace np::rl
