// Tests for the observability layer (src/obs): registry concurrency,
// snapshot golden, Chrome-trace schema, and the JSONL metrics sink.
//
// All suites are named Obs* so the tsan ctest preset picks them up —
// the concurrency tests are the point of that run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace {

using namespace np;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ObsCounter, ConcurrentAddsAreExact) {
  obs::Registry registry;  // private instance: no global-state bleed
  obs::Counter& c = registry.counter("test.adds");
  constexpr int kThreads = 8;
  constexpr long kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (long i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsGauge, SetAddAndConcurrentAddsAreExact) {
  obs::Registry registry;
  obs::Gauge& g = registry.gauge("test.gauge");
  g.set(2.0);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      // Integer-valued deltas: the CAS-add total is exact in doubles.
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kPerThread));
}

TEST(ObsHistogram, ConcurrentObservesHaveExactTotals) {
  obs::Registry registry;
  obs::Histogram& h = registry.histogram("test.hist", {1.0, 2.0, 4.0, 8.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      // Integer-valued observations keep the double sum exact.
      for (int i = 0; i < kPerThread; ++i) h.observe(i % 10);
    });
  }
  for (auto& t : threads) t.join();
  const long total = kThreads * kPerThread;
  EXPECT_EQ(h.count(), total);
  // sum of 0..9 repeated kPerThread/10 times per thread
  EXPECT_DOUBLE_EQ(h.sum(), kThreads * (kPerThread / 10) * 45.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
  long in_buckets = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
    in_buckets += h.bucket_count(i);
  }
  EXPECT_EQ(in_buckets, total);
  // x <= 1 -> bucket 0; observations 0 and 1 land there.
  EXPECT_EQ(h.bucket_count(0), kThreads * 2 * (kPerThread / 10));
  // 8 < x -> overflow bucket; only observation 9.
  EXPECT_EQ(h.bucket_count(4), kThreads * (kPerThread / 10));
}

TEST(ObsHistogram, ExponentialBuckets) {
  const std::vector<double> b = obs::exponential_buckets(1.0, 4.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 4.0);
  EXPECT_DOUBLE_EQ(b[2], 16.0);
  EXPECT_DOUBLE_EQ(b[3], 64.0);
}

TEST(ObsRegistry, SnapshotGolden) {
  obs::Registry registry;
  registry.counter("a.count").add(3);
  registry.gauge("g.val").set(2.5);
  obs::Histogram& h = registry.histogram("h.lat", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(10.0);
  EXPECT_EQ(registry.snapshot_json(),
            "{\"counters\":{\"a.count\":3},"
            "\"gauges\":{\"g.val\":2.5},"
            "\"histograms\":{\"h.lat\":{\"count\":3,\"sum\":13.5,"
            "\"min\":0.5,\"max\":10,\"mean\":4.5,"
            "\"bounds\":[1,2,4],\"buckets\":[1,0,1,1]}}}");
}

TEST(ObsRegistry, EmptyHistogramOmitsMinMaxMean) {
  obs::Registry registry;
  registry.histogram("h.empty", {1.0});
  EXPECT_EQ(registry.snapshot_json(),
            "{\"counters\":{},\"gauges\":{},"
            "\"histograms\":{\"h.empty\":{\"count\":0,\"sum\":0,"
            "\"bounds\":[1],\"buckets\":[0,0]}}}");
}

TEST(ObsRegistry, ResetKeepsRegistrationsAndZeroesValues) {
  obs::Registry registry;
  obs::Counter& c = registry.counter("r.count");
  c.add(7);
  registry.gauge("r.gauge").set(1.5);
  registry.histogram("r.hist", {1.0}).observe(0.5);
  registry.reset();
  EXPECT_EQ(c.value(), 0);  // cached reference survives reset()
  EXPECT_EQ(registry.snapshot_json(),
            "{\"counters\":{\"r.count\":0},\"gauges\":{\"r.gauge\":0},"
            "\"histograms\":{\"r.hist\":{\"count\":0,\"sum\":0,"
            "\"bounds\":[1],\"buckets\":[0,0]}}}");
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  ASSERT_FALSE(obs::tracing_enabled());  // default state
  const std::size_t before = obs::trace_event_count();
  { NP_SPAN("obstest.disabled"); }
  EXPECT_EQ(obs::trace_event_count(), before);
}

TEST(ObsTrace, ChromeTraceSchema) {
  obs::set_tracing_enabled(true);
  obs::clear_trace();
  { NP_SPAN("obstest.main_span"); }
  std::thread worker([] { NP_SPAN("obstest.worker_span"); });
  worker.join();
  obs::set_tracing_enabled(false);
  EXPECT_EQ(obs::trace_event_count(), 2u);
  EXPECT_EQ(obs::trace_dropped_count(), 0u);

  const std::string path = testing::TempDir() + "obs_trace_schema.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(obs::write_chrome_trace(out), 2u);
  std::fclose(out);

  const std::string json = read_file(path);
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  // Every event carries the full Chrome trace-event schema.
  for (const char* key :
       {"\"name\":", "\"cat\":", "\"ph\":\"X\"", "\"ts\":", "\"dur\":",
        "\"pid\":1", "\"tid\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("\"name\":\"obstest.main_span\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obstest.worker_span\""), std::string::npos);
  // Category = span-name prefix before the first '.'.
  EXPECT_NE(json.find("\"cat\":\"obstest\""), std::string::npos);

  // The two spans ran on different threads, so their tids must differ.
  const auto tid_of = [&json](const std::string& name) {
    const std::size_t at = json.find(name);
    EXPECT_NE(at, std::string::npos);
    const std::size_t tid = json.find("\"tid\":", at);
    EXPECT_NE(tid, std::string::npos);
    return std::stoi(json.substr(tid + 6));
  };
  EXPECT_NE(tid_of("obstest.main_span"), tid_of("obstest.worker_span"));
  obs::clear_trace();
  std::remove(path.c_str());
}

TEST(ObsSink, MetricsRecordsAreOneJsonObjectPerLine) {
  const std::string path = testing::TempDir() + "obs_metrics.jsonl";
  obs::set_metrics_out(path);
  ASSERT_TRUE(obs::metrics_out_open());
  EXPECT_TRUE(obs::detail_enabled());  // a metrics sink arms detail metrics
  obs::counter("obstest.sink").add(5);
  obs::emit_metrics_record("train_epoch", 3);
  obs::shutdown();  // appends the "final" record and closes
  EXPECT_FALSE(obs::metrics_out_open());
  EXPECT_FALSE(obs::detail_enabled());

  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("{\"record\":\"train_epoch\",\"index\":3,"),
            std::string::npos);
  EXPECT_NE(lines[1].find("{\"record\":\"final\",\"index\":-1,"),
            std::string::npos);
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("\"elapsed_us\":"), std::string::npos);
    EXPECT_NE(line.find("\"metrics\":{\"counters\":{"), std::string::npos);
    EXPECT_NE(line.find("\"obstest.sink\":5"), std::string::npos);
    EXPECT_EQ(line.back(), '}');  // the record closes on the same line
  }
  std::remove(path.c_str());
}

}  // namespace
