// Figure 11: impact of the actor/critic MLP hidden size.
//
// (a) First-stage cost (normalized to optimal) for hidden sizes
//     16x16 .. 512x512 on the A-x variants.
// (b) Convergence: mean epoch return vs epoch on A-1 per hidden size
//     (the paper finds larger MLPs converge faster per epoch).
#include "bench_common.hpp"
#include "core/baselines.hpp"
#include "rl/trainer.hpp"

int main() {
  using namespace np;
  bench::print_header(
      "Figure 11: impact of MLP hidden size",
      "(a) First-stage cost normalized to optimal; (b) reward curves on A-1.");

  const topo::Topology base = topo::make_preset('A');
  const std::vector<std::vector<int>> hidden_sweeps = {
      {16, 16}, {64, 64}, {256, 256}, {512, 512}};

  Table table({"variant", "16x16", "64x64", "256x256", "512x512"});
  std::vector<std::vector<double>> a1_curves(hidden_sweeps.size());

  for (double fraction : {0.0, 0.5, 1.0}) {
    const topo::Topology variant = topo::scale_initial_capacity(base, fraction);
    core::IlpConfig ilp_config;
    ilp_config.time_limit_seconds = bench::ilp_time_budget();
    const core::PlanResult exact = core::solve_ilp(variant, ilp_config);
    const bool have_opt = exact.feasible && !exact.timed_out;

    std::vector<std::string> row = {"A-" + fmt_double(fraction, 1)};
    for (std::size_t h = 0; h < hidden_sweeps.size(); ++h) {
      rl::TrainConfig config =
          bench::bench_train_config(variant, 'A', bench::bench_seed());
      config.network.mlp_hidden = hidden_sweeps[h];
      rl::A2cTrainer trainer(variant, config);
      const std::vector<rl::EpochStats> history = trainer.train();
      trainer.greedy_rollout();
      row.push_back(fmt_or_cross(trainer.best_cost() / exact.cost,
                                 have_opt && trainer.has_feasible_plan(), 3));
      if (fraction == 1.0) {
        for (const rl::EpochStats& s : history) {
          a1_curves[h].push_back(s.mean_return);
        }
      }
    }
    table.add_row(std::move(row));
  }
  std::printf("(a) First-stage cost vs hidden size\n");
  table.print();

  std::printf("\n(b) mean epoch return vs epoch on A-1\n");
  Table curves({"epoch", "16x16", "64x64", "256x256", "512x512"});
  for (std::size_t e = 0; e < a1_curves[0].size(); ++e) {
    std::vector<std::string> row = {std::to_string(e + 1)};
    for (const auto& curve : a1_curves) {
      row.push_back(e < curve.size() ? fmt_double(curve[e], 3) : "-");
    }
    curves.add_row(std::move(row));
  }
  curves.print();
  std::printf("\nExpected shape (paper): similar final costs across hidden\n"
              "sizes; larger hidden sizes converge in fewer epochs.\n");
  return 0;
}
