// Figure 7: implementation efficiency of the plan evaluator.
//
// Compares the running time of the three evaluator implementations
// (Vanilla / +SourceAggregation / +Stateful = NeuroPlan) on identical
// replayed plan-check workloads over topologies A-E. Times are
// normalized to the NeuroPlan evaluator per topology, exactly like the
// figure; entries whose projected runtime exceeds the per-topology
// budget are omitted with a cross (the paper omits Vanilla beyond 2h).
//
//   NEUROPLAN_FIG7_CHECKS  monotone plan increments per topology (default 12)
//   NEUROPLAN_FIG7_BUDGET  per-mode budget in seconds (default 60)
#include <vector>

#include "bench_common.hpp"
#include "plan/evaluator.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace np;

/// A reproducible monotone capacity trajectory: the workload every mode
/// replays. Mirrors an RL trajectory's evaluator usage: capacities ramp
/// up every check and cross into feasibility partway through, so late
/// checks sweep deep into the scenario list (where stateful checking
/// shines) while early ones fail fast.
std::vector<std::vector<int>> make_workload(const topo::Topology& topology,
                                            int checks, unsigned seed) {
  Rng rng(seed);
  double demand_units = 0.0;
  for (int f = 0; f < topology.num_flows(); ++f) {
    demand_units += topology.flow(f).demand_gbps / topology.capacity_unit_gbps();
  }
  // Reach ~2.5x the demand in total by around 70% of the checks.
  const int per_check = std::max(
      1, static_cast<int>(2.5 * demand_units / topology.num_links() /
                          (0.7 * checks)));
  std::vector<std::vector<int>> plans;
  std::vector<int> units = topology.initial_units();
  for (int c = 0; c < checks; ++c) {
    for (int l = 0; l < topology.num_links(); ++l) {
      const int headroom = topology.spectrum_headroom_units(l, units);
      units[l] += std::min(headroom, per_check + static_cast<int>(rng.uniform_index(2)));
    }
    plans.push_back(units);
  }
  return plans;
}

double run_mode(const topo::Topology& topology, plan::EvaluatorMode mode,
                const std::vector<std::vector<int>>& plans, double budget,
                bool* finished) {
  plan::PlanEvaluator evaluator(topology, mode);
  Stopwatch watch;
  for (const auto& plan : plans) {
    (void)evaluator.check(plan);
    if (watch.seconds() > budget) {
      *finished = false;
      return watch.seconds();
    }
  }
  *finished = true;
  return watch.seconds();
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 7: implementation efficiency",
      "Plan-evaluator running time, normalized to the NeuroPlan evaluator\n"
      "(source aggregation + stateful failure checking) on each topology.\n"
      "'x' = omitted, exceeds the time budget (the paper's crosses).");

  const std::string topos = bench::topo_selection("ABCDE");
  const int checks = static_cast<int>(env_long("NEUROPLAN_FIG7_CHECKS", 12));
  const double budget = env_double("NEUROPLAN_FIG7_BUDGET", 60.0);

  Table table({"topology", "Vanilla", "SA", "NeuroPlan", "NeuroPlan secs"});
  for (char id : topos) {
    const topo::Topology topology = topo::make_preset(id);
    const auto workload = make_workload(topology, checks, bench::bench_seed());

    bool stateful_done = false;
    const double stateful = run_mode(topology, plan::EvaluatorMode::kStateful,
                                     workload, budget, &stateful_done);
    bool sa_done = false;
    const double sa = run_mode(topology, plan::EvaluatorMode::kSourceAggregation,
                               workload, budget, &sa_done);
    // Vanilla explodes with topology size; skip when SA already blew
    // the budget (it is strictly slower).
    bool vanilla_done = false;
    double vanilla = 0.0;
    if (sa_done) {
      vanilla = run_mode(topology, plan::EvaluatorMode::kVanilla, workload,
                         budget, &vanilla_done);
    }

    table.add_row({std::string(1, id),
                   fmt_or_cross(vanilla / stateful, vanilla_done, 2),
                   fmt_or_cross(sa / stateful, sa_done, 2),
                   stateful_done ? "1.00" : "x", fmt_double(stateful, 2)});
  }
  table.print();
  std::printf("\nExpected shape (paper): SA ~2x+ faster than Vanilla, NeuroPlan\n"
              "7-14x faster than SA, gaps widening with topology size.\n");
  return 0;
}
