// Multilayer perceptron with ReLU activations between layers and a
// linear output layer — the actor and critic heads of Figure 6.
#pragma once

#include <string>
#include <vector>

#include "nn/linear.hpp"

namespace np::nn {

class Mlp {
 public:
  /// hidden_sizes may be empty (a single linear layer). The paper's
  /// "MLP hidden layers {64x64, 256x256, 512x512}" maps to
  /// hidden_sizes = {64, 64} etc. (Figure 11 sweep).
  Mlp(std::string name, int in_features, const std::vector<int>& hidden_sizes,
      int out_features, Rng& rng);

  ad::Tensor forward(ad::Tape& tape, ad::Tensor x);

  std::vector<ad::Parameter*> parameters();

  int in_features() const;
  int out_features() const;

 private:
  std::vector<Linear> layers_;
};

}  // namespace np::nn
