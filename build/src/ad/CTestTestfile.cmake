# CMake generated Testfile for 
# Source directory: /root/repo/src/ad
# Build directory: /root/repo/build/src/ad
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
