# Empty dependencies file for agent_reuse.
# This may be replaced when dependencies are built.
