// np_lint: a std-only analyzer over the source tree that enforces the
// repo invariants clang-tidy cannot express. One Diagnostic per
// violation, formatted "file:line: rule: message", deterministic order.
//
// Rules (each has a golden-violation fixture under tests/lint_fixtures/
// and is documented in docs/INTERNALS.md §7):
//
//   obs-name        NP_SPAN / record_aggregate_span / obs::counter /
//                   obs::gauge / obs::histogram literal names must be
//                   registered in docs/obs_names.txt, and every
//                   registered name must still have a call site — so
//                   dashboards and trace_summary greps never silently
//                   dangle in either direction.
//   obs-nesting     `parent > child` lines in docs/obs_names.txt declare
//                   the only spans a child span may (lexically) open
//                   under; a call site that opens the child beneath any
//                   other span fails, as does an edge naming an
//                   unregistered span. Children without declared
//                   parents are unconstrained.
//   fault-site      NP_FAULT_POINT sites must match docs/fault_sites.txt
//                   (and vice versa), keeping NEUROPLAN_FAULT_SITES
//                   chaos configs valid.
//   raw-mutex       no std::mutex / std::lock_guard / std::unique_lock /
//                   std::condition_variable (etc.) outside util/ — all
//                   locking goes through the annotated wrappers in
//                   util/mutex.hpp so clang thread-safety analysis sees
//                   every lock.
//   raw-assert      no assert( / <cassert> outside util/check.hpp —
//                   contracts go through NP_ASSERT / NP_CHECK_* so
//                   Release semantics stay uniform.
//   include-hygiene quoted includes must be project-relative (no "../",
//                   no "build/", must resolve under an include root)
//                   and every header carries #pragma once.
//   np-check        out-of-line member-function definitions in .cpp
//                   files with a non-trivial body must carry at least
//                   one NP_ASSERT / NP_CHECK_* contract. Gaps under
//                   src/serve/ are errors (serving entry points face
//                   untrusted input and must validate it); gaps
//                   anywhere else are warnings — reported but not
//                   gating, so coverage debt is visible without
//                   blocking unrelated work.
//
// The analysis is lexical but comment- and string-aware: a state
// machine strips // and /* */ comments (and, for token rules, string
// literal contents), so "std::mutex" in a doc comment or a log message
// never trips a rule.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace np::lint {

struct Diagnostic {
  std::string file;  ///< scan-root-relative, prefixed with the root's name
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
  /// Advisory only: reported but must not gate (main exits 0 when every
  /// diagnostic is a warning). Defaults to error — the pre-existing
  /// rules all gate.
  bool warning = false;

  /// "file:line: rule: message" (warnings insert "warning: " after the
  /// rule) — the format CI and editors parse.
  std::string to_string() const;
};

struct Options {
  /// Directories to lint (recursively, *.hpp / *.cpp / *.h / *.cc).
  /// Diagnostics report paths as <root-basename>/<relative-path>, so
  /// scanning /repo/src yields "src/util/mutex.hpp".
  std::vector<std::filesystem::path> scan_roots;
  /// Roots against which quoted includes must resolve (normally the
  /// src/ and tools/ directories — the -I set of the real build).
  std::vector<std::filesystem::path> include_roots;
  /// Name registries; an empty path disables the corresponding rule.
  std::filesystem::path obs_names_file;
  std::filesystem::path fault_sites_file;
};

/// Run every enabled rule over every file under the scan roots.
/// Returns diagnostics sorted by (file, line, rule, message); empty
/// means the tree is clean. Throws std::runtime_error on unreadable
/// roots or registry files (infrastructure errors must not read as
/// "clean").
std::vector<Diagnostic> run(const Options& options);

namespace detail {

/// Comment/string-aware views of one file, line structure preserved
/// (same line count and per-line length as the input).
struct FileViews {
  /// Comments blanked to spaces; string/char literals intact. Used by
  /// rules that read literal names (obs-name, fault-site) and by the
  /// include parser.
  std::vector<std::string> code;
  /// Comments AND string/char literal contents blanked (quotes kept).
  /// Used by token rules (raw-mutex, raw-assert), so tokens quoted in
  /// messages or in np_lint's own rule tables never self-trigger.
  std::vector<std::string> tokens;
};

/// Build both views. Handles //, /* */, escapes, and R"delim(...)delim"
/// raw strings.
FileViews make_views(const std::string& text);

/// Registry file format: one name per line, '#' starts a comment,
/// blanks ignored. Returns (name, 1-based line) pairs in file order.
/// `parent > child` hierarchy lines come back as single entries; the
/// caller splits them (run() does, for the obs-nesting rule).
std::vector<std::pair<std::string, int>> read_registry(
    const std::filesystem::path& file);

}  // namespace detail

}  // namespace np::lint
