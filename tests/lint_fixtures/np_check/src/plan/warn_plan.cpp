// np-check fixture, non-serve/ side: the same contract gap outside
// serve/ is advisory — reported as a warning, never gating.
struct Costing {
  double base = 0.0;
  double step = 0.0;
  double quote(int units) const;
};

double Costing::quote(int units) const {
  double total = base;
  for (int u = 0; u < units; ++u) total += step;
  return total;
}
