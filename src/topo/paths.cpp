#include "topo/paths.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace np::topo {

std::vector<int> shortest_ip_path(const Topology& topology, int src, int dst,
                                  const std::vector<bool>& usable) {
  if (usable.size() != static_cast<std::size_t>(topology.num_links())) {
    throw std::invalid_argument("shortest_ip_path: usable size mismatch");
  }
  if (src < 0 || src >= topology.num_sites() || dst < 0 ||
      dst >= topology.num_sites()) {
    throw std::invalid_argument("shortest_ip_path: site out of range");
  }
  const int n = topology.num_sites();
  std::vector<double> dist(n, 1e18);
  std::vector<int> via_link(n, -1);
  std::vector<int> prev(n, -1);
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[src] = 0.0;
  queue.push({0.0, src});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (int l = 0; l < topology.num_links(); ++l) {
      if (!usable[l]) continue;
      const IpLink& link = topology.link(l);
      int v = -1;
      if (link.site_a == u) v = link.site_b;
      else if (link.site_b == u) v = link.site_a;
      else continue;
      const double nd = d + topology.link_length_km(l);
      if (nd < dist[v]) {
        dist[v] = nd;
        via_link[v] = l;
        prev[v] = u;
        queue.push({nd, v});
      }
    }
  }
  if (dist[dst] >= 1e18) return {};
  std::vector<int> path;
  for (int at = dst; at != src; at = prev[at]) path.push_back(via_link[at]);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<int> shortest_ip_path(const Topology& topology, int src, int dst) {
  return shortest_ip_path(topology, src, dst,
                          std::vector<bool>(topology.num_links(), true));
}

}  // namespace np::topo
