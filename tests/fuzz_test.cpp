// Robustness fuzzing (deterministic): mutated topology files must
// either parse into a structurally valid topology or throw a typed
// error — never crash, hang, or produce an inconsistent object.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "ad/snapshot.hpp"
#include "topo/generator.hpp"
#include "topo/serialize.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace np::topo {
namespace {

/// Deterministic per-test seed: fixed in (suite parameter), offset as a
/// whole by NEUROPLAN_TEST_SEED so a different corpus can be swept
/// reproducibly. Every assertion failure reports it via SCOPED_TRACE.
std::uint64_t fuzz_seed(unsigned param) {
  return static_cast<std::uint64_t>(env_long("NEUROPLAN_TEST_SEED", 0)) +
         param * 7919u + 101u;
}

class SerializeFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(SerializeFuzz, MutatedInputNeverCrashes) {
  const std::uint64_t seed = fuzz_seed(GetParam());
  SCOPED_TRACE(::testing::Message()
               << "fuzz seed " << seed
               << " (offset the sweep with NEUROPLAN_TEST_SEED=<n>)");
  RecordProperty("seed", static_cast<int>(seed));
  const std::string base = to_text(make_preset('B'));
  Rng rng(seed);
  for (int trial = 0; trial < 40; ++trial) {
    std::string text = base;
    const int mutations = 1 + static_cast<int>(rng.uniform_index(4));
    for (int k = 0; k < mutations; ++k) {
      const std::size_t pos = rng.uniform_index(text.size());
      switch (rng.uniform_index(4)) {
        case 0:  // flip a character
          text[pos] = static_cast<char>(' ' + rng.uniform_index(95));
          break;
        case 1:  // delete a span
          text.erase(pos, 1 + rng.uniform_index(10));
          break;
        case 2:  // duplicate a span
          text.insert(pos, text.substr(pos, 1 + rng.uniform_index(10)));
          break;
        default:  // truncate
          text.resize(pos);
      }
    }
    try {
      Topology t = from_text(text);
      // Parsed: the object must at least be internally consistent
      // enough that accessors and re-serialization do not blow up.
      (void)to_text(t);
      for (int l = 0; l < t.num_links(); ++l) (void)t.link_length_km(l);
    } catch (const std::runtime_error&) {
      // typed parse error: fine
    } catch (const std::invalid_argument&) {
      // typed semantic error from Topology validation: fine
    } catch (const std::out_of_range&) {
      // typed index error from referencing records: fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzz, ::testing::Range(0u, 10u));

/// Checkpoint containers under the same mutation model: a mutated
/// snapshot file must either round-trip the original payload untouched
/// (mutation landed outside the validated region — impossible here,
/// every byte is covered by the checksum or header grammar) or throw a
/// clean std::runtime_error. Anything else is a corruption-detection
/// hole that would let a torn checkpoint resume training silently.
class SnapshotFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(SnapshotFuzz, MutatedSnapshotNeverResumesSilently) {
  const std::uint64_t seed = fuzz_seed(GetParam()) + 500009u;
  SCOPED_TRACE(::testing::Message() << "fuzz seed " << seed);
  const std::string path = ::testing::TempDir() + "fuzz_snapshot.state";
  std::string payload = "epoch 12\nrng deadbeef 1 2 3\nparams 0\nend\n";
  payload.push_back('\0');
  payload += "binary tail \xff\x01";
  ad::write_snapshot_file(path, "trainer", payload);
  std::string pristine;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    pristine = buf.str();
  }
  Rng rng(seed);
  for (int trial = 0; trial < 40; ++trial) {
    std::string bytes = pristine;
    const int mutations = 1 + static_cast<int>(rng.uniform_index(4));
    for (int k = 0; k < mutations && !bytes.empty(); ++k) {
      const std::size_t pos = rng.uniform_index(bytes.size());
      switch (rng.uniform_index(4)) {
        case 0:  // flip a byte
          bytes[pos] = static_cast<char>(rng.uniform_index(256));
          break;
        case 1:  // delete a span
          bytes.erase(pos, 1 + rng.uniform_index(8));
          break;
        case 2:  // duplicate a span
          bytes.insert(pos, bytes.substr(pos, 1 + rng.uniform_index(8)));
          break;
        default:  // truncate
          bytes.resize(pos);
      }
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    try {
      const std::string got = ad::read_snapshot_file(path, "trainer");
      EXPECT_EQ(got, payload) << "trial " << trial
                              << ": accepted a corrupted snapshot";
    } catch (const std::runtime_error&) {
      // typed corruption verdict: fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotFuzz, ::testing::Range(0u, 6u));

TEST(SerializeFuzz, EmptyAndDegenerateInputs) {
  EXPECT_NO_THROW(from_text(""));              // empty topology object
  EXPECT_NO_THROW(from_text("\n\n# only\n"));  // comments only
  EXPECT_THROW(from_text("site"), std::runtime_error);       // truncated
  EXPECT_THROW(from_text("fiber \"x\""), std::runtime_error);
  EXPECT_THROW(from_text("link \"x\" 0"), std::runtime_error);
  EXPECT_THROW(from_text("unit -5\n"), std::invalid_argument);
  EXPECT_THROW(from_text("policy notanint"), std::runtime_error);
}

}  // namespace
}  // namespace np::topo
