# Empty compiler generated dependencies file for fig12_capacity_units.
# This may be replaced when dependencies are built.
