// Plain-text table printer used by the bench harness to emit the same
// rows/series the paper's figures report.
#pragma once

#include <string>
#include <vector>

namespace np {

/// Accumulates rows of strings and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with a separator line under the header.
  std::string to_string() const;

  /// Convenience: render to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (bench output helper).
std::string fmt_double(double value, int precision = 3);

/// Format a normalized value or "x" for a timed-out / omitted entry,
/// matching the crosses in the paper's figures.
std::string fmt_or_cross(double value, bool valid, int precision = 3);

}  // namespace np
