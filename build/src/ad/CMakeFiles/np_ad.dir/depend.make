# Empty dependencies file for np_ad.
# This may be replaced when dependencies are built.
