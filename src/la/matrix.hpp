// Dense row-major matrix of doubles. This is the numeric workhorse of
// the autodiff engine and the neural-network layers. It is deliberately
// small: only the operations the project needs, each with explicit
// dimension checks that throw std::invalid_argument on misuse.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

namespace np::la {

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Build from nested initializer lists; all rows must be equally long.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix zeros(std::size_t rows, std::size_t cols) { return Matrix(rows, cols, 0.0); }
  static Matrix identity(std::size_t n);
  /// 1 x n row vector from data.
  static Matrix row_vector(const std::vector<double>& data);
  /// n x 1 column vector from data.
  static Matrix col_vector(const std::vector<double>& data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Bounds-checked access (tests and debug paths).
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Flat row-major storage (for serialization and the optimizer).
  std::vector<double>& flat() { return data_; }
  const std::vector<double>& flat() const { return data_; }

  // ---- arithmetic (all dimension-checked) ----
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double scalar) const;
  Matrix operator-() const;

  /// Matrix product: (r x k) * (k x c) -> (r x c).
  Matrix matmul(const Matrix& other) const;

  /// Elementwise (Hadamard) product.
  Matrix hadamard(const Matrix& other) const;

  Matrix transposed() const;

  /// Apply a scalar function elementwise, returning a new matrix.
  Matrix map(const std::function<double(double)>& fn) const;

  /// Add a 1 x cols row vector to every row (broadcast bias add).
  Matrix add_row_broadcast(const Matrix& row) const;

  /// Sum over rows -> 1 x cols.
  Matrix sum_rows() const;
  /// Sum over columns -> rows x 1.
  Matrix sum_cols() const;
  /// Sum of all entries.
  double sum() const;
  /// Mean of all entries. Requires non-empty.
  double mean() const;
  /// Max-norm of all entries.
  double max_abs() const;

  /// True if any entry is NaN or infinite (training guard).
  bool has_non_finite() const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  bool operator==(const Matrix& other) const {
    return same_shape(other) && data_ == other.data_;
  }

  /// Human-readable shape like "3x4" for error messages.
  std::string shape_string() const;

 private:
  void require_same_shape(const Matrix& other, const char* op) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// max |a - b| over entries; requires same shape.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// Stack matrices vertically (equal column counts required). Used to
/// batch per-step node-feature matrices into one forward pass.
Matrix vstack(const std::vector<const Matrix*>& parts);

}  // namespace np::la
