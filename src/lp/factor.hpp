// Sparse LU basis factorization with a product-form eta file — the
// linear-algebra core of the revised simplex sparse engine.
//
// The basis B (columns of the LP constraint matrix picked by the
// current basis) is factorized as P·B·Q = L·U by left-looking sparse
// Gaussian elimination: columns are eliminated in ascending-nonzero
// order (a static Markowitz-style preorder that pivots the slack and
// artificial singletons first, fill-free), and within each column the
// pivot row is chosen by threshold partial pivoting with a
// Markowitz-style tie-break toward low-count rows. Between
// refactorizations, basis exchanges append product-form eta vectors
// instead of touching L/U, so an update costs O(nnz of the pivot
// column) rather than O(m^2).
//
// FTRAN (w = B^{-1} a) and BTRAN (y = B^{-T} c) run in O(fill + eta
// nnz): the triangular solves skip structurally-zero positions, which
// makes solves with hyper-sparse right-hand sides (unit vectors, LP
// columns with a handful of entries) cost far below O(m^2). Scenario
// LPs (flow conservation + capacity rows) have ~8 nonzeros per row, so
// this replaces the dense-inverse engine's O(m^2) per-iteration and
// O(m^3) per-refactorization costs with near-O(nnz) ones.
//
// L, U and the eta file live in flat (CSC-style) arrays whose capacity
// survives refactorizations: a warm-started scenario solve refactorizes
// two or three times, and per-column heap churn would otherwise rival
// the arithmetic at these sizes (m ~ 10^2).
#pragma once

#include <utility>
#include <vector>

#include "la/sparse_vector.hpp"

namespace np::lp {

/// Sparse matrix column: (row index, coefficient) entries.
using SparseColumn = std::vector<std::pair<int, double>>;

/// Non-owning view of a sparse column — the simplex stores all columns
/// in one flat arena and hands out views, so the factorization never
/// depends on how the caller lays out its matrix.
struct ColumnView {
  const std::pair<int, double>* entries = nullptr;
  int count = 0;

  ColumnView() = default;
  ColumnView(const std::pair<int, double>* e, int n) : entries(e), count(n) {}
  ColumnView(const SparseColumn& c)  // NOLINT(google-explicit-constructor)
      : entries(c.data()), count(static_cast<int>(c.size())) {}

  const std::pair<int, double>* begin() const { return entries; }
  const std::pair<int, double>* end() const { return entries + count; }
  int size() const { return count; }
};

struct FactorStats {
  long factorizations = 0;  ///< lifetime count of factorize() calls
  long lu_entries = 0;      ///< L+U nonzeros of the current factorization
  long eta_entries = 0;     ///< nonzeros currently in the eta file
};

class BasisFactor {
 public:
  /// Factorize the m x m basis whose columns are given by position.
  /// Clears the eta file. Returns false when the basis is numerically
  /// singular (no pivot above the absolute tolerance in some column).
  bool factorize(int m, const std::vector<ColumnView>& columns);

  /// FTRAN with a dense right-hand side: x := B^{-1} x. Input indexed
  /// by row, output by basis position.
  void ftran(std::vector<double>& x) const;

  /// FTRAN of one sparse column: w = B^{-1} a, w dense by position.
  /// The triangular solves only do work on populated positions.
  void ftran_column(ColumnView a, std::vector<double>& w) const;

  /// ||B^{-1} a||^2 without materializing the result for the caller —
  /// steepest-edge pricing needs exact column norms at initialization
  /// (and for the debug-build weight audit) but never the vector
  /// itself. Runs the same hyper-sparse solve as ftran_column into
  /// internal scratch.
  double ftran_column_norm2(ColumnView a) const;

  /// BTRAN with a dense right-hand side: x := B^{-T} x. Input indexed
  /// by basis position, output by row.
  void btran(std::vector<double>& x) const;

  /// BTRAN of a unit vector: rho = e_p^T B^{-1}, the dual simplex pivot
  /// row, indexed by row. Exploits the hyper-sparse right-hand side by
  /// starting the forward solve at p's pivot position.
  void btran_unit(int p, std::vector<double>& rho) const;

  /// Product-form update after a basis exchange at position p, where w
  /// is the FTRAN result of the entering column (w[p] must be the pivot
  /// element, checked nonzero by the simplex ratio test).
  void append_eta(int p, const std::vector<double>& w);

  /// True when the eta file has grown past the point where
  /// refactorizing is cheaper than dragging the updates along; the
  /// simplex refactorizes early on this signal.
  bool prefers_refactor() const;

  int dim() const { return m_; }
  int eta_count() const { return static_cast<int>(etas_.size()); }
  const FactorStats& stats() const { return stats_; }

 private:
  struct Eta {
    int pivot_pos = 0;
    double pivot_value = 1.0;
    /// Off-pivot entries: [start, start + count) in eta_entries_.
    int start = 0;
    int count = 0;
  };

  // Triangular solves over the pivot-position space, in place, with
  // structural zero skipping. L and U store strictly-off-diagonal
  // entries column-wise in flat arrays (lu_entries_ indexed through
  // {lower,upper}_start_); L's diagonal is an implicit 1, U's diagonal
  // is diag_.
  void lower_solve(std::vector<double>& x) const;
  void upper_solve(std::vector<double>& x) const;
  void upper_transpose_solve(std::vector<double>& x, int first) const;
  void lower_transpose_solve(std::vector<double>& x) const;
  void apply_etas(std::vector<double>& x) const;
  void apply_etas_transposed(std::vector<double>& x) const;

  int m_ = 0;
  // Column k of L occupies lower_entries_[lower_start_[k] ..
  // lower_start_[k+1]) with entries (i, v), i > k; likewise upper_ with
  // i < k. Flat so refactorization reuses capacity instead of
  // reallocating ~2m column vectors.
  std::vector<std::pair<int, double>> lower_entries_;
  std::vector<int> lower_start_;
  std::vector<std::pair<int, double>> upper_entries_;
  std::vector<int> upper_start_;
  std::vector<double> diag_;     // U's diagonal
  std::vector<int> row_of_pos_;  // P: pivot position -> original row
  std::vector<int> pos_of_row_;  // P^{-1}
  std::vector<int> col_of_pos_;  // Q: pivot position -> basis position
  std::vector<int> pos_of_col_;  // Q^{-1}
  std::vector<Eta> etas_;
  std::vector<std::pair<int, double>> eta_entries_;
  FactorStats stats_;

  la::ScatterVector scatter_;         // factorization workspace
  std::vector<int> order_;            // column elimination preorder
  std::vector<int> count_start_;      // counting-sort buckets for order_
  std::vector<int> row_count_;        // Markowitz-style pivot tie-break
  mutable std::vector<double> work_;          // dense solve scratch
  mutable std::vector<double> norm_scratch_;  // ftran_column_norm2 result
};

}  // namespace np::lp
