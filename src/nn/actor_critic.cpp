#include "nn/actor_critic.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace np::nn {

namespace {

std::unique_ptr<GraphEncoder> make_encoder(const NetworkConfig& config, Rng& rng) {
  if (config.gnn_type == GnnType::kGat) {
    return std::make_unique<GatEncoder>("gnn", config.feature_dim,
                                        config.gcn_hidden, config.gcn_layers, rng);
  }
  return std::make_unique<GcnEncoder>("gnn", config.feature_dim, config.gcn_hidden,
                                      config.gcn_layers, rng);
}

}  // namespace

ActorCritic::ActorCritic(const NetworkConfig& config, Rng& rng)
    : config_(config),
      encoder_(make_encoder(config, rng)),
      actor_("actor", encoder_->output_dim(), config.mlp_hidden,
             config.max_units_per_step, rng),
      critic_("critic", encoder_->output_dim(), config.mlp_hidden, 1, rng) {
  if (config.max_units_per_step < 1) {
    throw std::invalid_argument("ActorCritic: max_units_per_step must be >= 1");
  }
}

ad::Tensor ActorCritic::policy_log_probs(
    ad::Tape& tape, std::shared_ptr<const la::CsrMatrix> adjacency,
    const la::Matrix& features, const std::vector<std::uint8_t>& action_mask) {
  NP_SPAN("nn.policy_forward");
  static obs::Counter& forwards = obs::counter("nn.policy_forwards");
  forwards.add(1);
  const std::size_t n = features.rows();
  if (action_mask.size() != n * static_cast<std::size_t>(config_.max_units_per_step)) {
    throw std::invalid_argument("policy_log_probs: mask size mismatch");
  }
  NP_CHECK_DIMS(features.rows(), features.cols(), -1, config_.feature_dim,
                "ActorCritic::policy_log_probs");
  ad::Tensor embedding =
      encoder_->forward(tape, std::move(adjacency), tape.constant(features));
  ad::Tensor logits = actor_.forward(tape, embedding);        // n x m
  ad::Tensor flat = tape.flatten_to_row(logits);              // 1 x (n*m)
  return tape.masked_log_softmax(flat, action_mask);
}

ad::Tensor ActorCritic::value(ad::Tape& tape,
                              std::shared_ptr<const la::CsrMatrix> adjacency,
                              const la::Matrix& features) {
  NP_SPAN("nn.value_forward");
  static obs::Counter& forwards = obs::counter("nn.value_forwards");
  forwards.add(1);
  NP_CHECK_DIMS(features.rows(), features.cols(), -1, config_.feature_dim,
                "ActorCritic::value");
  ad::Tensor embedding =
      encoder_->forward(tape, std::move(adjacency), tape.constant(features));
  return critic_.forward(tape, tape.mean_rows(embedding));
}

ActorCritic::BatchedForward ActorCritic::forward_batch(
    ad::Tape& tape, std::shared_ptr<const la::CsrMatrix> block_adjacency,
    const la::Matrix& stacked_features,
    const std::vector<const std::vector<std::uint8_t>*>& action_masks,
    bool want_values) {
  NP_SPAN("nn.forward_batch");
  static obs::Counter& forwards = obs::counter("nn.batch_forwards");
  forwards.add(1);
  NP_CHECK_DIMS(stacked_features.rows(), stacked_features.cols(), -1,
                config_.feature_dim, "ActorCritic::forward_batch");
  const std::size_t steps = action_masks.size();
  if (steps == 0) throw std::invalid_argument("forward_batch: no steps");
  if (stacked_features.rows() % steps != 0) {
    throw std::invalid_argument("forward_batch: feature rows not divisible by steps");
  }
  const std::size_t n = stacked_features.rows() / steps;
  const std::size_t action_dim = n * static_cast<std::size_t>(config_.max_units_per_step);
  for (const auto* mask : action_masks) {
    if (mask == nullptr || mask->size() != action_dim) {
      throw std::invalid_argument("forward_batch: bad action mask");
    }
  }
  if (block_adjacency == nullptr ||
      block_adjacency->rows() != stacked_features.rows()) {
    throw std::invalid_argument("forward_batch: adjacency/feature mismatch");
  }

  ad::Tensor embedding = encoder_->forward(tape, std::move(block_adjacency),
                                           tape.constant(stacked_features));
  BatchedForward out;
  out.log_probs.reserve(steps);
  ad::Tensor logits = actor_.forward(tape, embedding);  // (steps*n) x m
  for (std::size_t s = 0; s < steps; ++s) {
    ad::Tensor step_logits = tape.slice_rows(logits, s * n, n);
    out.log_probs.push_back(
        tape.masked_log_softmax(tape.flatten_to_row(step_logits), *action_masks[s]));
  }
  if (want_values) {
    ad::Tensor pooled = tape.mean_rows_segments(embedding, n);  // steps x h
    ad::Tensor values = critic_.forward(tape, pooled);          // steps x 1
    out.values.reserve(steps);
    for (std::size_t s = 0; s < steps; ++s) {
      out.values.push_back(tape.pick(values, s, 0));
    }
  }
  return out;
}

ad::Tensor ActorCritic::value_batch(
    ad::Tape& tape, std::shared_ptr<const la::CsrMatrix> block_adjacency,
    const la::Matrix& stacked_features, std::size_t steps) {
  NP_SPAN("nn.value_batch");
  NP_CHECK_DIMS(stacked_features.rows(), stacked_features.cols(), -1,
                config_.feature_dim, "ActorCritic::value_batch");
  if (steps == 0 || stacked_features.rows() % steps != 0) {
    throw std::invalid_argument("value_batch: feature rows not divisible by steps");
  }
  if (block_adjacency == nullptr ||
      block_adjacency->rows() != stacked_features.rows()) {
    throw std::invalid_argument("value_batch: adjacency/feature mismatch");
  }
  const std::size_t n = stacked_features.rows() / steps;
  ad::Tensor embedding = encoder_->forward(tape, std::move(block_adjacency),
                                           tape.constant(stacked_features));
  return critic_.forward(tape, tape.mean_rows_segments(embedding, n));
}

int ActorCritic::encode_action(ActionId action) const {
  if (action.units < 1 || action.units > config_.max_units_per_step) {
    throw std::invalid_argument("encode_action: units out of range");
  }
  if (action.link < 0) throw std::invalid_argument("encode_action: negative link");
  return action.link * config_.max_units_per_step + (action.units - 1);
}

ActionId ActorCritic::decode_action(int flat_index) const {
  if (flat_index < 0) throw std::invalid_argument("decode_action: negative index");
  ActionId action;
  action.link = flat_index / config_.max_units_per_step;
  action.units = flat_index % config_.max_units_per_step + 1;
  return action;
}

std::vector<ad::Parameter*> ActorCritic::all_parameters() {
  std::vector<ad::Parameter*> params = encoder_->parameters();
  for (ad::Parameter* p : actor_.parameters()) params.push_back(p);
  for (ad::Parameter* p : critic_.parameters()) params.push_back(p);
  return params;
}

}  // namespace np::nn
