#include "topo/generator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>

#include "util/log.hpp"
#include "topo/paths.hpp"
#include "util/rng.hpp"

namespace np::topo {

namespace {

constexpr double kPi = 3.14159265358979323846;

double distance(const Site& a, const Site& b) {
  const double dx = a.x - b.x, dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// True when src and dst are connected over surviving links.
bool connected_under_failure(const Topology& topo, int src, int dst,
                             const Failure& failure) {
  std::vector<bool> usable(topo.num_links());
  for (int l = 0; l < topo.num_links(); ++l) usable[l] = !topo.link_failed(l, failure);
  return !shortest_ip_path(topo, src, dst, usable).empty();
}

/// Reference plan used to derive realistic existing capacities: route
/// every flow on its shortest healthy path and size links accordingly.
std::vector<int> reference_units(const Topology& topo) {
  std::vector<int> units(topo.num_links(), 0);
  std::vector<bool> all(topo.num_links(), true);
  for (int fl = 0; fl < topo.num_flows(); ++fl) {
    const Flow& flow = topo.flow(fl);
    const auto path = shortest_ip_path(topo, flow.src, flow.dst, all);
    const int needed = static_cast<int>(
        std::ceil(flow.demand_gbps / topo.capacity_unit_gbps()));
    for (int l : path) units[l] += needed;
  }
  return units;
}

}  // namespace

Topology generate(const GeneratorParams& params) {
  if (params.regions < 1 || params.sites_per_region < 3) {
    throw std::invalid_argument("generate: need >= 1 region and >= 3 sites each");
  }
  if (params.num_flows < 1 || params.total_demand_tbps <= 0.0) {
    throw std::invalid_argument("generate: need positive traffic");
  }
  Rng rng(params.seed);
  Topology topo;
  topo.set_name(params.name);
  topo.set_capacity_unit_gbps(params.capacity_unit_gbps);
  topo.set_cost_model({params.ip_cost_per_gbps_km, 1.0});

  // ---- sites: regions on a backbone circle, sites on regional circles ----
  for (int r = 0; r < params.regions; ++r) {
    const double angle = 2.0 * kPi * r / params.regions;
    const double cx = params.backbone_radius_km * std::cos(angle);
    const double cy = params.backbone_radius_km * std::sin(angle);
    for (int s = 0; s < params.sites_per_region; ++s) {
      const double sa = 2.0 * kPi * s / params.sites_per_region;
      Site site;
      site.name = "r";
      site.name += std::to_string(r);
      site.name += 's';
      site.name += std::to_string(s);
      site.x = cx + params.region_radius_km * std::cos(sa);
      site.y = cy + params.region_radius_km * std::sin(sa);
      site.region = r;
      topo.add_site(std::move(site));
    }
  }
  auto site_id = [&](int region, int s) {
    return region * params.sites_per_region +
           ((s % params.sites_per_region) + params.sites_per_region) %
               params.sites_per_region;
  };

  // ---- fibers ----
  auto add_fiber_between = [&](int a, int b, const std::string& tag) {
    Fiber fiber;
    fiber.site_a = a;
    fiber.site_b = b;
    fiber.length_km = std::max(10.0, distance(topo.site(a), topo.site(b)));
    fiber.spectrum_ghz = params.spectrum_ghz;
    fiber.build_cost = params.fiber_cost_per_km * fiber.length_km;
    fiber.name = tag;
    return topo.add_fiber(std::move(fiber));
  };

  std::vector<int> single_fiber_links;  // fibers that carry a 1-hop IP link
  for (int r = 0; r < params.regions; ++r) {
    // Regional ring (2-connected by construction).
    for (int s = 0; s < params.sites_per_region; ++s) {
      single_fiber_links.push_back(add_fiber_between(
          site_id(r, s), site_id(r, s + 1),
          "ring-r" + std::to_string(r) + "-" + std::to_string(s)));
    }
    // Chords.
    for (int c = 0; c < params.chords_per_region && params.sites_per_region > 3; ++c) {
      const int s = static_cast<int>(rng.uniform_index(params.sites_per_region));
      const int hop = 2 + static_cast<int>(
                              rng.uniform_index(std::max(1, params.sites_per_region - 3)));
      const int a = site_id(r, s), b = site_id(r, s + hop);
      if (a == b) continue;
      single_fiber_links.push_back(
          add_fiber_between(a, b, "chord-r" + std::to_string(r) + "-" + std::to_string(c)));
    }
  }
  // Inter-region long-hauls between circle-adjacent regions, using
  // distinct site pairs for redundancy. Two regions share one pair of
  // long-hauls; three or more close the backbone into a ring.
  const int region_pairs =
      params.regions <= 1 ? 0 : (params.regions == 2 ? 1 : params.regions);
  for (int r = 0; r < region_pairs; ++r) {
    const int r2 = (r + 1) % params.regions;
    for (int k = 0; k < params.interregion_fibers; ++k) {
      single_fiber_links.push_back(add_fiber_between(
          site_id(r, k), site_id(r2, k),
          "longhaul-" + std::to_string(r) + "-" + std::to_string(r2) + "-" +
              std::to_string(k)));
    }
  }

  // ---- IP links: one per fiber, plus parallel siblings and expresses ----
  auto add_link_on_path = [&](std::vector<int> path, const std::string& tag) {
    const Fiber& first = topo.fiber(path.front());
    const Fiber& last = topo.fiber(path.back());
    IpLink link;
    if (path.size() == 1) {
      link.site_a = first.site_a;
      link.site_b = first.site_b;
    } else {
      // Endpoint of the walk: the non-shared end of first and last.
      const Fiber& second = topo.fiber(path[1]);
      link.site_a = (first.site_a == second.site_a || first.site_a == second.site_b)
                        ? first.site_b
                        : first.site_a;
      const Fiber& second_last = topo.fiber(path[path.size() - 2]);
      link.site_b =
          (last.site_a == second_last.site_a || last.site_a == second_last.site_b)
              ? last.site_b
              : last.site_a;
    }
    link.fiber_path = std::move(path);
    link.spectrum_per_unit_ghz = params.spectrum_per_unit_ghz;
    if (params.distance_adaptive_modulation) {
      double length = 0.0;
      for (int f : link.fiber_path) length += topo.fiber(f).length_km;
      if (length < params.short_reach_km) {
        link.spectrum_per_unit_ghz *= 2.0 / 3.0;  // high-order modulation
      } else if (length > params.long_reach_km) {
        link.spectrum_per_unit_ghz *= 4.0 / 3.0;  // regeneration-free low order
      }
    }
    link.name = tag;
    return topo.add_ip_link(std::move(link));
  };

  for (std::size_t i = 0; i < single_fiber_links.size(); ++i) {
    add_link_on_path({single_fiber_links[i]}, "ip-" + std::to_string(i));
  }
  // Parallel links over physically distinct second fibers.
  const int parallels = static_cast<int>(
      std::round(params.parallel_link_fraction * single_fiber_links.size()));
  std::vector<std::pair<int, int>> conduit_pairs;  // (base fiber, twin fiber)
  for (int p = 0; p < parallels; ++p) {
    const int base = single_fiber_links[rng.uniform_index(single_fiber_links.size())];
    const Fiber& fb = topo.fiber(base);
    const int twin = add_fiber_between(fb.site_a, fb.site_b, fb.name + "-twin");
    add_link_on_path({twin}, "ip-par-" + std::to_string(p));
    conduit_pairs.push_back({base, twin});
  }
  // Express IP links over two-fiber walks.
  for (int e = 0; e < params.express_links; ++e) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      const int f1 =
          single_fiber_links[rng.uniform_index(single_fiber_links.size())];
      const int f2 =
          single_fiber_links[rng.uniform_index(single_fiber_links.size())];
      if (f1 == f2) continue;
      const Fiber& a = topo.fiber(f1);
      const Fiber& b = topo.fiber(f2);
      int shared = -1;
      for (int sa : {a.site_a, a.site_b}) {
        for (int sb : {b.site_a, b.site_b}) {
          if (sa == sb) shared = sa;
        }
      }
      if (shared < 0) continue;
      const int end_a = a.site_a == shared ? a.site_b : a.site_a;
      const int end_b = b.site_a == shared ? b.site_b : b.site_a;
      if (end_a == end_b) continue;
      add_link_on_path({f1, f2}, "ip-express-" + std::to_string(e));
      break;
    }
  }

  // ---- flows: gravity model, hub-heavy when max_flow_sources is set ----
  std::vector<double> weight(topo.num_sites());
  for (double& w : weight) w = rng.uniform(0.5, 2.0);
  std::vector<bool> may_source(topo.num_sites(), true);
  if (params.max_flow_sources > 0 && params.max_flow_sources < topo.num_sites()) {
    std::vector<int> by_weight(topo.num_sites());
    for (int i = 0; i < topo.num_sites(); ++i) by_weight[i] = i;
    std::sort(by_weight.begin(), by_weight.end(),
              [&](int a, int b) { return weight[a] > weight[b]; });
    may_source.assign(topo.num_sites(), false);
    for (int k = 0; k < params.max_flow_sources; ++k) may_source[by_weight[k]] = true;
  }
  std::vector<std::pair<double, std::pair<int, int>>> gravity;
  for (int i = 0; i < topo.num_sites(); ++i) {
    if (!may_source[i]) continue;
    for (int j = 0; j < topo.num_sites(); ++j) {
      if (i == j) continue;
      const double dist = std::max(100.0, distance(topo.site(i), topo.site(j)));
      gravity.push_back({weight[i] * weight[j] / std::sqrt(dist), {i, j}});
    }
  }
  std::sort(gravity.begin(), gravity.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const int flow_count = std::min<int>(params.num_flows, static_cast<int>(gravity.size()));
  double mass = 0.0;
  for (int k = 0; k < flow_count; ++k) mass += gravity[k].first;
  for (int k = 0; k < flow_count; ++k) {
    Flow flow;
    flow.src = gravity[k].second.first;
    flow.dst = gravity[k].second.second;
    flow.demand_gbps = params.total_demand_tbps * 1000.0 * gravity[k].first / mass;
    flow.cos = rng.uniform() < params.silver_fraction ? CoS::kSilver : CoS::kGold;
    topo.add_flow(flow);
  }

  // ---- failures: sampled single-fiber cuts + site failures ----
  std::vector<int> fiber_ids(topo.num_fibers());
  for (int f = 0; f < topo.num_fibers(); ++f) fiber_ids[f] = f;
  rng.shuffle(fiber_ids);
  auto failure_is_safe = [&](const Failure& failure) {
    for (int fl = 0; fl < topo.num_flows(); ++fl) {
      const Flow& flow = topo.flow(fl);
      if (!topo.flow_required(flow, failure)) continue;
      if (!connected_under_failure(topo, flow.src, flow.dst, failure)) return false;
    }
    return true;
  };
  int added = 0;
  for (int f : fiber_ids) {
    if (added >= params.single_fiber_failures) break;
    Failure failure;
    failure.fibers = {f};
    failure.name = "cut-" + topo.fiber(f).name;
    if (failure_is_safe(failure)) {
      topo.add_failure(std::move(failure));
      ++added;
    } else {
      log_debug("generator: skipping disconnecting failure on fiber ", f);
    }
  }
  std::vector<int> site_ids(topo.num_sites());
  for (int s = 0; s < topo.num_sites(); ++s) site_ids[s] = s;
  rng.shuffle(site_ids);
  added = 0;
  for (int s : site_ids) {
    if (added >= params.site_failures) break;
    Failure failure;
    failure.sites = {s};
    failure.name = "site-" + topo.site(s).name;
    if (failure_is_safe(failure)) {
      topo.add_failure(std::move(failure));
      ++added;
    }
  }
  // Shared-conduit (SRLG) failures: both fibers of a twin pair go down
  // together, so parallel IP links do not protect each other.
  if (params.conduit_failures) {
    for (const auto& [base, twin] : conduit_pairs) {
      Failure failure;
      failure.fibers = {base, twin};
      failure.name = "conduit-" + topo.fiber(base).name;
      if (failure_is_safe(failure)) topo.add_failure(std::move(failure));
    }
  }

  // ---- existing capacity from a shortest-path reference plan ----
  if (params.initial_capacity_fraction > 0.0) {
    const std::vector<int> reference = reference_units(topo);
    for (int l = 0; l < topo.num_links(); ++l) {
      const int units = std::min(
          static_cast<int>(std::round(params.initial_capacity_fraction * reference[l])),
          topo.link_max_units(l));
      topo.set_link_initial_units(l, units);
    }
  }

  topo.validate();
  return topo;
}

GeneratorParams preset(char topology_id) {
  GeneratorParams p;
  p.name = std::string("topo-") + topology_id;
  switch (topology_id) {
    case 'A':
      p.regions = 2; p.sites_per_region = 3; p.chords_per_region = 0;
      p.interregion_fibers = 2; p.parallel_link_fraction = 0.25;
      p.express_links = 1; p.num_flows = 8; p.total_demand_tbps = 4.0;
      p.single_fiber_failures = 7; p.site_failures = 1;
      p.max_flow_sources = 4;
      break;
    case 'B':
      p.regions = 2; p.sites_per_region = 4; p.chords_per_region = 1;
      p.interregion_fibers = 2; p.parallel_link_fraction = 0.3;
      p.express_links = 2; p.num_flows = 16; p.total_demand_tbps = 10.0;
      p.single_fiber_failures = 12; p.site_failures = 2;
      p.max_flow_sources = 6;
      break;
    case 'C':
      p.regions = 3; p.sites_per_region = 4; p.chords_per_region = 1;
      p.interregion_fibers = 2; p.parallel_link_fraction = 0.3;
      p.express_links = 3; p.num_flows = 32; p.total_demand_tbps = 14.0;
      p.single_fiber_failures = 18; p.site_failures = 2;
      p.max_flow_sources = 7;
      break;
    case 'D':
      p.regions = 3; p.sites_per_region = 5; p.chords_per_region = 2;
      p.interregion_fibers = 2; p.parallel_link_fraction = 0.35;
      p.express_links = 4; p.num_flows = 48; p.total_demand_tbps = 22.0;
      p.single_fiber_failures = 26; p.site_failures = 3;
      p.max_flow_sources = 8;
      break;
    case 'E':
      p.regions = 4; p.sites_per_region = 5; p.chords_per_region = 2;
      p.interregion_fibers = 2; p.parallel_link_fraction = 0.4;
      p.express_links = 5; p.num_flows = 72; p.total_demand_tbps = 32.0;
      p.single_fiber_failures = 36; p.site_failures = 3;
      p.max_flow_sources = 9;
      break;
    default:
      throw std::invalid_argument("preset: topology id must be 'A'..'E'");
  }
  p.seed = 100u + static_cast<unsigned>(topology_id - 'A');
  return p;
}

Topology make_preset(char topology_id, unsigned seed) {
  GeneratorParams p = preset(topology_id);
  if (seed != 1) p.seed = seed;
  return generate(p);
}

Topology scale_initial_capacity(const Topology& topology, double fraction) {
  if (fraction < 0.0) {
    throw std::invalid_argument("scale_initial_capacity: negative fraction");
  }
  Topology scaled = topology;
  for (int l = 0; l < scaled.num_links(); ++l) {
    const int units = std::min(
        static_cast<int>(std::round(fraction * topology.link(l).initial_units)),
        topology.link_max_units(l));
    scaled.set_link_initial_units(l, units);
  }
  scaled.set_name(topology.name() + "-x" + std::to_string(fraction));
  return scaled;
}

}  // namespace np::topo
