# Empty dependencies file for long_term_planning.
# This may be replaced when dependencies are built.
