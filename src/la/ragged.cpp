#include "la/ragged.hpp"

#include <stdexcept>

namespace np::la {

void RaggedLayout::assign(const std::size_t* rows_per_block, std::size_t blocks) {
  if (blocks == 0) {
    throw std::invalid_argument("RaggedLayout::assign: no blocks");
  }
  offsets_.clear();
  offsets_.reserve(blocks + 1);
  offsets_.push_back(0);
  for (std::size_t b = 0; b < blocks; ++b) {
    if (rows_per_block[b] == 0) {
      throw std::invalid_argument("RaggedLayout::assign: empty block");
    }
    offsets_.push_back(offsets_.back() + rows_per_block[b]);
  }
}

}  // namespace np::la
