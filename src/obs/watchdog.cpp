#include "obs/watchdog.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/mutex.hpp"

namespace np::obs {

namespace {

using fr_detail::ThreadRecord;

Counter& stalls_counter() {
  static Counter& c = obs::counter("watchdog.stalls");
  return c;
}

Counter& scans_counter() {
  static Counter& c = obs::counter("watchdog.scans");
  return c;
}

/// Monitor-thread-only bookkeeping per thread slot: the last observed
/// heartbeat and whether the current stall episode was already flagged
/// (one stall event per episode, re-armed by any progress).
struct SlotState {
  const char* name = nullptr;
  long progress = 0;
  double ts_us = 0.0;
  bool flagged = false;
};

double clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

HeartbeatScope::HeartbeatScope(const char* name)
    : record_(fr_detail::thread_record()),
      prev_name_(nullptr),
      prev_progress_(0) {
  if (record_ == nullptr) return;
  prev_name_ = record_->hb_name.load(std::memory_order_relaxed);
  prev_progress_ = record_->hb_progress.load(std::memory_order_relaxed);
  record_->hb_progress.store(0, std::memory_order_relaxed);
  record_->hb_ts_us.store(now_us(), std::memory_order_relaxed);
  // Name last: the monitor treats a non-null name as "armed", so the
  // other fields must already be fresh when it appears.
  record_->hb_name.store(name, std::memory_order_release);
}

HeartbeatScope::~HeartbeatScope() {
  if (record_ == nullptr) return;
  record_->hb_progress.store(prev_progress_, std::memory_order_relaxed);
  // Re-stamp: the outer scope was implicitly progressing while the
  // inner one ran; it must not inherit the inner section's elapsed time.
  record_->hb_ts_us.store(now_us(), std::memory_order_relaxed);
  record_->hb_name.store(prev_name_, std::memory_order_release);
}

void HeartbeatScope::beat(long progress) {
  if (record_ == nullptr) return;
  const long next =
      progress >= 0
          ? progress
          : record_->hb_progress.load(std::memory_order_relaxed) + 1;
  record_->hb_progress.store(next, std::memory_order_relaxed);
  record_->hb_ts_us.store(now_us(), std::memory_order_relaxed);
}

struct Watchdog::Impl {
  util::Mutex mutex;
  util::CondVar cv;
  bool running NP_GUARDED_BY(mutex) = false;
  bool stop_requested NP_GUARDED_BY(mutex) = false;
  WatchdogConfig config NP_GUARDED_BY(mutex);
  /// Touched only from start()/stop(), which callers serialize (the
  /// CLI and tests drive the watchdog from one thread).
  std::thread thread;

  void monitor_loop();
};

Watchdog::Impl& Watchdog::impl() const {
  static Impl* i = new Impl();  // leaked: may outlive main, like the registry
  return *i;
}

Watchdog& Watchdog::instance() {
  static Watchdog w;
  return w;
}

namespace {

void report_stall(const ThreadRecord& r, const char* name, long progress,
                  double age_s, bool dump_on_stall) {
  fr_record(FrEventKind::kStall, name, r.tid, progress);
  stalls_counter().add(1);
  // fprintf, not util/log: np_obs must not link np_util.
  std::fprintf(stderr,
               "[np watchdog] stall: tid=%d heartbeat '%s' progress=%ld "
               "no beat for %.1fs; span stack:",
               r.tid, name, progress, age_s);
  int depth = r.span_depth.load(std::memory_order_relaxed);
  if (depth > ThreadRecord::kMaxSpanDepth) depth = ThreadRecord::kMaxSpanDepth;
  bool any = false;
  for (int i = 0; i < depth; ++i) {
    const char* frame = r.span_stack[i].load(std::memory_order_relaxed);
    if (frame == nullptr) break;
    std::fprintf(stderr, "%s %s", any ? " >" : "", frame);
    any = true;
  }
  std::fprintf(stderr, "%s\n", any ? "" : " (empty)");
  if (dump_on_stall) {
    dump_flight_record("watchdog_stall", name, "", /*fatal=*/false);
  }
}

void scan_once(std::vector<SlotState>& slots, const WatchdogConfig& cfg) {
  scans_counter().add(1);
  const int capacity = fr_detail::max_threads();
  if (static_cast<int>(slots.size()) < capacity) slots.resize(capacity);
  std::vector<ThreadRecord*> records(capacity);
  const int n = fr_detail::snapshot_thread_records(records.data(), capacity);
  const double now = now_us();
  for (int i = 0; i < n; ++i) {
    ThreadRecord& r = *records[i];
    const int slot = r.tid - 1;
    if (slot < 0 || slot >= capacity) continue;
    SlotState& s = slots[slot];
    const char* name = r.hb_name.load(std::memory_order_acquire);
    if (name == nullptr) {
      s = SlotState{};  // unmonitored: nothing armed
      continue;
    }
    const long progress = r.hb_progress.load(std::memory_order_relaxed);
    const double ts = r.hb_ts_us.load(std::memory_order_relaxed);
    if (s.name != name || s.progress != progress || s.ts_us != ts) {
      // Beat (or new scope) since the last scan: episode re-armed.
      s.name = name;
      s.progress = progress;
      s.ts_us = ts;
      s.flagged = false;
      continue;
    }
    if (s.flagged) continue;
    const double age_s = (now - ts) / 1e6;
    if (age_s > cfg.stall_seconds) {
      s.flagged = true;
      report_stall(r, name, progress, age_s, cfg.dump_on_stall);
    }
  }
}

}  // namespace

void Watchdog::Impl::monitor_loop() {
  std::vector<SlotState> slots;
  for (;;) {
    WatchdogConfig cfg;
    {
      util::LockGuard lock(mutex);
      if (stop_requested) break;
      cfg = config;
      const double poll = cfg.poll_seconds > 0.0
                              ? cfg.poll_seconds
                              : clamp(cfg.stall_seconds / 4.0, 0.01, 5.0);
      cv.wait_for(mutex, std::chrono::duration<double>(poll));
      if (stop_requested) break;
      cfg = config;
    }
    scan_once(slots, cfg);
  }
}

void Watchdog::start(const WatchdogConfig& config) {
  Impl& i = impl();
  stop();  // join any previous monitor before restarting with new config
  {
    util::LockGuard lock(i.mutex);
    i.config = config;
    i.stop_requested = false;
    i.running = true;
  }
  i.thread = std::thread([&i] { i.monitor_loop(); });
}

void Watchdog::stop() {
  Impl& i = impl();
  {
    util::LockGuard lock(i.mutex);
    if (!i.running) return;
    i.stop_requested = true;
    i.cv.notify_all();
  }
  i.thread.join();
  util::LockGuard lock(i.mutex);
  i.running = false;
}

bool Watchdog::running() const {
  Impl& i = impl();
  util::LockGuard lock(i.mutex);
  return i.running;
}

long Watchdog::stalls_flagged() const { return stalls_counter().value(); }

void configure_watchdog_from_env() {
  // std::getenv/strtod, not util/env.hpp: layering (see metrics.hpp).
  const char* v = std::getenv("NEUROPLAN_WATCHDOG");
  if (v == nullptr || v[0] == '\0') return;
  const double stall_s = std::strtod(v, nullptr);
  if (stall_s <= 0.0) return;
  WatchdogConfig config;
  config.stall_seconds = stall_s;
  const char* dump = std::getenv("NEUROPLAN_WATCHDOG_DUMP");
  config.dump_on_stall =
      dump != nullptr && dump[0] != '\0' && std::strcmp(dump, "0") != 0;
  Watchdog::instance().start(config);
}

}  // namespace np::obs
