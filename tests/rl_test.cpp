// RL environment semantics, GAE math, and a learning smoke test: the
// A2C agent must find feasible plans on a small topology and improve
// on random behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "rl/env.hpp"
#include "rl/gae.hpp"
#include "rl/history.hpp"
#include "rl/trainer.hpp"
#include "topo/generator.hpp"

namespace np::rl {
namespace {

topo::Topology small_topology() { return topo::make_preset('A'); }

EnvConfig small_env_config() {
  EnvConfig c;
  c.max_units_per_step = 4;
  c.max_trajectory_steps = 200;
  return c;
}

// ---- GAE ----

TEST(Gae, SingleStepTerminal) {
  GaeConfig config{.gamma = 0.9, .gae_lambda = 0.8};
  GaeResult r = compute_gae({2.0}, {0.5}, {true}, /*last_value=*/99.0, config);
  // Terminal: next value is 0; delta = 2.0 - 0.5.
  EXPECT_NEAR(r.advantages[0], 1.5, 1e-12);
  EXPECT_NEAR(r.rewards_to_go[0], 2.0, 1e-12);
}

TEST(Gae, TwoStepHandComputed) {
  GaeConfig config{.gamma = 0.5, .gae_lambda = 0.5};
  // Steps: r0=1 v0=2, r1=3 v1=4 (terminal).
  GaeResult r = compute_gae({1.0, 3.0}, {2.0, 4.0}, {false, true}, 0.0, config);
  const double a1 = 3.0 - 4.0;                       // delta1, terminal
  const double d0 = 1.0 + 0.5 * 4.0 - 2.0;           // r0 + gamma*v1 - v0
  const double a0 = d0 + 0.5 * 0.5 * a1;
  EXPECT_NEAR(r.advantages[1], a1, 1e-12);
  EXPECT_NEAR(r.advantages[0], a0, 1e-12);
  EXPECT_NEAR(r.rewards_to_go[1], 3.0, 1e-12);
  EXPECT_NEAR(r.rewards_to_go[0], 1.0 + 0.5 * 3.0, 1e-12);
}

TEST(Gae, BootstrapOnCutTrajectory) {
  GaeConfig config{.gamma = 1.0, .gae_lambda = 1.0};
  GaeResult r = compute_gae({1.0}, {0.0}, {false}, /*last_value=*/10.0, config);
  EXPECT_NEAR(r.advantages[0], 11.0, 1e-12);       // r + v_next - v
  EXPECT_NEAR(r.rewards_to_go[0], 11.0, 1e-12);    // bootstrapped return
}

TEST(Gae, TerminalResetsAcrossTrajectoryBoundary) {
  GaeConfig config{.gamma = 1.0, .gae_lambda = 1.0};
  // Two one-step trajectories in one buffer.
  GaeResult r = compute_gae({5.0, 7.0}, {1.0, 2.0}, {true, true}, 0.0, config);
  EXPECT_NEAR(r.advantages[0], 4.0, 1e-12);  // no leakage from step 1
  EXPECT_NEAR(r.rewards_to_go[0], 5.0, 1e-12);
  EXPECT_NEAR(r.advantages[1], 5.0, 1e-12);
  EXPECT_NEAR(r.rewards_to_go[1], 7.0, 1e-12);
}

TEST(Gae, SizeMismatchThrows) {
  EXPECT_THROW(compute_gae({1.0}, {1.0, 2.0}, {true}, 0.0, {}),
               std::invalid_argument);
}

TEST(Gae, NormalizeAdvantages) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  normalize_advantages(a);
  double mean = 0.0, var = 0.0;
  for (double x : a) mean += x;
  mean /= 4.0;
  for (double x : a) var += (x - mean) * (x - mean);
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var / 4.0, 1.0, 1e-12);
  // Degenerate cases are no-ops.
  std::vector<double> single = {5.0};
  normalize_advantages(single);
  EXPECT_DOUBLE_EQ(single[0], 5.0);
  std::vector<double> constant = {2.0, 2.0};
  normalize_advantages(constant);
  EXPECT_DOUBLE_EQ(constant[0], 2.0);
}

// ---- environment ----

TEST(Env, ResetRestoresInitialState) {
  topo::Topology t = small_topology();
  PlanningEnv env(t, small_env_config());
  EXPECT_EQ(env.total_units(), t.initial_units());
  EXPECT_EQ(env.steps_taken(), 0);
  EXPECT_FALSE(env.done());
  (void)env.step(0 * 4 + 1);  // add 2 units to link 0
  EXPECT_EQ(env.steps_taken(), 1);
  env.reset();
  EXPECT_EQ(env.total_units(), t.initial_units());
  EXPECT_EQ(env.steps_taken(), 0);
}

TEST(Env, StepAppliesUnitsAndRewardsCost) {
  topo::Topology t = small_topology();
  PlanningEnv env(t, small_env_config());
  const StepResult r = env.step(env.num_actions() >= 3 ? 2 : 0);  // link 0, 3 units
  const int added = env.total_units()[0] - t.initial_units()[0];
  EXPECT_EQ(added, 3);
  EXPECT_NEAR(r.reward, -(3 * t.link_unit_cost(0)) / env.reward_scale(), 1e-12);
  EXPECT_GE(r.reward, -1.0);
  EXPECT_LT(r.reward, 0.0);
}

TEST(Env, MaskMatchesSpectrumHeadroom) {
  topo::Topology t = small_topology();
  EnvConfig config = small_env_config();
  PlanningEnv env(t, config);
  const auto mask = env.action_mask();
  ASSERT_EQ(mask.size(), static_cast<std::size_t>(env.num_actions()));
  for (int l = 0; l < t.num_links(); ++l) {
    const int headroom = t.spectrum_headroom_units(l, env.total_units());
    for (int k = 1; k <= config.max_units_per_step; ++k) {
      EXPECT_EQ(mask[l * config.max_units_per_step + (k - 1)] != 0, k <= headroom)
          << "link " << l << " k " << k;
    }
  }
}

TEST(Env, MaskedActionThrows) {
  // Saturate link 0, then adding to it must be rejected.
  topo::Topology t = small_topology();
  EnvConfig config = small_env_config();
  config.max_trajectory_steps = 100000;
  PlanningEnv env(t, config);
  std::vector<int> units = env.total_units();
  while (t.spectrum_headroom_units(0, env.total_units()) >= config.max_units_per_step &&
         !env.done()) {
    (void)env.step(0 * config.max_units_per_step + config.max_units_per_step - 1);
  }
  if (!env.done() && t.spectrum_headroom_units(0, env.total_units()) == 0) {
    EXPECT_THROW(env.step(0), std::invalid_argument);
  }
}

TEST(Env, InvalidActionsThrow) {
  topo::Topology t = small_topology();
  PlanningEnv env(t, small_env_config());
  EXPECT_THROW(env.step(-1), std::invalid_argument);
  EXPECT_THROW(env.step(env.num_actions()), std::invalid_argument);
}

TEST(Env, TimeoutTruncatesWithPenalty) {
  topo::Topology t = small_topology();
  EnvConfig config = small_env_config();
  config.max_trajectory_steps = 1;
  PlanningEnv env(t, config);
  const StepResult r = env.step(0);
  if (!r.feasible) {
    EXPECT_TRUE(r.done);
    EXPECT_TRUE(r.truncated);
    EXPECT_LE(r.reward, -1.0);  // step cost plus -1 penalty
    EXPECT_THROW(env.step(0), std::logic_error);
  }
}

TEST(Env, SaturatingEverythingReachesFeasibility) {
  topo::Topology t = small_topology();
  EnvConfig config = small_env_config();
  config.max_trajectory_steps = 100000;
  PlanningEnv env(t, config);
  bool feasible = false;
  // Round-robin adding to every link must eventually satisfy the demand
  // (the generator guarantees plannability).
  for (int round = 0; round < 100000 && !feasible && !env.done(); ++round) {
    const auto mask = env.action_mask();
    bool acted = false;
    for (int l = 0; l < t.num_links() && !feasible; ++l) {
      const int a = l * config.max_units_per_step;  // +1 unit
      if (!mask[a]) continue;
      const StepResult r = env.step(a);
      acted = true;
      feasible = r.feasible;
      if (r.done) break;
    }
    if (!acted) break;
  }
  EXPECT_TRUE(feasible);
  EXPECT_GT(env.added_cost(), 0.0);
}

TEST(Env, FeaturesTrackCapacity) {
  topo::Topology t = small_topology();
  PlanningEnv env(t, small_env_config());
  const la::Matrix before = env.features();
  (void)env.step(3);  // link 0, 4 units
  const la::Matrix after = env.features();
  EXPECT_GT(la::max_abs_diff(before, after), 0.0);
}

TEST(Env, AddedCostMatchesTopologyPlanCost) {
  topo::Topology t = small_topology();
  PlanningEnv env(t, small_env_config());
  (void)env.step(1);  // link 0, 2 units
  if (!env.done()) (void)env.step(1 * 4 + 0);  // link 1, 1 unit
  EXPECT_NEAR(env.added_cost(), t.plan_cost(env.added_units()), 1e-9);
}

// ---- trainer smoke tests ----

TrainConfig smoke_config() {
  TrainConfig c;
  c.env = small_env_config();
  c.network.gcn_layers = 2;
  c.network.gcn_hidden = 16;
  c.network.mlp_hidden = {32, 32};
  c.epochs = 6;
  c.steps_per_epoch = 192;
  c.chunk_steps = 48;
  c.seed = 3;
  return c;
}

TEST(Trainer, FindsFeasiblePlansAndImproves) {
  topo::Topology t = small_topology();
  A2cTrainer trainer(t, smoke_config());
  const std::vector<EpochStats> history = trainer.train();
  ASSERT_EQ(history.size(), 6u);
  EXPECT_TRUE(trainer.has_feasible_plan());
  // The best plan must actually be feasible per an independent evaluator.
  plan::PlanEvaluator eval(t, plan::EvaluatorMode::kSourceAggregation);
  std::vector<int> total = t.initial_units();
  const std::vector<int>& added = trainer.best_added_units();
  ASSERT_EQ(added.size(), static_cast<std::size_t>(t.num_links()));
  for (int l = 0; l < t.num_links(); ++l) total[l] += added[l];
  EXPECT_TRUE(eval.check(total).feasible);
  EXPECT_NEAR(trainer.best_cost(), t.plan_cost(added), 1e-9);
  // Training statistics are populated.
  for (const EpochStats& s : history) {
    EXPECT_GT(s.steps, 0);
    EXPECT_GT(s.trajectories, 0);
    EXPECT_GE(s.seconds, 0.0);
  }
}

TEST(Trainer, DeterministicForSeed) {
  topo::Topology t = small_topology();
  TrainConfig c = smoke_config();
  c.epochs = 2;
  A2cTrainer a(t, c), b(t, c);
  const auto ha = a.train();
  const auto hb = b.train();
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_DOUBLE_EQ(ha[i].mean_return, hb[i].mean_return);
    EXPECT_EQ(ha[i].trajectories, hb[i].trajectories);
  }
  EXPECT_DOUBLE_EQ(a.best_cost(), b.best_cost());
}

TEST(Trainer, PatienceStopsEarly) {
  topo::Topology t = small_topology();
  TrainConfig c = smoke_config();
  c.epochs = 50;
  c.patience = 2;
  A2cTrainer trainer(t, c);
  const auto history = trainer.train();
  EXPECT_LT(history.size(), 50u);  // must stop well before 50 epochs
}

TEST(Trainer, RejectsBadConfig) {
  topo::Topology t = small_topology();
  TrainConfig c = smoke_config();
  c.steps_per_epoch = 0;
  EXPECT_THROW(A2cTrainer(t, c), std::invalid_argument);
}

TEST(Trainer, PpoClippedUpdatesRun) {
  topo::Topology t = small_topology();
  TrainConfig c = smoke_config();
  c.epochs = 3;
  c.ppo_clip = 0.2;
  c.update_iterations = 4;
  A2cTrainer trainer(t, c);
  const auto history = trainer.train();
  EXPECT_EQ(history.size(), 3u);
  EXPECT_TRUE(trainer.has_feasible_plan());
}

TEST(Trainer, GreedyRolloutProducesVerifiedPlan) {
  topo::Topology t = small_topology();
  TrainConfig c = smoke_config();
  c.epochs = 3;
  A2cTrainer trainer(t, c);
  trainer.train();
  const bool feasible = trainer.greedy_rollout();
  if (feasible) {
    plan::PlanEvaluator eval(t, plan::EvaluatorMode::kSourceAggregation);
    std::vector<int> total = t.initial_units();
    for (int l = 0; l < t.num_links(); ++l) total[l] += trainer.best_added_units()[l];
    EXPECT_TRUE(eval.check(total).feasible);
  }
}

TEST(History, CsvExportRoundTrips) {
  std::vector<EpochStats> history(2);
  history[0].epoch = 1;
  history[0].steps = 100;
  history[0].trajectories = 4;
  history[0].feasible_trajectories = 3;
  history[0].mean_return = -2.5;
  history[0].best_cost_so_far = 1e300;  // none yet
  history[0].seconds = 2.5;
  history[0].rollout_seconds = 1.25;
  history[1].epoch = 2;
  history[1].steps = 100;
  history[1].trajectories = 5;
  history[1].feasible_trajectories = 5;
  history[1].mean_return = -1.25;
  history[1].best_cost_so_far = 123.5;
  history[1].seconds = 4.5;
  history[1].rollout_seconds = 3.5;
  std::ostringstream os;
  write_history_csv(history, os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("epoch,steps,trajectories"), std::string::npos);
  EXPECT_NE(csv.find("best_cost,seconds,rollout_seconds"), std::string::npos);
  EXPECT_NE(csv.find("1,100,4,3,-2.5,,2.5,1.25\n"), std::string::npos);  // empty best
  EXPECT_NE(csv.find("2,100,5,5,-1.25,123.5,4.5,3.5"), std::string::npos);
  EXPECT_THROW(write_history_csv_file(history, "/nonexistent/dir/x.csv"),
               std::runtime_error);
}

TEST(Trainer, EvaluatePolicyReportsStatistics) {
  topo::Topology t = small_topology();
  TrainConfig c = smoke_config();
  c.epochs = 2;
  A2cTrainer trainer(t, c);
  trainer.train();
  const A2cTrainer::PolicyEvaluation eval = trainer.evaluate_policy(4);
  EXPECT_EQ(eval.rollouts, 4);
  EXPECT_GE(eval.feasible, 0);
  EXPECT_LE(eval.feasible, 4);
  if (eval.feasible > 0) {
    EXPECT_GT(eval.best_cost, 0.0);
    EXPECT_GE(eval.mean_cost, eval.best_cost);
    // Best plan tracker can only have improved.
    EXPECT_LE(trainer.best_cost(), eval.best_cost + 1e-9);
  }
  EXPECT_THROW(trainer.evaluate_policy(0), std::invalid_argument);
}

void expect_epochs_identical(const std::vector<EpochStats>& a,
                             const std::vector<EpochStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].epoch, b[i].epoch);
    EXPECT_EQ(a[i].steps, b[i].steps);
    EXPECT_EQ(a[i].trajectories, b[i].trajectories);
    EXPECT_EQ(a[i].feasible_trajectories, b[i].feasible_trajectories);
    EXPECT_DOUBLE_EQ(a[i].mean_return, b[i].mean_return);
    EXPECT_DOUBLE_EQ(a[i].best_cost_in_epoch, b[i].best_cost_in_epoch);
    EXPECT_DOUBLE_EQ(a[i].best_cost_so_far, b[i].best_cost_so_far);
  }
}

TEST(Trainer, SingleWorkerReproducesSerialTrainer) {
  // rollout_workers == 1 must be the seed serial trainer, bit for bit:
  // the borrowed-mode RolloutWorkers shares the trainer's env and RNG
  // and replays the exact serial operation sequence.
  topo::Topology t = small_topology();
  TrainConfig serial = smoke_config();
  serial.epochs = 2;
  TrainConfig explicit_one = serial;
  explicit_one.rollout_workers = 1;
  A2cTrainer a(t, serial), b(t, explicit_one);
  const auto ha = a.train();
  const auto hb = b.train();
  expect_epochs_identical(ha, hb);
  EXPECT_DOUBLE_EQ(a.best_cost(), b.best_cost());
}

TEST(Trainer, MultiWorkerRolloutIsReproducible) {
  // K = 4 lockstep rollouts must be a pure function of (seed, K):
  // identical stats across two runs regardless of thread scheduling.
  topo::Topology t = small_topology();
  TrainConfig c = smoke_config();
  c.epochs = 2;
  c.rollout_workers = 4;
  A2cTrainer a(t, c), b(t, c);
  const auto ha = a.train();
  const auto hb = b.train();
  expect_epochs_identical(ha, hb);
  EXPECT_DOUBLE_EQ(a.best_cost(), b.best_cost());
  // Network weights must agree bitwise as well.
  auto pa = a.network().all_parameters();
  auto pb = b.network().all_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(la::max_abs_diff(pa[i]->value, pb[i]->value), 0.0);
  }
}

TEST(Trainer, MultiWorkerFillsStepBudget) {
  topo::Topology t = small_topology();
  TrainConfig c = smoke_config();
  c.epochs = 1;
  c.rollout_workers = 3;
  A2cTrainer trainer(t, c);
  const EpochStats s = trainer.run_epoch();
  EXPECT_EQ(s.steps, c.steps_per_epoch);
  EXPECT_GT(s.trajectories, 0);
  EXPECT_GE(s.rollout_seconds, 0.0);
  EXPECT_LE(s.rollout_seconds, s.seconds);
}

TEST(Trainer, RejectsBadRolloutWorkers) {
  topo::Topology t = small_topology();
  TrainConfig c = smoke_config();
  c.rollout_workers = 0;
  EXPECT_THROW(A2cTrainer(t, c), std::invalid_argument);
}

TEST(Trainer, BatchedUpdatesStayCloseToPerStep) {
  // The batched recomputation reorders float accumulation in the
  // backward pass, so parameters drift by ulps, not semantics: after
  // one epoch from identical init, rollout stats are identical and the
  // resulting weights agree to tight tolerance.
  topo::Topology t = small_topology();
  TrainConfig per_step = smoke_config();
  per_step.epochs = 1;
  TrainConfig batched = per_step;
  batched.batched_updates = true;
  A2cTrainer a(t, per_step), b(t, batched);
  const EpochStats sa = a.run_epoch();
  const EpochStats sb = b.run_epoch();
  // Epoch-1 rollouts run before any update: identical by construction.
  EXPECT_EQ(sa.trajectories, sb.trajectories);
  EXPECT_DOUBLE_EQ(sa.mean_return, sb.mean_return);
  auto pa = a.network().all_parameters();
  auto pb = b.network().all_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LT(la::max_abs_diff(pa[i]->value, pb[i]->value), 1e-8);
  }
}

TEST(Env, ParallelEvaluatorThreadsMatchSequential) {
  // Same action sequence, same rewards/verdicts, whichever evaluator
  // backs the env.
  topo::Topology t = small_topology();
  EnvConfig sequential_config = small_env_config();
  EnvConfig parallel_config = sequential_config;
  parallel_config.evaluator_threads = 2;
  PlanningEnv sequential(t, sequential_config);
  PlanningEnv parallel(t, parallel_config);
  for (int i = 0; i < 30 && !sequential.done(); ++i) {
    const auto mask = sequential.action_mask();
    int action = -1;
    const std::size_t start = (static_cast<std::size_t>(i) * 7) % mask.size();
    for (std::size_t k = 0; k < mask.size(); ++k) {
      const std::size_t idx = (start + k) % mask.size();
      if (mask[idx]) {
        action = static_cast<int>(idx);
        break;
      }
    }
    ASSERT_GE(action, 0);
    const StepResult rs = sequential.step(action);
    const StepResult rp = parallel.step(action);
    EXPECT_DOUBLE_EQ(rp.reward, rs.reward);
    EXPECT_EQ(rp.done, rs.done);
    EXPECT_EQ(rp.feasible, rs.feasible);
    if (rs.done) break;
  }
  EXPECT_THROW(
      [&] {
        EnvConfig bad = small_env_config();
        bad.evaluator_threads = 0;
        PlanningEnv env(t, bad);
      }(),
      std::invalid_argument);
}

TEST(Trainer, WorksWithoutGnn) {
  // Figure 10's 0-layer ablation must run end to end.
  topo::Topology t = small_topology();
  TrainConfig c = smoke_config();
  c.network.gcn_layers = 0;
  c.epochs = 2;
  A2cTrainer trainer(t, c);
  EXPECT_NO_THROW(trainer.train());
}

}  // namespace
}  // namespace np::rl
