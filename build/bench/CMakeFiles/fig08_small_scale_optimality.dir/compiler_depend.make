# Empty compiler generated dependencies file for fig08_small_scale_optimality.
# This may be replaced when dependencies are built.
