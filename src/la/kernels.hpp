// Inference kernels: raw-pointer, allocation-free building blocks for
// the tape-free forward path (nn::InferenceEngine).
//
// Every kernel accumulates each output element over its reduction
// dimension in strictly ascending order — the same order la::Matrix
// and ad::Tape use — so a fast-path forward is BIT-IDENTICAL to the
// tape forward it replaces (the determinism suite relies on this; see
// docs/INTERNALS.md §8). Speed comes from register blocking (4 output
// rows share every B-panel load), cache tiling of the k/j loops,
// row-chunked CSR SpMM, and fused bias+activation epilogues — not from
// reassociating sums.
//
// All outputs are caller-allocated (typically from an la::Arena);
// kernels never touch the heap.
#pragma once

#include <cstddef>
#include <cstdint>

#include "la/sparse.hpp"

namespace np::la::kernels {

enum class Activation { kNone, kRelu };

/// out (n x m) = a (n x k) @ b (k x m), all row-major. `out` need not
/// be initialized. Bit-identical to la::Matrix::matmul.
void matmul(const double* a, std::size_t n, std::size_t k, const double* b,
            std::size_t m, double* out);

/// Fused linear layer: out = act(a @ b + bias), with `bias` a length-m
/// row (nullptr = no bias). The epilogue applies bias then activation
/// elementwise, matching tape add_row_broadcast + relu bitwise.
void matmul_bias_act(const double* a, std::size_t n, std::size_t k,
                     const double* b, std::size_t m, const double* bias,
                     Activation act, double* out);

/// out (rows x cols) = A (rows x ?) @ x, row-chunked CSR SpMM.
/// Bit-identical to CsrMatrix::multiply (per-row nnz order ascending).
void spmm(const CsrMatrix& a, const double* x, std::size_t cols, double* out);

/// Elementwise max(x + bias, 0) over `n` rows of width `m` (the GCN
/// layer epilogue when the product came from spmm-then-matmul).
void bias_relu(double* x, std::size_t n, std::size_t m, const double* bias,
               Activation act);

/// out (1 x c) = column means of x (n x c), sum-ascending-then-scale —
/// bit-identical to Tape::mean_rows / mean_rows_segments per segment.
void mean_rows(const double* x, std::size_t n, std::size_t c, double* out);

/// Masked log-softmax over a length-k row: invalid entries get -1e30,
/// valid entries x[i] - log(sum exp). Bit-identical to
/// Tape::masked_log_softmax. Throws std::invalid_argument when no
/// entry is valid.
void masked_log_softmax(const double* logits, const std::uint8_t* mask,
                        std::size_t k, double* out);

/// Single-head GAT aggregation over the CSR adjacency pattern
/// (neighbor order = ascending column index, exactly the order
/// GatEncoder::neighbor_lists produces): for each node i,
///   out_i = sum_j softmax_j(LeakyReLU(src_i + dst_j)) * z_j.
/// `scratch` must hold at least max-row-nnz doubles (attention weights
/// for one node). Bit-identical to Tape::gat_aggregate's forward.
void gat_aggregate(const CsrMatrix& adjacency, const double* src,
                   const double* dst, const double* z, std::size_t cols,
                   double leaky_slope, double* scratch, double* out);

}  // namespace np::la::kernels
