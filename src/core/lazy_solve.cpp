#include "core/lazy_solve.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "plan/evaluator.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace np::core {

LazySolveResult lazy_solve(const topo::Topology& topology,
                           plan::FormulationOptions base,
                           const LazySolveConfig& config) {
  Stopwatch watch;
  LazySolveResult result;
  plan::PlanEvaluator evaluator(topology, plan::EvaluatorMode::kSourceAggregation);

  auto check_full = [&](const std::vector<int>& added) {
    std::vector<int> total = topology.initial_units();
    for (int l = 0; l < topology.num_links(); ++l) total[l] += added[l];
    const plan::CheckResult check = evaluator.check(total);
    evaluator.reset();  // plans are not monotone across rounds
    return check;
  };

  // Best plan known to satisfy EVERY scenario; seeded with the caller's
  // plan when provided. Returned on any exit path, so resource limits
  // degrade quality instead of dropping feasibility.
  bool have_best = false;
  std::vector<int> best_added;
  double best_cost = 0.0;
  if (!config.seed_added_units.empty()) {
    if (config.seed_added_units.size() !=
        static_cast<std::size_t>(topology.num_links())) {
      throw std::invalid_argument("lazy_solve: seed plan size mismatch");
    }
    if (check_full(config.seed_added_units).feasible) {
      have_best = true;
      best_added = config.seed_added_units;
      best_cost = topology.plan_cost(best_added);
    } else {
      log_warn("lazy_solve: seed plan is not feasible; ignored");
    }
  }

  std::set<int> selected;
  for (int k = 0; k < std::min(config.initial_failures, topology.num_failures());
       ++k) {
    selected.insert(k);
  }
  for (int k : config.initial_scenario_set) {
    if (k < 0 || k >= topology.num_failures()) {
      throw std::invalid_argument("lazy_solve: initial scenario out of range");
    }
    selected.insert(k);
  }

  // Warm-start plan for the next round: feasible for the CURRENT
  // selected scenario set (a weaker requirement than `best_added`,
  // which must satisfy everything). Repaired forward as scenarios are
  // added, so each round starts from the previous round's good plan
  // instead of the expensive caller seed.
  std::vector<int> round_seed =
      have_best ? best_added : std::vector<int>();

  // Top up `plan` so it also survives `failure_index`, changing nothing
  // else (sound: capacity growth preserves already-satisfied scenarios).
  auto repair_for_scenario = [&](const std::vector<int>& plan,
                                 int failure_index,
                                 double budget_seconds) -> std::vector<int> {
    plan::FormulationOptions repair = base;
    repair.min_added_units = plan;
    repair.use_all_failures = false;
    repair.failure_subset = {failure_index};
    repair.include_healthy = true;
    repair.max_total_cost = 0.0;  // the cutoff may exclude every top-up
    plan::PlanningMilp milp(topology, repair);
    milp::MilpOptions options;
    options.relative_gap = 0.05;  // any cheap top-up will do
    options.time_limit_seconds = budget_seconds;
    const milp::MilpResult solved = milp::solve(milp.model(), options);
    result.lp_iterations += solved.lp_iterations;
    if (!solved.has_incumbent) return {};
    return milp.extract_added_units(solved.x);
  };

  // Finisher: turn a subset-feasible plan into an overall-feasible one
  // by repairing violated scenarios one at a time. Capacity only grows,
  // so each repaired scenario stays repaired and the loop terminates in
  // at most num_failures small MILPs. Runs when the round loop exits
  // with a promising round plan that never survived every scenario.
  auto repair_to_feasibility = [&](std::vector<int> plan, double budget_seconds) {
    Stopwatch finisher_watch;
    for (int pass = 0; pass <= topology.num_failures(); ++pass) {
      if (have_best && topology.plan_cost(plan) >= best_cost) return;  // pointless
      const plan::CheckResult check = check_full(plan);
      if (check.feasible) {
        const double cost = topology.plan_cost(plan);
        if (!have_best || cost < best_cost) {
          have_best = true;
          best_added = std::move(plan);
          best_cost = cost;
          log_debug("lazy: finisher produced overall-feasible plan, cost ", cost);
        }
        return;
      }
      const double remaining = budget_seconds - finisher_watch.seconds();
      if (remaining <= 0.5 || check.violated_scenario < 1) return;
      std::vector<int> repaired = repair_for_scenario(
          plan, check.violated_scenario - 1, std::min(5.0, remaining));
      if (repaired.empty()) return;
      plan = std::move(repaired);
    }
  };

  auto finish = [&](bool timed_out, std::string detail) {
    if (!round_seed.empty()) {
      repair_to_feasibility(round_seed,
                            std::max(20.0, 0.3 * config.total_time_limit_seconds));
    }
    result.plan.timed_out = timed_out;
    result.plan.detail = std::move(detail);
    if (have_best) {
      result.plan.feasible = true;
      result.plan.added_units = best_added;
      result.plan.cost = best_cost;
    }
    result.scenarios_used = static_cast<int>(selected.size());
    result.binding_failures.assign(selected.begin(), selected.end());
    result.plan.seconds = watch.seconds();
    return result;
  };

  for (int round = 0; round < config.max_rounds; ++round) {
    ++result.rounds;
    base.include_healthy = true;
    base.use_all_failures = false;
    base.failure_subset.assign(selected.begin(), selected.end());
    plan::PlanningMilp milp(topology, base);

    std::vector<double> seed;
    if (!round_seed.empty()) {
      seed.assign(milp.model().num_variables(), 0.0);
      for (int l = 0; l < topology.num_links(); ++l) {
        seed[milp.added_var(l)] =
            std::ceil(static_cast<double>(round_seed[l]) / milp.unit_multiplier() -
                      1e-9);
      }
    }

    milp::MilpOptions milp_options;
    if (!seed.empty()) milp_options.integer_warm_start = &seed;
    milp_options.relative_gap = config.relative_gap;
    milp_options.time_limit_seconds =
        std::min(config.time_limit_per_solve_seconds,
                 config.total_time_limit_seconds - watch.seconds());
    if (milp_options.time_limit_seconds <= 0.0) {
      return finish(true, "lazy: total time limit after " +
                              std::to_string(result.rounds - 1) + " rounds");
    }
    const milp::MilpResult solved = milp::solve(milp.model(), milp_options);
    result.lp_iterations += solved.lp_iterations;

    if (!solved.has_incumbent) {
      const bool timed_out = solved.status == milp::MilpStatus::kTimeLimit ||
                             solved.status == milp::MilpStatus::kNodeLimit;
      return finish(timed_out,
                    std::string("lazy: round produced no incumbent (") +
                        milp::to_string(solved.status) + ")");
    }

    const std::vector<int> added = milp.extract_added_units(solved.x);
    const plan::CheckResult check = check_full(added);

    if (check.feasible) {
      const double cost = topology.plan_cost(added);
      if (!have_best || cost < best_cost) {
        have_best = true;
        best_added = added;
        best_cost = cost;
      }
      return finish(solved.status == milp::MilpStatus::kTimeLimit,
                    std::string("lazy: ") + milp::to_string(solved.status) +
                        " after " + std::to_string(result.rounds) + " rounds / " +
                        std::to_string(selected.size()) + " failure scenarios");
    }

    const int violated_failure = check.violated_scenario - 1;  // 0 = healthy
    if (violated_failure < 0 || selected.count(violated_failure) > 0) {
      // A repeat violation can only come from a time-limited round whose
      // incumbent is not subset-optimal, or from multiplier rounding.
      return finish(false, "lazy: stalled (scenario " +
                               std::to_string(check.violated_scenario) +
                               " repeats)");
    }
    selected.insert(violated_failure);
    log_debug("lazy: adding failure scenario ", violated_failure, " (round ",
              round + 1, ")");

    // Repair the round's plan for the new scenario; the result is
    // feasible for the whole new selected set and becomes the next
    // round's warm start (and a best-plan candidate when it happens to
    // survive everything).
    const double repair_budget = std::min(
        {10.0, config.time_limit_per_solve_seconds / 2.0,
         config.total_time_limit_seconds - watch.seconds()});
    if (repair_budget > 0.5) {
      std::vector<int> repaired =
          repair_for_scenario(added, violated_failure, repair_budget);
      // A repaired plan above the caller's cost cutoff would violate the
      // cutoff row next round; fall back to the overall-feasible best.
      if (!repaired.empty() && base.max_total_cost > 0.0 &&
          topology.plan_cost(repaired) > base.max_total_cost) {
        repaired = have_best ? best_added : std::vector<int>();
      }
      if (!repaired.empty()) {
        round_seed = repaired;
        const plan::CheckResult full = check_full(repaired);
        if (full.feasible) {
          const double cost = topology.plan_cost(repaired);
          if (!have_best || cost < best_cost) {
            have_best = true;
            best_added = std::move(repaired);
            best_cost = cost;
            log_debug("lazy: repair produced overall-feasible plan, cost ", cost);
          }
        }
      }
    }
  }
  return finish(false, "lazy: round limit reached");
}

}  // namespace np::core
