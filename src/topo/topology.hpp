// Cross-layer WAN topology model (§2 and §3.1 of the paper).
//
// The optical layer is a graph of sites (nodes) and fibers; the IP
// layer is an overlay of IP links, each mapped onto a path of fibers
// (Ψ_l). Parallel IP links between the same site pair over different
// fiber paths are first-class. Traffic is a set of site-to-site flows
// with a Class of Service; failures are sets of fibers and/or sites; a
// reliability policy says which CoS must survive which failures.
//
// Capacity is counted in integer units of `capacity_unit_gbps` ("each
// IP link can only be turned up in fixed capacity unit"). The cost
// model follows Eq. 1 with the fiber cost amortized per capacity unit
// so the objective stays linear in the unit counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace np::topo {

/// An IP/optical site.
struct Site {
  std::string name;
  double x = 0.0;  ///< abstract map coordinates; used for distances
  double y = 0.0;
  int region = 0;  ///< operational/management block (used by heuristics)
};

/// An optical fiber (pair) between two sites.
struct Fiber {
  int site_a = -1;
  int site_b = -1;
  double length_km = 0.0;
  /// Maximum available spectrum S_f, in GHz.
  double spectrum_ghz = 0.0;
  /// One-time procurement + light-up cost for this fiber.
  double build_cost = 0.0;
  /// False for long-term candidate fibers that are not yet built.
  bool existing = true;
  std::string name;
};

/// An IP link riding a path of fibers.
struct IpLink {
  int site_a = -1;
  int site_b = -1;
  /// Fiber indices of the underlying path Ψ_l (order follows the path).
  std::vector<int> fiber_path;
  /// Spectrum consumed per capacity unit on each fiber of the path
  /// (φ_lf, uniform along the path), in GHz per unit.
  double spectrum_per_unit_ghz = 1.0;
  /// Capacity currently deployed, in units (C_l^min of Eq. 5; zero for
  /// long-term candidate links).
  int initial_units = 0;
  std::string name;
};

/// Class of Service of a flow. Lower values are more protected.
enum class CoS : std::uint8_t {
  kGold = 0,    ///< must be satisfied under every failure scenario
  kSilver = 1,  ///< must be satisfied when the network is healthy
};

/// A site-to-site traffic demand.
struct Flow {
  int src = -1;
  int dst = -1;
  double demand_gbps = 0.0;
  CoS cos = CoS::kGold;
};

/// A failure scenario: the listed fibers and sites go down together.
struct Failure {
  std::vector<int> fibers;
  std::vector<int> sites;
  std::string name;
};

/// Reliability policy (§4.1): which CoS classes must be satisfied under
/// failures. The healthy network must always satisfy every flow.
struct ReliabilityPolicy {
  /// Most permissive CoS (inclusive) that must survive failures;
  /// e.g. kGold -> only gold flows are checked under failures.
  CoS protected_under_failure = CoS::kGold;
};

/// Cost model (Eq. 1): IP cost per Gbps per km plus amortized fiber cost.
struct CostModel {
  double ip_cost_per_gbps_km = 1.0;
  /// Fraction of a fiber's build cost charged per GHz of spectrum used.
  /// Keeps the objective linear while charging links for the fibers
  /// underneath them (Eq. 1's second term).
  double fiber_cost_per_ghz_fraction = 1.0;
};

class Topology {
 public:
  // ---- construction ----
  int add_site(Site site);
  int add_fiber(Fiber fiber);       ///< endpoints must exist, length/spectrum > 0
  int add_ip_link(IpLink link);     ///< fiber path must connect the endpoints
  int add_flow(Flow flow);          ///< endpoints must exist and differ
  int add_failure(Failure failure); ///< referenced fibers/sites must exist

  void set_capacity_unit_gbps(double gbps);

  /// Adjust a link's existing capacity (generator / A-x variants). The
  /// new value must be within [0, link_max_units].
  void set_link_initial_units(int link, int units);
  void set_cost_model(CostModel model) { cost_model_ = model; }
  void set_reliability_policy(ReliabilityPolicy policy) { policy_ = policy; }
  void set_name(std::string name) { name_ = std::move(name); }

  // ---- accessors ----
  const std::string& name() const { return name_; }
  int num_sites() const { return static_cast<int>(sites_.size()); }
  int num_fibers() const { return static_cast<int>(fibers_.size()); }
  int num_links() const { return static_cast<int>(links_.size()); }
  int num_flows() const { return static_cast<int>(flows_.size()); }
  int num_failures() const { return static_cast<int>(failures_.size()); }

  const Site& site(int i) const { return sites_.at(i); }
  const Fiber& fiber(int i) const { return fibers_.at(i); }
  const IpLink& link(int i) const { return links_.at(i); }
  const Flow& flow(int i) const { return flows_.at(i); }
  const Failure& failure(int i) const { return failures_.at(i); }

  const std::vector<Site>& sites() const { return sites_; }
  const std::vector<Fiber>& fibers() const { return fibers_; }
  const std::vector<IpLink>& links() const { return links_; }
  const std::vector<Flow>& flows() const { return flows_; }
  const std::vector<Failure>& failures() const { return failures_; }

  double capacity_unit_gbps() const { return capacity_unit_gbps_; }
  const CostModel& cost_model() const { return cost_model_; }
  const ReliabilityPolicy& reliability_policy() const { return policy_; }

  // ---- derived quantities ----

  /// Length of an IP link = sum of its fiber lengths.
  double link_length_km(int link) const;

  /// Δ_f: IP links whose path contains fiber `f`.
  const std::vector<int>& links_over_fiber(int fiber) const;

  /// Hard cap on a link's units from the spectrum of its fibers, when
  /// the link were alone on them (per-fiber sharing is enforced by the
  /// spectrum constraint, this is just a finite upper bound for ILPs).
  int link_max_units(int link) const;

  /// Cost of one capacity unit on `link` (Eq. 1, amortized form):
  /// unit_gbps * ip_cost_per_gbps_km * length +
  /// sum over fibers of build_cost * fraction * spectrum_per_unit / S_f.
  double link_unit_cost(int link) const;

  /// Cost of a plan given per-link *added* units (size num_links()).
  double plan_cost(const std::vector<int>& added_units) const;

  /// True if `link` is down under `failure` (a path fiber failed or an
  /// endpoint site failed).
  bool link_failed(int link, const Failure& failure) const;

  /// True if `flow` must be satisfied under `failure` per the policy
  /// (its endpoints are up and its CoS is protected).
  bool flow_required(const Flow& flow, const Failure& failure) const;

  /// Spectrum used on `fiber` by per-link total unit counts.
  double fiber_spectrum_used(int fiber, const std::vector<int>& total_units) const;

  /// Max additional units on `link` before some fiber on its path would
  /// exceed its spectrum, given current total units (the action mask's
  /// ground truth, Eq. 4).
  int spectrum_headroom_units(int link, const std::vector<int>& total_units) const;

  /// Initial per-link unit vector (C^min of Eq. 5).
  std::vector<int> initial_units() const;

  /// Full structural validation; throws std::invalid_argument with a
  /// message naming the offending entity.
  void validate() const;

 private:
  std::string name_ = "unnamed";
  std::vector<Site> sites_;
  std::vector<Fiber> fibers_;
  std::vector<IpLink> links_;
  std::vector<Flow> flows_;
  std::vector<Failure> failures_;
  std::vector<std::vector<int>> links_over_fiber_;  // fiber -> link indices
  double capacity_unit_gbps_ = 100.0;
  CostModel cost_model_;
  ReliabilityPolicy policy_;
};

}  // namespace np::topo
