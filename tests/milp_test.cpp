// Branch-and-bound correctness: knapsacks and covering problems with
// known optima, status/limit handling, warm starts, and a property
// sweep against exhaustive enumeration over small integer boxes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "milp/branch_and_bound.hpp"
#include "util/rng.hpp"

namespace np::milp {
namespace {

using lp::kInfinity;

TEST(Milp, PureLpPassesThrough) {
  lp::Model m;
  const int x = m.add_variable(0.0, 4.0, -1.0);
  m.add_row(-kInfinity, 2.5, {{x, 1.0}});
  MilpResult r = np::milp::solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.5, 1e-7);  // no integer vars: LP optimum
}

TEST(Milp, IntegerRoundingMatters) {
  // max x st x <= 2.5, x integer -> 2 (LP would give 2.5).
  lp::Model m;
  const int x = m.add_variable(0.0, 10.0, -1.0, "x", /*is_integer=*/true);
  m.add_row(-kInfinity, 2.5, {{x, 1.0}});
  MilpResult r = np::milp::solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, 1e-7);
  EXPECT_NEAR(r.x[x], 2.0, 1e-9);
}

TEST(Milp, KnapsackKnownOptimum) {
  // max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary -> a=0 b=c=1 value 20.
  lp::Model m;
  const int a = m.add_variable(0.0, 1.0, -10.0, "a", true);
  const int b = m.add_variable(0.0, 1.0, -13.0, "b", true);
  const int c = m.add_variable(0.0, 1.0, -7.0, "c", true);
  m.add_row(-kInfinity, 6.0, {{a, 3.0}, {b, 4.0}, {c, 2.0}});
  MilpResult r = np::milp::solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -20.0, 1e-7);
  EXPECT_NEAR(r.x[a], 0.0, 1e-9);
  EXPECT_NEAR(r.x[b], 1.0, 1e-9);
  EXPECT_NEAR(r.x[c], 1.0, 1e-9);
}

TEST(Milp, MixedIntegerContinuous) {
  // min 2u + v st u + v >= 3.5, u integer, v in [0, 1] -> u=3, v=0.5, obj 6.5.
  lp::Model m;
  const int u = m.add_variable(0.0, 10.0, 2.0, "u", true);
  const int v = m.add_variable(0.0, 1.0, 1.0, "v");
  m.add_row(3.5, kInfinity, {{u, 1.0}, {v, 1.0}});
  MilpResult r = np::milp::solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 6.5, 1e-7);
  EXPECT_NEAR(r.x[u], 3.0, 1e-9);
  EXPECT_NEAR(r.x[v], 0.5, 1e-7);
}

TEST(Milp, InfeasibleIntegerBox) {
  // 0.4 <= x <= 0.6 with x integer has no solution.
  lp::Model m;
  m.add_variable(0.4, 0.6, 1.0, "x", true);
  EXPECT_EQ(np::milp::solve(m).status, MilpStatus::kInfeasible);
}

TEST(Milp, InfeasibleLpRelaxation) {
  lp::Model m;
  const int x = m.add_variable(0.0, 1.0, 1.0, "x", true);
  m.add_row(5.0, kInfinity, {{x, 1.0}});
  EXPECT_EQ(np::milp::solve(m).status, MilpStatus::kInfeasible);
}

TEST(Milp, UnboundedDetected) {
  lp::Model m;
  m.add_variable(0.0, kInfinity, -1.0, "x", true);
  EXPECT_EQ(np::milp::solve(m).status, MilpStatus::kUnbounded);
}

TEST(Milp, TimeLimitKeepsIncumbent) {
  lp::Model m;
  const int x = m.add_variable(0.0, 9.0, -1.0, "x", true);
  m.add_row(-kInfinity, 7.2, {{x, 1.0}});
  MilpOptions options;
  options.time_limit_seconds = 0.0;
  std::vector<double> start = {3.0};
  options.warm_start = &start;
  MilpResult r = np::milp::solve(m, options);
  EXPECT_EQ(r.status, MilpStatus::kTimeLimit);
  EXPECT_TRUE(r.has_incumbent);
  EXPECT_NEAR(r.objective, -3.0, 1e-9);
}

TEST(Milp, NodeLimitReported) {
  lp::Model m;
  // A knapsack that needs at least a couple of nodes.
  std::vector<int> vars;
  for (int j = 0; j < 8; ++j) {
    vars.push_back(m.add_variable(0.0, 1.0, -(1.0 + 0.1 * j), "", true));
  }
  std::vector<lp::Coefficient> coeffs;
  for (int j = 0; j < 8; ++j) coeffs.push_back({vars[j], 1.0 + 0.3 * j});
  m.add_row(-kInfinity, 5.0, std::move(coeffs));
  MilpOptions options;
  options.max_nodes = 1;
  options.heuristic_interval = 0;
  MilpResult r = np::milp::solve(m, options);
  EXPECT_TRUE(r.status == MilpStatus::kNodeLimit || r.status == MilpStatus::kOptimal);
}

TEST(Milp, WarmStartAcceptedAndImproved) {
  lp::Model m;
  const int x = m.add_variable(0.0, 10.0, -1.0, "x", true);
  m.add_row(-kInfinity, 6.3, {{x, 1.0}});
  std::vector<double> start = {2.0};  // feasible but suboptimal
  MilpOptions options;
  options.warm_start = &start;
  MilpResult r = np::milp::solve(m, options);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -6.0, 1e-7);
}

TEST(Milp, InfeasibleWarmStartIgnored) {
  lp::Model m;
  const int x = m.add_variable(0.0, 10.0, -1.0, "x", true);
  m.add_row(-kInfinity, 6.3, {{x, 1.0}});
  std::vector<double> start = {9.0};  // violates the row
  MilpOptions options;
  options.warm_start = &start;
  MilpResult r = np::milp::solve(m, options);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -6.0, 1e-7);
}

TEST(Milp, FractionalWarmStartIgnored) {
  lp::Model m;
  const int x = m.add_variable(0.0, 10.0, -1.0, "x", true);
  m.add_row(-kInfinity, 6.3, {{x, 1.0}});
  std::vector<double> start = {2.5};
  MilpOptions options;
  options.warm_start = &start;
  MilpResult r = np::milp::solve(m, options);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -6.0, 1e-7);
}

TEST(Milp, GapIsReportedAsClosedAtOptimum) {
  lp::Model m;
  const int x = m.add_variable(0.0, 10.0, -1.0, "x", true);
  m.add_row(-kInfinity, 4.5, {{x, 1.0}});
  MilpResult r = np::milp::solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_LE(r.gap, 1e-6);
}

TEST(Milp, EqualityWithIntegers) {
  // 3x + 5y = 19, x,y >= 0 integer, min x + y -> x=3, y=2.
  lp::Model m;
  const int x = m.add_variable(0.0, 20.0, 1.0, "x", true);
  const int y = m.add_variable(0.0, 20.0, 1.0, "y", true);
  m.add_row(19.0, 19.0, {{x, 3.0}, {y, 5.0}});
  MilpResult r = np::milp::solve(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 3.0, 1e-9);
  EXPECT_NEAR(r.x[y], 2.0, 1e-9);
}

TEST(Milp, IntegerWarmStartSeedsIncumbent) {
  // Mixed problem where the continuous part must be re-derived: the
  // integer warm start fixes u and solves for v.
  lp::Model m;
  const int u = m.add_variable(0.0, 10.0, 2.0, "u", true);
  const int v = m.add_variable(0.0, 1.0, 1.0, "v");
  m.add_row(3.5, lp::kInfinity, {{u, 1.0}, {v, 1.0}});
  std::vector<double> seed = {5.0, 0.0};  // integer part only; v ignored
  MilpOptions options;
  options.integer_warm_start = &seed;
  options.max_nodes = 0;  // forbid exploration: incumbent must come from the seed
  MilpResult r = np::milp::solve(m, options);
  ASSERT_TRUE(r.has_incumbent);
  EXPECT_NEAR(r.objective, 2.0 * 5.0 + 0.0, 1e-7);  // u=5 needs no v
}

TEST(Milp, IntegerWarmStartClampedIntoBounds) {
  lp::Model m;
  const int x = m.add_variable(0.0, 3.0, -1.0, "x", true);
  m.add_row(-lp::kInfinity, 10.0, {{x, 1.0}});
  std::vector<double> seed = {99.0};  // clamped to 3
  MilpOptions options;
  options.integer_warm_start = &seed;
  MilpResult r = np::milp::solve(m, options);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-9);
}

TEST(Milp, WrongSizeIntegerWarmStartIgnored) {
  lp::Model m;
  m.add_variable(0.0, 3.0, -1.0, "x", true);
  std::vector<double> seed = {1.0, 2.0};
  MilpOptions options;
  options.integer_warm_start = &seed;
  EXPECT_EQ(np::milp::solve(m, options).status, MilpStatus::kOptimal);
}

// ---- property sweep: exhaustive enumeration oracle ----

class RandomMilpSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomMilpSweep, MatchesExhaustiveEnumeration) {
  Rng rng(GetParam() * 7919 + 13);
  const int n = 2 + static_cast<int>(rng.uniform_index(3));  // 2-4 integer vars
  const int box = 4;                                         // each in [0, 4]
  lp::Model m;
  for (int j = 0; j < n; ++j) {
    m.add_variable(0.0, box, rng.uniform(-3.0, 3.0), "", true);
  }
  const int rows = 1 + static_cast<int>(rng.uniform_index(3));
  for (int r = 0; r < rows; ++r) {
    std::vector<lp::Coefficient> coeffs;
    for (int j = 0; j < n; ++j) {
      if (rng.uniform() < 0.7) coeffs.push_back({j, rng.uniform(-2.0, 2.0)});
    }
    if (coeffs.empty()) coeffs.push_back({0, 1.0});
    if (rng.uniform() < 0.5) {
      m.add_row(-kInfinity, rng.uniform(0.0, 2.0 * n), std::move(coeffs));
    } else {
      m.add_row(rng.uniform(-2.0 * n, 0.0), kInfinity, std::move(coeffs));
    }
  }

  // Oracle: enumerate (box+1)^n integer points.
  double best = kInfinity;
  std::vector<double> point(n, 0.0);
  long total = 1;
  for (int j = 0; j < n; ++j) total *= (box + 1);
  for (long code = 0; code < total; ++code) {
    long rem = code;
    for (int j = 0; j < n; ++j) {
      point[j] = static_cast<double>(rem % (box + 1));
      rem /= (box + 1);
    }
    if (m.max_violation(point) <= 1e-9) {
      best = std::min(best, m.objective_value(point));
    }
  }

  MilpResult r = np::milp::solve(m);
  if (!std::isfinite(best)) {
    EXPECT_EQ(r.status, MilpStatus::kInfeasible) << "seed " << GetParam();
  } else {
    ASSERT_EQ(r.status, MilpStatus::kOptimal) << "seed " << GetParam();
    EXPECT_NEAR(r.objective, best, 1e-6) << "seed " << GetParam();
    EXPECT_LE(m.max_violation(r.x), 1e-6);
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(r.x[j], std::round(r.x[j]), 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMilpSweep, ::testing::Range(0u, 40u));

}  // namespace
}  // namespace np::milp
