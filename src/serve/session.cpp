#include "serve/session.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"

namespace np::serve {

namespace {

obs::Counter& malformed_counter() {
  static obs::Counter& c = obs::counter("serve.malformed_frames");
  return c;
}

}  // namespace

Session::Session(Engine& engine, WriteFn write_frame)
    : engine_(engine), write_frame_(std::move(write_frame)) {
  NP_ASSERT(write_frame_ != nullptr, "Session: null write hook");
}

void Session::on_bytes(const char* data, std::size_t size) {
  NP_ASSERT(size == 0 || data != nullptr, "Session::on_bytes: null data");
  if (dead_) return;
  reader_.feed(data, size);
  std::string payload;
  std::string error;
  for (;;) {
    switch (reader_.next(&payload, &error)) {
      case FrameEvent::kNeedMore:
        return;
      case FrameEvent::kFrame:
        dispatch(payload);
        break;
      case FrameEvent::kFatal: {
        // One typed goodbye, then the owner hangs up: a corrupt length
        // prefix means nothing later in the stream can be trusted.
        malformed_counter().add(1);
        Reply reply;
        reply.status = ReplyStatus::kError;
        reply.id = -1;
        reply.reason = error;
        write_reply(reply);
        dead_ = true;
        return;
      }
    }
  }
}

void Session::dispatch(const std::string& payload) {
  NP_ASSERT(payload.size() <= kMaxFrameBytes,
            "Session::dispatch: " << payload.size()
                                  << "-byte payload leaked past the framer");
  Request request;
  try {
    request = parse_request(payload);
  } catch (const ParseError& e) {
    // Malformed payload: typed error reply, connection survives.
    malformed_counter().add(1);
    Reply reply;
    reply.status = ReplyStatus::kError;
    reply.id = -1;
    reply.reason = e.what();
    write_reply(reply);
    return;
  }
  // The write hook is copied into the callback: the engine may answer
  // from a worker thread after this stack frame is gone, and must not
  // reach back into session state to do it.
  WriteFn write = write_frame_;
  engine_.submit(request, [write](const Reply& reply) {
    NP_FAULT_POINT("serve.reply");
    write(frame(encode_reply(reply)));
  });
}

void Session::write_reply(const Reply& reply) {
  NP_FAULT_POINT("serve.reply");
  write_frame_(frame(encode_reply(reply)));
}

}  // namespace np::serve
