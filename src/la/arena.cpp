#include "la/arena.hpp"

#include <algorithm>
#include <cstring>
#include <new>

#include "util/check.hpp"

namespace np::la {

namespace {
constexpr std::size_t kAlignment = 64;

std::size_t align_up(std::size_t n) {
  return (n + kAlignment - 1) & ~(kAlignment - 1);
}
}  // namespace

void Arena::add_chunk(std::size_t bytes) {
  Chunk chunk;
  // Over-align the chunk manually: operator new[] guarantees only
  // alignof(max_align_t), so allocate slack and round the base up in
  // alloc_aligned (the stored pointer is the raw allocation).
  chunk.size = align_up(bytes) + kAlignment;
  chunk.data = std::make_unique<std::uint8_t[]>(chunk.size);
  capacity_ += chunk.size;
  ++reallocations_;
  chunks_.push_back(std::move(chunk));
}

void Arena::reserve(std::size_t bytes) {
  if (bytes == 0) return;
  if (chunks_.empty()) {
    add_chunk(bytes);
    return;
  }
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  if (total >= bytes) return;
  // Growing invalidates nothing that is live after a reset(); callers
  // reserve between passes only.
  NP_ASSERT(used_ == 0, "Arena::reserve: cannot grow with live allocations");
  chunks_.clear();
  capacity_ = 0;
  add_chunk(bytes);
  active_ = 0;
}

std::uint8_t* Arena::alloc_aligned(std::size_t bytes) {
  const std::size_t need = align_up(bytes);
  if (chunks_.empty()) add_chunk(std::max<std::size_t>(need, 1 << 16));
  for (;;) {
    Chunk& chunk = chunks_[active_];
    const std::uintptr_t raw =
        reinterpret_cast<std::uintptr_t>(chunk.data.get()) + chunk.offset;
    const std::uintptr_t aligned = (raw + kAlignment - 1) & ~(kAlignment - 1);
    const std::size_t pad = aligned - raw;
    if (chunk.offset + pad + need <= chunk.size) {
      chunk.offset += pad + need;
      used_ += pad + need;
      high_water_ = std::max(high_water_, used_);
      return reinterpret_cast<std::uint8_t*>(aligned);
    }
    if (active_ + 1 < chunks_.size()) {
      ++active_;
      continue;
    }
    // Overflow: a fresh chunk keeps existing spans valid; the next
    // reset() coalesces so steady state goes allocation-free again.
    add_chunk(std::max(need, capacity_));
    ++active_;
  }
}

double* Arena::alloc_doubles(std::size_t count) {
  return reinterpret_cast<double*>(alloc_aligned(count * sizeof(double)));
}

std::uint8_t* Arena::alloc_bytes(std::size_t count) { return alloc_aligned(count); }

void Arena::reset() {
  if (chunks_.size() > 1) {
    // Coalesce: one buffer sized to everything we ever handed out, so
    // the next pass of the same shape fits without overflowing.
    const std::size_t want = std::max(high_water_ + kAlignment, capacity_);
    chunks_.clear();
    capacity_ = 0;
    add_chunk(want);
  } else if (!chunks_.empty()) {
    chunks_[0].offset = 0;
  }
  active_ = 0;
  used_ = 0;
}

}  // namespace np::la
