#include "plan/formulation.hpp"

#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

namespace np::plan {

PlanningMilp::PlanningMilp(const topo::Topology& topology,
                           const FormulationOptions& options) {
  topology.validate();
  if (options.unit_multiplier < 1) {
    throw std::invalid_argument("PlanningMilp: unit_multiplier must be >= 1");
  }
  if (!options.max_added_units.empty() &&
      options.max_added_units.size() != static_cast<std::size_t>(topology.num_links())) {
    throw std::invalid_argument("PlanningMilp: max_added_units size mismatch");
  }
  if (!options.min_added_units.empty() &&
      options.min_added_units.size() != static_cast<std::size_t>(topology.num_links())) {
    throw std::invalid_argument("PlanningMilp: min_added_units size mismatch");
  }
  for (int k : options.failure_subset) {
    if (k < 0 || k >= topology.num_failures()) {
      throw std::invalid_argument("PlanningMilp: failure_subset index out of range");
    }
  }
  multiplier_ = options.unit_multiplier;
  num_links_ = topology.num_links();
  const double unit_gbps = topology.capacity_unit_gbps() * multiplier_;

  // ---- integer capacity variables (objective = Eq. 1) ----
  const std::vector<int> initial = topology.initial_units();
  added_vars_.reserve(num_links_);
  for (int l = 0; l < num_links_; ++l) {
    int max_added = topology.link_max_units(l) - initial[l];
    if (!options.max_added_units.empty()) {
      max_added = std::min(max_added, options.max_added_units[l]);
    }
    max_added = std::max(max_added, 0);
    // Round the bound UP in multiplier units; the spectrum rows below
    // still enforce the true physical cap.
    const int ub = static_cast<int>(
        std::ceil(static_cast<double>(max_added) / multiplier_ - 1e-9));
    int lb = 0;
    if (!options.min_added_units.empty()) {
      lb = std::min(ub, static_cast<int>(std::ceil(
                            static_cast<double>(options.min_added_units[l]) /
                                multiplier_ - 1e-9)));
    }
    added_vars_.push_back(model_.add_variable(
        lb, ub, topology.link_unit_cost(l) * multiplier_,
        "add-" + topology.link(l).name, /*is_integer=*/true));
  }

  // ---- optional objective cutoff (known-plan upper bound) ----
  if (options.max_total_cost > 0.0) {
    std::vector<lp::Coefficient> coeffs;
    for (int l = 0; l < num_links_; ++l) {
      coeffs.push_back({added_vars_[l], topology.link_unit_cost(l) * multiplier_});
    }
    model_.add_row(-lp::kInfinity, options.max_total_cost, std::move(coeffs),
                   "cost-cutoff");
  }

  // ---- spectrum constraints (Eq. 4), once, over total capacity ----
  for (int f = 0; f < topology.num_fibers(); ++f) {
    const double used_initial = topology.fiber_spectrum_used(f, initial);
    std::vector<lp::Coefficient> coeffs;
    for (int l : topology.links_over_fiber(f)) {
      coeffs.push_back({added_vars_[l],
                        topology.link(l).spectrum_per_unit_ghz * multiplier_});
    }
    if (coeffs.empty()) continue;
    model_.add_row(-lp::kInfinity, topology.fiber(f).spectrum_ghz - used_initial,
                   std::move(coeffs), "spectrum-" + topology.fiber(f).name);
  }

  // ---- scenario list ----
  std::vector<int> scenarios;  // -1 = healthy, else failure index
  if (options.include_healthy) scenarios.push_back(-1);
  if (options.use_all_failures) {
    for (int k = 0; k < topology.num_failures(); ++k) scenarios.push_back(k);
  } else {
    for (int k : options.failure_subset) scenarios.push_back(k);
  }

  // ---- per-scenario flow variables and constraints (Eq. 2, Eq. 3) ----
  const topo::Failure healthy{};
  for (int scenario : scenarios) {
    const topo::Failure& failure =
        scenario < 0 ? healthy : topology.failure(scenario);
    const std::string tag = scenario < 0 ? "h" : std::to_string(scenario);

    std::vector<bool> alive(num_links_);
    for (int l = 0; l < num_links_; ++l) alive[l] = !topology.link_failed(l, failure);

    // Commodities (source-aggregated or per flow).
    std::map<int, std::map<int, double>> by_source;
    std::vector<std::pair<int, std::map<int, double>>> commodities;
    for (int fl = 0; fl < topology.num_flows(); ++fl) {
      const topo::Flow& flow = topology.flow(fl);
      if (!topology.flow_required(flow, failure)) continue;
      if (options.aggregate_sources) {
        by_source[flow.src][flow.dst] += flow.demand_gbps;
      } else {
        commodities.push_back({flow.src, {{flow.dst, flow.demand_gbps}}});
      }
    }
    if (options.aggregate_sources) {
      for (auto& [src, sinks] : by_source) commodities.push_back({src, sinks});
    }

    // Directed flow variables for alive links.
    std::vector<std::vector<int>> y(commodities.size(),
                                    std::vector<int>(2 * num_links_, -1));
    for (std::size_t c = 0; c < commodities.size(); ++c) {
      for (int l = 0; l < num_links_; ++l) {
        if (!alive[l]) continue;
        y[c][2 * l + 0] = model_.add_variable(0.0, lp::kInfinity, 0.0);
        y[c][2 * l + 1] = model_.add_variable(0.0, lp::kInfinity, 0.0);
      }
    }

    // Flow conservation (Eq. 2), hard equalities.
    for (std::size_t c = 0; c < commodities.size(); ++c) {
      const auto& [source, sinks] = commodities[c];
      for (int n = 0; n < topology.num_sites(); ++n) {
        std::vector<lp::Coefficient> coeffs;
        for (int l = 0; l < num_links_; ++l) {
          if (!alive[l]) continue;
          const topo::IpLink& link = topology.link(l);
          if (link.site_a == n) {
            coeffs.push_back({y[c][2 * l + 0], 1.0});
            coeffs.push_back({y[c][2 * l + 1], -1.0});
          } else if (link.site_b == n) {
            coeffs.push_back({y[c][2 * l + 1], 1.0});
            coeffs.push_back({y[c][2 * l + 0], -1.0});
          }
        }
        double rhs = 0.0;
        if (n == source) {
          for (const auto& [dst, demand] : sinks) rhs += demand;
        }
        const auto sink_it = sinks.find(n);
        if (sink_it != sinks.end()) rhs -= sink_it->second;
        if (coeffs.empty() && rhs == 0.0) continue;
        model_.add_row(rhs, rhs, std::move(coeffs),
                       "cons-" + tag + "-c" + std::to_string(c) + "-n" +
                           std::to_string(n));
      }
    }

    // Capacity (Eq. 3): per direction,
    //   sum_c y - unit_gbps * added_l <= initial_l * base_unit_gbps.
    for (int l = 0; l < num_links_; ++l) {
      if (!alive[l]) continue;
      for (int dir = 0; dir < 2; ++dir) {
        std::vector<lp::Coefficient> coeffs;
        for (std::size_t c = 0; c < commodities.size(); ++c) {
          coeffs.push_back({y[c][2 * l + dir], 1.0});
        }
        coeffs.push_back({added_vars_[l], -unit_gbps});
        model_.add_row(-lp::kInfinity,
                       initial[l] * topology.capacity_unit_gbps(),
                       std::move(coeffs),
                       "cap-" + tag + "-l" + std::to_string(l) + "-d" +
                           std::to_string(dir));
      }
    }
  }
}

std::vector<int> PlanningMilp::extract_added_units(const std::vector<double>& x) const {
  if (x.size() != static_cast<std::size_t>(model_.num_variables())) {
    throw std::invalid_argument("extract_added_units: solution size mismatch");
  }
  std::vector<int> added(num_links_);
  for (int l = 0; l < num_links_; ++l) {
    added[l] = static_cast<int>(std::llround(x[added_vars_[l]])) * multiplier_;
  }
  return added;
}

}  // namespace np::plan
