// Inference-engine benchmark (nn::InferenceEngine vs tape forwards),
// written as JSON to BENCH_infer.json.
//
// Two axes:
//   single_graph — actor-critic forwards/sec on presets A, B and C,
//     tape path (policy_log_probs + value, the pre-engine acting path)
//     vs the tape-free engine (one fused policy+value forward). The
//     engine is refreshed once and the arena is warm, matching the
//     steady state of rl::RolloutWorkers acting.
//   ragged_batch — forwards/sec at batch 8 over heterogeneous graphs
//     (presets A/B/C interleaved): per-graph tape loop (the status-quo
//     acting path) and per-graph engine forward() loop vs one ragged
//     block-diagonal forward_ragged() call. The tape loop is the
//     primary baseline; the engine loop is reported too so the
//     batching-only margin is visible (it is modest on one core —
//     the fused dense kernels are compute-bound, so stacking mostly
//     recovers remainder-row and 1-row-critic inefficiency).
//
// Both comparisons are apples-to-apples by construction: the engine is
// bit-identical to the tape (tests/inference_test.cpp), so the work
// measured is the same math, minus tape bookkeeping and allocation.
//
// Every rate is the best of NEUROPLAN_INFER_REPEATS timed repeats —
// forwards here are microsecond-scale, so a single pass is at the
// mercy of scheduler noise.
//
// Knobs: NEUROPLAN_INFER_ITERS (measured forwards per repeat, default 400),
//        NEUROPLAN_INFER_REPEATS (timed repeats per rate, default 3),
//        NEUROPLAN_SEED (default 7).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ad/tape.hpp"
#include "nn/actor_critic.hpp"
#include "nn/inference.hpp"
#include "rl/env.hpp"
#include "topo/generator.hpp"
#include "topo/transform.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace np;

nn::NetworkConfig network_config(const rl::EnvConfig& env) {
  nn::NetworkConfig c;
  c.feature_dim = topo::feature_dimension(env.include_static_features);
  c.gcn_layers = 2;
  c.gcn_hidden = 32;
  c.mlp_hidden = {64, 64};
  c.max_units_per_step = env.max_units_per_step;
  return c;
}

/// One preset's acting state: env-built adjacency, features and mask.
struct GraphCase {
  char preset = 'A';
  std::unique_ptr<rl::PlanningEnv> env;
  la::Matrix features;
  std::vector<std::uint8_t> mask;
  topo::Topology topology;
};

GraphCase make_case(char preset, const rl::EnvConfig& env_config) {
  GraphCase c;
  c.preset = preset;
  c.topology = topo::make_preset(preset);
  c.env = std::make_unique<rl::PlanningEnv>(c.topology, env_config);
  c.env->reset();
  c.env->features_into(c.features);
  c.env->action_mask_into(c.mask);
  return c;
}

int bench_repeats() {
  const long repeats = env_long("NEUROPLAN_INFER_REPEATS", 3);
  return repeats > 0 ? static_cast<int>(repeats) : 1;
}

/// Best-of-repeats rate for `iters` calls of `one` per repeat. The
/// first (untimed) call warms caches and the engine arena.
template <typename Fn>
double best_rate(int iters, int per_call, Fn&& one) {
  one();
  double best = 0.0;
  for (int r = 0; r < bench_repeats(); ++r) {
    Stopwatch watch;
    for (int i = 0; i < iters; ++i) one();
    const double rate =
        static_cast<double>(iters) * per_call / watch.seconds();
    if (rate > best) best = rate;
  }
  return best;
}

double tape_forwards_per_sec(nn::ActorCritic& net, const GraphCase& c,
                             int iters) {
  // volatile sink defeats dead-code elimination.
  volatile double sink = 0.0;
  return best_rate(iters, 1, [&] {
    ad::Tape tape;
    ad::Tensor lp =
        net.policy_log_probs(tape, c.env->adjacency(), c.features, c.mask);
    ad::Tensor v = net.value(tape, c.env->adjacency(), c.features);
    sink = tape.value(lp).at(0, 0) + tape.value(v).at(0, 0);
  });
}

double fast_forwards_per_sec(nn::InferenceEngine& engine, const GraphCase& c,
                             int iters) {
  volatile double sink = 0.0;
  return best_rate(iters, 1, [&] {
    const nn::InferenceEngine::Output out =
        engine.forward(*c.env->adjacency(), c.features, c.mask, true);
    sink = out.log_probs[0] + out.value;
  });
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned seed = static_cast<unsigned>(env_long("NEUROPLAN_SEED", 7));
  const int iters =
      static_cast<int>(env_long("NEUROPLAN_INFER_ITERS", 400));

  rl::EnvConfig env_config;
  env_config.max_trajectory_steps = 256;
  Rng net_rng(seed);
  nn::ActorCritic net(network_config(env_config), net_rng);
  nn::InferenceEngine engine(net);

  struct Row {
    char preset;
    std::size_t nodes;
    double tape_per_sec;
    double fast_per_sec;
  };
  std::vector<Row> rows;
  std::vector<GraphCase> cases;
  for (char preset : {'A', 'B', 'C'}) {
    cases.push_back(make_case(preset, env_config));
    const GraphCase& c = cases.back();
    Row row;
    row.preset = preset;
    row.nodes = c.features.rows();
    row.tape_per_sec = tape_forwards_per_sec(net, c, iters);
    row.fast_per_sec = fast_forwards_per_sec(engine, c, iters);
    rows.push_back(row);
    std::printf("topology %c (%zu nodes): tape %.0f fwd/s, fast %.0f fwd/s "
                "(%.2fx)\n",
                preset, row.nodes, row.tape_per_sec, row.fast_per_sec,
                row.fast_per_sec / row.tape_per_sec);
  }

  // Ragged batch 8: presets A/B/C interleaved — heterogeneous node
  // counts exercise the block-diagonal path, not just a repeated graph.
  const int kBatch = 8;
  std::vector<nn::InferenceEngine::GraphInput> batch;
  for (int i = 0; i < kBatch; ++i) {
    const GraphCase& c = cases[static_cast<std::size_t>(i) % cases.size()];
    nn::InferenceEngine::GraphInput input;
    input.adjacency = c.env->adjacency().get();
    input.features = &c.features;
    input.action_mask = &c.mask;
    batch.push_back(input);
  }
  const int batch_iters = iters / 4 > 0 ? iters / 4 : 1;
  volatile double sink = 0.0;
  // Status-quo baseline: per-graph tape forwards over the batch.
  auto tape_loop_once = [&] {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const GraphCase& c = cases[i % cases.size()];
      ad::Tape tape;
      ad::Tensor lp =
          net.policy_log_probs(tape, c.env->adjacency(), c.features, c.mask);
      ad::Tensor v = net.value(tape, c.env->adjacency(), c.features);
      sink = tape.value(lp).at(0, 0) + tape.value(v).at(0, 0);
    }
  };
  const double tape_loop_per_sec = best_rate(batch_iters, kBatch,
                                             tape_loop_once);

  // Per-graph engine loop (batch forwards/sec = graphs processed/sec).
  auto loop_once = [&] {
    for (const auto& input : batch) {
      const nn::InferenceEngine::Output out = engine.forward(
          *input.adjacency, *input.features, *input.action_mask, true);
      sink = out.log_probs[0] + out.value;
    }
  };
  const double loop_per_sec = best_rate(batch_iters, kBatch, loop_once);

  auto ragged_once = [&] {
    const nn::InferenceEngine::BatchOutput& out =
        engine.forward_ragged(batch.data(), batch.size(), true);
    sink = out.log_probs[0][0] + out.values[0];
  };
  const double ragged_per_sec = best_rate(batch_iters, kBatch, ragged_once);
  (void)sink;

  const double vs_tape_loop = ragged_per_sec / tape_loop_per_sec;
  const double vs_fast_loop = ragged_per_sec / loop_per_sec;
  std::printf("ragged batch %d (A/B/C mixed): tape loop %.0f, fast loop %.0f, "
              "ragged %.0f fwd/s (%.2fx vs tape loop, %.2fx vs fast loop)\n",
              kBatch, tape_loop_per_sec, loop_per_sec, ragged_per_sec,
              vs_tape_loop, vs_fast_loop);
  std::printf("arena high water: %zu bytes, reallocations after warmup: %zu\n",
              engine.arena_high_water_bytes(), engine.arena_reallocations());

  const char* out_path = argc > 1 ? argv[1] : "BENCH_infer.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::print_json_provenance(out);
  std::fprintf(out,
               "  \"benchmark\": \"nn_inference\",\n"
               "  \"iterations\": %d,\n"
               "  \"single_graph\": [\n",
               iters);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"topology\": \"%c\", \"nodes\": %zu, "
                 "\"tape_fwd_per_sec\": %.1f, \"fast_fwd_per_sec\": %.1f, "
                 "\"speedup\": %.3f}%s\n",
                 r.preset, r.nodes, r.tape_per_sec, r.fast_per_sec,
                 r.fast_per_sec / r.tape_per_sec,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"ragged_batch\": {\"batch\": %d, "
               "\"tape_loop_fwd_per_sec\": %.1f, "
               "\"fast_loop_fwd_per_sec\": %.1f, "
               "\"ragged_fwd_per_sec\": %.1f, "
               "\"speedup_vs_tape_loop\": %.3f, "
               "\"speedup_vs_fast_loop\": %.3f, "
               "\"arena_bytes\": %zu}\n"
               "}\n",
               kBatch, tape_loop_per_sec, loop_per_sec, ragged_per_sec,
               vs_tape_loop, vs_fast_loop, engine.arena_high_water_bytes());
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}
