// Topology decomposition (§3.2, first production heuristic):
// "We decompose the topology into several smaller sub-topologies, and
// each sub-topology is solved with an ILP. The decomposition is usually
// done by segmenting the topology into geographical regions ... and
// sizing inter-regional links ... The segmentation and stitching are
// done manually."
//
// Automated rendition: regions come from Site::region; inter-regional
// links are sized by worst-case shortest-path load over all scenarios;
// each region becomes a sub-topology (its sites, fibers, links, the
// healthy-path-induced internal flow segments, and the failures that
// touch it) solved independently with the lazy MILP; the stitched plan
// is verified against the full problem and repaired with the greedy
// design where the decomposition's blind spots (cross-region reroutes
// under failures) left gaps.
#pragma once

#include "core/lazy_solve.hpp"
#include "core/planner.hpp"

namespace np::core {

struct DecompositionConfig {
  /// Per-region MILP budget.
  LazySolveConfig regional;
  int unit_multiplier = 1;
};

struct DecompositionResult {
  PlanResult plan;
  int regions = 0;
  /// True when the stitched plan needed the greedy repair pass.
  bool repaired = false;
};

DecompositionResult solve_region_decomposition(const topo::Topology& topology,
                                               const DecompositionConfig& config = {});

}  // namespace np::core
