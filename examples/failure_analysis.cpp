// Failure analysis: which failure scenarios actually drive the cost of
// a plan? The lazy scenario generation identifies the *binding* set —
// the scenarios that had to enter the MILP before the plan satisfied
// everything — and a leave-one-out sweep prices each of them.
//
//   ./failure_analysis [topology A-E]
//
// Operators use exactly this to negotiate reliability policy: a failure
// scenario that costs 20% of the budget to protect against is a
// conversation; one that costs 0.4% is not.
#include <cstdio>
#include <cstdlib>

#include "core/baselines.hpp"
#include "core/lazy_solve.hpp"
#include "topo/generator.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  np::set_log_level(np::LogLevel::kWarn);
  const char topo_id = argc > 1 ? argv[1][0] : 'A';
  np::topo::Topology topology = np::topo::make_preset(topo_id);

  // Full-protection plan via lazy generation; record the binding set.
  np::core::LazySolveConfig config;
  config.time_limit_per_solve_seconds = 30.0;
  config.total_time_limit_seconds = 120.0;
  config.relative_gap = 1e-3;
  const np::core::PlanResult greedy = np::core::solve_greedy(topology);
  if (greedy.feasible) config.seed_added_units = greedy.added_units;
  const np::core::LazySolveResult full =
      np::core::lazy_solve(topology, {}, config);
  if (!full.plan.feasible) {
    std::printf("could not compute a baseline plan: %s\n",
                full.plan.detail.c_str());
    return 1;
  }
  std::printf("full protection: cost %.1f; %d of %d failures are binding\n\n",
              full.plan.cost, full.scenarios_used, topology.num_failures());

  // Leave-one-out over the binding failures: re-solve with the scenario
  // exempted; the cost delta is the price of protecting against it.
  np::Table table({"failure", "plan cost without it", "protection cost", "share"});
  for (int failure_index : full.binding_failures) {
    // Rebuild the topology without this one failure and re-plan; the
    // cost delta is what protecting against it costs.
    np::topo::Topology without;
    without.set_name(topology.name() + "-minus-" +
                     topology.failure(failure_index).name);
    without.set_capacity_unit_gbps(topology.capacity_unit_gbps());
    without.set_cost_model(topology.cost_model());
    without.set_reliability_policy(topology.reliability_policy());
    for (const auto& s : topology.sites()) without.add_site(s);
    for (const auto& f : topology.fibers()) without.add_fiber(f);
    for (const auto& l : topology.links()) without.add_ip_link(l);
    for (const auto& fl : topology.flows()) without.add_flow(fl);
    for (int k = 0; k < topology.num_failures(); ++k) {
      if (k != failure_index) without.add_failure(topology.failure(k));
    }
    np::core::LazySolveConfig loo = config;
    loo.seed_added_units = full.plan.added_units;  // feasible a fortiori
    const np::core::LazySolveResult result = np::core::lazy_solve(without, {}, loo);
    if (!result.plan.feasible) continue;
    const double delta = full.plan.cost - result.plan.cost;
    table.add_row({topology.failure(failure_index).name,
                   np::fmt_double(result.plan.cost, 1), np::fmt_double(delta, 1),
                   np::fmt_double(100.0 * delta / full.plan.cost, 1) + "%"});
  }
  table.print();
  std::printf("\n(non-binding failures cost nothing extra to protect against)\n");
  return 0;
}
