#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/deadline.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/mutex.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace np {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 4.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 4.5);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(13);
  std::set<long> seen;
  for (int i = 0; i < 500; ++i) {
    const long v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {0.0, 3.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], 3.0, 0.3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(29);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GE(w.seconds(), 0.0);
  const double earlier = w.seconds();
  const double later = w.seconds();
  EXPECT_LE(earlier, later);  // monotone across calls
  w.restart();
  EXPECT_LT(w.seconds(), 1.0);
}

TEST(Log, LevelGatesMessages) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold calls are dropped (no observable output assertion
  // possible on stderr here; the contract under test is the level gate
  // plus crash-freedom of the formatting path).
  log_debug("dropped ", 1, " and ", 2.5);
  log_info("dropped");
  log_warn("dropped");
  set_log_level(LogLevel::kOff);
  log_error("also dropped at kOff");
  set_log_level(saved);
}

TEST(Log, FormatsMixedArguments) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kDebug);
  log_debug("x=", 42, " y=", 3.5, " s=", std::string("str"));
  log_line(LogLevel::kDebug, "direct line");
  set_log_level(saved);
}

TEST(Env, LongFallsBackWhenUnset) {
  ::unsetenv("NP_TEST_LONG");
  EXPECT_EQ(env_long("NP_TEST_LONG", 42), 42);
}

TEST(Env, LongParsesValue) {
  ::setenv("NP_TEST_LONG", "123", 1);
  EXPECT_EQ(env_long("NP_TEST_LONG", 42), 123);
  ::unsetenv("NP_TEST_LONG");
}

TEST(Env, LongRejectsGarbage) {
  ::setenv("NP_TEST_LONG", "12x", 1);
  EXPECT_EQ(env_long("NP_TEST_LONG", 42), 42);
  ::unsetenv("NP_TEST_LONG");
}

TEST(Env, DoubleParsesValue) {
  ::setenv("NP_TEST_DBL", "1.5", 1);
  EXPECT_DOUBLE_EQ(env_double("NP_TEST_DBL", 0.0), 1.5);
  ::unsetenv("NP_TEST_DBL");
}

TEST(Env, StringFallsBackWhenEmpty) {
  ::setenv("NP_TEST_STR", "", 1);
  EXPECT_EQ(env_string("NP_TEST_STR", "dflt"), "dflt");
  ::unsetenv("NP_TEST_STR");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"topo", "cost"});
  t.add_row({"A", "1.000"});
  t.add_row({"B", "0.890"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("topo"), std::string::npos);
  EXPECT_NE(s.find("0.890"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, FormatsCrossForInvalid) {
  EXPECT_EQ(fmt_or_cross(1.234, true, 2), "1.23");
  EXPECT_EQ(fmt_or_cross(1.234, false, 2), "x");
}

TEST(Table, FmtDoublePrecision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

TEST(ThreadPool, NegativeWorkerCountThrows) {
  EXPECT_THROW(util::ThreadPool(-1), std::invalid_argument);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.submit([&] { ran_on = std::this_thread::get_id(); }).get();
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, RunAllExecutesEveryTask) {
  util::ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back([&count] { count.fetch_add(1); });
  }
  pool.run_all(std::move(tasks));
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, RunAllTaskZeroOnCallerThread) {
  util::ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&ran_on] { ran_on = std::this_thread::get_id(); });
  tasks.push_back([] {});
  pool.run_all(std::move(tasks));
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, RunAllPropagatesExceptionAfterAllFinish) {
  util::ThreadPool pool(2);
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(pool.run_all(std::move(tasks)), std::runtime_error);
  EXPECT_EQ(completed.load(), 8);  // siblings still ran to completion
}

TEST(ThreadPool, SubmitFutureRethrowsTaskException) {
  util::ThreadPool pool(1);
  auto future = pool.submit([] { throw std::logic_error("task failed"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(util::ThreadPool::hardware_threads(), 1);
}

TEST(Rng, StateRoundTripResumesStream) {
  Rng a(7);
  for (int i = 0; i < 10; ++i) (void)a();
  const auto snapshot = a.state();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 20; ++i) expected.push_back(a());
  Rng b(999);  // unrelated seed; state restore must fully overwrite it
  b.set_state(snapshot);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(b(), expected[static_cast<std::size_t>(i)]);
}

TEST(Rng, SetStateRejectsAllZero) {
  Rng rng(1);
  EXPECT_THROW(rng.set_state({0, 0, 0, 0}), std::invalid_argument);
}

TEST(Deadline, DefaultIsUnlimited) {
  util::Deadline d;
  EXPECT_TRUE(d.is_unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_seconds()));
  EXPECT_FALSE(util::Deadline::unlimited().expired());
}

TEST(Deadline, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(util::Deadline::after_seconds(0.0).expired());
  EXPECT_TRUE(util::Deadline::after_seconds(-5.0).expired());
  EXPECT_EQ(util::Deadline::after_seconds(-5.0).remaining_seconds(), 0.0);
}

TEST(Deadline, FutureBudgetNotYetExpired) {
  const util::Deadline d = util::Deadline::after_seconds(3600.0);
  EXPECT_FALSE(d.is_unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 3500.0);
  EXPECT_LE(d.remaining_seconds(), 3600.0);
}

TEST(Deadline, ExpiresAfterElapsedWallClock) {
  const util::Deadline d = util::Deadline::after_seconds(0.01);
  const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  while (std::chrono::steady_clock::now() < until) {}
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), 0.0);
}

// The annotated wrappers behind every lock in the codebase. These run
// under tsan (the suite name is in the tsan test-preset filter), so a
// wrapper bug that loses mutual exclusion shows up as a data race.

TEST(ThreadSafety, MutexProvidesMutualExclusion) {
  util::Mutex mutex;
  long counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        util::LockGuard lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 4 * 10000);
}

TEST(ThreadSafety, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  util::Mutex mutex;
  mutex.lock();
  std::atomic<bool> acquired{true};
  std::thread contender([&] { acquired = mutex.try_lock(); });
  contender.join();
  EXPECT_FALSE(acquired.load());
  mutex.unlock();
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(ThreadSafety, CondVarWakesWaiterOnNotify) {
  util::Mutex mutex;
  util::CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    util::LockGuard lock(mutex);
    while (!ready) cv.wait(mutex);
    observed = true;
  });
  {
    util::LockGuard lock(mutex);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(ThreadSafety, CondVarNotifyAllReleasesEveryWaiter) {
  util::Mutex mutex;
  util::CondVar cv;
  bool go = false;
  std::atomic<int> woken{0};
  std::vector<std::thread> waiters;
  waiters.reserve(3);
  for (int t = 0; t < 3; ++t) {
    waiters.emplace_back([&] {
      util::LockGuard lock(mutex);
      while (!go) cv.wait(mutex);
      woken.fetch_add(1);
    });
  }
  {
    util::LockGuard lock(mutex);
    go = true;
  }
  cv.notify_all();
  for (auto& waiter : waiters) waiter.join();
  EXPECT_EQ(woken.load(), 3);
}

TEST(ThreadSafety, WaitReacquiresMutexBeforeReturning) {
  // After wait() returns the waiter must hold the mutex again: the
  // producer below increments under the lock, so the value read right
  // after wait() can never be torn or mid-update.
  util::Mutex mutex;
  util::CondVar cv;
  int stage = 0;
  std::thread producer([&] {
    for (int i = 1; i <= 3; ++i) {
      util::LockGuard lock(mutex);
      stage = i;
      cv.notify_one();
    }
  });
  {
    util::LockGuard lock(mutex);
    while (stage < 3) cv.wait(mutex);
    EXPECT_EQ(stage, 3);
  }
  producer.join();
}

}  // namespace
}  // namespace np
