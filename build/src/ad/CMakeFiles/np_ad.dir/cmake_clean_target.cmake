file(REMOVE_RECURSE
  "libnp_ad.a"
)
