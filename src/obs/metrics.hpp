// Process-wide metrics registry: named counters, gauges and
// fixed-bucket histograms with a lock-free hot path.
//
// Design: instruments are registered once (registry mutex) and then
// updated through plain relaxed atomics — no locks, no allocation, no
// syscalls on the hot path. Call sites cache the instrument reference
// in a function-local static so steady-state cost is one atomic RMW:
//
//   static obs::Counter& solves = obs::counter("lp.solves");
//   solves.add(1);
//
// Instruments live for the whole process (the registry never removes
// or moves them), so cached references stay valid across snapshot()
// and reset(). Snapshots are taken concurrently with updates; with
// relaxed atomics each read is atomic per-field, so totals are exact
// for quiesced writers and merely slightly stale for live ones —
// exactly the semantics a metrics exporter needs.
//
// This library is self-contained (std + threads only): np_util links
// against it so the thread pool and logger can be instrumented, which
// forbids any obs -> np_util *link* dependency. The one sanctioned
// exception is util/mutex.hpp, which is header-only and std-only: obs
// uses the annotated util::Mutex so the registry participates in the
// clang thread-safety analysis without adding a link edge.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"

namespace np::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(long delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  long value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long> value_{0};
};

/// Last-write-wins scalar (also supports atomic add via CAS; we avoid
/// atomic<double>::fetch_add, which is C++20-library-optional).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: ascending finite upper bounds plus an
/// implicit +inf overflow bucket. observe() is lock-free: a linear
/// bucket scan (bucket counts are small, <= ~24) plus relaxed RMWs on
/// count/sum and CAS loops on min/max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty
  const std::vector<double>& bounds() const { return bounds_; }
  /// bucket_count(i) counts observations x <= bounds()[i] (and above the
  /// previous bound); index bounds().size() is the +inf overflow bucket.
  long bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::vector<double> bounds_;  ///< ascending, finite
  std::unique_ptr<std::atomic<long>[]> buckets_;  ///< bounds_.size() + 1
  std::atomic<long> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// `count` bucket upper bounds starting at `start`, each `factor` times
/// the previous — the usual latency-histogram layout.
std::vector<double> exponential_buckets(double start, double factor, int count);

/// Allocation-free instrument visitor for the flight-recorder crash
/// dump (obs/flight.cpp). Function pointers + context, not
/// std::function: the crash path cannot risk an allocation. Null
/// callbacks skip that instrument class.
struct CrashSnapshotVisitor {
  void* ctx = nullptr;
  void (*on_counter)(void* ctx, const char* name, long value) = nullptr;
  void (*on_gauge)(void* ctx, const char* name, double value) = nullptr;
  void (*on_histogram)(void* ctx, const char* name, long count, double sum,
                       double min, double max) = nullptr;
};

/// Named instrument store. `instance()` is the process-wide registry;
/// separate instances are constructible for tests. Registration takes
/// the mutex; instruments are never destroyed or moved afterwards.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& instance();

  Counter& counter(std::string_view name) NP_EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name) NP_EXCLUDES(mutex_);
  /// Bounds are fixed by the first registration; later calls with the
  /// same name return the existing histogram regardless of `bounds`.
  Histogram& histogram(std::string_view name, std::vector<double> bounds)
      NP_EXCLUDES(mutex_);

  /// One JSON object {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with names in sorted order (stable across runs for golden tests).
  /// NP_EXCLUDES: snapshots take the registration lock, so they must
  /// never be nested inside a registration path (instrument updates
  /// themselves stay lock-free and are unaffected).
  std::string snapshot_json() const NP_EXCLUDES(mutex_);

  /// Zero every instrument (registrations are kept, references stay
  /// valid). For tests and between bench configurations.
  void reset() NP_EXCLUDES(mutex_);

  /// Crash-dump snapshot: visits every registered instrument without
  /// allocating, under try_lock, so a dump running inside a signal
  /// handler can never deadlock against a registration the interrupted
  /// thread had in flight. Returns false — visiting nothing — when the
  /// lock is unavailable; the report then marks the snapshot skipped.
  bool try_visit_for_crash(const CrashSnapshotVisitor& visitor) const
      NP_EXCLUDES(mutex_);

 private:
  // Instruments are held by unique_ptr inside node-based maps, so the
  // references handed to call sites never move; std::less<> enables
  // string_view lookups without a temporary std::string. The mutex
  // guards registration and snapshot only — never instrument updates.
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      NP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      NP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      NP_GUARDED_BY(mutex_);
};

/// Process-wide instrument lookup — the hot-path entry points.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name, std::vector<double> bounds);

/// Detail metrics (per-solve histograms, FTRAN/BTRAN nnz scans) cost
/// O(m) extra work per observation, so they are gated on this flag;
/// it is switched on when a metrics sink is configured. Counters and
/// spans are cheap enough to stay unconditional.
bool detail_enabled();
void set_detail_enabled(bool enabled);

}  // namespace np::obs
