// Umbrella header + process-level wiring for the observability layer:
// where the metrics registry (metrics.hpp) and trace spans (trace.hpp)
// meet files and the environment.
//
// Lifecycle (what neuroplan_cli and the benches do):
//
//   obs::configure_from_env();          // NEUROPLAN_{TRACE,METRICS,
//                                       //   FLIGHT_RECORD}_OUT + watchdog
//   obs::set_trace_out(path);           // or explicit flags, override env
//   obs::set_metrics_out(path);
//   obs::set_flight_record_path(path);  // arm the .npcrash destination
//   obs::install_crash_handlers();      // fatal-signal / terminate dumps
//   ... instrumented work; the trainer calls
//   obs::emit_metrics_record("train_epoch", epoch) once per iteration ...
//   obs::shutdown();                    // flush trace + final record,
//                                       // stop watchdog, exit flight dump
//
// Everything is a no-op when no output was configured, so library code
// can emit records unconditionally.
#pragma once

#include <string>

#include "obs/flight.hpp"    // IWYU pragma: export
#include "obs/metrics.hpp"   // IWYU pragma: export
#include "obs/trace.hpp"     // IWYU pragma: export
#include "obs/watchdog.hpp"  // IWYU pragma: export

namespace np::obs {

/// Read NEUROPLAN_TRACE_OUT / NEUROPLAN_METRICS_OUT and configure the
/// corresponding sinks. Call once, early; explicit set_*_out() calls
/// afterwards override the environment.
void configure_from_env();

/// Enable tracing and remember where shutdown() writes the Chrome
/// trace JSON. Empty path disables.
void set_trace_out(std::string path);

/// Open (truncate) a JSONL metrics sink and enable detail metrics.
/// Empty path disables. One emit_metrics_record() call = one line.
void set_metrics_out(const std::string& path);

/// True when a metrics sink is open (lets callers skip building
/// per-iteration records nobody will read).
bool metrics_out_open();

/// Append one JSONL record: {"record":<name>,"index":<index>,
/// "elapsed_us":...,"metrics":<registry snapshot>}. No-op without an
/// open sink. Thread-safe; the line is flushed so records survive a
/// crash mid-run.
void emit_metrics_record(const char* record, long index);

/// Flush and close both sinks: writes the trace file (if configured),
/// emits a "final" metrics record, closes the JSONL stream. Safe to
/// call more than once.
void shutdown();

}  // namespace np::obs
