#include "plan/report.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "lp/simplex.hpp"
#include "plan/scenario_lp.hpp"
#include "util/table.hpp"

namespace np::plan {

PlanReport analyze_plan(const topo::Topology& topology,
                        const std::vector<int>& added_units) {
  if (added_units.size() != static_cast<std::size_t>(topology.num_links())) {
    throw std::invalid_argument("analyze_plan: plan size mismatch");
  }
  PlanReport report;
  std::vector<int> total = topology.initial_units();
  for (int l = 0; l < topology.num_links(); ++l) total[l] += added_units[l];
  report.total_cost = topology.plan_cost(added_units);

  std::vector<double> worst_utilization(topology.num_links(), -1.0);
  report.feasible = true;
  for (int scenario = 0; scenario <= topology.num_failures(); ++scenario) {
    ScenarioLp lp = build_scenario_lp(topology, scenario, /*aggregate=*/true);
    set_plan_capacities(lp, topology, total);
    lp::Solution solution = lp::solve(lp.model);
    const std::string name =
        scenario == kHealthyScenario ? "healthy"
                                     : topology.failure(scenario - 1).name;
    if (solution.status != lp::SolveStatus::kOptimal) {
      report.scenario_notes.push_back(name + ": solver " +
                                      lp::to_string(solution.status));
      report.feasible = false;
      continue;
    }
    const bool ok = solution.objective <= 1e-6 * std::max(1.0, lp.total_demand);
    if (!ok) {
      report.feasible = false;
      std::ostringstream os;
      os << name << ": INFEASIBLE, " << solution.objective << " Gbps unserved";
      report.scenario_notes.push_back(os.str());
    } else {
      report.scenario_notes.push_back(name + ": ok");
    }
    // Utilization per link from the capacity-row activities: the flow
    // variables of each direction sum against the capacity bound.
    for (int l = 0; l < topology.num_links(); ++l) {
      const double cap = total[l] * topology.capacity_unit_gbps();
      if (cap <= 0.0) continue;
      for (int dir = 0; dir < 2; ++dir) {
        const int row = lp.capacity_row[2 * l + dir];
        if (row < 0) continue;
        double activity = 0.0;
        for (const auto& [var, coeff] : lp.model.row(row).coefficients) {
          activity += coeff * solution.x[var];
        }
        worst_utilization[l] = std::max(worst_utilization[l], activity / cap);
      }
    }
  }

  for (int l = 0; l < topology.num_links(); ++l) {
    if (added_units[l] == 0) continue;
    ++report.links_changed;
    LinkReportRow row;
    row.link = l;
    row.name = topology.link(l).name;
    row.initial_units = topology.link(l).initial_units;
    row.added_units = added_units[l];
    row.added_cost = added_units[l] * topology.link_unit_cost(l);
    row.worst_utilization = worst_utilization[l];
    report.rows.push_back(std::move(row));
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const LinkReportRow& a, const LinkReportRow& b) {
              return a.added_cost > b.added_cost;
            });
  return report;
}

std::string to_text(const topo::Topology& topology, const PlanReport& report) {
  std::ostringstream os;
  os << "plan report for '" << topology.name() << "': "
     << (report.feasible ? "FEASIBLE" : "INFEASIBLE") << ", cost "
     << report.total_cost << ", " << report.links_changed << " links changed\n";
  Table table({"link", "sites", "initial", "added", "cost", "worst util"});
  for (const LinkReportRow& row : report.rows) {
    const topo::IpLink& link = topology.link(row.link);
    table.add_row({row.name,
                   topology.site(link.site_a).name + "-" +
                       topology.site(link.site_b).name,
                   std::to_string(row.initial_units), std::to_string(row.added_units),
                   fmt_double(row.added_cost, 1),
                   row.worst_utilization < 0.0
                       ? "-"
                       : fmt_double(row.worst_utilization, 2)});
  }
  os << table.to_string();
  os << "scenarios:\n";
  for (const std::string& note : report.scenario_notes) {
    os << "  " << note << "\n";
  }
  return os.str();
}

}  // namespace np::plan
