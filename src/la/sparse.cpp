#include "la/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace np::la {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  for (const auto& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      throw std::invalid_argument("CsrMatrix: triplet out of bounds");
    }
  }
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  row_offsets_.assign(rows_ + 1, 0);
  for (std::size_t i = 0; i < triplets.size(); ++i) {
    if (i > 0 && triplets[i].row == triplets[i - 1].row &&
        triplets[i].col == triplets[i - 1].col) {
      values_.back() += triplets[i].value;  // merge duplicates
      continue;
    }
    col_indices_.push_back(triplets[i].col);
    values_.push_back(triplets[i].value);
    ++row_offsets_[triplets[i].row + 1];
  }
  for (std::size_t r = 0; r < rows_; ++r) row_offsets_[r + 1] += row_offsets_[r];
  NP_CHECK_CSR(rows_, cols_, row_offsets_, col_indices_, values_.size(),
               "CsrMatrix::CsrMatrix");
}

CsrMatrix CsrMatrix::from_dense(const Matrix& dense, double tolerance) {
  std::vector<Triplet> triplets;
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t c = 0; c < dense.cols(); ++c) {
      if (std::abs(dense(r, c)) > tolerance) triplets.push_back({r, c, dense(r, c)});
    }
  }
  return CsrMatrix(dense.rows(), dense.cols(), std::move(triplets));
}

Matrix CsrMatrix::multiply(const Matrix& dense) const {
  if (cols_ != dense.rows()) {
    throw std::invalid_argument("CsrMatrix::multiply: dimension mismatch");
  }
  Matrix out(rows_, dense.cols(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double* orow = out.data() + r * dense.cols();
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const double v = values_[k];
      const double* drow = dense.data() + col_indices_[k] * dense.cols();
      for (std::size_t j = 0; j < dense.cols(); ++j) orow[j] += v * drow[j];
    }
  }
  NP_CHECK_FINITE(out.data(), out.size(), "CsrMatrix::multiply");
  return out;
}

Matrix CsrMatrix::multiply_transposed(const Matrix& dense) const {
  if (rows_ != dense.rows()) {
    throw std::invalid_argument("CsrMatrix::multiply_transposed: dimension mismatch");
  }
  Matrix out(cols_, dense.cols(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* drow = dense.data() + r * dense.cols();
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const double v = values_[k];
      double* orow = out.data() + col_indices_[k] * dense.cols();
      for (std::size_t j = 0; j < dense.cols(); ++j) orow[j] += v * drow[j];
    }
  }
  NP_CHECK_FINITE(out.data(), out.size(), "CsrMatrix::multiply_transposed");
  return out;
}

Matrix CsrMatrix::to_dense() const {
  Matrix out(rows_, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      out(r, col_indices_[k]) += values_[k];
    }
  }
  return out;
}

CsrMatrix block_diagonal(const CsrMatrix& a, int copies) {
  if (copies < 1) throw std::invalid_argument("block_diagonal: copies must be >= 1");
  const std::size_t n = static_cast<std::size_t>(copies);
  CsrMatrix out;
  out.rows_ = a.rows_ * n;
  out.cols_ = a.cols_ * n;
  out.row_offsets_.reserve(out.rows_ + 1);
  out.col_indices_.reserve(a.nnz() * n);
  out.values_.reserve(a.nnz() * n);
  out.row_offsets_.push_back(0);
  for (std::size_t b = 0; b < n; ++b) {
    const std::size_t col_shift = b * a.cols_;
    for (std::size_t r = 0; r < a.rows_; ++r) {
      for (std::size_t k = a.row_offsets_[r]; k < a.row_offsets_[r + 1]; ++k) {
        out.col_indices_.push_back(a.col_indices_[k] + col_shift);
        out.values_.push_back(a.values_[k]);
      }
      out.row_offsets_.push_back(out.col_indices_.size());
    }
  }
  NP_CHECK_CSR(out.rows_, out.cols_, out.row_offsets_, out.col_indices_,
               out.values_.size(), "block_diagonal");
  return out;
}

BlockDiagonalCache::BlockDiagonalCache(std::shared_ptr<const CsrMatrix> base)
    : base_(std::move(base)) {
  if (base_ == nullptr) {
    throw std::invalid_argument("BlockDiagonalCache: null base matrix");
  }
}

std::shared_ptr<const CsrMatrix> BlockDiagonalCache::get(int copies) {
  if (copies < 1) throw std::invalid_argument("BlockDiagonalCache: copies < 1");
  if (copies == 1) return base_;
  auto it = cache_.find(copies);
  if (it != cache_.end()) return it->second;
  auto built = std::make_shared<const CsrMatrix>(block_diagonal(*base_, copies));
  cache_.emplace(copies, built);
  return built;
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("CsrMatrix::at");
  for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
    if (col_indices_[k] == c) return values_[k];
  }
  return 0.0;
}

}  // namespace np::la
