#include "util/log.hpp"

#include <cstdio>

namespace np {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, std::string_view message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[np %s] %.*s\n", tag(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace np
