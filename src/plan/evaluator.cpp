#include "plan/evaluator.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace np::plan {

const char* to_string(EvaluatorMode mode) {
  switch (mode) {
    case EvaluatorMode::kVanilla: return "vanilla";
    case EvaluatorMode::kSourceAggregation: return "source-aggregation";
    case EvaluatorMode::kStateful: return "stateful";
    case EvaluatorMode::kWarmPatched: return "warm-patched";
  }
  return "unknown";
}

PlanEvaluator::PlanEvaluator(const topo::Topology& topology, EvaluatorMode mode)
    : topology_(topology), mode_(mode) {
  topology_.validate();
  cached_.resize(num_scenarios());
  lp_options_.max_iterations = 1000000;
}

void PlanEvaluator::reset() {
  next_unchecked_ = 0;
  last_units_.clear();
}

void PlanEvaluator::set_quarantined(std::vector<int> scenario_ids) {
  for (int id : scenario_ids) {
    (void)id;
    NP_ASSERT(id >= 0 && id < num_scenarios(),
              "set_quarantined: scenario " << id << " out of range");
  }
  std::sort(scenario_ids.begin(), scenario_ids.end());
  scenario_ids.erase(std::unique(scenario_ids.begin(), scenario_ids.end()),
                     scenario_ids.end());
  quarantined_ = std::move(scenario_ids);
}

void PlanEvaluator::invalidate_scenario(int scenario) {
  NP_ASSERT(scenario >= 0 && scenario < num_scenarios());
  cached_[scenario].reset();
}

CheckResult PlanEvaluator::check_scenario(int scenario,
                                          const std::vector<int>& total_units) {
  const bool aggregate = mode_ != EvaluatorMode::kVanilla;
  // Each scenario solve gets a fresh deadline so a pathological LP is
  // bounded both by iterations (lp_options_.max_iterations) and by
  // wall-clock; an expired budget surfaces as Verdict::kUnknown. The
  // check-level deadline (serving: the query's end-to-end budget)
  // tightens the per-scenario budget when it expires sooner.
  lp::SimplexOptions options = lp_options_;
  if (scenario_budget_seconds_ > 0.0) {
    options.deadline = util::Deadline::after_seconds(scenario_budget_seconds_);
    if (!check_deadline_.is_unlimited() &&
        check_deadline_.remaining_seconds() < scenario_budget_seconds_) {
      options.deadline = check_deadline_;
    }
  } else {
    options.deadline = check_deadline_;
  }
  CheckResult result;
  ScenarioCheck check;
  const bool cached_models = mode_ == EvaluatorMode::kStateful ||
                             mode_ == EvaluatorMode::kWarmPatched;
  if (cached_models) {
    if (!cached_[scenario].has_value()) {
      cached_[scenario] = build_scenario_lp(topology_, scenario, aggregate);
    }
    ScenarioLp& lp = *cached_[scenario];
    set_plan_capacities(lp, topology_, total_units);
    // Warm re-checks finish in a handful of pivots, where devex weight
    // upkeep is pure overhead — Dantzig once a basis exists, devex for
    // the first (cold) solve of each scenario.
    options.pricing = lp.has_basis ? lp::PricingRule::kDantzig
                                   : lp::PricingRule::kDevex;
    if (mode_ == EvaluatorMode::kWarmPatched) {
      // Serving boundary: a solve that dies (injected fault, contract
      // violation, solver error) must identify its scenario so the
      // caller can retry cold or quarantine it. The cache entry is
      // dropped first — the retry starts from a fresh model, never the
      // state that just failed.
      try {
        check = solve_scenario(lp, options, /*warm=*/true);
      } catch (const std::exception& e) {
        cached_[scenario].reset();
        throw ScenarioError(scenario, e.what());
      }
    } else {
      check = solve_scenario(lp, options, /*warm=*/true);
    }
  } else {
    ScenarioLp lp = build_scenario_lp(topology_, scenario, aggregate);
    set_plan_capacities(lp, topology_, total_units);
    options.pricing = lp::PricingRule::kDevex;  // always cold here
    check = solve_scenario(lp, options, /*warm=*/false);
  }
  result.feasible = check.feasible;
  result.verdict = check.verdict;
  result.deadline_hits = check.deadline_hit ? 1 : 0;
  result.unserved_gbps = check.unserved_gbps;
  result.lp_iterations = check.lp_iterations;
  result.lp_seconds = check.solve_seconds;
  return result;
}

CheckResult PlanEvaluator::check(const std::vector<int>& total_units) {
  if (total_units.size() != static_cast<std::size_t>(topology_.num_links())) {
    throw std::invalid_argument("PlanEvaluator::check: unit vector size mismatch");
  }
  for (int l = 0; l < topology_.num_links(); ++l) {
    if (total_units[l] < 0) {
      throw std::invalid_argument("PlanEvaluator::check: negative units");
    }
  }
#if NP_CHECKS_ENABLED
  // Stateful failure checking skips scenarios survived earlier in the
  // trajectory, which is only sound when capacities never decrease
  // between checks (§5 precondition; the env's only-add action space
  // guarantees it, but any other caller must too).
  if (mode_ == EvaluatorMode::kStateful) {
    if (!last_units_.empty()) {
      NP_CHECK_MONOTONE_UNITS(last_units_, total_units, "PlanEvaluator::check");
    }
    last_units_ = total_units;
  }
#endif
  NP_SPAN("plan.check");
  static obs::Counter& checks = obs::counter("plan.checks");
  static obs::Counter& scenarios_checked = obs::counter("plan.scenarios_checked");
  static obs::Counter& scenarios_skipped = obs::counter("plan.scenarios_skipped");
  static obs::Counter& deadline_hits = obs::counter("plan.deadline_hits");
  checks.add(1);
  CheckResult aggregate;
  const int start = mode_ == EvaluatorMode::kStateful ? next_unchecked_ : 0;
  // Scenarios below `start` were survived earlier in the trajectory and
  // are short-circuited by stateful checking — the paper's §5 speedup.
  scenarios_skipped.add(start);
  for (int scenario = start; scenario < num_scenarios(); ++scenario) {
    if (std::binary_search(quarantined_.begin(), quarantined_.end(), scenario)) {
      // Quarantined by the serving layer: skipped, never assumed
      // feasible — the final verdict degrades to kUnknown below.
      ++aggregate.quarantined_skipped;
      continue;
    }
    // The check-level deadline bounds the whole loop, not just each
    // solve: once it expires the remaining scenarios are unproven and
    // the check returns kUnknown partial results immediately.
    if (!check_deadline_.is_unlimited() && check_deadline_.expired()) {
      aggregate.feasible = false;
      aggregate.verdict = Verdict::kUnknown;
      aggregate.violated_scenario = scenario;
      ++aggregate.deadline_hits;
      deadline_hits.add(1);
      return aggregate;
    }
    const CheckResult one = check_scenario(scenario, total_units);
    aggregate.lp_iterations += one.lp_iterations;
    aggregate.lp_seconds += one.lp_seconds;
    aggregate.deadline_hits += one.deadline_hits;
    total_lp_iterations_ += one.lp_iterations;
    total_lp_seconds_ += one.lp_seconds;
    scenarios_checked.add(1);
    ++aggregate.scenarios_checked;
    if (!one.feasible) {
      aggregate.feasible = false;
      aggregate.verdict = one.verdict;
      aggregate.violated_scenario = scenario;
      aggregate.unserved_gbps = one.unserved_gbps;
      if (mode_ == EvaluatorMode::kStateful) next_unchecked_ = scenario;
      return aggregate;
    }
  }
  if (aggregate.quarantined_skipped > 0) {
    // Every solved scenario passed, but skipped ones are unproven:
    // report kUnknown so callers degrade instead of trusting a partial
    // pass as feasibility.
    aggregate.feasible = false;
    aggregate.verdict = Verdict::kUnknown;
    return aggregate;
  }
  aggregate.feasible = true;
  aggregate.verdict = Verdict::kFeasible;
  if (mode_ == EvaluatorMode::kStateful) next_unchecked_ = num_scenarios();
  return aggregate;
}

}  // namespace np::plan
