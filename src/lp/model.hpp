// Linear-program model: minimize c^T x subject to row activity bounds
//   lo_r <= a_r . x <= hi_r   and variable bounds  lb_j <= x_j <= ub_j.
//
// This is the in-memory form shared by the simplex solver (np::lp) and
// the branch-and-bound MILP solver (np::milp). The plan evaluator and
// the planning-ILP builder (np::plan) construct these models. Rows and
// variable bounds are mutable after construction so the evaluator can
// patch a model per failure scenario instead of rebuilding it — the
// paper's "only update the constraints that are influenced by the
// failure" optimization (§5).
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace np::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// One sparse row entry: (variable index, coefficient).
using Coefficient = std::pair<int, double>;

struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  bool is_integer = false;  // honored by np::milp, ignored by the LP solver
  std::string name;
};

struct Row {
  double lower = -kInfinity;
  double upper = kInfinity;
  std::vector<Coefficient> coefficients;
  std::string name;
};

class Model {
 public:
  /// Add a variable; returns its index.
  int add_variable(double lower, double upper, double objective,
                   std::string name = {}, bool is_integer = false);

  /// Add a row lo <= coeffs . x <= hi; returns its index. Coefficients
  /// referencing unknown variables throw.
  int add_row(double lower, double upper, std::vector<Coefficient> coefficients,
              std::string name = {});

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  const Variable& variable(int index) const { return variables_.at(index); }
  const Row& row(int index) const { return rows_.at(index); }

  void set_variable_bounds(int index, double lower, double upper);
  void set_objective_coefficient(int index, double objective);
  void set_integer(int index, bool is_integer);
  void set_row_bounds(int index, double lower, double upper);

  /// Replace a row's coefficient vector (evaluator patching).
  void set_row_coefficients(int index, std::vector<Coefficient> coefficients);

  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Objective value of a given point (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  /// Max violation of rows + variable bounds at x (0 when feasible).
  double max_violation(const std::vector<double>& x) const;

  /// Throws std::invalid_argument when any bound pair is inverted or a
  /// coefficient is non-finite. Memoized: every mutator enforces these
  /// invariants at mutation time, so a model that validated once stays
  /// valid and repeat calls are O(1) — the solver validates per solve,
  /// and warm-started scenario solves finish in microseconds.
  void validate() const;

 private:
  void check_variable_index(int index) const;
  void check_row_index(int index) const;

  std::vector<Variable> variables_;
  std::vector<Row> rows_;
  mutable bool validated_ = false;
};

}  // namespace np::lp
