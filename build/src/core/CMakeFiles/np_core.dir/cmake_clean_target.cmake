file(REMOVE_RECURSE
  "libnp_core.a"
)
