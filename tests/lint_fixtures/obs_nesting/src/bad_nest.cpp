// obs-nesting fixture: good.inner opens under its declared parent
// (clean), strict.child opens once under its declared other.parent
// (clean) and once under good.outer (the golden violation).
void ok_function() {
  NP_SPAN("good.outer");
  {
    NP_SPAN("good.inner");
  }
}

void other_ok() {
  NP_SPAN("other.parent");
  {
    NP_SPAN("strict.child");
  }
}

void bad_function() {
  NP_SPAN("good.outer");
  {
    NP_SPAN("strict.child");
  }
}
