// Multi-worker rollout collection (the paper's §5 scale-out story,
// single-process rendition).
//
// RolloutWorkers fills an epoch's step budget with K independent
// PlanningEnv instances. Two modes:
//
//  * Borrowed (K = 1): reuses the caller's env and RNG and replays the
//    exact serial rollout loop of the original trainer — same forward
//    passes, same RNG consumption — so `rollout_workers = 1` is
//    bit-for-bit identical to the pre-threading trainer.
//  * Owned (K > 1): owns K envs, each with its own RNG stream derived
//    deterministically from (seed, worker index). Workers advance in
//    lockstep rounds: the active workers' feature matrices are stacked
//    into one batched network forward (block-diagonal adjacency), then
//    actions are sampled and applied per worker in ascending worker
//    order. Environment stepping (the LP feasibility checks) runs on a
//    thread pool. Results depend only on (K, seed, network weights) —
//    never on thread count or scheduling — so a K-worker run is
//    reproducible anywhere.
//
// The per-worker buffers are returned separately (concatenation order =
// worker index) so the trainer can bootstrap GAE per worker without
// leaking advantages across workers.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "la/matrix.hpp"
#include "la/sparse.hpp"
#include "nn/actor_critic.hpp"
#include "nn/inference.hpp"
#include "rl/env.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace np::rl {

/// Sentinel for "no feasible plan seen" costs (compares greater than
/// any real plan cost).
inline constexpr double kUnsetCost = 1e300;

/// One environment step as stored in the epoch buffer. The update phase
/// recomputes forward passes from `features`/`mask`, so no tape state
/// needs to survive the rollout.
struct StepRecord {
  la::Matrix features;
  std::vector<std::uint8_t> mask;
  int action = 0;
  double log_prob = 0.0;  ///< behavior policy's logp of the action
  double reward = 0.0;
  double value = 0.0;
  bool terminal = false;
};

/// Categorical sample over the masked entries of a 1 x k log-prob row.
/// Consumes exactly one rng.uniform() call.
int sample_from_log_probs(const la::Matrix& log_probs,
                          const std::vector<std::uint8_t>& mask, Rng& rng);
/// Raw-pointer variant (the tape-free path); the Matrix overload
/// delegates here, so both consume RNG identically.
int sample_from_log_probs(const double* log_probs,
                          const std::vector<std::uint8_t>& mask, Rng& rng);

/// One worker's share of an epoch.
struct WorkerRollout {
  std::vector<StepRecord> records;
  /// Critic bootstrap for a trajectory cut off by the step quota
  /// (0 when the final record is terminal).
  double last_value = 0.0;
  int trajectories = 0;
  int feasible_trajectories = 0;
  double return_sum = 0.0;  ///< sum of completed-trajectory returns
  double best_cost = kUnsetCost;  ///< cheapest feasible plan this epoch
  std::vector<int> best_added;    ///< added units of that plan
};

class RolloutWorkers {
 public:
  /// Borrowed mode: single worker sharing the caller's env and RNG.
  /// Both must outlive this object.
  RolloutWorkers(PlanningEnv& env, Rng& rng, nn::ActorCritic& network);

  /// Owned mode: `workers` independent envs over `topology` (which must
  /// outlive this object), RNG streams derived from `seed`. Requires
  /// workers >= 1; workers == 1 still uses the lockstep path (useful
  /// for testing) — pass the borrowed constructor for seed parity.
  RolloutWorkers(const topo::Topology& topology, const EnvConfig& env_config,
                 nn::ActorCritic& network, int workers, unsigned seed);

  /// Collect `total_steps` env steps split across workers (worker w
  /// takes total/K steps, +1 for the first total%K workers). Every env
  /// is reset at the start, finished trajectories reset and continue
  /// until the worker's quota is filled. Returns one rollout per
  /// worker, in worker order.
  std::vector<WorkerRollout> collect(int total_steps);

  int workers() const { return workers_; }
  bool borrowed() const { return borrowed_env_ != nullptr; }

  /// Acting-time forward path: kFast (default, from NEUROPLAN_INFERENCE)
  /// runs action selection through the tape-free nn::InferenceEngine —
  /// bit-identical to the tape, so both the borrowed-mode "bit-for-bit
  /// the serial trainer" guarantee and the owned-mode (K, seed)
  /// determinism hold in either mode. kTape is the escape hatch.
  nn::InferenceMode inference_mode() const { return mode_; }
  void set_inference_mode(nn::InferenceMode mode);
  /// The engine backing fast-mode acting (nullptr in tape mode or
  /// before the first fast collect). Exposed for arena introspection in
  /// tests and benches.
  const nn::InferenceEngine* inference_engine() const { return engine_.get(); }

  /// RNG states of the owned per-worker streams, worker-ordered
  /// (checkpointing). Empty in borrowed mode — the caller owns the RNG
  /// there and snapshots it directly.
  std::vector<std::array<std::uint64_t, 4>> rng_states() const;
  /// Restore per-worker streams saved by rng_states(). Throws when the
  /// count does not match the worker count (a checkpoint from a run
  /// with a different `--rollout-workers` cannot resume bit-for-bit).
  void set_rng_states(const std::vector<std::array<std::uint64_t, 4>>& states);

  /// Cumulative simplex iterations across every env this object steps
  /// (the borrowed env, or all owned envs) — the LP share of rollout
  /// work for throughput accounting.
  long total_lp_iterations() const;
  /// Matching seconds spent inside lp::solve (summed across workers, so
  /// CPU-seconds rather than wall-clock in owned mode).
  double total_lp_seconds() const;

 private:
  WorkerRollout collect_serial(PlanningEnv& env, Rng& rng, int steps);
  std::vector<WorkerRollout> collect_lockstep(int total_steps);
  /// Lazily build + re-snapshot the engine (weights change every epoch).
  void prepare_engine();

  nn::ActorCritic& network_;
  int workers_ = 1;
  nn::InferenceMode mode_ = nn::InferenceMode::kFast;
  std::unique_ptr<nn::InferenceEngine> engine_;
  // Observation buffers reused across steps/rounds: the envs write into
  // these (features_into/action_mask_into) and records COPY them, so
  // per-step observation building allocates nothing once warm.
  std::vector<la::Matrix> feature_buffers_;
  std::vector<std::vector<std::uint8_t>> mask_buffers_;
  std::vector<nn::InferenceEngine::GraphInput> graph_inputs_;

  // Borrowed mode.
  PlanningEnv* borrowed_env_ = nullptr;
  Rng* borrowed_rng_ = nullptr;

  // Owned mode.
  std::vector<std::unique_ptr<PlanningEnv>> envs_;
  std::vector<Rng> rngs_;
  std::unique_ptr<la::BlockDiagonalCache> adjacency_cache_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace np::rl
