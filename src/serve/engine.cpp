#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/stopwatch.hpp"

namespace np::serve {

namespace {

// Process-global serve.* instruments, registered the moment the first
// Engine is constructed so the metrics JSONL carries every serving
// counter (including the zero ones — "no sheds" is a result, not a
// missing key).
struct ServeInstruments {
  obs::Counter& queries = obs::counter("serve.queries");
  obs::Counter& ok = obs::counter("serve.ok");
  obs::Counter& degraded = obs::counter("serve.degraded");
  obs::Counter& shed = obs::counter("serve.shed");
  obs::Counter& errors = obs::counter("serve.errors");
  obs::Counter& retries = obs::counter("serve.retries");
  obs::Counter& quarantined = obs::counter("serve.quarantined");
  obs::Gauge& queue_depth = obs::gauge("serve.queue_depth");
  obs::Gauge& workers = obs::gauge("serve.workers");
  // 1us .. ~4s: ping replies to multi-scenario plan checks.
  obs::Histogram& latency_us = obs::histogram(
      "serve.latency_us", obs::exponential_buckets(1.0, 4.0, 12));
};

ServeInstruments& instruments() {
  static ServeInstruments i;
  return i;
}

Reply make_shed(long id, const char* reason) {
  Reply reply;
  reply.status = ReplyStatus::kShed;
  reply.id = id;
  reply.reason = reason;
  return reply;
}

void fill_degraded(Reply& reply, const char* reason) {
  reply.status = ReplyStatus::kDegraded;
  reply.reason = reason;
  reply.feasible = false;
  reply.verdict = "unknown";
}

}  // namespace

Engine::Engine(const topo::Topology& topology, const EngineConfig& config)
    : topology_(topology), config_(config) {
  NP_ASSERT(config.workers >= 1 && config.workers <= 256,
            "Engine: worker count " << config.workers << " out of range");
  NP_ASSERT(config.queue_capacity >= 1,
            "Engine: queue capacity must be positive");
  topology_.validate();
  instruments().workers.set(config_.workers);
  pool_ = std::make_unique<util::ThreadPool>(config_.workers);
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.push_back(pool_->submit([this, i] { worker_loop(i); }));
  }
}

Engine::~Engine() { drain(); }

void Engine::submit(const Request& request, ReplyFn reply) {
  NP_ASSERT(reply != nullptr, "Engine::submit: null reply callback");
  n_queries_.fetch_add(1, std::memory_order_relaxed);
  instruments().queries.add(1);

  Task task;
  task.request = request;
  task.reply = std::move(reply);
  task.enqueue_us = obs::now_us();

  // Ping and info are answered inline: they are O(1), carry no plan,
  // and must keep working even when the solve queue is saturated (a
  // load-shedding daemon that cannot say "I'm alive" is indistinguishable
  // from a dead one).
  if (request.kind == RequestKind::kPing ||
      request.kind == RequestKind::kInfo) {
    Reply out;
    out.status = ReplyStatus::kOk;
    out.id = request.id;
    if (request.kind == RequestKind::kInfo) {
      out.links = topology_.num_links();
      out.scenarios = topology_.num_failures() + 1;
    }
    deliver(task, std::move(out));
    return;
  }

  // The protocol layer already enforces these for socket traffic, but
  // the engine is a public API (tests, bench) and validates its own
  // inputs: a malformed plan is a typed ERROR reply, never a throw into
  // the caller and never a worker crash.
  if (task.request.plan.size() !=
      static_cast<std::size_t>(topology_.num_links())) {
    Reply out;
    out.status = ReplyStatus::kError;
    out.id = request.id;
    out.reason = "bad_plan_size";
    deliver(task, std::move(out));
    return;
  }
  for (int units : task.request.plan) {
    if (units < 0) {
      Reply out;
      out.status = ReplyStatus::kError;
      out.id = request.id;
      out.reason = "bad_plan_units";
      deliver(task, std::move(out));
      return;
    }
  }

  // The deadline clock starts at admission: queue wait spends the
  // budget too, so a query that sat out its whole deadline in the queue
  // degrades immediately instead of doing stale work.
  const double deadline_ms = task.request.deadline_ms > 0.0
                                 ? task.request.deadline_ms
                                 : config_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    task.deadline = util::Deadline::after_seconds(deadline_ms / 1e3);
  }

  const char* shed_reason = nullptr;
  {
    util::LockGuard lock(mutex_);
    if (draining_) {
      shed_reason = "draining";
    } else if (queue_.size() >= static_cast<std::size_t>(config_.queue_capacity)) {
      shed_reason = "queue_full";
    } else if (config_.max_backlog_ms > 0.0 && ema_service_ms_ > 0.0 &&
               static_cast<double>(queue_.size() + 1) * ema_service_ms_ >
                   config_.max_backlog_ms) {
      shed_reason = "backlog";
    } else {
      queue_.push_back(std::move(task));
      instruments().queue_depth.set(static_cast<double>(queue_.size()));
    }
  }
  if (shed_reason != nullptr) {
    deliver(task, make_shed(request.id, shed_reason));
    return;
  }
  work_cv_.notify_one();
}

void Engine::worker_loop(int worker_index) {
  NP_ASSERT(worker_index >= 0 && worker_index < config_.workers,
            "Engine::worker_loop: shard " << worker_index << " out of range");
  // One resident evaluator per shard: scenario models built on first
  // touch, patched and warm-started for every later query.
  plan::PlanEvaluator evaluator(topology_, plan::EvaluatorMode::kWarmPatched);
  if (config_.scenario_budget_s > 0.0) {
    evaluator.set_scenario_budget(config_.scenario_budget_s);
  }
  Rng rng(static_cast<std::uint64_t>(config_.seed) +
          1000003ULL * static_cast<std::uint64_t>(worker_index));
  for (;;) {
    Task task;
    {
      util::LockGuard lock(mutex_);
      while (queue_.empty() && !draining_) work_cv_.wait(mutex_);
      if (queue_.empty()) return;  // draining with an empty queue
      task = std::move(queue_.front());
      queue_.pop_front();
      instruments().queue_depth.set(static_cast<double>(queue_.size()));
    }
    Stopwatch service;
    Reply reply;
    {
      // Heartbeat covers active processing only — a worker blocked on
      // an empty queue is idle, not stalled. A query wedged inside the
      // solve (or a stall fault at serve.worker) stops beating and the
      // watchdog flags it.
      NP_SPAN("serve.query");
      obs::HeartbeatScope hb("hb.serve_worker");
      hb.beat(task.request.id);
      reply = process(task, evaluator, rng);
    }
    reply.latency_us = obs::now_us() - task.enqueue_us;
    instruments().latency_us.observe(reply.latency_us);
    {
      util::LockGuard lock(mutex_);
      // EMA of per-query service time feeds the backlog estimator.
      const double ms = service.millis();
      ema_service_ms_ = ema_service_ms_ == 0.0 ? ms
                                               : 0.8 * ema_service_ms_ + 0.2 * ms;
    }
    deliver(task, std::move(reply));
  }
}

Reply Engine::process(const Task& task, plan::PlanEvaluator& evaluator,
                      Rng& rng) {
  NP_ASSERT(task.request.kind == RequestKind::kCheck ||
                task.request.kind == RequestKind::kCost,
            "Engine::process: kind " << to_string(task.request.kind)
                                     << " is answered at admission");
  if (task.request.kind == RequestKind::kCost) {
    Reply reply;
    reply.status = ReplyStatus::kOk;
    reply.id = task.request.id;
    reply.cost = topology_.plan_cost(task.request.plan);
    reply.verdict = "none";  // cost quotes carry no feasibility claim
    return reply;
  }
  return process_check(task, evaluator, rng);
}

Reply Engine::process_check(const Task& task, plan::PlanEvaluator& evaluator,
                            Rng& rng) {
  Reply reply;
  reply.id = task.request.id;

  // Wire plans are ADDED units; the evaluator checks TOTAL units.
  std::vector<int> total = topology_.initial_units();
  NP_ASSERT(total.size() == task.request.plan.size());
  for (std::size_t l = 0; l < total.size(); ++l) {
    total[l] += task.request.plan[l];
  }

  // Degradation ladder, attempt 0 warm / attempt 1 cold-retried:
  // definitive verdict -> OK; transient failure -> one jittered-backoff
  // retry; still failing -> DEGRADED (and quarantine the scenario that
  // failed twice); expired deadline anywhere -> DEGRADED(kUnknown).
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (attempt > 0) {
      ++reply.retries;
      n_retries_.fetch_add(1, std::memory_order_relaxed);
      instruments().retries.add(1);
      double backoff_ms = config_.retry_backoff_ms * (0.5 + rng.uniform());
      if (!task.deadline.is_unlimited()) {
        backoff_ms = std::min(
            backoff_ms, std::max(0.0, task.deadline.remaining_seconds() * 1e3));
      }
      if (backoff_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
      }
    }
    if (!task.deadline.is_unlimited() && task.deadline.expired()) {
      obs::fr_record(obs::FrEventKind::kDeadlineHit, "serve.query",
                     task.request.id);
      fill_degraded(reply, "deadline");
      return reply;
    }
    evaluator.set_check_deadline(task.deadline);
    evaluator.set_quarantined(quarantined_snapshot());
    try {
      NP_FAULT_POINT("serve.worker");
      const plan::CheckResult result = evaluator.check(total);
      reply.scenarios_checked = result.scenarios_checked;
      reply.quarantined = result.quarantined_skipped;
      if (result.verdict == plan::Verdict::kUnknown) {
        if (attempt == 0 && result.deadline_hits > 0 &&
            !task.deadline.expired()) {
          // A warm solve burned its whole scenario budget — the warm
          // basis can be pathological for this patch. Retry that
          // scenario cold before giving up on the query.
          if (result.violated_scenario >= 0) {
            evaluator.invalidate_scenario(result.violated_scenario);
          }
          continue;
        }
        obs::fr_record(obs::FrEventKind::kVerdictDegraded, "serve.query",
                       task.request.id, result.quarantined_skipped);
        fill_degraded(reply, result.quarantined_skipped > 0 ? "quarantined"
                                                            : "deadline");
        return reply;
      }
      reply.status = ReplyStatus::kOk;
      reply.feasible = result.feasible;
      reply.verdict = plan::to_string(result.verdict);
      reply.cost = topology_.plan_cost(task.request.plan);
      reply.unserved_gbps = result.unserved_gbps;
      return reply;
    } catch (const plan::ScenarioError& e) {
      // The evaluator already dropped the scenario's cached model, so
      // the retry is cold by construction. A second failure means the
      // scenario is poisoned, not the basis: quarantine it and degrade.
      if (attempt == 0) continue;
      quarantine(e.scenario());
      fill_degraded(reply, "quarantined");
      reply.quarantined = static_cast<int>(quarantined_snapshot().size());
      return reply;
    } catch (const std::exception&) {
      // Faults injected before the check starts (serve.worker itself)
      // or anything else unexpected: same retry-once-then-degrade
      // policy. The worker never dies on a query.
      if (attempt == 0) continue;
      fill_degraded(reply, "fault");
      return reply;
    }
  }
  // Unreachable: every second attempt returns above.
  fill_degraded(reply, "fault");
  return reply;
}

void Engine::deliver(const Task& task, Reply reply) {
  NP_ASSERT(task.reply != nullptr, "Engine::deliver: null reply sink");
  switch (reply.status) {
    case ReplyStatus::kOk:
      n_ok_.fetch_add(1, std::memory_order_relaxed);
      instruments().ok.add(1);
      break;
    case ReplyStatus::kDegraded:
      n_degraded_.fetch_add(1, std::memory_order_relaxed);
      instruments().degraded.add(1);
      break;
    case ReplyStatus::kShed:
      n_shed_.fetch_add(1, std::memory_order_relaxed);
      instruments().shed.add(1);
      break;
    case ReplyStatus::kError:
      n_errors_.fetch_add(1, std::memory_order_relaxed);
      instruments().errors.add(1);
      break;
  }
  try {
    task.reply(reply);
  } catch (const std::exception&) {
    // A reply sink that throws (broken pipe wrapper, test harness bug)
    // must not take the worker down with it.
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    instruments().errors.add(1);
  }
}

void Engine::quarantine(int scenario) {
  NP_ASSERT(scenario >= 0 && scenario <= topology_.num_failures(),
            "Engine::quarantine: scenario " << scenario << " out of range");
  bool inserted = false;
  {
    util::LockGuard lock(mutex_);
    inserted = quarantined_.insert(scenario).second;
  }
  if (inserted) {
    n_quarantined_.fetch_add(1, std::memory_order_relaxed);
    instruments().quarantined.add(1);
  }
}

std::vector<int> Engine::quarantined_snapshot() const {
  util::LockGuard lock(mutex_);
  return {quarantined_.begin(), quarantined_.end()};
}

std::vector<int> Engine::quarantined_scenarios() const {
  return quarantined_snapshot();
}

void Engine::drain() {
  {
    util::LockGuard lock(mutex_);
    draining_ = true;
  }
  work_cv_.notify_all();
  if (!drained_.exchange(true)) {
    for (std::future<void>& worker : workers_) worker.get();
    workers_.clear();
    pool_.reset();
  }
  // Postcondition: workers only exit on (draining && queue empty), so
  // once they are joined every accepted query has been answered.
  util::LockGuard lock(mutex_);
  NP_ASSERT(queue_.empty(), "Engine::drain: " << queue_.size()
                                              << " queries left unanswered");
}

bool Engine::draining() const {
  util::LockGuard lock(mutex_);
  return draining_;
}

EngineStats Engine::stats() const {
  return EngineStats{n_queries_.load(std::memory_order_relaxed),
                     n_ok_.load(std::memory_order_relaxed),
                     n_degraded_.load(std::memory_order_relaxed),
                     n_shed_.load(std::memory_order_relaxed),
                     n_errors_.load(std::memory_order_relaxed),
                     n_retries_.load(std::memory_order_relaxed),
                     n_quarantined_.load(std::memory_order_relaxed)};
}

}  // namespace np::serve
