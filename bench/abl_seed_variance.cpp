// Ablation: RL seed variance.
//
// Deep-RL results are seed-sensitive (Henderson et al., which the
// paper cites for its reward-scaling practice); this bench quantifies
// the spread of First-stage and final NeuroPlan costs over seeds on
// topology A, normalized to the exact optimum.
#include <algorithm>

#include "bench_common.hpp"
#include "core/baselines.hpp"

int main() {
  using namespace np;
  bench::print_header(
      "Ablation: RL seed variance",
      "First-stage / NeuroPlan cost over seeds on topology A, / optimal.");

  const topo::Topology topology = topo::make_preset('A');
  core::IlpConfig ilp_config;
  ilp_config.time_limit_seconds = bench::ilp_time_budget();
  const core::PlanResult exact = core::solve_ilp(topology, ilp_config);
  const bool have_opt = exact.feasible && !exact.timed_out;

  Table table({"seed", "First-stage", "NeuroPlan"});
  std::vector<double> first_ratios, final_ratios;
  for (unsigned seed : {7u, 17u, 27u}) {
    core::NeuroPlanConfig config;
    config.train = bench::bench_train_config(topology, 'A', seed);
    config.relax_factor = 1.5;
    config.ilp_time_limit_seconds = bench::stage2_budget('A');
    config.ilp_relative_gap = 1e-3;
    const core::NeuroPlanResult result = core::neuroplan(topology, config);
    const double first = result.first_stage.cost / exact.cost;
    const double final_ratio = result.final.cost / exact.cost;
    if (have_opt && result.final.feasible) {
      first_ratios.push_back(first);
      final_ratios.push_back(final_ratio);
    }
    table.add_row({std::to_string(seed),
                   fmt_or_cross(first, have_opt && result.first_stage.feasible, 3),
                   fmt_or_cross(final_ratio, have_opt && result.final.feasible, 3)});
  }
  table.print();
  if (!final_ratios.empty()) {
    const auto [fmin, fmax] =
        std::minmax_element(first_ratios.begin(), first_ratios.end());
    const auto [nmin, nmax] =
        std::minmax_element(final_ratios.begin(), final_ratios.end());
    std::printf("\nFirst-stage spread %.3f-%.3f; NeuroPlan spread %.3f-%.3f\n",
                *fmin, *fmax, *nmin, *nmax);
  }
  std::printf("Expected shape: First-stage varies noticeably across seeds; the\n"
              "second stage collapses that variance toward the optimum — the\n"
              "robustness argument for the two-stage design.\n");
  return 0;
}
