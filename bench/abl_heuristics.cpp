// Ablation: the production heuristics of §3.2 head-to-head.
//
// The paper lists three search-space pruning heuristics used today:
// topology decomposition, topology transformation (capacity-unit
// enlargement) and failure selection. This bench compares them — plus
// the greedy worst-case shortest-path design used as a warm start —
// on cost and wall time, normalized to the combined ILP-heur recipe.
#include "bench_common.hpp"
#include "core/baselines.hpp"
#include "core/decomposition.hpp"

int main() {
  using namespace np;
  bench::print_header(
      "Ablation: production heuristics (§3.2)",
      "Cost normalized to the combined ILP-heur recipe per topology.");

  const std::string topos = bench::topo_selection("ABC");
  Table table({"topology", "ILP-heur", "decomposition", "unit-x4 only",
               "greedy", "heur secs", "decomp secs"});
  for (char id : topos) {
    const topo::Topology topology = topo::make_preset(id);

    core::IlpHeurConfig heur_config;
    heur_config.time_limit_per_solve_seconds = 20.0;
    heur_config.relative_gap = 1e-2;
    const core::PlanResult heur = core::solve_ilp_heur(topology, heur_config);

    core::DecompositionConfig decomp_config;
    decomp_config.regional.time_limit_per_solve_seconds = 15.0;
    decomp_config.regional.total_time_limit_seconds = 60.0;
    decomp_config.regional.relative_gap = 1e-2;
    const core::DecompositionResult decomp =
        core::solve_region_decomposition(topology, decomp_config);

    // Capacity-unit enlargement alone: one lazy run at multiplier 4
    // with plenty of rounds (i.e. failure selection disabled as a
    // *heuristic* — it is the exactness mechanism here).
    core::IlpHeurConfig coarse_only = heur_config;
    coarse_only.initial_failures = topology.num_failures();  // all upfront
    const core::PlanResult coarse = core::solve_ilp_heur(topology, coarse_only);

    const core::PlanResult greedy = core::solve_greedy(topology);

    const double norm = heur.feasible ? heur.cost : 1.0;
    table.add_row({std::string(1, id), heur.feasible ? "1.000" : "x",
                   fmt_or_cross(decomp.plan.cost / norm, decomp.plan.feasible, 3),
                   fmt_or_cross(coarse.cost / norm, coarse.feasible, 3),
                   fmt_or_cross(greedy.cost / norm, greedy.feasible, 3),
                   fmt_double(heur.seconds, 1),
                   fmt_double(decomp.plan.seconds, 1)});
  }
  table.print();
  std::printf("\nExpected shape: every heuristic trades optimality for speed in\n"
              "its own way; none dominates across topologies (the paper's 'no\n"
              "universal heuristics' pain point).\n");
  return 0;
}
