#include "rl/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/inference.hpp"
#include "obs/obs.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace np::rl {

namespace {

nn::NetworkConfig reconcile(const TrainConfig& config) {
  nn::NetworkConfig net = config.network;
  net.feature_dim = topo::feature_dimension(config.env.include_static_features);
  net.max_units_per_step = config.env.max_units_per_step;
  return net;
}

}  // namespace

A2cTrainer::A2cTrainer(const topo::Topology& topology, const TrainConfig& config)
    : config_(config),
      rng_(config.seed),
      env_(topology, config.env),
      network_(reconcile(config), rng_),
      actor_optimizer_(ad::AdamConfig{.learning_rate = config.actor_learning_rate}),
      critic_optimizer_(ad::AdamConfig{.learning_rate = config.critic_learning_rate}),
      adjacency_cache_(env_.adjacency()) {
  if (config.steps_per_epoch < 1 || config.epochs < 1 || config.chunk_steps < 1) {
    throw std::invalid_argument("A2cTrainer: epochs/steps/chunk must be positive");
  }
  if (config.rollout_workers < 1) {
    throw std::invalid_argument("A2cTrainer: rollout_workers must be >= 1");
  }
  // Algorithm 1 line 19/22: the actor update touches theta and theta_g,
  // the critic update theta_v and theta_g.
  actor_optimizer_.add_parameters(network_.actor_parameters());
  actor_optimizer_.add_parameters(network_.gnn_parameters());
  critic_optimizer_.add_parameters(network_.critic_parameters());
  critic_optimizer_.add_parameters(network_.gnn_parameters());
  if (config.rollout_workers == 1) {
    // Borrowed mode shares env_/rng_ with the trainer: the serial code
    // path and RNG stream of the pre-threading trainer, bit-for-bit.
    rollout_ = std::make_unique<RolloutWorkers>(env_, rng_, network_);
  } else {
    rollout_ = std::make_unique<RolloutWorkers>(
        topology, config.env, network_, config.rollout_workers, config.seed);
  }
}

EpochStats A2cTrainer::run_epoch() {
  NP_SPAN("train.epoch");
  Stopwatch watch;
  EpochStats stats;
  stats.epoch = ++epoch_counter_;
  stats.best_cost_in_epoch = kUnset;

  Stopwatch rollout_watch;
  std::vector<WorkerRollout> rollouts = rollout_->collect(config_.steps_per_epoch);
  stats.rollout_seconds = rollout_watch.seconds();

  // Merge per-worker stats in worker order (deterministic for fixed K).
  double return_sum = 0.0;
  std::size_t total_steps = 0;
  for (const WorkerRollout& r : rollouts) {
    total_steps += r.records.size();
    stats.trajectories += r.trajectories;
    stats.feasible_trajectories += r.feasible_trajectories;
    return_sum += r.return_sum;
    stats.best_cost_in_epoch = std::min(stats.best_cost_in_epoch, r.best_cost);
    if (r.best_cost < best_cost_) {
      best_cost_ = r.best_cost;
      best_added_ = r.best_added;
      log_info("rl: new best feasible plan, cost ", r.best_cost, " (epoch ",
               stats.epoch, ")");
    }
  }
  stats.steps = static_cast<int>(total_steps);

  // GAE per worker segment (each bootstraps with its own critic
  // estimate), concatenated in worker order into one epoch buffer; the
  // advantage normalization then spans the whole epoch, as before.
  std::vector<StepRecord> buffer;
  buffer.reserve(total_steps);
  std::vector<double> advantages, rewards_to_go;
  advantages.reserve(total_steps);
  rewards_to_go.reserve(total_steps);
  for (WorkerRollout& r : rollouts) {
    std::vector<double> rewards(r.records.size()), values(r.records.size());
    std::vector<bool> terminal(r.records.size());
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      rewards[i] = r.records[i].reward;
      values[i] = r.records[i].value;
      terminal[i] = r.records[i].terminal;
    }
    GaeResult gae = compute_gae(rewards, values, terminal, r.last_value, config_.gae);
    advantages.insert(advantages.end(), gae.advantages.begin(), gae.advantages.end());
    rewards_to_go.insert(rewards_to_go.end(), gae.rewards_to_go.begin(),
                         gae.rewards_to_go.end());
    for (StepRecord& record : r.records) buffer.push_back(std::move(record));
  }
  normalize_advantages(advantages);

  Stopwatch update_watch;
  {
    NP_SPAN("train.update");
    for (int it = 0; it < std::max(1, config_.update_iterations); ++it) {
      update_policy(buffer, advantages);
      update_critic(buffer, rewards_to_go);
    }
  }
  const double update_seconds = update_watch.seconds();

  if (stats.trajectories > 0) stats.mean_return = return_sum / stats.trajectories;
  stats.best_cost_so_far = best_cost_;
  stats.seconds = watch.seconds();

  // Per-epoch telemetry: where the epoch's wall clock went plus the
  // learning signal, then one JSONL record per training iteration when
  // a metrics sink is configured (the registry snapshot rides along).
  {
    static obs::Counter& epochs = obs::counter("train.epochs");
    static obs::Counter& steps = obs::counter("train.steps");
    static obs::Gauge& mean_return = obs::gauge("train.mean_return");
    static obs::Gauge& best_cost = obs::gauge("train.best_cost_so_far");
    static obs::Gauge& epoch_seconds = obs::gauge("train.epoch_seconds");
    static obs::Gauge& rollout_seconds = obs::gauge("train.rollout_seconds");
    static obs::Gauge& update_seconds_gauge = obs::gauge("train.update_seconds");
    epochs.add(1);
    steps.add(stats.steps);
    mean_return.set(stats.mean_return);
    if (stats.best_cost_so_far != kUnset) best_cost.set(stats.best_cost_so_far);
    epoch_seconds.set(stats.seconds);
    rollout_seconds.set(stats.rollout_seconds);
    update_seconds_gauge.set(update_seconds);
  }
  if (obs::metrics_out_open()) {
    obs::emit_metrics_record("train_epoch", stats.epoch);
  }
  // Flight-recorder waypoint: epoch boundaries anchor a post-mortem
  // timeline ("the crash was 3 events after epoch 12 ended").
  obs::fr_record(obs::FrEventKind::kEpochBoundary, "train.epoch", stats.epoch,
                 stats.steps);
  return stats;
}

namespace {

/// Stack the chunk's feature matrices for one batched forward.
la::Matrix stack_chunk_features(const std::vector<StepRecord>& buffer,
                                std::size_t begin, std::size_t end) {
  std::vector<const la::Matrix*> parts;
  parts.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) parts.push_back(&buffer[i].features);
  return la::vstack(parts);
}

}  // namespace

void A2cTrainer::update_policy(const std::vector<StepRecord>& buffer,
                               const std::vector<double>& advantages) {
  NP_SPAN("train.update_policy");
  actor_optimizer_.zero_grad();
  const double inv_n = 1.0 / static_cast<double>(buffer.size());
  for (std::size_t begin = 0; begin < buffer.size(); begin += config_.chunk_steps) {
    const std::size_t end =
        std::min(buffer.size(), begin + static_cast<std::size_t>(config_.chunk_steps));
    ad::Tape tape;
    // Per-step log-prob tensors; batched mode shares one encoder/actor
    // forward across the chunk (same values, ulp-different gradients —
    // see TrainConfig::batched_updates).
    std::vector<ad::Tensor> step_log_probs;
    step_log_probs.reserve(end - begin);
    if (config_.batched_updates) {
      std::vector<const std::vector<std::uint8_t>*> masks;
      masks.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) masks.push_back(&buffer[i].mask);
      const la::Matrix stacked = stack_chunk_features(buffer, begin, end);
      auto forward = network_.forward_batch(
          tape, adjacency_cache_.get(static_cast<int>(end - begin)), stacked,
          masks, /*want_values=*/false);
      step_log_probs = std::move(forward.log_probs);
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        step_log_probs.push_back(network_.policy_log_probs(
            tape, env_.adjacency(), buffer[i].features, buffer[i].mask));
      }
    }
    ad::Tensor loss = tape.constant(la::Matrix(1, 1, 0.0));
    for (std::size_t i = begin; i < end; ++i) {
      ad::Tensor log_probs = step_log_probs[i - begin];
      ad::Tensor logp =
          tape.pick(log_probs, 0, static_cast<std::size_t>(buffer[i].action));
      if (config_.ppo_clip > 0.0) {
        // Clipped surrogate: -min(ratio*A, clip(ratio)*A). When the
        // clipped branch is active the objective is locally constant in
        // the parameters, so the step contributes no gradient.
        ad::Tensor ratio = tape.exp(tape.sub(
            logp, tape.constant(la::Matrix(1, 1, buffer[i].log_prob))));
        const double r = tape.value(ratio)(0, 0);
        const double clipped =
            std::clamp(r, 1.0 - config_.ppo_clip, 1.0 + config_.ppo_clip);
        const double adv = advantages[i];
        if (r * adv <= clipped * adv + 1e-15) {
          loss = tape.add(loss, tape.scale(ratio, -adv * inv_n));
        }
      } else {
        // Algorithm 1's plain policy-gradient loss: -(advantage * logp).
        loss = tape.add(loss, tape.scale(logp, -advantages[i] * inv_n));
      }
      if (config_.entropy_coefficient > 0.0) {
        ad::Tensor entropy = tape.entropy_from_log_probs(log_probs);
        loss = tape.add(loss,
                        tape.scale(entropy, -config_.entropy_coefficient * inv_n));
      }
    }
    tape.backward(loss);  // accumulates into actor + gnn parameter grads
  }
  actor_optimizer_.step();
}

void A2cTrainer::update_critic(const std::vector<StepRecord>& buffer,
                               const std::vector<double>& rewards_to_go) {
  NP_SPAN("train.update_critic");
  critic_optimizer_.zero_grad();
  const double inv_n = 1.0 / static_cast<double>(buffer.size());
  for (std::size_t begin = 0; begin < buffer.size(); begin += config_.chunk_steps) {
    const std::size_t end =
        std::min(buffer.size(), begin + static_cast<std::size_t>(config_.chunk_steps));
    ad::Tape tape;
    std::vector<ad::Tensor> step_values;
    step_values.reserve(end - begin);
    if (config_.batched_updates) {
      const la::Matrix stacked = stack_chunk_features(buffer, begin, end);
      ad::Tensor values = network_.value_batch(
          tape, adjacency_cache_.get(static_cast<int>(end - begin)), stacked,
          end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        step_values.push_back(tape.pick(values, i - begin, 0));
      }
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        step_values.push_back(
            network_.value(tape, env_.adjacency(), buffer[i].features));
      }
    }
    ad::Tensor loss = tape.constant(la::Matrix(1, 1, 0.0));
    for (std::size_t i = begin; i < end; ++i) {
      ad::Tensor diff = tape.sub(step_values[i - begin],
                                 tape.constant(la::Matrix(1, 1, rewards_to_go[i])));
      loss = tape.add(loss, tape.scale(tape.square(diff), inv_n));
    }
    tape.backward(loss);
  }
  critic_optimizer_.step();
}

nn::InferenceEngine* A2cTrainer::acting_engine() {
  if (nn::inference_mode_from_env() == nn::InferenceMode::kTape) return nullptr;
  if (acting_engine_storage_ == nullptr) {
    acting_engine_storage_ = std::make_unique<nn::InferenceEngine>(network_);
  } else {
    acting_engine_storage_->refresh();
  }
  return acting_engine_storage_.get();
}

A2cTrainer::PolicyEvaluation A2cTrainer::evaluate_policy(int rollouts) {
  if (rollouts < 1) throw std::invalid_argument("evaluate_policy: rollouts < 1");
  PolicyEvaluation eval;
  eval.rollouts = rollouts;
  nn::InferenceEngine* engine = acting_engine();
  double cost_sum = 0.0;
  double best = kUnset;
  for (int r = 0; r < rollouts; ++r) {
    env_.reset();
    while (!env_.done()) {
      const la::Matrix features = env_.features();
      const std::vector<std::uint8_t> mask = env_.action_mask();
      int action = -1;
      if (engine != nullptr) {
        const nn::InferenceEngine::Output out =
            engine->forward(*env_.adjacency(), features, mask, /*want_value=*/false);
        action = sample_from_log_probs(out.log_probs, mask, rng_);
      } else {
        ad::Tape tape;
        ad::Tensor log_probs =
            network_.policy_log_probs(tape, env_.adjacency(), features, mask);
        action = sample_from_log_probs(tape.value(log_probs), mask, rng_);
      }
      const StepResult step = env_.step(action);
      if (step.feasible) {
        ++eval.feasible;
        const double cost = env_.added_cost();
        cost_sum += cost;
        best = std::min(best, cost);
        if (cost < best_cost_) {
          best_cost_ = cost;
          best_added_ = env_.added_units();
        }
      }
    }
  }
  env_.reset();
  if (eval.feasible > 0) {
    eval.best_cost = best;
    eval.mean_cost = cost_sum / eval.feasible;
  }
  return eval;
}

bool A2cTrainer::greedy_rollout() {
  env_.reset();
  bool feasible = false;
  nn::InferenceEngine* engine = acting_engine();
  while (!env_.done()) {
    const la::Matrix features = env_.features();
    const std::vector<std::uint8_t> mask = env_.action_mask();
    int action = -1;
    if (engine != nullptr) {
      const nn::InferenceEngine::Output out =
          engine->forward(*env_.adjacency(), features, mask, /*want_value=*/false);
      double best = -1e301;
      for (std::size_t i = 0; i < mask.size(); ++i) {
        if (mask[i] && out.log_probs[i] > best) {
          best = out.log_probs[i];
          action = static_cast<int>(i);
        }
      }
    } else {
      ad::Tape tape;
      ad::Tensor log_probs =
          network_.policy_log_probs(tape, env_.adjacency(), features, mask);
      const la::Matrix& lp = tape.value(log_probs);
      double best = -1e301;
      for (std::size_t i = 0; i < mask.size(); ++i) {
        if (mask[i] && lp(0, i) > best) {
          best = lp(0, i);
          action = static_cast<int>(i);
        }
      }
    }
    if (action < 0) break;  // dead mask
    const StepResult step = env_.step(action);
    if (step.feasible) {
      feasible = true;
      const double cost = env_.added_cost();
      if (cost < best_cost_) {
        best_cost_ = cost;
        best_added_ = env_.added_units();
        log_info("rl: greedy rollout improved best plan to ", cost);
      }
    }
  }
  env_.reset();
  return feasible;
}

std::vector<EpochStats> A2cTrainer::train() {
  std::vector<EpochStats> history;
  const bool checkpointing =
      config_.checkpoint_every > 0 && !config_.checkpoint_path.empty();
  while (epoch_counter_ < config_.epochs) {
    history.push_back(run_epoch());
    const EpochStats& stats = history.back();
    log_info("rl: epoch ", stats.epoch, " return ", stats.mean_return, " best ",
             stats.best_cost_so_far == kUnset ? -1.0 : stats.best_cost_so_far);
    bool stop = false;
    if (config_.patience > 0) {
      if (best_cost_ < patience_best_ - 1e-9) {
        patience_best_ = best_cost_;
        patience_stale_ = 0;
      } else if (has_feasible_plan() && ++patience_stale_ >= config_.patience) {
        log_info("rl: early stop after ", patience_stale_, " stale epochs");
        stop = true;
      }
    }
    // The snapshot lands after the patience update so a resumed run
    // continues from exactly the state the killed run would have had.
    if (checkpointing && (epoch_counter_ % config_.checkpoint_every == 0 ||
                          stop || epoch_counter_ >= config_.epochs)) {
      save_checkpoint(config_.checkpoint_path);
    }
    if (stop) break;
  }
  return history;
}

}  // namespace np::rl
