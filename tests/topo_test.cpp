// Topology model, node-link transformation, generator presets and
// serialization round trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "topo/generator.hpp"
#include "topo/serialize.hpp"
#include "topo/topology.hpp"
#include "topo/paths.hpp"
#include "topo/transform.hpp"

namespace np::topo {
namespace {

/// The Figure 1 example: sites A..F, ring fibers, two/three IP links.
Topology figure1_topology() {
  Topology t;
  t.set_name("figure1");
  t.set_capacity_unit_gbps(100.0);
  const int a = t.add_site({"A", 0, 0, 0});
  const int b = t.add_site({"B", 1, 1, 0});
  const int c = t.add_site({"C", 2, 1, 0});
  const int d = t.add_site({"D", 3, 0, 0});
  const int e = t.add_site({"E", 1, -1, 0});
  const int f = t.add_site({"F", 2, -1, 0});
  auto fiber = [&](int s1, int s2, const std::string& name) {
    Fiber fb;
    fb.site_a = s1; fb.site_b = s2;
    fb.length_km = 100.0; fb.spectrum_ghz = 4800.0; fb.build_cost = 1000.0;
    fb.name = name;
    return t.add_fiber(fb);
  };
  const int f_ab = fiber(a, b, "A-B");
  const int f_bc = fiber(b, c, "B-C");
  const int f_cd = fiber(c, d, "C-D");
  const int f_ae = fiber(a, e, "A-E");
  const int f_ef = fiber(e, f, "E-F");
  const int f_fd = fiber(f, d, "F-D");
  auto link = [&](int s1, int s2, std::vector<int> path, const std::string& name) {
    IpLink l;
    l.site_a = s1; l.site_b = s2;
    l.fiber_path = std::move(path);
    l.spectrum_per_unit_ghz = 37.5;
    l.name = name;
    return t.add_ip_link(std::move(l));
  };
  link(a, d, {f_ab, f_bc, f_cd}, "link1");  // A-B-C-D
  link(a, d, {f_ae, f_ef, f_fd}, "link2");  // A-E-F-D
  t.add_flow({a, d, 100.0, CoS::kGold});
  t.add_failure({{f_ae}, {}, "cut-A-E"});
  t.add_failure({{f_bc}, {}, "cut-B-C"});
  return t;
}

TEST(Topology, Figure1Builds) {
  Topology t = figure1_topology();
  t.validate();
  EXPECT_EQ(t.num_sites(), 6);
  EXPECT_EQ(t.num_fibers(), 6);
  EXPECT_EQ(t.num_links(), 2);
  EXPECT_DOUBLE_EQ(t.link_length_km(0), 300.0);
}

TEST(Topology, RejectsBadFiber) {
  Topology t;
  t.add_site({"A", 0, 0, 0});
  t.add_site({"B", 0, 0, 0});
  Fiber f;
  f.site_a = 0; f.site_b = 5; f.length_km = 1; f.spectrum_ghz = 1;
  EXPECT_THROW(t.add_fiber(f), std::invalid_argument);
  f.site_b = 0;
  EXPECT_THROW(t.add_fiber(f), std::invalid_argument);  // self loop
  f.site_b = 1; f.length_km = -1;
  EXPECT_THROW(t.add_fiber(f), std::invalid_argument);
}

TEST(Topology, RejectsDisconnectedFiberPath) {
  Topology t = figure1_topology();
  IpLink l;
  l.site_a = 0; l.site_b = 3;
  l.fiber_path = {0, 4};  // A-B then E-F: not a walk
  EXPECT_THROW(t.add_ip_link(std::move(l)), std::invalid_argument);
}

TEST(Topology, RejectsPathNotReachingEndpoint) {
  Topology t = figure1_topology();
  IpLink l;
  l.site_a = 0; l.site_b = 3;
  l.fiber_path = {0};  // A-B only
  EXPECT_THROW(t.add_ip_link(std::move(l)), std::invalid_argument);
}

TEST(Topology, RejectsBadFlow) {
  Topology t = figure1_topology();
  EXPECT_THROW(t.add_flow({0, 0, 10.0, CoS::kGold}), std::invalid_argument);
  EXPECT_THROW(t.add_flow({0, 99, 10.0, CoS::kGold}), std::invalid_argument);
  EXPECT_THROW(t.add_flow({0, 1, -5.0, CoS::kGold}), std::invalid_argument);
}

TEST(Topology, RejectsBadFailure) {
  Topology t = figure1_topology();
  EXPECT_THROW(t.add_failure({{99}, {}, "bad"}), std::invalid_argument);
  EXPECT_THROW(t.add_failure({{}, {99}, "bad"}), std::invalid_argument);
}

TEST(Topology, LinkFailedLogic) {
  Topology t = figure1_topology();
  EXPECT_FALSE(t.link_failed(0, t.failure(0)));  // cut A-E does not hit link1
  EXPECT_TRUE(t.link_failed(1, t.failure(0)));   // ... but kills link2
  EXPECT_TRUE(t.link_failed(0, t.failure(1)));   // cut B-C kills link1
  Failure site_failure{{}, {0}, "site-A"};
  EXPECT_TRUE(t.link_failed(0, site_failure));   // endpoint down
  EXPECT_TRUE(t.link_failed(1, site_failure));
}

TEST(Topology, FlowRequiredHonorsPolicyAndEndpoints) {
  Topology t = figure1_topology();
  t.add_flow({1, 2, 50.0, CoS::kSilver});
  const Failure healthy{{}, {}, "none"};
  EXPECT_TRUE(t.flow_required(t.flow(0), healthy));
  EXPECT_TRUE(t.flow_required(t.flow(1), healthy));  // silver, healthy: required
  EXPECT_TRUE(t.flow_required(t.flow(0), t.failure(0)));   // gold under failure
  EXPECT_FALSE(t.flow_required(t.flow(1), t.failure(0)));  // silver not protected
  const Failure site_a{{}, {0}, "site-A"};
  EXPECT_FALSE(t.flow_required(t.flow(0), site_a));  // endpoint down
}

TEST(Topology, SpectrumAccounting) {
  Topology t = figure1_topology();
  std::vector<int> units = {2, 3};
  // Fiber A-B carries only link1 (2 units * 37.5).
  EXPECT_DOUBLE_EQ(t.fiber_spectrum_used(0, units), 75.0);
  EXPECT_DOUBLE_EQ(t.fiber_spectrum_used(3, units), 112.5);
  const int max_units = t.link_max_units(0);
  EXPECT_EQ(max_units, static_cast<int>(4800.0 / 37.5));
  EXPECT_EQ(t.spectrum_headroom_units(0, units), max_units - 2);
}

TEST(Topology, HeadroomAccountsForSharedFibers) {
  Topology t = figure1_topology();
  // Add link3 = A-B-F-D style: reuse fiber A-B so link1 and link3 share it.
  IpLink l;
  l.site_a = 0; l.site_b = 2;
  l.fiber_path = {0, 1};  // A-B, B-C -> A to C
  l.spectrum_per_unit_ghz = 37.5;
  l.name = "link3";
  t.add_ip_link(std::move(l));
  std::vector<int> units = {100, 0, 20};
  // Fiber A-B: (100+20)*37.5 = 4500 used of 4800 -> 300/37.5 = 8 units left.
  EXPECT_EQ(t.spectrum_headroom_units(0, units), 8);
  EXPECT_EQ(t.spectrum_headroom_units(2, units), 8);
}

TEST(Topology, PlanCostUsesUnitCosts) {
  Topology t = figure1_topology();
  t.set_cost_model({0.01, 0.0});
  // link1 length 300km: unit cost = 100 * 0.01 * 300 = 300.
  EXPECT_NEAR(t.link_unit_cost(0), 300.0, 1e-9);
  EXPECT_NEAR(t.plan_cost({2, 1}), 2 * 300.0 + 300.0, 1e-9);
  EXPECT_THROW(t.plan_cost({1}), std::invalid_argument);
  EXPECT_THROW(t.plan_cost({-1, 0}), std::invalid_argument);
}

TEST(Topology, FiberCostAmortizedIntoUnitCost) {
  Topology t = figure1_topology();
  t.set_cost_model({0.0, 1.0});
  // Unit cost = sum over 3 fibers of 1000 * (37.5/4800).
  EXPECT_NEAR(t.link_unit_cost(0), 3 * 1000.0 * 37.5 / 4800.0, 1e-9);
}

TEST(Topology, SetLinkInitialUnitsValidates) {
  Topology t = figure1_topology();
  t.set_link_initial_units(0, 5);
  EXPECT_EQ(t.link(0).initial_units, 5);
  EXPECT_THROW(t.set_link_initial_units(0, -1), std::invalid_argument);
  EXPECT_THROW(t.set_link_initial_units(0, 100000), std::invalid_argument);
  EXPECT_THROW(t.set_link_initial_units(99, 1), std::invalid_argument);
}

TEST(Topology, ValidateCatchesOversubscribedInitialCapacity) {
  Topology t = figure1_topology();
  // 4800/37.5 = 128 max units; setting via the checked API refuses more,
  // so validate() on a fresh topology is clean.
  EXPECT_NO_THROW(t.validate());
}

// ---- node-link transformation ----

TEST(Transform, Figure5Example) {
  // The paper's Figure 5: nodes A,B,C,D,E; links AB, AD, DE, CE, BC1, BC2.
  Topology t;
  for (const char* name : {"A", "B", "C", "D", "E"}) {
    t.add_site({name, 0, 0, 0});
  }
  auto fiber = [&](int a, int b) {
    Fiber f;
    f.site_a = a; f.site_b = b; f.length_km = 1.0; f.spectrum_ghz = 1000.0;
    return t.add_fiber(f);
  };
  auto link = [&](int a, int b, const char* name) {
    IpLink l;
    l.site_a = a; l.site_b = b;
    l.fiber_path = {fiber(a, b)};
    l.spectrum_per_unit_ghz = 1.0;
    l.name = name;
    return t.add_ip_link(std::move(l));
  };
  const int ab = link(0, 1, "AB");
  const int ad = link(0, 3, "AD");
  const int de = link(3, 4, "DE");
  const int ce = link(2, 4, "CE");
  const int bc1 = link(1, 2, "BC1");
  const int bc2 = link(1, 2, "BC2");

  TransformedGraph g = node_link_transform(t);
  EXPECT_EQ(g.num_nodes, 6);
  std::set<std::pair<int, int>> edges(g.edges.begin(), g.edges.end());
  auto has = [&](int i, int j) {
    return edges.count({std::min(i, j), std::max(i, j)}) > 0;
  };
  // Shared-endpoint pairs from the figure.
  EXPECT_TRUE(has(ab, ad));    // share A
  EXPECT_TRUE(has(ab, bc1));   // share B
  EXPECT_TRUE(has(ab, bc2));
  EXPECT_TRUE(has(ad, de));    // share D
  EXPECT_TRUE(has(de, ce));    // share E
  EXPECT_TRUE(has(ce, bc1));   // share C
  EXPECT_TRUE(has(ce, bc2));
  // Parallel links must NOT be connected.
  EXPECT_FALSE(has(bc1, bc2));
  // Non-adjacent links are not connected.
  EXPECT_FALSE(has(ab, ce));
  EXPECT_FALSE(has(ad, bc1));
  // Exactly the 7 shared-endpoint pairs enumerated above.
  EXPECT_EQ(edges.size(), 7u);
}

TEST(Transform, EdgeCountMatchesManualEnumeration) {
  Topology t = figure1_topology();
  // link1 (A-D) and link2 (A-D) are parallel -> no edges at all.
  TransformedGraph g = node_link_transform(t);
  EXPECT_EQ(g.num_nodes, 2);
  EXPECT_TRUE(g.edges.empty());
}

TEST(Transform, NormalizedAdjacencyRowSumsForRegularGraph) {
  // For Â = D^-1/2 (A+I) D^-1/2 on a k-regular graph every row sums to 1.
  Topology t;
  for (int i = 0; i < 4; ++i) t.add_site({"s" + std::to_string(i), 0, 0, 0});
  auto link = [&](int a, int b) {
    Fiber f;
    f.site_a = a; f.site_b = b; f.length_km = 1.0; f.spectrum_ghz = 1000.0;
    const int fid = t.add_fiber(f);
    IpLink l;
    l.site_a = a; l.site_b = b; l.fiber_path = {fid};
    t.add_ip_link(std::move(l));
  };
  // A 4-cycle of links: transformed graph is a 4-cycle (2-regular).
  link(0, 1);
  link(1, 2);
  link(2, 3);
  link(3, 0);
  TransformedGraph g = node_link_transform(t);
  ASSERT_EQ(g.num_nodes, 4);
  EXPECT_EQ(g.edges.size(), 4u);
  la::Matrix dense = g.normalized_adjacency->to_dense();
  for (std::size_t r = 0; r < 4; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < 4; ++c) row_sum += dense(r, c);
    EXPECT_NEAR(row_sum, 1.0, 1e-12);
  }
}

TEST(Transform, AdjacencyIsSymmetric) {
  Topology t = make_preset('B');
  TransformedGraph g = node_link_transform(t);
  la::Matrix dense = g.normalized_adjacency->to_dense();
  EXPECT_LT(la::max_abs_diff(dense, dense.transposed()), 1e-12);
}

TEST(Transform, FeaturesAreZNormalized) {
  Topology t = make_preset('A');
  std::vector<int> units = t.initial_units();
  units[0] += 5;  // make it non-constant
  la::Matrix f = node_features(t, units, true);
  ASSERT_EQ(f.rows(), static_cast<std::size_t>(t.num_links()));
  ASSERT_EQ(f.cols(), 4u);
  double mean = 0.0, var = 0.0;
  for (std::size_t i = 0; i < f.rows(); ++i) mean += f(i, 0);
  mean /= static_cast<double>(f.rows());
  for (std::size_t i = 0; i < f.rows(); ++i) var += (f(i, 0) - mean) * (f(i, 0) - mean);
  var /= static_cast<double>(f.rows());
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(var, 1.0, 1e-9);
}

TEST(Transform, ConstantCapacityNormalizesToZero) {
  Topology t = make_preset('A');
  std::vector<int> units(t.num_links(), 3);
  la::Matrix f = node_features(t, units, false);
  ASSERT_EQ(f.cols(), 1u);
  for (std::size_t i = 0; i < f.rows(); ++i) EXPECT_DOUBLE_EQ(f(i, 0), 0.0);
}

TEST(Transform, FeatureDimensionMatches) {
  EXPECT_EQ(feature_dimension(true), 4);
  EXPECT_EQ(feature_dimension(false), 1);
}

TEST(Transform, RejectsWrongUnitVectorSize) {
  Topology t = make_preset('A');
  EXPECT_THROW(node_features(t, {1, 2, 3}, true), std::invalid_argument);
}

// ---- generator ----

TEST(Generator, PresetsAscendInSize) {
  int prev_links = 0, prev_failures = 0, prev_flows = 0;
  for (char id : {'A', 'B', 'C', 'D', 'E'}) {
    Topology t = make_preset(id);
    EXPECT_NO_THROW(t.validate()) << id;
    EXPECT_GT(t.num_links(), prev_links) << id;
    EXPECT_GT(t.num_failures(), prev_failures) << id;
    EXPECT_GT(t.num_flows(), prev_flows) << id;
    prev_links = t.num_links();
    prev_failures = t.num_failures();
    prev_flows = t.num_flows();
  }
}

TEST(Generator, DeterministicForSeed) {
  Topology a = make_preset('B', 7);
  Topology b = make_preset('B', 7);
  EXPECT_EQ(to_text(a), to_text(b));
}

TEST(Generator, DifferentSeedsDiffer) {
  Topology a = make_preset('B', 7);
  Topology b = make_preset('B', 8);
  EXPECT_NE(to_text(a), to_text(b));
}

TEST(Generator, RejectsBadParams) {
  GeneratorParams p;
  p.sites_per_region = 2;
  EXPECT_THROW(generate(p), std::invalid_argument);
  p = GeneratorParams{};
  p.num_flows = 0;
  EXPECT_THROW(generate(p), std::invalid_argument);
}

TEST(Generator, UnknownPresetThrows) {
  EXPECT_THROW(preset('Z'), std::invalid_argument);
}

TEST(Generator, EveryRequiredFlowSurvivesEveryFailureTopologically) {
  for (char id : {'A', 'B', 'C'}) {
    Topology t = make_preset(id);
    for (int k = 0; k < t.num_failures(); ++k) {
      const Failure& failure = t.failure(k);
      for (int fl = 0; fl < t.num_flows(); ++fl) {
        if (!t.flow_required(t.flow(fl), failure)) continue;
        // BFS over surviving links.
        std::vector<std::vector<int>> adj(t.num_sites());
        for (int l = 0; l < t.num_links(); ++l) {
          if (t.link_failed(l, failure)) continue;
          adj[t.link(l).site_a].push_back(t.link(l).site_b);
          adj[t.link(l).site_b].push_back(t.link(l).site_a);
        }
        std::vector<bool> seen(t.num_sites(), false);
        std::vector<int> stack = {t.flow(fl).src};
        seen[t.flow(fl).src] = true;
        while (!stack.empty()) {
          const int u = stack.back();
          stack.pop_back();
          for (int v : adj[u]) {
            if (!seen[v]) {
              seen[v] = true;
              stack.push_back(v);
            }
          }
        }
        EXPECT_TRUE(seen[t.flow(fl).dst])
            << "topology " << id << " failure " << failure.name;
      }
    }
  }
}

TEST(Generator, InitialCapacityRespectsSpectrum) {
  Topology t = make_preset('C');
  const auto units = t.initial_units();
  for (int f = 0; f < t.num_fibers(); ++f) {
    EXPECT_LE(t.fiber_spectrum_used(f, units), t.fiber(f).spectrum_ghz + 1e-9);
  }
}

TEST(Generator, ScaleInitialCapacityVariants) {
  Topology base = make_preset('A');
  Topology zero = scale_initial_capacity(base, 0.0);
  for (int l = 0; l < zero.num_links(); ++l) {
    EXPECT_EQ(zero.link(l).initial_units, 0);
  }
  Topology same = scale_initial_capacity(base, 1.0);
  for (int l = 0; l < same.num_links(); ++l) {
    EXPECT_EQ(same.link(l).initial_units, base.link(l).initial_units);
  }
  Topology half = scale_initial_capacity(base, 0.5);
  for (int l = 0; l < half.num_links(); ++l) {
    EXPECT_LE(half.link(l).initial_units, base.link(l).initial_units);
  }
  EXPECT_THROW(scale_initial_capacity(base, -0.1), std::invalid_argument);
}

TEST(Generator, HasParallelLinks) {
  Topology t = make_preset('C');
  bool found_parallel = false;
  for (int i = 0; i < t.num_links() && !found_parallel; ++i) {
    for (int j = i + 1; j < t.num_links(); ++j) {
      const auto& a = t.link(i);
      const auto& b = t.link(j);
      if (std::minmax(a.site_a, a.site_b) == std::minmax(b.site_a, b.site_b)) {
        EXPECT_NE(a.fiber_path, b.fiber_path);  // distinct fiber paths
        found_parallel = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_parallel);
}

TEST(Generator, DistanceAdaptiveModulationTiersSpectrum) {
  GeneratorParams p = preset('C');
  p.distance_adaptive_modulation = true;
  Topology t = generate(p);
  const double mid = p.spectrum_per_unit_ghz;
  int short_links = 0, long_links = 0;
  for (int l = 0; l < t.num_links(); ++l) {
    const double spu = t.link(l).spectrum_per_unit_ghz;
    const double length = t.link_length_km(l);
    if (length < p.short_reach_km) {
      EXPECT_NEAR(spu, mid * 2.0 / 3.0, 1e-9);
      ++short_links;
    } else if (length > p.long_reach_km) {
      EXPECT_NEAR(spu, mid * 4.0 / 3.0, 1e-9);
      ++long_links;
    } else {
      EXPECT_NEAR(spu, mid, 1e-9);
    }
  }
  // The multi-region layout must produce both tiers.
  EXPECT_GT(short_links, 0);
  EXPECT_GT(long_links, 0);
  EXPECT_NO_THROW(t.validate());
}

TEST(Generator, ConduitFailuresCutTwinPairs) {
  GeneratorParams p = preset('B');
  p.conduit_failures = true;
  Topology t = generate(p);
  int conduits = 0;
  for (int k = 0; k < t.num_failures(); ++k) {
    const Failure& failure = t.failure(k);
    if (failure.name.rfind("conduit-", 0) != 0) continue;
    ++conduits;
    ASSERT_EQ(failure.fibers.size(), 2u);
    const Fiber& a = t.fiber(failure.fibers[0]);
    const Fiber& b = t.fiber(failure.fibers[1]);
    // Twin fibers connect the same sites.
    EXPECT_EQ(std::minmax(a.site_a, a.site_b), std::minmax(b.site_a, b.site_b));
  }
  EXPECT_GT(conduits, 0);
  // Conduit failures must still leave every required flow connected.
  for (int k = 0; k < t.num_failures(); ++k) {
    for (int fl = 0; fl < t.num_flows(); ++fl) {
      if (!t.flow_required(t.flow(fl), t.failure(k))) continue;
      std::vector<bool> usable(t.num_links());
      for (int l = 0; l < t.num_links(); ++l) {
        usable[l] = !t.link_failed(l, t.failure(k));
      }
      EXPECT_FALSE(
          shortest_ip_path(t, t.flow(fl).src, t.flow(fl).dst, usable).empty());
    }
  }
}

// ---- serialization ----

TEST(Serialize, RoundTripPreservesEverything) {
  for (char id : {'A', 'B'}) {
    Topology original = make_preset(id);
    Topology reloaded = from_text(to_text(original));
    EXPECT_EQ(to_text(original), to_text(reloaded));
    EXPECT_EQ(reloaded.num_sites(), original.num_sites());
    EXPECT_EQ(reloaded.num_fibers(), original.num_fibers());
    EXPECT_EQ(reloaded.num_links(), original.num_links());
    EXPECT_EQ(reloaded.num_flows(), original.num_flows());
    EXPECT_EQ(reloaded.num_failures(), original.num_failures());
    EXPECT_DOUBLE_EQ(reloaded.capacity_unit_gbps(), original.capacity_unit_gbps());
    EXPECT_NO_THROW(reloaded.validate());
  }
}

TEST(Serialize, QuotedNamesWithSpacesSurvive) {
  Topology t = figure1_topology();
  t.set_name("my topology \"quoted\"");
  Topology r = from_text(to_text(t));
  EXPECT_EQ(r.name(), "my topology \"quoted\"");
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  Topology t = figure1_topology();
  std::string text = "# header comment\n\n" + to_text(t) + "\n# trailing\n";
  EXPECT_NO_THROW(from_text(text));
}

TEST(Serialize, UnknownRecordThrowsWithLineNumber) {
  try {
    from_text("topology \"x\"\nbogus 1 2 3\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Serialize, TruncatedRecordThrows) {
  EXPECT_THROW(from_text("site \"A\" 1.0\n"), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  Topology t = make_preset('A');
  const std::string path = ::testing::TempDir() + "/np_topo_roundtrip.txt";
  save_file(t, path);
  Topology r = load_file(path);
  EXPECT_EQ(to_text(t), to_text(r));
  EXPECT_THROW(load_file("/nonexistent/dir/file.txt"), std::runtime_error);
}

}  // namespace
}  // namespace np::topo
