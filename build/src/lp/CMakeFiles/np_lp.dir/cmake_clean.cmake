file(REMOVE_RECURSE
  "CMakeFiles/np_lp.dir/model.cpp.o"
  "CMakeFiles/np_lp.dir/model.cpp.o.d"
  "CMakeFiles/np_lp.dir/simplex.cpp.o"
  "CMakeFiles/np_lp.dir/simplex.cpp.o.d"
  "libnp_lp.a"
  "libnp_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
