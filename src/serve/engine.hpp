// np::serve query engine: admission control, worker shards, and the
// degradation ladder. Transport-agnostic — sessions (socket or stdio)
// call submit(); the engine answers every accepted query with exactly
// one reply, from a worker thread for real work or synchronously for
// sheds, errors and ping/info.
//
// Degradation ladder (docs/INTERNALS.md §10):
//
//   OK        definitive verdict (feasible or infeasible)
//   RETRY     transient failure (injected fault, contract violation in
//             one scenario shard, deadline-hit warm solve): one cold
//             retry after a jittered backoff — not a terminal state
//   DEGRADED  Verdict::kUnknown partial result (deadline expired,
//             scenarios quarantined, or the retry failed too)
//   SHED      admission refused (queue full, estimated backlog over
//             the limit, or draining) — no work was done
//   QUARANTINE a scenario that failed twice in a row is skipped by all
//             subsequent checks (serve.quarantined); queries touching
//             it keep answering DEGRADED instead of crashing the shard
//
// Each worker shard owns a resident kWarmPatched PlanEvaluator: models
// built once, patched per query, warm-started — the paper's stateful
// checking machinery reused for serving, minus the monotonicity
// precondition that arbitrary what-if queries would violate.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <set>
#include <vector>

#include "plan/evaluator.hpp"
#include "serve/protocol.hpp"
#include "topo/topology.hpp"
#include "util/deadline.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace np::serve {

struct EngineConfig {
  int workers = 1;
  /// Bounded admission queue; submits past this depth are SHED.
  int queue_capacity = 128;
  /// Default per-query deadline when the request carries none;
  /// <= 0 = unlimited.
  double default_deadline_ms = 0.0;
  /// Estimated-backlog shedding: refuse admission once
  /// (queue depth + 1) * EMA service time exceeds this; <= 0 disables.
  double max_backlog_ms = 0.0;
  /// Per-scenario solver budget (PlanEvaluator::set_scenario_budget);
  /// <= 0 = unlimited (the query deadline still bounds the check).
  double scenario_budget_s = 0.0;
  /// Base backoff before the single cold retry; jittered to
  /// [0.5, 1.5) of this and clamped to the query's remaining budget.
  double retry_backoff_ms = 1.0;
  unsigned seed = 1;
};

/// Per-engine tallies (the obs serve.* counters are process-global;
/// tests need per-instance numbers).
struct EngineStats {
  long queries = 0;
  long ok = 0;
  long degraded = 0;
  long shed = 0;
  long errors = 0;
  long retries = 0;
  long quarantined = 0;
};

class Engine {
 public:
  /// Called exactly once per submit() with the terminal reply. May run
  /// on a worker thread; exceptions it throws are swallowed and
  /// counted, never propagated into the worker.
  using ReplyFn = std::function<void(const Reply&)>;

  Engine(const topo::Topology& topology, const EngineConfig& config);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Admission: validates the request, sheds or errors synchronously,
  /// otherwise enqueues for a worker shard. The reply callback fires
  /// exactly once either way.
  void submit(const Request& request, ReplyFn reply) NP_EXCLUDES(mutex_);

  /// Graceful drain: stop accepting (submits shed with reason
  /// "draining"), finish every queued query, join the workers. Safe to
  /// call more than once; the destructor drains if nobody else did.
  void drain() NP_EXCLUDES(mutex_);

  bool draining() const NP_EXCLUDES(mutex_);

  EngineStats stats() const;

  /// Scenario ids currently quarantined (sorted).
  std::vector<int> quarantined_scenarios() const NP_EXCLUDES(mutex_);

  const topo::Topology& topology() const { return topology_; }
  const EngineConfig& config() const { return config_; }

 private:
  struct Task {
    Request request;
    ReplyFn reply;
    util::Deadline deadline;
    double enqueue_us = 0.0;
  };

  void worker_loop(int worker_index) NP_EXCLUDES(mutex_);
  Reply process(const Task& task, plan::PlanEvaluator& evaluator, Rng& rng);
  Reply process_check(const Task& task, plan::PlanEvaluator& evaluator,
                      Rng& rng);
  void deliver(const Task& task, Reply reply);
  void quarantine(int scenario) NP_EXCLUDES(mutex_);
  std::vector<int> quarantined_snapshot() const NP_EXCLUDES(mutex_);

  const topo::Topology& topology_;
  const EngineConfig config_;

  mutable util::Mutex mutex_;
  util::CondVar work_cv_;
  std::deque<Task> queue_ NP_GUARDED_BY(mutex_);
  bool draining_ NP_GUARDED_BY(mutex_) = false;
  /// EMA of per-query service time (ms), the backlog estimator.
  double ema_service_ms_ NP_GUARDED_BY(mutex_) = 0.0;
  std::set<int> quarantined_ NP_GUARDED_BY(mutex_);

  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<std::future<void>> workers_;
  std::atomic<bool> drained_{false};

  std::atomic<long> n_queries_{0};
  std::atomic<long> n_ok_{0};
  std::atomic<long> n_degraded_{0};
  std::atomic<long> n_shed_{0};
  std::atomic<long> n_errors_{0};
  std::atomic<long> n_retries_{0};
  std::atomic<long> n_quarantined_{0};
};

}  // namespace np::serve
