# Empty dependencies file for abl_seed_variance.
# This may be replaced when dependencies are built.
