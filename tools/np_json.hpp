// np_json — a deliberately tiny recursive-descent JSON parser for the
// repo's offline tooling (np_postmortem, bench_diff). Std-only so the
// tools build without the library stack; tolerant of nothing — malformed
// input throws std::runtime_error with a byte offset, because a tool
// silently mis-reading a crash report is worse than one that refuses.
//
// Not for hot paths: values are heap-happy tagged structs. The inputs
// are kilobyte-scale reports and bench files, parsed once.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace np_json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Insertion order preserved — report sections render in file order.
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Typed accessors with defaults, for skim-friendly call sites.
  double num_or(const std::string& key, double fallback) const {
    const Value* v = find(key);
    return v != nullptr && v->is_number() ? v->number : fallback;
  }
  std::string str_or(const std::string& key, const std::string& fallback) const {
    const Value* v = find(key);
    return v != nullptr && v->is_string() ? v->string : fallback;
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    Value v;
    switch (c) {
      case '{': parse_object(v); return v;
      case '[': parse_array(v); return v;
      case '"':
        v.kind = Value::Kind::kString;
        v.string = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = Value::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = Value::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return v;
      default: parse_number(v); return v;
    }
  }

  void parse_object(Value& v) {
    v.kind = Value::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(Value& v) {
    v.kind = Value::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("unknown escape");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    // UTF-8 encode the BMP code point. Surrogate pairs are not joined —
    // our writers only ever emit \u00XX control-character escapes.
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }

  void parse_number(Value& v) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) fail("expected a value");
    pos_ += static_cast<std::size_t>(end - start);
    v.kind = Value::Kind::kNumber;
    v.number = value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parse a complete JSON document. Throws std::runtime_error on error.
inline Value parse(const std::string& text) {
  return detail::Parser(text).parse();
}

}  // namespace np_json
