
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/generator.cpp" "src/topo/CMakeFiles/np_topo.dir/generator.cpp.o" "gcc" "src/topo/CMakeFiles/np_topo.dir/generator.cpp.o.d"
  "/root/repo/src/topo/paths.cpp" "src/topo/CMakeFiles/np_topo.dir/paths.cpp.o" "gcc" "src/topo/CMakeFiles/np_topo.dir/paths.cpp.o.d"
  "/root/repo/src/topo/serialize.cpp" "src/topo/CMakeFiles/np_topo.dir/serialize.cpp.o" "gcc" "src/topo/CMakeFiles/np_topo.dir/serialize.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/topo/CMakeFiles/np_topo.dir/topology.cpp.o" "gcc" "src/topo/CMakeFiles/np_topo.dir/topology.cpp.o.d"
  "/root/repo/src/topo/transform.cpp" "src/topo/CMakeFiles/np_topo.dir/transform.cpp.o" "gcc" "src/topo/CMakeFiles/np_topo.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/np_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/np_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
