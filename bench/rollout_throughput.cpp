// Rollout-throughput benchmark for the multi-worker subsystem
// (rl::RolloutWorkers): env steps per second at 1, 2 and 4 workers,
// written as JSON for scripts/bench_rollout.sh -> BENCH_rollout.json.
//
// The worker curve is measured twice, once per inference mode: "fast"
// (the tape-free nn::InferenceEngine, the default acting path) and
// "tape" (the autodiff forwards, NEUROPLAN_INFERENCE=tape). The two
// curves are bit-identical in actions taken, so the delta is pure
// forward-pass overhead in the acting hot path.
//
// The 1-worker row uses borrowed mode (the exact serial trainer path),
// so speedups are measured against the true pre-threading baseline.
// Interpreting the numbers needs `hardware_threads` from the JSON:
// worker counts beyond the core count still gain from cross-worker
// batched network forwards, but the env-stepping parallelism only
// materializes on real cores.
//
// Knobs: NEUROPLAN_TOPOS (first letter, default B),
//        NEUROPLAN_ROLLOUT_STEPS (steps per measured collect, default 768),
//        NEUROPLAN_SEED (default 7).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "nn/actor_critic.hpp"
#include "obs/obs.hpp"
#include "rl/rollout.hpp"
#include "topo/generator.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace np;

nn::NetworkConfig network_config(const rl::EnvConfig& env) {
  nn::NetworkConfig c;
  c.feature_dim = topo::feature_dimension(env.include_static_features);
  c.gcn_layers = 2;
  c.gcn_hidden = 32;
  c.mlp_hidden = {64, 64};
  c.max_units_per_step = env.max_units_per_step;
  return c;
}

struct Measurement {
  double steps_per_sec = 0.0;
  double wall_seconds = 0.0;
  long lp_iterations = 0;   ///< simplex iterations in the measured collect
  double lp_seconds = 0.0;  ///< seconds inside lp::solve (CPU-seconds, K > 1)
};

Measurement measure(const topo::Topology& topology, const rl::EnvConfig& env,
                    nn::ActorCritic& net, int workers, unsigned seed,
                    int steps, nn::InferenceMode mode) {
  // Fresh PlanningEnv per measurement so LP caches start cold for every
  // worker count; one warmup collect builds them before timing.
  auto run = [&](rl::RolloutWorkers& rollout) {
    rollout.set_inference_mode(mode);
    rollout.collect(steps);  // warmup
    const long warm_iters = rollout.total_lp_iterations();
    const double warm_secs = rollout.total_lp_seconds();
    Stopwatch watch;
    const auto result = rollout.collect(steps);
    Measurement m;
    m.wall_seconds = watch.seconds();
    std::size_t collected = 0;
    for (const auto& r : result) collected += r.records.size();
    m.steps_per_sec = collected / m.wall_seconds;
    m.lp_iterations = rollout.total_lp_iterations() - warm_iters;
    m.lp_seconds = rollout.total_lp_seconds() - warm_secs;
    return m;
  };
  if (workers == 1) {
    rl::PlanningEnv serial_env(topology, env);
    Rng rng(seed);
    rl::RolloutWorkers rollout(serial_env, rng, net);
    return run(rollout);
  }
  rl::RolloutWorkers rollout(topology, env, net, workers, seed);
  return run(rollout);
}

}  // namespace

int main(int argc, char** argv) {
  obs::configure_from_env();  // NEUROPLAN_TRACE_OUT / NEUROPLAN_METRICS_OUT
  const std::string topos = env_string("NEUROPLAN_TOPOS", "B");
  const char preset = topos.empty() ? 'B' : topos[0];
  const unsigned seed = static_cast<unsigned>(env_long("NEUROPLAN_SEED", 7));
  const int steps = static_cast<int>(env_long("NEUROPLAN_ROLLOUT_STEPS", 768));

  const topo::Topology topology = topo::make_preset(preset);
  rl::EnvConfig env;
  env.max_trajectory_steps = 256;
  Rng net_rng(seed);
  nn::ActorCritic net(network_config(env), net_rng);

  const std::vector<int> worker_counts = {1, 2, 4};
  const std::vector<nn::InferenceMode> modes = {nn::InferenceMode::kFast,
                                                nn::InferenceMode::kTape};
  // rows[mode][worker_count_index]
  std::vector<std::vector<Measurement>> rows(modes.size());
  for (std::size_t m = 0; m < modes.size(); ++m) {
    for (int k : worker_counts) {
      rows[m].push_back(measure(topology, env, net, k, seed, steps, modes[m]));
      std::printf("[%s] workers %d: %.1f steps/s (lp share %.0f%%)\n",
                  nn::to_string(modes[m]), k, rows[m].back().steps_per_sec,
                  100.0 * rows[m].back().lp_seconds /
                      rows[m].back().wall_seconds);
    }
  }
  const double speedup =
      rows[0].back().steps_per_sec / rows[0].front().steps_per_sec;
  const double fast_vs_tape =
      rows[0].front().steps_per_sec / rows[1].front().steps_per_sec;
  const int hw_threads = util::ThreadPool::hardware_threads();
  std::printf("speedup 4 vs 1 (fast): %.2fx (on %d hardware threads)\n",
              speedup, hw_threads);
  std::printf("fast vs tape at 1 worker: %.2fx\n", fast_vs_tape);
  // Worker counts past the core count can't parallelize env stepping,
  // only batch network forwards — flag it so low speedups on small
  // machines aren't misread as regressions.
  const bool oversubscribed = hw_threads < worker_counts.back();
  if (oversubscribed) {
    std::printf("warning: %d hardware threads < %d workers; speedup is "
                "thread-starved\n",
                hw_threads, worker_counts.back());
  }

  const char* out_path = argc > 1 ? argv[1] : "BENCH_rollout.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  long total_lp_iterations = 0;
  double total_lp_seconds = 0.0;
  for (const auto& mode_rows : rows) {
    for (const Measurement& m : mode_rows) {
      total_lp_iterations += m.lp_iterations;
      total_lp_seconds += m.lp_seconds;
    }
  }
  std::fprintf(out, "{\n");
  bench::print_json_provenance(out);
  std::fprintf(out,
               "  \"benchmark\": \"rollout_throughput\",\n"
               "  \"topology\": \"%c\",\n"
               "  \"steps_per_collect\": %d,\n"
               "  \"hardware_threads\": %d,\n"
               "  \"warning\": \"%s\",\n"
               "  \"modes\": [\n",
               preset, steps, hw_threads,
               oversubscribed ? "hardware_threads below max worker count; "
                                "speedup is thread-starved"
                              : "");
  for (std::size_t m = 0; m < modes.size(); ++m) {
    std::fprintf(out, "    {\"inference\": \"%s\", \"workers\": [\n",
                 nn::to_string(modes[m]));
    for (std::size_t i = 0; i < worker_counts.size(); ++i) {
      const Measurement& row = rows[m][i];
      std::fprintf(
          out,
          "      {\"workers\": %d, \"steps_per_sec\": %.2f, "
          "\"lp_iterations\": %ld, \"lp_seconds\": %.4f, "
          "\"lp_share\": %.3f}%s\n",
          worker_counts[i], row.steps_per_sec, row.lp_iterations,
          row.lp_seconds,
          row.wall_seconds > 0.0 ? row.lp_seconds / row.wall_seconds : 0.0,
          i + 1 < worker_counts.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", m + 1 < modes.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"total_lp_iterations\": %ld,\n"
               "  \"lp_seconds\": %.4f,\n"
               "  \"speedup_4v1\": %.3f,\n"
               "  \"fast_vs_tape_1worker\": %.3f\n"
               "}\n",
               total_lp_iterations, total_lp_seconds, speedup, fast_vs_tape);
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  obs::shutdown();
  return 0;
}
