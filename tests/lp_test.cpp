// Simplex correctness: hand-checked LPs covering every status, bound
// structure and warm starts, plus a randomized property sweep comparing
// against brute-force vertex enumeration on small dense LPs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace np::lp {
namespace {

TEST(Model, AddAndQuery) {
  Model m;
  const int x = m.add_variable(0.0, 10.0, 1.0, "x");
  const int y = m.add_variable(-kInfinity, kInfinity, -2.0, "y");
  const int r = m.add_row(-kInfinity, 5.0, {{x, 1.0}, {y, 2.0}}, "r");
  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_EQ(m.num_rows(), 1);
  EXPECT_DOUBLE_EQ(m.variable(x).upper, 10.0);
  EXPECT_DOUBLE_EQ(m.row(r).upper, 5.0);
  EXPECT_EQ(m.variable(y).name, "y");
}

TEST(Model, RejectsInvertedBounds) {
  Model m;
  EXPECT_THROW(m.add_variable(1.0, 0.0, 0.0), std::invalid_argument);
  m.add_variable(0.0, 1.0, 0.0);
  EXPECT_THROW(m.add_row(2.0, 1.0, {}), std::invalid_argument);
  EXPECT_THROW(m.set_variable_bounds(0, 3.0, 2.0), std::invalid_argument);
}

TEST(Model, RejectsUnknownVariableInRow) {
  Model m;
  m.add_variable(0.0, 1.0, 0.0);
  EXPECT_THROW(m.add_row(0.0, 1.0, {{5, 1.0}}), std::out_of_range);
}

TEST(Model, RejectsNonFiniteCoefficients) {
  Model m;
  m.add_variable(0.0, 1.0, 0.0);
  EXPECT_THROW(m.add_row(0.0, 1.0, {{0, std::nan("")}}), std::invalid_argument);
  EXPECT_THROW(m.set_objective_coefficient(0, kInfinity), std::invalid_argument);
}

TEST(Model, ObjectiveAndViolation) {
  Model m;
  const int x = m.add_variable(0.0, 10.0, 2.0);
  const int y = m.add_variable(0.0, 10.0, 3.0);
  m.add_row(-kInfinity, 4.0, {{x, 1.0}, {y, 1.0}});
  EXPECT_DOUBLE_EQ(m.objective_value({1.0, 2.0}), 8.0);
  EXPECT_DOUBLE_EQ(m.max_violation({1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(m.max_violation({3.0, 2.0}), 1.0);   // row violated by 1
  EXPECT_DOUBLE_EQ(m.max_violation({-1.0, 0.0}), 1.0);  // bound violated by 1
}

// ---- basic solves ----

TEST(Simplex, SimpleMaximizationAsMinimization) {
  // max x + y st x + 2y <= 4, 3x + y <= 6, x,y >= 0 -> optimum (1.6, 1.2), 2.8.
  Model m;
  const int x = m.add_variable(0.0, kInfinity, -1.0);
  const int y = m.add_variable(0.0, kInfinity, -1.0);
  m.add_row(-kInfinity, 4.0, {{x, 1.0}, {y, 2.0}});
  m.add_row(-kInfinity, 6.0, {{x, 3.0}, {y, 1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.8, 1e-7);
  EXPECT_NEAR(s.x[x], 1.6, 1e-7);
  EXPECT_NEAR(s.x[y], 1.2, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y st x + y = 3, x <= 1 -> (1, 2), objective 3 (unique on x).
  Model m;
  const int x = m.add_variable(0.0, 1.0, 2.0);
  const int y = m.add_variable(0.0, kInfinity, 1.0);
  m.add_row(3.0, 3.0, {{x, 1.0}, {y, 1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x] + s.x[y], 3.0, 1e-7);
  EXPECT_NEAR(s.objective, 3.0 + s.x[x], 1e-7);
  EXPECT_NEAR(s.x[x], 0.0, 1e-7);  // cheaper to use y
}

TEST(Simplex, GreaterEqualRows) {
  // min 2x + y st x + y >= 4, x >= 1, y >= 0 -> (1, 3), objective 5.
  Model m;
  const int x = m.add_variable(1.0, kInfinity, 2.0);
  const int y = m.add_variable(0.0, kInfinity, 1.0);
  m.add_row(4.0, kInfinity, {{x, 1.0}, {y, 1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-7);
}

TEST(Simplex, RangeRow) {
  // min x st 2 <= x + y <= 5, y <= 1 -> x = 1.
  Model m;
  const int x = m.add_variable(0.0, kInfinity, 1.0);
  const int y = m.add_variable(0.0, 1.0, 0.0);
  m.add_row(2.0, 5.0, {{x, 1.0}, {y, 1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-7);
}

TEST(Simplex, FreeVariable) {
  // min x st x >= -7 via row (free variable).
  Model m;
  const int x = m.add_variable(-kInfinity, kInfinity, 1.0);
  m.add_row(-7.0, kInfinity, {{x, 1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -7.0, 1e-7);
}

TEST(Simplex, InfeasibleDetected) {
  Model m;
  const int x = m.add_variable(0.0, 1.0, 1.0);
  m.add_row(5.0, kInfinity, {{x, 1.0}});  // x >= 5 but x <= 1
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, InfeasibleEqualitySystem) {
  Model m;
  const int x = m.add_variable(0.0, kInfinity, 0.0);
  const int y = m.add_variable(0.0, kInfinity, 0.0);
  m.add_row(1.0, 1.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(3.0, 3.0, {{x, 1.0}, {y, 1.0}});
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  Model m;
  const int x = m.add_variable(0.0, kInfinity, -1.0);  // min -x, x unbounded above
  m.add_row(0.0, kInfinity, {{x, 1.0}});
  EXPECT_EQ(solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, UnboundedFreeVariableNoRows) {
  Model m;
  m.add_variable(-kInfinity, kInfinity, 1.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NoRowsPicksCheapestBounds) {
  Model m;
  const int x = m.add_variable(-1.0, 2.0, 1.0);   // min -> lower bound
  const int y = m.add_variable(-1.0, 2.0, -1.0);  // min -> upper bound
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], -1.0, 1e-9);
  EXPECT_NEAR(s.x[y], 2.0, 1e-9);
}

TEST(Simplex, EmptyModelIsOptimalZero) {
  Model m;
  Solution s = solve(m);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(Simplex, FixedVariablesRespected) {
  Model m;
  const int x = m.add_variable(2.0, 2.0, 1.0);
  const int y = m.add_variable(0.0, kInfinity, 1.0);
  m.add_row(5.0, kInfinity, {{x, 1.0}, {y, 1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
  EXPECT_NEAR(s.x[y], 3.0, 1e-7);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y st x + y >= -4, bounds [-3, 0].
  Model m;
  const int x = m.add_variable(-3.0, 0.0, 1.0);
  const int y = m.add_variable(-3.0, 0.0, 1.0);
  m.add_row(-4.0, kInfinity, {{x, 1.0}, {y, 1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -4.0, 1e-7);
}

TEST(Simplex, DegenerateLpTerminates) {
  // Multiple redundant constraints through the same vertex.
  Model m;
  const int x = m.add_variable(0.0, kInfinity, -1.0);
  const int y = m.add_variable(0.0, kInfinity, -1.0);
  m.add_row(-kInfinity, 2.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(-kInfinity, 2.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(-kInfinity, 4.0, {{x, 2.0}, {y, 2.0}});
  m.add_row(-kInfinity, 1.0, {{x, 1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-7);
}

TEST(Simplex, IterationLimitReported) {
  Model m;
  const int x = m.add_variable(0.0, kInfinity, -1.0);
  m.add_row(-kInfinity, 10.0, {{x, 1.0}});
  SimplexOptions options;
  options.max_iterations = 0;
  EXPECT_EQ(solve(m, options).status, SolveStatus::kIterationLimit);
}

TEST(Simplex, TimeLimitReported) {
  Model m;
  const int x = m.add_variable(0.0, kInfinity, -1.0);
  m.add_row(-kInfinity, 10.0, {{x, 1.0}});
  SimplexOptions options;
  options.time_limit_seconds = 0.0;
  EXPECT_EQ(solve(m, options).status, SolveStatus::kTimeLimit);
}

TEST(Simplex, WarmStartReproducesOptimum) {
  Model m;
  const int x = m.add_variable(0.0, kInfinity, -1.0);
  const int y = m.add_variable(0.0, kInfinity, -2.0);
  m.add_row(-kInfinity, 4.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(-kInfinity, 5.0, {{x, 2.0}, {y, 1.0}});
  Solution cold = solve(m);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);

  SimplexOptions options;
  options.warm_start = &cold.basis;
  Solution warm = solve(m, options);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  // Warm solve from the optimal basis should barely iterate.
  EXPECT_LE(warm.iterations, 2);
}

TEST(Simplex, WarmStartAfterRelaxingBoundStaysValid) {
  // Loosening an upper bound keeps the old basis primal feasible, so the
  // warm start must be accepted and improved from.
  Model m;
  const int x = m.add_variable(0.0, 1.0, -1.0);
  m.add_row(-kInfinity, 10.0, {{x, 1.0}});
  Solution first = solve(m);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  EXPECT_NEAR(first.objective, -1.0, 1e-9);

  m.set_variable_bounds(x, 0.0, 5.0);
  SimplexOptions options;
  options.warm_start = &first.basis;
  Solution second = solve(m, options);
  ASSERT_EQ(second.status, SolveStatus::kOptimal);
  EXPECT_NEAR(second.objective, -5.0, 1e-9);
}

TEST(Simplex, BogusWarmStartFallsBackToColdStart) {
  Model m;
  const int x = m.add_variable(0.0, 2.0, -1.0);
  m.add_row(-kInfinity, 1.5, {{x, 1.0}});
  Basis bogus;
  bogus.statuses = {VarStatus::kBasic, VarStatus::kBasic};  // two basics, one row
  SimplexOptions options;
  options.warm_start = &bogus;
  Solution s = solve(m, options);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -1.5, 1e-7);
}

TEST(Simplex, RedundantRowsStillWarmStartable) {
  // Duplicate equality rows leave artificials basic after phase 1 in
  // many pivot orders; the exported basis must still be valid for warm
  // starts (purge_artificials) or fall back gracefully.
  Model m;
  const int x = m.add_variable(0.0, 10.0, 1.0);
  const int y = m.add_variable(0.0, 10.0, 2.0);
  m.add_row(6.0, 6.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(6.0, 6.0, {{x, 1.0}, {y, 1.0}});  // redundant copy
  m.add_row(12.0, 12.0, {{x, 2.0}, {y, 2.0}});  // scaled copy
  Solution first = solve(m);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  EXPECT_NEAR(first.objective, 6.0, 1e-7);  // all on x

  // Warm start after a bound change must agree with a cold solve.
  m.set_variable_bounds(x, 0.0, 2.0);
  SimplexOptions options;
  options.warm_start = &first.basis;
  Solution warm = solve(m, options);
  Solution cold = solve(m);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7);
  EXPECT_NEAR(warm.objective, 2.0 + 2.0 * 4.0, 1e-7);
}

TEST(Simplex, SquareEqualitySystem) {
  // As many equality rows as variables: the unique solution.
  Model m;
  const int x = m.add_variable(-kInfinity, kInfinity, 1.0);
  const int y = m.add_variable(-kInfinity, kInfinity, 1.0);
  m.add_row(5.0, 5.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(1.0, 1.0, {{x, 1.0}, {y, -1.0}});
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 3.0, 1e-7);
  EXPECT_NEAR(s.x[y], 2.0, 1e-7);
}

TEST(Simplex, StartPathTelemetry) {
  Model m;
  const int x = m.add_variable(0.0, 4.0, -1.0);
  m.add_row(-kInfinity, 3.0, {{x, 1.0}});
  Solution cold = solve(m);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  EXPECT_EQ(cold.start_path, StartPath::kCold);

  SimplexOptions warm_options;
  warm_options.warm_start = &cold.basis;
  // Unchanged model: warm basis is primal feasible.
  Solution warm = solve(m, warm_options);
  EXPECT_EQ(warm.start_path, StartPath::kWarmPrimal);

  // Tightened bound below the optimum: repair via the dual simplex.
  m.set_variable_bounds(x, 0.0, 2.0);
  Solution repaired = solve(m, warm_options);
  ASSERT_EQ(repaired.status, SolveStatus::kOptimal);
  EXPECT_EQ(repaired.start_path, StartPath::kDualRepair);
  EXPECT_NEAR(repaired.objective, -2.0, 1e-9);
}

TEST(Simplex, DualRepairDetectsInfeasibleChild) {
  Model m;
  const int x = m.add_variable(0.0, 10.0, 1.0);
  const int y = m.add_variable(0.0, 10.0, 1.0);
  m.add_row(4.0, kInfinity, {{x, 1.0}, {y, 1.0}});
  Solution first = solve(m);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  // Force x + y <= 3 via bounds: x <= 1, y <= 1 makes the row impossible.
  m.set_variable_bounds(x, 0.0, 1.0);
  m.set_variable_bounds(y, 0.0, 1.0);
  SimplexOptions warm_options;
  warm_options.warm_start = &first.basis;
  Solution warm = solve(m, warm_options);
  Solution cold = solve(m);
  EXPECT_EQ(cold.status, SolveStatus::kInfeasible);
  EXPECT_EQ(warm.status, SolveStatus::kInfeasible);
}

// Dual-simplex repair: warm-starting after a bound tightening (the
// branch-and-bound pattern) must agree with a cold solve of the
// modified LP — across statuses, including newly infeasible children.
class DualRepairSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(DualRepairSweep, WarmAfterBoundChangeMatchesCold) {
  Rng rng(5000 + GetParam());
  const int n = 4 + static_cast<int>(rng.uniform_index(10));
  Model m;
  std::vector<double> center(n);
  for (int j = 0; j < n; ++j) {
    center[j] = rng.uniform(-1.0, 1.0);
    m.add_variable(center[j] - 2.0, center[j] + 2.0, rng.uniform(-1.0, 1.0));
  }
  const int rows = 3 + static_cast<int>(rng.uniform_index(8));
  for (int r = 0; r < rows; ++r) {
    std::vector<Coefficient> coeffs;
    double activity = 0.0;
    for (int j = 0; j < n; ++j) {
      if (rng.uniform() < 0.4) {
        const double coeff = rng.uniform(-2.0, 2.0);
        coeffs.push_back({j, coeff});
        activity += coeff * center[j];
      }
    }
    if (coeffs.empty()) continue;
    m.add_row(activity - rng.uniform(0.0, 2.0), activity + rng.uniform(0.0, 2.0),
              std::move(coeffs));
  }
  Solution first = solve(m);
  ASSERT_EQ(first.status, SolveStatus::kOptimal) << "seed " << GetParam();

  // Tighten one variable's box around/away from its optimal value, as a
  // branching step would.
  const int var = static_cast<int>(rng.uniform_index(n));
  const Variable& v = m.variable(var);
  double new_lower = v.lower, new_upper = v.upper;
  if (rng.uniform() < 0.5) {
    new_upper = std::floor(first.x[var] - 0.3);
  } else {
    new_lower = std::ceil(first.x[var] + 0.3);
  }
  if (new_lower > new_upper) return;  // branching produced an empty box
  m.set_variable_bounds(var, new_lower, new_upper);

  SimplexOptions warm_options;
  warm_options.warm_start = &first.basis;
  Solution warm = solve(m, warm_options);
  Solution cold = solve(m);
  ASSERT_EQ(warm.status, cold.status) << "seed " << GetParam();
  if (cold.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(warm.objective, cold.objective, 1e-5) << "seed " << GetParam();
    EXPECT_LE(m.max_violation(warm.x), 1e-6);
    // The whole point: the warm path must be much cheaper.
    EXPECT_LE(warm.iterations, cold.iterations + 5) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualRepairSweep, ::testing::Range(0u, 50u));

// ---- property sweep vs brute force ----

struct RandomLpCase {
  unsigned seed;
};

class RandomLpSweep : public ::testing::TestWithParam<unsigned> {};

/// Brute-force optimum of min c.x over { l <= x <= u, A x <= b } for 2-3
/// variables by enumerating all basic points (intersections of active
/// constraint/bound pairs) and keeping the feasible minimum. Exact for
/// LPs whose optimum is attained at a vertex (always, when bounded).
double brute_force_min(const Model& m, bool* feasible, bool* bounded) {
  const int n = m.num_variables();
  std::vector<std::vector<double>> hyperplanes;  // a.x = rhs rows incl bounds
  std::vector<double> rhs;
  for (int j = 0; j < n; ++j) {
    std::vector<double> row(n, 0.0);
    row[j] = 1.0;
    hyperplanes.push_back(row);
    rhs.push_back(m.variable(j).lower);
    hyperplanes.push_back(row);
    rhs.push_back(m.variable(j).upper);
  }
  for (int r = 0; r < m.num_rows(); ++r) {
    std::vector<double> row(n, 0.0);
    for (const auto& [var, coeff] : m.row(r).coefficients) row[var] += coeff;
    if (std::isfinite(m.row(r).upper)) {
      hyperplanes.push_back(row);
      rhs.push_back(m.row(r).upper);
    }
    if (std::isfinite(m.row(r).lower)) {
      hyperplanes.push_back(row);
      rhs.push_back(m.row(r).lower);
    }
  }
  const int h = static_cast<int>(hyperplanes.size());
  double best = kInfinity;
  *feasible = false;
  // Enumerate all n-subsets (n is 2 or 3 here) and solve the linear system.
  std::vector<int> idx(n);
  std::function<void(int, int)> recurse = [&](int start, int depth) {
    if (depth == n) {
      // Solve hyperplanes[idx] x = rhs[idx] by Gaussian elimination.
      std::vector<std::vector<double>> a(n, std::vector<double>(n + 1));
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) a[i][j] = hyperplanes[idx[i]][j];
        a[i][n] = rhs[idx[i]];
      }
      for (int col = 0; col < n; ++col) {
        int pivot = -1;
        double mag = 1e-9;
        for (int r2 = col; r2 < n; ++r2) {
          if (std::abs(a[r2][col]) > mag) { mag = std::abs(a[r2][col]); pivot = r2; }
        }
        if (pivot < 0) return;
        std::swap(a[col], a[pivot]);
        for (int r2 = 0; r2 < n; ++r2) {
          if (r2 == col) continue;
          const double f = a[r2][col] / a[col][col];
          for (int c2 = col; c2 <= n; ++c2) a[r2][c2] -= f * a[col][c2];
        }
      }
      std::vector<double> x(n);
      for (int i = 0; i < n; ++i) x[i] = a[i][n] / a[i][i];
      if (m.max_violation(x) <= 1e-7) {
        *feasible = true;
        best = std::min(best, m.objective_value(x));
      }
      return;
    }
    for (int i = start; i < h; ++i) {
      if (!std::isfinite(rhs[i])) continue;
      idx[depth] = i;
      recurse(i + 1, depth + 1);
    }
  };
  recurse(0, 0);
  *bounded = std::isfinite(best) || !*feasible;
  return best;
}

TEST_P(RandomLpSweep, MatchesBruteForceVertexEnumeration) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.uniform_index(2));  // 2 or 3 vars
  Model m;
  for (int j = 0; j < n; ++j) {
    const double lo = rng.uniform(-3.0, 0.0);
    const double hi = lo + rng.uniform(0.5, 5.0);
    m.add_variable(lo, hi, rng.uniform(-2.0, 2.0));
  }
  const int rows = 1 + static_cast<int>(rng.uniform_index(4));
  for (int r = 0; r < rows; ++r) {
    std::vector<Coefficient> coeffs;
    for (int j = 0; j < n; ++j) {
      if (rng.uniform() < 0.8) coeffs.push_back({j, rng.uniform(-2.0, 2.0)});
    }
    if (coeffs.empty()) coeffs.push_back({0, 1.0});
    const double kind = rng.uniform();
    if (kind < 0.4) {
      m.add_row(-kInfinity, rng.uniform(-1.0, 4.0), std::move(coeffs));
    } else if (kind < 0.8) {
      m.add_row(rng.uniform(-4.0, 1.0), kInfinity, std::move(coeffs));
    } else {
      const double lo = rng.uniform(-2.0, 0.0);
      m.add_row(lo, lo + rng.uniform(0.0, 2.0), std::move(coeffs));
    }
  }

  bool feasible = false, bounded = false;
  const double expected = brute_force_min(m, &feasible, &bounded);
  Solution s = solve(m);
  if (!feasible) {
    EXPECT_EQ(s.status, SolveStatus::kInfeasible) << "seed " << GetParam();
  } else {
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << "seed " << GetParam();
    EXPECT_NEAR(s.objective, expected, 1e-5) << "seed " << GetParam();
    EXPECT_LE(m.max_violation(s.x), 1e-6);
  }
  (void)bounded;  // bounded by construction (finite variable boxes)
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpSweep, ::testing::Range(0u, 60u));

// Larger random LPs: no external oracle, but the solution must satisfy
// feasibility and basic optimality sanity (objective <= objective of a
// known feasible point).
class LargerRandomLp : public ::testing::TestWithParam<unsigned> {};

TEST_P(LargerRandomLp, FeasibleAndNoWorseThanCenterPoint) {
  Rng rng(1000 + GetParam());
  const int n = 10 + static_cast<int>(rng.uniform_index(20));
  Model m;
  std::vector<double> center(n);
  for (int j = 0; j < n; ++j) {
    center[j] = rng.uniform(-1.0, 1.0);
    m.add_variable(center[j] - 2.0, center[j] + 2.0, rng.uniform(-1.0, 1.0));
  }
  // Rows built to be satisfied at `center`, so the LP is feasible.
  const int rows = 5 + static_cast<int>(rng.uniform_index(15));
  for (int r = 0; r < rows; ++r) {
    std::vector<Coefficient> coeffs;
    double activity = 0.0;
    for (int j = 0; j < n; ++j) {
      if (rng.uniform() < 0.3) {
        const double coeff = rng.uniform(-2.0, 2.0);
        coeffs.push_back({j, coeff});
        activity += coeff * center[j];
      }
    }
    if (coeffs.empty()) continue;
    m.add_row(activity - rng.uniform(0.0, 3.0), activity + rng.uniform(0.0, 3.0),
              std::move(coeffs));
  }
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_LE(m.max_violation(s.x), 1e-6);
  EXPECT_LE(s.objective, m.objective_value(center) + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LargerRandomLp, ::testing::Range(0u, 25u));

// Every core verdict and the warm-start contract must hold under both
// basis engines — the tests above run the default (sparse LU); this
// fixture re-runs the essentials with the engine pinned explicitly, so
// the dense-inverse reference path keeps full verdict coverage.
class SimplexEngines : public ::testing::TestWithParam<SimplexEngine> {
 protected:
  SimplexOptions options() const {
    SimplexOptions o;
    o.engine = GetParam();
    return o;
  }
};

TEST_P(SimplexEngines, OptimalWithMixedRowTypes) {
  Model m;
  const int x = m.add_variable(0.0, 10.0, -3.0);
  const int y = m.add_variable(0.0, kInfinity, -5.0);
  m.add_row(-kInfinity, 4.0, {{x, 1.0}});
  m.add_row(-kInfinity, 12.0, {{y, 2.0}});
  m.add_row(-kInfinity, 18.0, {{x, 3.0}, {y, 2.0}});
  Solution s = solve(m, options());
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-7);
  EXPECT_NEAR(s.x[x], 2.0, 1e-7);
  EXPECT_NEAR(s.x[y], 6.0, 1e-7);
}

TEST_P(SimplexEngines, InfeasibleDetected) {
  Model m;
  const int x = m.add_variable(0.0, 1.0, 0.0);
  m.add_row(2.0, kInfinity, {{x, 1.0}});
  EXPECT_EQ(solve(m, options()).status, SolveStatus::kInfeasible);
}

TEST_P(SimplexEngines, UnboundedDetected) {
  Model m;
  const int x = m.add_variable(0.0, kInfinity, -1.0);
  m.add_row(0.0, kInfinity, {{x, 1.0}});
  EXPECT_EQ(solve(m, options()).status, SolveStatus::kUnbounded);
}

TEST_P(SimplexEngines, WarmStartReproducesOptimum) {
  Model m;
  const int x = m.add_variable(0.0, 4.0, -2.0);
  const int y = m.add_variable(0.0, 4.0, -3.0);
  m.add_row(-kInfinity, 6.0, {{x, 1.0}, {y, 1.0}});
  SimplexOptions o = options();
  Solution cold = solve(m, o);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  o.warm_start = &cold.basis;
  Solution warm = solve(m, o);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  EXPECT_LE(warm.iterations, 2);
  EXPECT_EQ(warm.start_path, StartPath::kWarmPrimal);
}

TEST_P(SimplexEngines, WarmStartSurvivesBoundTightening) {
  // Tightening a bound makes the warm basis primal infeasible: the
  // dual-repair path must recover the new optimum under both engines.
  Model m;
  const int x = m.add_variable(0.0, 5.0, -1.0);
  const int y = m.add_variable(0.0, 5.0, -1.0);
  m.add_row(-kInfinity, 8.0, {{x, 1.0}, {y, 1.0}});
  SimplexOptions o = options();
  Solution first = solve(m, o);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  m.set_variable_bounds(x, 0.0, 2.0);
  o.warm_start = &first.basis;
  Solution repaired = solve(m, o);
  ASSERT_EQ(repaired.status, SolveStatus::kOptimal);
  EXPECT_NEAR(repaired.objective, -7.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Engines, SimplexEngines,
                         ::testing::Values(SimplexEngine::kSparseLu,
                                           SimplexEngine::kDenseInverse),
                         [](const ::testing::TestParamInfo<SimplexEngine>& info) {
                           return info.param == SimplexEngine::kSparseLu
                                      ? "SparseLu"
                                      : "DenseInverse";
                         });

}  // namespace
}  // namespace np::lp
