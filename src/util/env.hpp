// Environment-variable configuration knobs for benches and examples.
// Benchmarks default to CPU-friendly scales; these helpers let a user
// crank fidelity up (NEUROPLAN_EPOCHS=1024 ...) without recompiling.
#pragma once

#include <string>

namespace np {

/// Read an integer env var; returns fallback when unset or unparsable.
long env_long(const char* name, long fallback);

/// Read a floating-point env var; returns fallback when unset or unparsable.
double env_double(const char* name, double fallback);

/// Read a string env var; returns fallback when unset.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace np
