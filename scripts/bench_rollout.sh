#!/usr/bin/env bash
# Build and run the rollout-throughput bench, writing BENCH_rollout.json
# at the repo root (steps/sec at 1, 2 and 4 rollout workers).
#
#   scripts/bench_rollout.sh [build-dir]
#
# Scale knobs:
#   NEUROPLAN_TOPOS=B            preset topology (first letter is used)
#   NEUROPLAN_ROLLOUT_STEPS=768  env steps per measured collect
#   NEUROPLAN_SEED=7             RNG seed
set -euo pipefail

build_dir="${1:-build}"
root="$(cd "$(dirname "$0")/.." && pwd)"

cmake --build "$root/$build_dir" --target rollout_throughput
"$root/$build_dir/bench/rollout_throughput" "$root/BENCH_rollout.json"
echo "wrote $root/BENCH_rollout.json"
