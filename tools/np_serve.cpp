// np_serve — fault-hardened planning-as-a-service daemon.
//
//   np_serve --topo <file> (--port <n> | --stdio) [options]
//
// Loads the topology once, keeps warm scenario bases resident per
// worker shard, and answers plan feasibility/cost queries over the np1
// length-prefixed protocol (serve/protocol.hpp). Robustness properties:
//
//   * malformed frames cost one typed ERROR reply, never a dropped
//     connection, never a crash; an unframeable stream (corrupt length
//     prefix) gets one ERROR reply and a hang-up;
//   * admission control sheds (SHED reply) once the queue or the
//     estimated backlog latency is over the limit — overload degrades
//     throughput, not correctness;
//   * per-query deadlines propagate into the LP solver; expired budgets
//     come back DEGRADED (verdict unknown), not late;
//   * transient failures retry once on a cold basis with jittered
//     backoff, repeat offenders are quarantined per scenario
//     (serve.quarantined) and the daemon keeps serving;
//   * SIGTERM/SIGINT drain gracefully: stop accepting, finish or shed
//     in-flight queries, emit the final metrics record, exit 0.
//
// Options:
//   --topo <file>             topology to serve (required)
//   --port <n>                listen on 127.0.0.1:<n> (0 = ephemeral;
//                             the bound port is printed on stdout)
//   --stdio                   serve one session on stdin/stdout (tests)
//   --workers <n>             worker shards, each with a resident
//                             warm-patched evaluator (default 1)
//   --queue-capacity <n>      admission queue bound (default 128)
//   --deadline-ms <x>         default per-query deadline when the
//                             request carries none (0 = unlimited)
//   --max-backlog-ms <x>      shed when queue depth x EMA service time
//                             exceeds this (0 = disabled)
//   --scenario-budget-ms <x>  per-scenario solver budget (0 = unlimited)
//   --watchdog-stall-s <x>    flag a worker as wedged after this many
//                             seconds without a heartbeat (default 30,
//                             0 = watchdog off)
//   --metrics-out <file.jsonl>      metrics registry snapshots
//   --trace-out <file.json>         Chrome trace of NP_SPAN scopes
//   --flight-record-out <file.npcrash>  flight-recorder dump at exit
//   --help                    this text, exit 0
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "serve/engine.hpp"
#include "serve/session.hpp"
#include "topo/serialize.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/mutex.hpp"

namespace {

using namespace np;

int usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: np_serve --topo <file> (--port <n> | --stdio) [options]\n"
      "  --workers <n>             worker shards (default 1)\n"
      "  --queue-capacity <n>      admission queue bound (default 128)\n"
      "  --deadline-ms <x>         default per-query deadline (0 = unlimited)\n"
      "  --max-backlog-ms <x>      backlog shedding limit (0 = disabled)\n"
      "  --scenario-budget-ms <x>  per-scenario solver budget (0 = unlimited)\n"
      "  --watchdog-stall-s <x>    worker stall threshold (default 30, 0 = off)\n"
      "global flags: [--metrics-out <file.jsonl>] [--trace-out <file.json>]\n"
      "              [--flight-record-out <file.npcrash>]\n"
      "protocol (np1, length-prefixed frames):\n"
      "  np1 check id=<n> plan=<u0,u1,...> [deadline_ms=<x>]\n"
      "  np1 cost  id=<n> plan=<u0,u1,...>\n"
      "  np1 info  id=<n>      np1 ping id=<n>\n");
  return out == stdout ? 0 : 2;
}

/// Strict decimal-integer argument parsing: the whole token must be a
/// number in [min_value, max_value]; anything else is a one-line error
/// and exit 2, never atoi's silent 0.
long parse_long_arg(const char* what, const char* text, long min_value,
                    long max_value) {
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    throw std::runtime_error(std::string(what) + ": expected an integer, got '" +
                             text + "'");
  }
  if (value < min_value || value > max_value) {
    throw std::runtime_error(std::string(what) + ": value " + text +
                             " out of range [" + std::to_string(min_value) +
                             ", " + std::to_string(max_value) + "]");
  }
  return value;
}

double parse_double_arg(const char* what, const char* text, double min_value,
                        double max_value) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) {
    throw std::runtime_error(std::string(what) + ": expected a number, got '" +
                             text + "'");
  }
  if (!(value >= min_value && value <= max_value)) {  // rejects NaN too
    throw std::runtime_error(std::string(what) + ": value " + text +
                             " out of range");
  }
  return value;
}

/// One live connection's write side, shared between the reader thread
/// and engine worker callbacks; `closed` makes teardown idempotent and
/// keeps late replies off a recycled fd number.
struct ConnState {
  util::Mutex mutex;
  int fd NP_GUARDED_BY(mutex) = -1;
  bool closed NP_GUARDED_BY(mutex) = false;
};

void write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone: the reply is undeliverable, drop it
    off += static_cast<std::size_t>(n);
  }
}

volatile std::sig_atomic_t g_stop = 0;
int g_listen_fd = -1;

void handle_stop_signal(int) {
  g_stop = 1;
  // close() is async-signal-safe; it kicks accept() out of its block.
  if (g_listen_fd >= 0) ::close(g_listen_fd);
}

void install_stop_handlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof action);
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking accept must wake up
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

void serve_connection(serve::Engine& engine, std::shared_ptr<ConnState> state) {
  serve::Session session(engine, [state](const std::string& framed) {
    util::LockGuard lock(state->mutex);
    if (state->closed) return;
    write_all(state->fd, framed);
  });
  char buffer[4096];
  for (;;) {
    int fd;
    {
      util::LockGuard lock(state->mutex);
      if (state->closed) break;
      fd = state->fd;
    }
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;  // EOF, error, or drain's shutdown()
    session.on_bytes(buffer, static_cast<std::size_t>(n));
    if (session.dead()) break;  // unframeable stream: error sent, hang up
  }
  util::LockGuard lock(state->mutex);
  if (!state->closed) {
    state->closed = true;
    ::close(state->fd);
  }
}

int run_stdio(serve::Engine& engine) {
  // Single session over stdin/stdout; frames on stdout are serialized
  // by the mutex because engine workers reply concurrently.
  struct StdioOut {
    util::Mutex mutex;
  };
  auto out = std::make_shared<StdioOut>();
  serve::Session session(engine, [out](const std::string& framed) {
    util::LockGuard lock(out->mutex);
    std::fwrite(framed.data(), 1, framed.size(), stdout);
    std::fflush(stdout);
  });
  char buffer[4096];
  while (!g_stop) {
    const ssize_t n = ::read(STDIN_FILENO, buffer, sizeof buffer);
    if (n <= 0) break;
    session.on_bytes(buffer, static_cast<std::size_t>(n));
    if (session.dead()) break;
  }
  engine.drain();
  return 0;
}

int run_server(serve::Engine& engine, long port) {
  static obs::Counter& connections = obs::counter("serve.connections");
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::fprintf(stderr, "np_serve: socket: %s\n", std::strerror(errno));
    return 1;
  }
  const int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd, 64) < 0) {
    std::fprintf(stderr, "np_serve: bind/listen 127.0.0.1:%ld: %s\n", port,
                 std::strerror(errno));
    ::close(listen_fd);
    return 1;
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  g_listen_fd = listen_fd;
  std::printf("np_serve: listening on 127.0.0.1:%d\n", ntohs(addr.sin_port));
  std::fflush(stdout);

  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<ConnState>> states;
  while (!g_stop) {
    try {
      // Chaos site: an injected accept fault must cost one backoff
      // beat, not the daemon.
      NP_FAULT_POINT("serve.accept");
    } catch (const std::exception& e) {
      log_warn(std::string("np_serve: accept fault: ") + e.what());
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (g_stop) break;
      if (errno == EINTR) continue;
      std::fprintf(stderr, "np_serve: accept: %s\n", std::strerror(errno));
      break;
    }
    connections.add(1);
    auto state = std::make_shared<ConnState>();
    {
      util::LockGuard lock(state->mutex);
      state->fd = fd;
    }
    states.push_back(state);
    threads.emplace_back(
        [&engine, state] { serve_connection(engine, state); });
  }

  // Graceful drain: the listener is already closed (stop handler);
  // finish or shed every queued query, then unblock and join the
  // connection readers so their last replies flush before exit.
  engine.drain();
  for (const auto& state : states) {
    util::LockGuard lock(state->mutex);
    if (!state->closed) ::shutdown(state->fd, SHUT_RDWR);
  }
  for (std::thread& thread : threads) thread.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  obs::configure_from_env();
  util::FaultInjector::instance().configure_from_env();
  {
    std::string cmdline;
    for (int i = 0; i < argc; ++i) {
      if (i > 0) cmdline += ' ';
      cmdline += argv[i];
    }
    obs::set_run_annotation(cmdline.c_str());
  }
  int rc = 2;
  try {
    std::string topo_path;
    long port = -1;
    bool stdio = false;
    bool have_port = false;
    double watchdog_stall_s = 30.0;
    serve::EngineConfig config;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> const char* {
        if (i + 1 >= argc) {
          throw std::runtime_error(arg + ": missing value");
        }
        return argv[++i];
      };
      if (arg == "--help") return usage(stdout);
      if (arg == "--stdio") {
        stdio = true;
      } else if (arg == "--topo") {
        topo_path = value();
      } else if (arg == "--port") {
        port = parse_long_arg("--port", value(), 0, 65535);
        have_port = true;
      } else if (arg == "--workers") {
        config.workers =
            static_cast<int>(parse_long_arg("--workers", value(), 1, 256));
      } else if (arg == "--queue-capacity") {
        config.queue_capacity = static_cast<int>(
            parse_long_arg("--queue-capacity", value(), 1, 1000000));
      } else if (arg == "--deadline-ms") {
        config.default_deadline_ms =
            parse_double_arg("--deadline-ms", value(), 0.0, 1e9);
      } else if (arg == "--max-backlog-ms") {
        config.max_backlog_ms =
            parse_double_arg("--max-backlog-ms", value(), 0.0, 1e9);
      } else if (arg == "--scenario-budget-ms") {
        config.scenario_budget_s =
            parse_double_arg("--scenario-budget-ms", value(), 0.0, 1e9) / 1e3;
      } else if (arg == "--watchdog-stall-s") {
        watchdog_stall_s =
            parse_double_arg("--watchdog-stall-s", value(), 0.0, 1e6);
      } else if (arg == "--metrics-out") {
        obs::set_metrics_out(value());
      } else if (arg == "--trace-out") {
        obs::set_trace_out(value());
      } else if (arg == "--flight-record-out") {
        obs::set_flight_record_path(value());
      } else {
        std::fprintf(stderr, "np_serve: unknown flag '%s'\n", arg.c_str());
        return usage(stderr);
      }
    }
    if (topo_path.empty() || (stdio == have_port)) return usage(stderr);
    obs::install_crash_handlers();
    install_stop_handlers();

    const topo::Topology topology = topo::load_file(topo_path);
    if (watchdog_stall_s > 0.0) {
      obs::WatchdogConfig watchdog;
      watchdog.stall_seconds = watchdog_stall_s;
      watchdog.dump_on_stall = true;
      obs::Watchdog::instance().start(watchdog);
    }
    serve::Engine engine(topology, config);
    rc = stdio ? run_stdio(engine) : run_server(engine, port);
    engine.drain();
    obs::emit_metrics_record("serve_drain", 0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    obs::dump_flight_record("unhandled_exception", "main", e.what(),
                            /*fatal=*/true);
    rc = 1;
  }
  obs::shutdown();  // write the trace file + final metrics record
  return rc;
}
