file(REMOVE_RECURSE
  "CMakeFiles/abl_gat_vs_gcn.dir/abl_gat_vs_gcn.cpp.o"
  "CMakeFiles/abl_gat_vs_gcn.dir/abl_gat_vs_gcn.cpp.o.d"
  "abl_gat_vs_gcn"
  "abl_gat_vs_gcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gat_vs_gcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
