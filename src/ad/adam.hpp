// Adam optimizer (Kingma & Ba) over a set of Parameters. The paper
// trains actor (lr 3e-4) and critic (lr 1e-3) with separate optimizers
// sharing the GNN parameters; we mirror that by letting each Adam own
// its own parameter list.
#pragma once

#include <vector>

#include "ad/parameter.hpp"

namespace np::ad {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  /// Clip each parameter's gradient to this max-norm (0 disables).
  /// A plain stability guard for the RL losses.
  double grad_clip = 5.0;
};

class Adam {
 public:
  explicit Adam(AdamConfig config = {}) : config_(config) {}

  /// Register a parameter; it must outlive the optimizer.
  void add_parameter(Parameter& param) { params_.push_back(&param); }
  void add_parameters(const std::vector<Parameter*>& params);

  /// Apply one Adam update from the accumulated gradients, then leave
  /// the gradients untouched (call zero_grad() separately so that two
  /// losses can share parameters within one epoch, as in Algorithm 1).
  void step();

  /// Zero the gradients of all registered parameters.
  void zero_grad();

  std::size_t parameter_count() const { return params_.size(); }
  const AdamConfig& config() const { return config_; }

  /// Adam bias-correction timestep, exposed for crash-safe checkpoints:
  /// a resumed optimizer must continue the t-dependent correction
  /// exactly where the interrupted run stopped.
  long timestep() const { return t_; }
  void set_timestep(long t) { t_ = t; }

 private:
  AdamConfig config_;
  std::vector<Parameter*> params_;
  long t_ = 0;  // Adam timestep for bias correction
};

}  // namespace np::ad
