file(REMOVE_RECURSE
  "CMakeFiles/alpha_knob.dir/alpha_knob.cpp.o"
  "CMakeFiles/alpha_knob.dir/alpha_knob.cpp.o.d"
  "alpha_knob"
  "alpha_knob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha_knob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
