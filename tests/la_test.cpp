#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "la/matrix.hpp"
#include "la/sparse.hpp"
#include "util/rng.hpp"

namespace np::la {
namespace {

TEST(Matrix, ConstructAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndMatmul) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix i = Matrix::identity(2);
  EXPECT_EQ(a.matmul(i), a);
  EXPECT_EQ(i.matmul(a), a);
}

TEST(Matrix, MatmulKnownValues) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix b{{7, 8}, {9, 10}, {11, 12}};
  Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, MatmulDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.matmul(b), std::invalid_argument);
}

TEST(Matrix, AdditionSubtractionScaling) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  EXPECT_EQ(a + b, (Matrix{{5, 5}, {5, 5}}));
  EXPECT_EQ(a - b, (Matrix{{-3, -1}, {1, 3}}));
  EXPECT_EQ(a * 2.0, (Matrix{{2, 4}, {6, 8}}));
  EXPECT_EQ(-a, (Matrix{{-1, -2}, {-3, -4}}));
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(a.hadamard(b), std::invalid_argument);
}

TEST(Matrix, Hadamard) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{2, 2}, {2, 2}};
  EXPECT_EQ(a.hadamard(b), (Matrix{{2, 4}, {6, 8}}));
}

TEST(Matrix, Transpose) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
  EXPECT_EQ(t.transposed(), a);
}

TEST(Matrix, MapAppliesFunction) {
  Matrix a{{-1, 2}};
  Matrix r = a.map([](double x) { return x > 0 ? x : 0.0; });
  EXPECT_EQ(r, (Matrix{{0, 2}}));
}

TEST(Matrix, AddRowBroadcast) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix bias{{10, 20}};
  EXPECT_EQ(a.add_row_broadcast(bias), (Matrix{{11, 22}, {13, 24}}));
}

TEST(Matrix, AddRowBroadcastRejectsWrongShape) {
  Matrix a(2, 2);
  EXPECT_THROW(a.add_row_broadcast(Matrix(2, 2)), std::invalid_argument);
  EXPECT_THROW(a.add_row_broadcast(Matrix(1, 3)), std::invalid_argument);
}

TEST(Matrix, Reductions) {
  Matrix a{{1, 2}, {3, 4}};
  EXPECT_EQ(a.sum_rows(), (Matrix{{4, 6}}));
  EXPECT_EQ(a.sum_cols(), (Matrix{{3}, {7}}));
  EXPECT_DOUBLE_EQ(a.sum(), 10.0);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
}

TEST(Matrix, MeanOfEmptyThrows) {
  Matrix m;
  EXPECT_THROW(m.mean(), std::invalid_argument);
}

TEST(Matrix, NonFiniteDetection) {
  Matrix a{{1, 2}};
  EXPECT_FALSE(a.has_non_finite());
  a(0, 1) = std::nan("");
  EXPECT_TRUE(a.has_non_finite());
}

TEST(Matrix, AtBoundsChecked) {
  Matrix a(2, 2);
  EXPECT_THROW(a.at(2, 0), std::out_of_range);
  EXPECT_THROW(a.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(a.at(1, 1));
}

TEST(Matrix, RowAndColVector) {
  Matrix r = Matrix::row_vector({1, 2, 3});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
  Matrix c = Matrix::col_vector({1, 2, 3});
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 1u);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a{{1, 2}}, b{{1.5, 2}};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  EXPECT_THROW(max_abs_diff(a, Matrix(2, 1)), std::invalid_argument);
}

TEST(Csr, BuildAndDensify) {
  CsrMatrix m(2, 3, {{0, 1, 2.0}, {1, 0, -1.0}, {0, 1, 3.0}});
  EXPECT_EQ(m.nnz(), 2u);  // duplicates merged
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  Matrix d = m.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 1), 5.0);
}

TEST(Csr, OutOfBoundsTripletThrows) {
  EXPECT_THROW(CsrMatrix(2, 2, {{2, 0, 1.0}}), std::invalid_argument);
}

TEST(Csr, MultiplyMatchesDense) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t r = 1 + rng.uniform_index(8);
    const std::size_t c = 1 + rng.uniform_index(8);
    const std::size_t k = 1 + rng.uniform_index(5);
    Matrix dense(r, c);
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < c; ++j) {
        dense(i, j) = rng.uniform() < 0.4 ? rng.normal() : 0.0;
      }
    }
    Matrix x(c, k);
    for (double& v : x.flat()) v = rng.normal();
    CsrMatrix sparse = CsrMatrix::from_dense(dense);
    EXPECT_LT(max_abs_diff(sparse.multiply(x), dense.matmul(x)), 1e-12);
  }
}

TEST(Csr, MultiplyTransposedMatchesDense) {
  Rng rng(37);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t r = 1 + rng.uniform_index(8);
    const std::size_t c = 1 + rng.uniform_index(8);
    const std::size_t k = 1 + rng.uniform_index(5);
    Matrix dense(r, c);
    for (double& v : dense.flat()) v = rng.uniform() < 0.4 ? rng.normal() : 0.0;
    Matrix x(r, k);
    for (double& v : x.flat()) v = rng.normal();
    CsrMatrix sparse = CsrMatrix::from_dense(dense);
    EXPECT_LT(max_abs_diff(sparse.multiply_transposed(x),
                           dense.transposed().matmul(x)),
              1e-12);
  }
}

TEST(Csr, DimensionMismatchThrows) {
  CsrMatrix m(2, 3, {});
  EXPECT_THROW(m.multiply(Matrix(2, 2)), std::invalid_argument);
  EXPECT_THROW(m.multiply_transposed(Matrix(3, 2)), std::invalid_argument);
}

TEST(Matrix, MatmulTiledMatchesNaiveReference) {
  // Shapes straddling the kTileK=64 / kTileJ=128 thresholds, so both
  // the small fast path and the blocked path are exercised and must
  // agree with a plain triple loop bit-for-bit (k-ascending sums).
  Rng rng(21);
  const std::size_t shapes[][3] = {
      {3, 5, 4}, {70, 150, 200}, {64, 64, 128}, {65, 65, 129}, {1, 200, 1}};
  for (const auto& s : shapes) {
    Matrix a(s[0], s[1]), b(s[1], s[2]);
    for (double& v : a.flat()) v = rng.normal();
    for (double& v : b.flat()) v = rng.normal();
    // some exact zeros: the old kernel skipped them, the new one must not
    // change results without the skip either
    a(0, 0) = 0.0;
    Matrix naive(s[0], s[2], 0.0);
    for (std::size_t i = 0; i < s[0]; ++i) {
      for (std::size_t j = 0; j < s[2]; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k < s[1]; ++k) acc += a(i, k) * b(k, j);
        naive(i, j) = acc;
      }
    }
    EXPECT_EQ(a.matmul(b), naive) << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(Matrix, VstackConcatenatesRows) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}};
  Matrix c{{7, 8}, {9, 10}};
  Matrix stacked = vstack({&a, &b, &c});
  EXPECT_EQ(stacked, (Matrix{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}}));
}

TEST(Matrix, VstackValidatesInput) {
  Matrix a{{1, 2}};
  Matrix bad{{1, 2, 3}};
  EXPECT_THROW(vstack({}), std::invalid_argument);
  EXPECT_THROW(vstack({&a, nullptr}), std::invalid_argument);
  EXPECT_THROW(vstack({&a, &bad}), std::invalid_argument);
}

TEST(Csr, BlockDiagonalReplicatesBlocks) {
  CsrMatrix a(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  CsrMatrix blocks = block_diagonal(a, 3);
  EXPECT_EQ(blocks.rows(), 6u);
  EXPECT_EQ(blocks.cols(), 9u);
  EXPECT_EQ(blocks.nnz(), 9u);
  const Matrix dense_a = a.to_dense();
  const Matrix dense = blocks.to_dense();
  for (int copy = 0; copy < 3; ++copy) {
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t c = 0; c < 9; ++c) {
        const bool in_block = c >= copy * 3u && c < (copy + 1) * 3u;
        EXPECT_DOUBLE_EQ(dense(copy * 2 + r, c),
                         in_block ? dense_a(r, c - copy * 3u) : 0.0);
      }
    }
  }
  EXPECT_THROW(block_diagonal(a, 0), std::invalid_argument);
}

TEST(Csr, BlockDiagonalMultiplyBitIdenticalPerBlock) {
  // The property batched GNN forwards rely on: multiplying the stacked
  // features by the block-diagonal adjacency equals the per-block
  // multiplies exactly (not just approximately).
  Rng rng(5);
  Matrix dense(7, 7, 0.0);
  for (int i = 0; i < 18; ++i) {
    dense(rng.uniform_index(7), rng.uniform_index(7)) = rng.normal();
  }
  CsrMatrix a = CsrMatrix::from_dense(dense);
  Matrix x1(7, 3), x2(7, 3);
  for (double& v : x1.flat()) v = rng.normal();
  for (double& v : x2.flat()) v = rng.normal();
  CsrMatrix blocks = block_diagonal(a, 2);
  Matrix stacked = vstack({&x1, &x2});
  Matrix batched = blocks.multiply(stacked);
  Matrix y1 = a.multiply(x1), y2 = a.multiply(x2);
  Matrix expected = vstack({&y1, &y2});
  EXPECT_EQ(batched, expected);  // bitwise
}

TEST(Csr, BlockDiagonalCacheReusesAndValidates) {
  auto base = std::make_shared<const CsrMatrix>(
      CsrMatrix(2, 2, {{0, 1, 1.0}, {1, 0, 2.0}}));
  BlockDiagonalCache cache(base);
  EXPECT_EQ(cache.get(1).get(), base.get());  // copies==1 is the base itself
  const auto four_a = cache.get(4);
  const auto four_b = cache.get(4);
  EXPECT_EQ(four_a.get(), four_b.get());  // memoized, stable address
  EXPECT_EQ(four_a->rows(), 8u);
  EXPECT_THROW(cache.get(0), std::invalid_argument);
  EXPECT_THROW(BlockDiagonalCache(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace np::la
