#include "util/fault.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace np::util {

namespace {

/// Recovery-visibility counter: every injected fault is an exercised
/// recovery path, so chaos runs can assert coverage from --metrics-out.
obs::Counter& injected_counter() {
  static obs::Counter& c = obs::counter("fault.injected");
  return c;
}

/// Interned copy of a site name with process lifetime: the flight
/// recorder stores raw pointers in its rings, which must stay valid
/// after disarm_all() clears the site map. Fires are rare, so the
/// leaked set stays tiny.
const char* stable_site_name(const std::string& site) {
  static std::set<std::string>* names = new std::set<std::string>();
  static Mutex mutex;
  LockGuard lock(mutex);
  return names->insert(site).first->c_str();
}

}  // namespace

struct FaultInjector::Impl {
  struct Site {
    FaultSpec spec;
    long calls = 0;
    long triggered = 0;
  };

  mutable Mutex mutex;
  std::map<std::string, Site> sites NP_GUARDED_BY(mutex);
  Rng rng NP_GUARDED_BY(mutex){0x5eedfa175eedfa17ULL};
  long total_triggered NP_GUARDED_BY(mutex) = 0;
  /// Fast-path gate: lets should_fire return without the mutex when
  /// nothing is armed, so compiled-in-but-idle injection stays cheap.
  std::atomic<bool> any_armed{false};
};

FaultInjector::Impl& FaultInjector::impl() const {
  static Impl impl;
  return impl;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& site, FaultSpec spec) {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  i.sites[site] = Impl::Site{spec, 0, 0};
  i.any_armed.store(true, std::memory_order_release);
}

void FaultInjector::disarm_all() {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  i.sites.clear();
  i.total_triggered = 0;
  i.any_armed.store(false, std::memory_order_release);
}

void FaultInjector::reseed(std::uint64_t seed) {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  i.rng.reseed(seed);
}

void FaultInjector::configure_from_env() {
  const long seed = env_long("NEUROPLAN_FAULT_SEED", 0);
  if (seed != 0) reseed(static_cast<std::uint64_t>(seed));
  const std::string sites = env_string("NEUROPLAN_FAULT_SITES", "");
  if (sites.empty()) return;
  // Format: "site=nth:3;other=p:0.01" — unknown fragments are skipped
  // with a warning instead of failing the run (chaos configuration must
  // never be the thing that crashes the process).
  std::istringstream is(sites);
  std::string entry;
  while (std::getline(is, entry, ';')) {
    const std::size_t eq = entry.find('=');
    const std::size_t colon = entry.find(':', eq == std::string::npos ? 0 : eq);
    if (eq == std::string::npos || colon == std::string::npos || eq == 0) {
      log_warn("fault: ignoring malformed NEUROPLAN_FAULT_SITES entry '", entry,
               "'");
      continue;
    }
    const std::string site = entry.substr(0, eq);
    const std::string kind = entry.substr(eq + 1, colon - eq - 1);
    const std::string value = entry.substr(colon + 1);
    FaultSpec spec;
    try {
      if (kind == "nth") {
        spec.nth_call = std::stol(value);
      } else if (kind == "p") {
        spec.probability = std::stod(value);
      } else if (kind == "stall") {
        // Wedge instead of throw: first call sleeps <value> ms.
        spec.stall_ms = std::stol(value);
        spec.nth_call = 1;
      } else {
        log_warn("fault: ignoring unknown trigger kind '", kind, "' in '", entry,
                 "'");
        continue;
      }
    } catch (const std::exception&) {
      log_warn("fault: ignoring unparsable NEUROPLAN_FAULT_SITES entry '", entry,
               "'");
      continue;
    }
    arm(site, spec);
    log_warn("fault: armed site '", site, "' (", kind, ":", value, ")");
  }
}

bool FaultInjector::should_fire(const std::string& site) {
  Impl& i = impl();
  if (!i.any_armed.load(std::memory_order_acquire)) return false;
  LockGuard lock(i.mutex);
  const auto it = i.sites.find(site);
  if (it == i.sites.end()) return false;
  Impl::Site& s = it->second;
  ++s.calls;
  bool fire = false;
  if (s.spec.nth_call > 0) {
    fire = s.calls == s.spec.nth_call;
  } else if (s.spec.probability > 0.0) {
    fire = i.rng.uniform() < s.spec.probability;
  }
  if (fire) {
    ++s.triggered;
    ++i.total_triggered;
  }
  return fire;
}

void FaultInjector::on_site(const std::string& site) {
  if (!should_fire(site)) return;
  injected_counter().add(1);
  long stall_ms = 0;
  {
    Impl& i = impl();
    LockGuard lock(i.mutex);
    const auto it = i.sites.find(site);
    if (it != i.sites.end()) stall_ms = it->second.spec.stall_ms;
  }
  obs::fr_record(obs::FrEventKind::kFaultInjected, stable_site_name(site), 0,
                 stall_ms);
  if (stall_ms > 0) {
    log_warn("fault: stalling for ", stall_ms, " ms at '", site, "'");
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
    return;
  }
  log_warn("fault: injecting failure at '", site, "'");
  throw InjectedFault(site);
}

long FaultInjector::triggered(const std::string& site) const {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  const auto it = i.sites.find(site);
  return it == i.sites.end() ? 0 : it->second.triggered;
}

long FaultInjector::calls(const std::string& site) const {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  const auto it = i.sites.find(site);
  return it == i.sites.end() ? 0 : it->second.calls;
}

long FaultInjector::total_triggered() const {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  return i.total_triggered;
}

bool FaultInjector::any_armed() const {
  return impl().any_armed.load(std::memory_order_acquire);
}

}  // namespace np::util
