// Figure 10: impact of the number of GNN layers on First-stage cost.
//
// Trains the agent with 0 / 2 / 4 GCN layers on the A-0, A-0.5 and A-1
// variants; reports First-stage cost normalized to the exact optimum.
// A cross marks runs that did not converge to any feasible plan — in
// the paper the MLP-only agent (0 layers) fails on A-0 and A-0.5.
#include "bench_common.hpp"
#include "core/baselines.hpp"
#include "rl/trainer.hpp"

int main() {
  using namespace np;
  bench::print_header(
      "Figure 10: impact of GNN layers",
      "First-stage cost normalized to the optimal cost on each variant;\n"
      "'x' = the agent did not converge to a feasible plan.");

  const topo::Topology base = topo::make_preset('A');
  Table table({"variant", "optimal", "0 layers", "2 layers", "4 layers"});
  for (double fraction : {0.0, 0.5, 1.0}) {
    const topo::Topology variant = topo::scale_initial_capacity(base, fraction);
    core::IlpConfig ilp_config;
    ilp_config.time_limit_seconds = bench::ilp_time_budget();
    const core::PlanResult exact = core::solve_ilp(variant, ilp_config);
    const bool have_opt = exact.feasible && !exact.timed_out;

    std::vector<std::string> row = {"A-" + fmt_double(fraction, 1),
                                    have_opt ? "1.000" : "x"};
    for (int layers : {0, 2, 4}) {
      rl::TrainConfig config =
          bench::bench_train_config(variant, 'A', bench::bench_seed());
      config.network.gcn_layers = layers;
      // Paper-faithful state: the link capacity is the ONLY node
      // feature (§4.2). This is what makes the ablation meaningful —
      // without message passing, an MLP sees identical features on
      // every link and cannot tell them apart (on A-0 they are all
      // zero), which is exactly why the paper's 0-layer agent fails.
      config.env.include_static_features = false;
      rl::A2cTrainer trainer(variant, config);
      trainer.train();
      trainer.greedy_rollout();
      // "Did not converge": no feasible plan, or no better than 2.5x
      // the optimum after the training budget (the paper's crosses).
      const bool converged = have_opt && trainer.has_feasible_plan() &&
                             trainer.best_cost() / exact.cost < 2.5;
      row.push_back(fmt_or_cross(trainer.best_cost() / exact.cost, converged, 3));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nExpected shape (paper): MLP-only handles A-1 but fails to\n"
              "converge on A-0 / A-0.5; 2 vs 4 GCN layers perform similarly.\n");
  return 0;
}
