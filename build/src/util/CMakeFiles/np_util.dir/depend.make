# Empty dependencies file for np_util.
# This may be replaced when dependencies are built.
