// Watchdog tests: heartbeat scope nesting semantics, a manually
// stalled worker flagged within the configured interval, escalation to
// a "watchdog_stall" flight-record dump, and the acceptance scenario —
// a parallel-plan-evaluator worker wedged by a stall fault is flagged
// while the check still completes (stalls are symptom reports, not
// kills).
//
// All suites are named Watchdog* so the tsan ctest preset picks them up.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "np_json.hpp"
#include "obs/obs.hpp"
#include "plan/parallel_evaluator.hpp"
#include "topo/generator.hpp"
#include "util/fault.hpp"

namespace {

using namespace np;

/// Poll `done` every few ms until it holds or `seconds` elapse. The
/// watchdog acts on its own monitor thread, so tests wait for effects
/// instead of asserting instantaneous state.
bool wait_for(const std::function<bool()>& done, double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

/// Stops the monitor and disarms everything around each test so the
/// suites stay order-independent.
class WatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    obs::Watchdog::instance().stop();
    obs::set_flight_record_path(nullptr);
    util::FaultInjector::instance().disarm_all();
  }
};

TEST_F(WatchdogTest, HeartbeatScopeNestingRestoresOuterScope) {
  obs::fr_detail::ThreadRecord* r = obs::fr_detail::thread_record();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->hb_name.load(), nullptr);
  {
    obs::HeartbeatScope outer("hb.watchdogtest.outer");
    outer.beat(5);
    EXPECT_STREQ(r->hb_name.load(), "hb.watchdogtest.outer");
    EXPECT_EQ(r->hb_progress.load(), 5);
    const double outer_ts = r->hb_ts_us.load();
    {
      obs::HeartbeatScope inner("hb.watchdogtest.inner");
      inner.beat(99);
      EXPECT_STREQ(r->hb_name.load(), "hb.watchdogtest.inner");
      EXPECT_EQ(r->hb_progress.load(), 99);
    }
    // Scope exit restores the outer heartbeat and re-stamps its
    // timestamp so it does not inherit the inner section's elapsed
    // time.
    EXPECT_STREQ(r->hb_name.load(), "hb.watchdogtest.outer");
    EXPECT_EQ(r->hb_progress.load(), 5);
    EXPECT_GE(r->hb_ts_us.load(), outer_ts);
  }
  EXPECT_EQ(r->hb_name.load(), nullptr);
}

TEST_F(WatchdogTest, StalledHeartbeatFlaggedWithinInterval) {
  obs::WatchdogConfig config;
  config.stall_seconds = 0.05;
  obs::Watchdog::instance().start(config);
  ASSERT_TRUE(obs::Watchdog::instance().running());
  const long before = obs::Watchdog::instance().stalls_flagged();

  std::atomic<bool> release{false};
  std::thread worker([&release] {
    obs::HeartbeatScope hb("hb.watchdogtest.stuck");
    hb.beat(1);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  // The acceptance bound: the wedged worker must be flagged within the
  // stall interval (plus poll jitter) — give it 20x as a CI-safe cap.
  EXPECT_TRUE(wait_for(
      [before] { return obs::Watchdog::instance().stalls_flagged() > before; },
      20 * config.stall_seconds));
  release.store(true);
  worker.join();
}

TEST_F(WatchdogTest, BeatingHeartbeatIsNotFlagged) {
  obs::WatchdogConfig config;
  config.stall_seconds = 0.08;
  obs::Watchdog::instance().start(config);
  const long before = obs::Watchdog::instance().stalls_flagged();

  std::atomic<bool> release{false};
  std::thread worker([&release] {
    obs::HeartbeatScope hb("hb.watchdogtest.lively");
    long progress = 0;
    while (!release.load()) {
      hb.beat(++progress);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::this_thread::sleep_for(
      std::chrono::duration<double>(4 * config.stall_seconds));
  EXPECT_EQ(obs::Watchdog::instance().stalls_flagged(), before);
  release.store(true);
  worker.join();
}

TEST_F(WatchdogTest, StallEscalatesToWatchdogStallDump) {
  const std::string path = testing::TempDir() + "watchdog_stall.npcrash";
  obs::set_flight_record_path(path.c_str());
  obs::WatchdogConfig config;
  config.stall_seconds = 0.05;
  config.dump_on_stall = true;
  obs::Watchdog::instance().start(config);

  std::atomic<bool> release{false};
  std::thread worker([&release] {
    obs::HeartbeatScope hb("hb.watchdogtest.dumped");
    hb.beat(1);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  ASSERT_TRUE(wait_for([] { return obs::flight_record_dumped(); },
                       20 * config.stall_seconds));
  release.store(true);
  worker.join();
  obs::Watchdog::instance().stop();

  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  const np_json::Value report = np_json::parse(os.str());
  const np_json::Value* trigger = report.find("trigger");
  ASSERT_NE(trigger, nullptr);
  EXPECT_EQ(trigger->str_or("kind", ""), "watchdog_stall");
  EXPECT_EQ(trigger->str_or("name", ""), "hb.watchdogtest.dumped");
  // The stuck thread's tail carries the kStall event the monitor
  // recorded on its behalf.
  bool stall_event_seen = false;
  for (const np_json::Value& t : report.find("threads")->array) {
    const np_json::Value* events = t.find("events");
    if (events == nullptr) continue;
    for (const np_json::Value& e : events->array) {
      stall_event_seen = stall_event_seen || e.str_or("kind", "") == "stall";
    }
  }
  EXPECT_TRUE(stall_event_seen);
  std::remove(path.c_str());
}

// Acceptance scenario: a parallel-evaluator worker wedged mid-scenario
// (stall fault at plan.worker) goes quiet on its heartbeat, the
// watchdog flags it within the stall interval, and the check still
// finishes once the wedge clears — the run is never killed.
TEST_F(WatchdogTest, WedgedParallelEvaluatorWorkerFlagged) {
  if (!NP_FAULTS_ENABLED) GTEST_SKIP() << "built without NEUROPLAN_FAULTS";
  obs::WatchdogConfig config;
  config.stall_seconds = 0.05;
  obs::Watchdog::instance().start(config);
  const long before = obs::Watchdog::instance().stalls_flagged();

  const topo::Topology t = topo::make_preset('A');
  plan::ParallelPlanEvaluator eval(t, 2);
  const std::vector<int> plan_units(static_cast<std::size_t>(t.num_links()), 1);
  // First call at the site wedges that worker for well over the stall
  // interval, then continues normally.
  util::FaultSpec spec;
  spec.nth_call = 1;
  spec.stall_ms = 400;
  util::FaultInjector::instance().arm("plan.worker", spec);
  const plan::CheckResult result = eval.check(plan_units);
  EXPECT_EQ(result.scenarios_checked, eval.num_scenarios());
  EXPECT_GT(obs::Watchdog::instance().stalls_flagged(), before);
}

}  // namespace
