file(REMOVE_RECURSE
  "CMakeFiles/np_util.dir/env.cpp.o"
  "CMakeFiles/np_util.dir/env.cpp.o.d"
  "CMakeFiles/np_util.dir/log.cpp.o"
  "CMakeFiles/np_util.dir/log.cpp.o.d"
  "CMakeFiles/np_util.dir/table.cpp.o"
  "CMakeFiles/np_util.dir/table.cpp.o.d"
  "libnp_util.a"
  "libnp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
