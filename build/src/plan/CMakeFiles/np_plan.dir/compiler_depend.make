# Empty compiler generated dependencies file for np_plan.
# This may be replaced when dependencies are built.
