// Common planner result type shared by NeuroPlan and the baselines
// (ILP, ILP-heur, greedy shortest-path) compared in §6.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace np::core {

struct PlanResult {
  /// True when added_units yields a plan satisfying every scenario.
  bool feasible = false;
  /// True when a resource limit stopped the solver before it could
  /// prove anything useful (the paper's crosses in Figures 7-9).
  bool timed_out = false;
  /// Per-link capacity units added on top of the existing topology.
  std::vector<int> added_units;
  /// Cost of the additions per the topology's cost model (Eq. 1).
  double cost = 0.0;
  double seconds = 0.0;
  std::string detail;  ///< solver status / notes for logs and tables
};

/// Independently verify a result against a fresh evaluator and recompute
/// its cost; returns the verified result (feasible=false if the plan
/// does not actually satisfy the scenarios).
PlanResult verify_result(const topo::Topology& topology, PlanResult result);

}  // namespace np::core
