// Human-readable plan reports — the interpretability story of §4.3:
// "network operators can examine the solution from the RL agent and
// check whether the changes match their intuition and experience."
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace np::plan {

struct LinkReportRow {
  int link = -1;
  std::string name;
  int initial_units = 0;
  int added_units = 0;
  double added_cost = 0.0;
  /// Highest fraction of the link's capacity used across scenarios
  /// (healthy + failures), from the feasibility LP's flow solution;
  /// -1 when the link carries no capacity.
  double worst_utilization = -1.0;
};

struct PlanReport {
  bool feasible = false;
  double total_cost = 0.0;
  int links_changed = 0;
  std::vector<LinkReportRow> rows;   ///< links with additions, by cost desc
  std::vector<std::string> scenario_notes;  ///< per-scenario status lines
};

/// Analyze a plan (per-link ADDED units) against the topology.
PlanReport analyze_plan(const topo::Topology& topology,
                        const std::vector<int>& added_units);

/// Render as an aligned text table suitable for operator review.
std::string to_text(const topo::Topology& topology, const PlanReport& report);

}  // namespace np::plan
