#include "rl/gae.hpp"

#include <cmath>
#include <stdexcept>

namespace np::rl {

GaeResult compute_gae(const std::vector<double>& rewards,
                      const std::vector<double>& values,
                      const std::vector<bool>& terminal, double last_value,
                      const GaeConfig& config) {
  const std::size_t n = rewards.size();
  if (values.size() != n || terminal.size() != n) {
    throw std::invalid_argument("compute_gae: size mismatch");
  }
  GaeResult result;
  result.advantages.assign(n, 0.0);
  result.rewards_to_go.assign(n, 0.0);
  double next_advantage = 0.0;
  double next_value = last_value;
  double next_return = last_value;
  for (std::size_t i = n; i-- > 0;) {
    if (terminal[i]) {
      next_advantage = 0.0;
      next_value = 0.0;
      next_return = 0.0;
    }
    // Eq. 6: GAE_i = r_i + gamma*v_{i+1} - v_i + gamma*lambda*GAE_{i+1}.
    const double delta = rewards[i] + config.gamma * next_value - values[i];
    next_advantage = delta + config.gamma * config.gae_lambda * next_advantage;
    result.advantages[i] = next_advantage;
    next_return = rewards[i] + config.gamma * next_return;
    result.rewards_to_go[i] = next_return;
    next_value = values[i];
  }
  return result;
}

void normalize_advantages(std::vector<double>& advantages) {
  if (advantages.size() < 2) return;
  double mean = 0.0;
  for (double a : advantages) mean += a;
  mean /= static_cast<double>(advantages.size());
  double var = 0.0;
  for (double a : advantages) var += (a - mean) * (a - mean);
  var /= static_cast<double>(advantages.size());
  const double std_dev = std::sqrt(var);
  if (std_dev < 1e-9) return;
  for (double& a : advantages) a = (a - mean) / std_dev;
}

}  // namespace np::rl
