#include "nn/linear.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace np::nn {

Linear::Linear(std::string name, int in_features, int out_features, Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  if (in_features < 1 || out_features < 1) {
    throw std::invalid_argument("Linear: feature dimensions must be positive");
  }
  la::Matrix w(in_features, out_features);
  const double scale = std::sqrt(2.0 / in_features);
  for (double& v : w.flat()) v = rng.normal() * scale;
  weight_ = ad::Parameter(name + ".weight", std::move(w));
  bias_ = ad::Parameter(name + ".bias", la::Matrix(1, out_features, 0.0));
}

ad::Tensor Linear::forward(ad::Tape& tape, ad::Tensor x) {
  NP_CHECK_DIMS(tape.value(x).rows(), tape.value(x).cols(), -1, in_features_,
                "Linear::forward");
  ad::Tensor w = tape.parameter(weight_);
  ad::Tensor b = tape.parameter(bias_);
  return tape.add_row_broadcast(tape.matmul(x, w), b);
}

std::vector<ad::Parameter*> Linear::parameters() { return {&weight_, &bias_}; }

}  // namespace np::nn
