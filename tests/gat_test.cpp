// GAT encoder: attention-aggregation gradients vs finite differences,
// attention normalization, and the actor-critic GAT configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/actor_critic.hpp"
#include "nn/gat.hpp"
#include "util/rng.hpp"

namespace np::nn {
namespace {

using la::Matrix;

std::shared_ptr<la::CsrMatrix> ring_adjacency(int n) {
  std::vector<la::Triplet> t;
  const double w = 1.0 / 3.0;
  for (int i = 0; i < n; ++i) {
    t.push_back({static_cast<std::size_t>(i), static_cast<std::size_t>(i), w});
    t.push_back({static_cast<std::size_t>(i), static_cast<std::size_t>((i + 1) % n), w});
    t.push_back({static_cast<std::size_t>(i),
                 static_cast<std::size_t>((i + n - 1) % n), w});
  }
  return std::make_shared<la::CsrMatrix>(
      la::CsrMatrix(static_cast<std::size_t>(n), static_cast<std::size_t>(n), t));
}

std::shared_ptr<std::vector<std::vector<int>>> ring_neighbors(int n) {
  auto lists = std::make_shared<std::vector<std::vector<int>>>(n);
  for (int i = 0; i < n; ++i) {
    (*lists)[i] = {i, (i + 1) % n, (i + n - 1) % n};
  }
  return lists;
}

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng, double scale = 1.0) {
  Matrix m(r, c);
  for (double& v : m.flat()) v = rng.normal() * scale;
  return m;
}

void check_gradient(ad::Parameter& param,
                    const std::function<ad::Tensor(ad::Tape&)>& build,
                    double tolerance = 1e-5) {
  ad::Tape tape;
  param.zero_grad();
  tape.backward(build(tape));
  const Matrix analytic = param.grad;
  const double h = 1e-6;
  for (std::size_t i = 0; i < param.value.flat().size(); ++i) {
    const double saved = param.value.flat()[i];
    param.value.flat()[i] = saved + h;
    ad::Tape tp;
    const double up = tp.value(build(tp))(0, 0);
    param.value.flat()[i] = saved - h;
    ad::Tape tm;
    const double down = tm.value(build(tm))(0, 0);
    param.value.flat()[i] = saved;
    EXPECT_NEAR(analytic.flat()[i], (up - down) / (2 * h), tolerance)
        << param.name << " entry " << i;
  }
}

TEST(GatAggregate, AttentionWeightsFormConvexCombination) {
  // With all scores equal, the output is the neighborhood mean.
  ad::Tape tape;
  const int n = 4;
  ad::Tensor src = tape.constant(Matrix(n, 1, 0.0));
  ad::Tensor dst = tape.constant(Matrix(n, 1, 0.0));
  Matrix z(n, 2);
  for (int i = 0; i < n; ++i) {
    z(i, 0) = i;
    z(i, 1) = 2.0 * i;
  }
  ad::Tensor out = tape.gat_aggregate(src, dst, tape.constant(z), ring_neighbors(n));
  // Node 0's neighborhood = {0, 1, 3}: mean of rows.
  EXPECT_NEAR(tape.value(out)(0, 0), (0.0 + 1.0 + 3.0) / 3.0, 1e-12);
  EXPECT_NEAR(tape.value(out)(0, 1), (0.0 + 2.0 + 6.0) / 3.0, 1e-12);
}

TEST(GatAggregate, GradientWrtFeatures) {
  Rng rng(1);
  ad::Parameter z("z", random_matrix(5, 3, rng));
  auto neighbors = ring_neighbors(5);
  const Matrix src = random_matrix(5, 1, rng, 0.3);
  const Matrix dst = random_matrix(5, 1, rng, 0.3);
  check_gradient(z, [&](ad::Tape& t) {
    return t.sum(t.square(t.gat_aggregate(t.constant(src), t.constant(dst),
                                          t.parameter(z), neighbors)));
  });
}

TEST(GatAggregate, GradientWrtScores) {
  Rng rng(2);
  ad::Parameter src("src", random_matrix(5, 1, rng, 0.3));
  ad::Parameter dst("dst", random_matrix(5, 1, rng, 0.3));
  const Matrix z = random_matrix(5, 3, rng);
  auto neighbors = ring_neighbors(5);
  check_gradient(src, [&](ad::Tape& t) {
    return t.sum(t.square(t.gat_aggregate(t.parameter(src), t.constant(dst.value),
                                          t.constant(z), neighbors)));
  });
  check_gradient(dst, [&](ad::Tape& t) {
    return t.sum(t.square(t.gat_aggregate(t.constant(src.value), t.parameter(dst),
                                          t.constant(z), neighbors)));
  });
}

TEST(GatAggregate, ValidatesInputs) {
  ad::Tape tape;
  ad::Tensor src = tape.constant(Matrix(3, 1, 0.0));
  ad::Tensor dst = tape.constant(Matrix(3, 1, 0.0));
  ad::Tensor z = tape.constant(Matrix(3, 2, 0.0));
  EXPECT_THROW(tape.gat_aggregate(src, dst, z, nullptr), std::invalid_argument);
  auto wrong_size = std::make_shared<std::vector<std::vector<int>>>(2);
  EXPECT_THROW(tape.gat_aggregate(src, dst, z, wrong_size), std::invalid_argument);
  auto out_of_range = std::make_shared<std::vector<std::vector<int>>>(
      std::vector<std::vector<int>>{{0}, {5}, {2}});
  EXPECT_THROW(tape.gat_aggregate(src, dst, z, out_of_range), std::invalid_argument);
  auto empty_list = std::make_shared<std::vector<std::vector<int>>>(
      std::vector<std::vector<int>>{{0}, {}, {2}});
  EXPECT_THROW(tape.gat_aggregate(src, dst, z, empty_list), std::invalid_argument);
}

TEST(GatEncoder, ShapesAndParameters) {
  Rng rng(3);
  GatEncoder gat("g", 4, 8, 2, rng);
  EXPECT_EQ(gat.output_dim(), 8);
  EXPECT_EQ(gat.num_layers(), 2);
  EXPECT_EQ(gat.parameters().size(), 8u);  // 2 layers x (W, b, a_src, a_dst)
  ad::Tape tape;
  ad::Tensor out = gat.forward(tape, ring_adjacency(6), tape.constant(Matrix(6, 4, 0.5)));
  EXPECT_EQ(tape.value(out).rows(), 6u);
  EXPECT_EQ(tape.value(out).cols(), 8u);
  EXPECT_FALSE(tape.value(out).has_non_finite());
}

TEST(GatEncoder, ZeroLayersIsIdentity) {
  Rng rng(4);
  GatEncoder gat("g", 4, 8, 0, rng);
  EXPECT_EQ(gat.output_dim(), 4);
  ad::Tape tape;
  Matrix x(3, 4, 1.25);
  ad::Tensor out = gat.forward(tape, nullptr, tape.constant(x));
  EXPECT_EQ(tape.value(out), x);
}

TEST(GatEncoder, EndToEndGradientThroughLayer) {
  Rng rng(5);
  GatEncoder gat("g", 3, 4, 1, rng);
  auto adjacency = ring_adjacency(5);
  const Matrix x = random_matrix(5, 3, rng);
  for (ad::Parameter* p : gat.parameters()) p->zero_grad();
  ad::Tape tape;
  tape.backward(tape.sum(tape.square(gat.forward(tape, adjacency, tape.constant(x)))));
  bool any = false;
  for (ad::Parameter* p : gat.parameters()) any = any || p->grad.max_abs() > 0.0;
  EXPECT_TRUE(any);
}

TEST(ActorCritic, GatBackendProducesValidPolicy) {
  Rng rng(6);
  NetworkConfig c;
  c.feature_dim = 4;
  c.gnn_type = GnnType::kGat;
  c.gcn_layers = 2;
  c.gcn_hidden = 8;
  c.mlp_hidden = {8};
  c.max_units_per_step = 2;
  ActorCritic net(c, rng);
  EXPECT_EQ(net.gnn_parameters().size(), 8u);
  ad::Tape tape;
  std::vector<std::uint8_t> mask(5 * 2, 1);
  ad::Tensor lp = net.policy_log_probs(tape, ring_adjacency(5), Matrix(5, 4, 0.1), mask);
  double total = 0.0;
  for (std::size_t i = 0; i < mask.size(); ++i) total += std::exp(tape.value(lp)(0, i));
  EXPECT_NEAR(total, 1.0, 1e-9);
  ad::Tensor v = net.value(tape, ring_adjacency(5), Matrix(5, 4, 0.1));
  EXPECT_FALSE(tape.value(v).has_non_finite());
}

}  // namespace
}  // namespace np::nn
