// Fault-injection harness for proving recovery paths actually run.
//
// Library code marks failure-prone sites with NP_FAULT_POINT("site"):
// allocation-heavy LP refactorization, checkpoint I/O, evaluator worker
// bodies, rollout-worker steps. Tests (and chaos CI) arm a site with a
// seeded probability or an exact nth-call trigger; when it fires, the
// site throws util::InjectedFault and the surrounding recovery logic —
// cold retries, pool exception propagation, checkpoint atomicity — gets
// exercised for real.
//
// Cost discipline: the macro compiles to nothing unless the build sets
// NEUROPLAN_FAULTS=ON (the asan/tsan presets do; release/bench builds
// do not), so the hot paths carry zero overhead in production builds.
// Even when compiled in, an unarmed injector is one relaxed atomic load
// per site.
//
// The FaultInjector class itself is always compiled so trigger
// arithmetic stays unit-testable in every build; only the NP_FAULT_POINT
// call sites disappear.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#if defined(NEUROPLAN_ENABLE_FAULTS)
#define NP_FAULTS_ENABLED 1
#else
#define NP_FAULTS_ENABLED 0
#endif

namespace np::util {

/// Thrown by an armed fault site. Derives std::runtime_error so it
/// flows through the same recovery paths as real I/O or solver errors.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// How an armed site decides to fire. Exactly one trigger is used:
/// nth_call > 0 fires on that exact call (1-based, counted from
/// arming), otherwise probability is a per-call Bernoulli draw from
/// the injector's seeded RNG.
struct FaultSpec {
  double probability = 0.0;
  long nth_call = 0;
  /// > 0 changes the fired site's *action* from "throw InjectedFault"
  /// to "sleep this many milliseconds and continue" — a wedged-worker
  /// simulator: the thread stops making progress without dying, which
  /// is exactly what the obs watchdog exists to flag. Trigger
  /// selection (nth/probability) is unchanged.
  long stall_ms = 0;
};

class FaultInjector {
 public:
  /// Process-wide injector used by NP_FAULT_POINT.
  static FaultInjector& instance();

  /// Arm `site` with the given trigger; resets the site's call count.
  void arm(const std::string& site, FaultSpec spec);

  /// Disarm every site and clear all counters (test isolation).
  void disarm_all();

  /// Reseed the Bernoulli stream (deterministic chaos runs).
  void reseed(std::uint64_t seed);

  /// Parse NEUROPLAN_FAULT_SITES ("site=nth:3;other=p:0.01;
  /// third=stall:500" — stall arms a first-call 500 ms wedge) and
  /// NEUROPLAN_FAULT_SEED. Unset variables leave the injector disarmed.
  void configure_from_env();

  /// Count a call to `site` and decide whether it fires. Exposed so the
  /// trigger arithmetic is testable even when NP_FAULT_POINT compiles
  /// out. Thread-safe.
  bool should_fire(const std::string& site);

  /// should_fire + bookkeeping + throw InjectedFault. The body of
  /// NP_FAULT_POINT in fault-enabled builds.
  void on_site(const std::string& site);

  /// Faults fired at `site` since the last disarm_all().
  long triggered(const std::string& site) const;
  /// Calls observed at `site` since it was armed.
  long calls(const std::string& site) const;
  /// Faults fired across all sites since the last disarm_all().
  long total_triggered() const;

  /// True when any site is armed (the fast path's one-load gate).
  bool any_armed() const;

 private:
  FaultInjector() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace np::util

#if NP_FAULTS_ENABLED
#define NP_FAULT_POINT(site) ::np::util::FaultInjector::instance().on_site(site)
#else
#define NP_FAULT_POINT(site) ((void)0)
#endif
