// Two-phase bounded-variable revised simplex.
//
// The model  min c^T x,  lo_r <= a_r.x <= hi_r,  lb <= x <= ub  is put in
// the computational form  A z = 0  by introducing one slack per row
// (a_r.x - s_r = 0 with s_r in [lo_r, hi_r]). Phase 1 starts from an
// all-artificial basis and minimizes the artificial sum; phase 2 fixes
// artificials to zero and optimizes the real objective. Basis linear
// algebra goes through a pluggable engine: the default keeps a sparse
// LU factorization with a product-form eta file (lp/factor.hpp) —
// FTRAN/BTRAN in O(fill), refactorization in O(fill^2)-ish — and the
// legacy dense m x m inverse survives behind
// SimplexOptions::engine = kDenseInverse for differential testing.
// Pricing is Dantzig on small models and cyclic partial pricing on
// large ones (optimality is only declared after a full failed sweep),
// with an automatic Bland fallback against cycling; the ratio test
// supports bound flips.
//
// Scale target: the NeuroPlan plan-evaluator feasibility LPs (hundreds
// of rows, a few thousand columns) and the pruned planning ILPs solved
// by np::milp. This plays the role Gurobi plays in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/model.hpp"
#include "util/deadline.hpp"

namespace np::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeLimit,
};

const char* to_string(SolveStatus status);

/// Simplex status of one variable (structural or slack) in a basis.
enum class VarStatus : std::uint8_t {
  kBasic,
  kAtLower,
  kAtUpper,
  kNonbasicFree,  // free variable held at zero
};

/// Warm-start basis: one status per structural variable followed by one
/// per row slack (size = num_variables + num_rows). The solver verifies
/// it (count of basics, nonsingularity) and silently falls back to a
/// cold start when invalid — warm starts are an optimization, never a
/// correctness requirement.
struct Basis {
  std::vector<VarStatus> statuses;
  bool empty() const { return statuses.empty(); }
};

/// Basis linear-algebra backend.
enum class SimplexEngine {
  /// Sparse LU + product-form eta file (lp/factor.hpp). Default: the
  /// scenario LPs are extremely sparse, so FTRAN/BTRAN cost O(fill)
  /// instead of O(m^2) and refactorization is far below O(m^3).
  kSparseLu,
  /// Dense m x m basis inverse, updated in product form. Retained as
  /// the differential-testing reference for the sparse engine.
  kDenseInverse,
};

const char* to_string(SimplexEngine engine);

struct SimplexOptions {
  double feasibility_tolerance = 1e-7;
  double optimality_tolerance = 1e-7;
  long max_iterations = 200000;
  double time_limit_seconds = kInfinity;
  /// Absolute wall-clock deadline shared across a batch of solves (one
  /// scenario sweep, one branch-and-bound dive, ...). Checked alongside
  /// time_limit_seconds; whichever trips first ends the solve with
  /// SolveStatus::kTimeLimit. Defaults to unlimited, which costs one
  /// branch per iteration.
  util::Deadline deadline{};
  const Basis* warm_start = nullptr;
  /// Refactorize the basis every this many pivots. Product-form
  /// updates stay accurate for hundreds of pivots on well-scaled
  /// models. The sparse engine additionally refactorizes early when its
  /// eta file outgrows the factorization (refactoring is cheap there);
  /// for the dense engine refactorization is O(m^3), so a small
  /// interval dominates solve time on LPs with many rows.
  int refactor_interval = 400;
  SimplexEngine engine = SimplexEngine::kSparseLu;
  /// Cyclic partial pricing on models with more than this many columns
  /// (structural + slack + artificial): each iteration scans a window
  /// from a rotating cursor and takes the window's best candidate,
  /// falling through to the full sweep only when the window is empty —
  /// optimality is still only declared after a complete failed sweep.
  /// <= 0 disables partial pricing (always full Dantzig). The default
  /// covers the scenario feasibility LPs, where a full Dantzig sweep
  /// would dominate the per-iteration cost of the sparse engine.
  int partial_pricing_threshold = 128;
};

/// Which start the solver ended up using (telemetry for tuning).
enum class StartPath {
  kCold,         // two-phase from scratch
  kWarmPrimal,   // warm basis was primal feasible
  kDualRepair,   // warm basis repaired by the dual simplex
  kWarmFailed,   // warm basis rejected or repair gave up -> cold
};

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;   // structural variable values (empty unless optimal)
  Basis basis;             // final basis for warm starts
  long iterations = 0;
  double solve_seconds = 0.0;
  StartPath start_path = StartPath::kCold;
};

/// Solve the model. Integer markers on variables are ignored (this is
/// the LP relaxation); np::milp layers integrality on top.
Solution solve(const Model& model, const SimplexOptions& options = {});

}  // namespace np::lp
