// Fully-connected layer y = x W + b applied row-wise, the building
// block of the actor/critic MLPs (Figure 6 of the paper).
#pragma once

#include <string>
#include <vector>

#include "ad/parameter.hpp"
#include "ad/tape.hpp"
#include "util/rng.hpp"

namespace np::nn {

class Linear {
 public:
  /// Kaiming-style initialization: W ~ N(0, sqrt(2 / fan_in)), b = 0.
  Linear(std::string name, int in_features, int out_features, Rng& rng);

  /// x: (rows x in) -> (rows x out). Registers parameters on the tape.
  ad::Tensor forward(ad::Tape& tape, ad::Tensor x);

  std::vector<ad::Parameter*> parameters();

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  ad::Parameter weight_;
  ad::Parameter bias_;
};

}  // namespace np::nn
