#include "core/neuroplan.hpp"

#include <cmath>
#include <stdexcept>

#include "core/lazy_solve.hpp"
#include "plan/formulation.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace np::core {

rl::TrainConfig default_train_config(const topo::Topology& topology, unsigned seed) {
  rl::TrainConfig config;
  config.seed = seed;
  // Larger capacity increments on larger problems keep trajectories
  // short (§5 "workload patterns"); thresholds follow the total demand.
  double total_demand = 0.0;
  for (int f = 0; f < topology.num_flows(); ++f) {
    total_demand += topology.flow(f).demand_gbps;
  }
  const double demand_units = total_demand / topology.capacity_unit_gbps();
  config.env.max_units_per_step = demand_units > 400 ? 16 : (demand_units > 80 ? 8 : 4);
  config.env.max_trajectory_steps = 256;
  config.network.gcn_layers = 2;
  config.network.gcn_hidden = 32;
  config.network.mlp_hidden = {64, 64};
  config.steps_per_epoch = 384;
  config.chunk_steps = 96;
  // CPU-budget adaptation of Table 2 (see DESIGN.md): 10x learning
  // rates, PPO-clipped multi-iteration updates, far fewer epochs.
  config.actor_learning_rate = 3e-3;
  config.critic_learning_rate = 1e-2;
  config.update_iterations = 8;
  config.ppo_clip = 0.2;
  config.entropy_coefficient = 0.01;
  config.epochs = topology.num_links() <= 20 ? 64 : 24;
  return config;
}

PlanResult second_stage(const topo::Topology& topology,
                        const std::vector<int>& first_stage_added,
                        double relax_factor, double time_limit_seconds,
                        double relative_gap) {
  if (relax_factor < 1.0) {
    throw std::invalid_argument("second_stage: relax factor must be >= 1");
  }
  if (first_stage_added.size() != static_cast<std::size_t>(topology.num_links())) {
    throw std::invalid_argument("second_stage: plan size mismatch");
  }
  // Encode the first-stage plan as maximum capacity constraints,
  // relaxed by alpha (§4.3), and solve with lazy scenario generation so
  // the MILP stays tractable on the large topologies.
  plan::FormulationOptions options;
  options.max_added_units.resize(topology.num_links());
  for (int l = 0; l < topology.num_links(); ++l) {
    options.max_added_units[l] = static_cast<int>(
        std::ceil(relax_factor * first_stage_added[l] - 1e-9));
  }
  // The first-stage plan's cost is an upper bound on the optimum of the
  // pruned space; adding it as a cutoff row lets the solver discard
  // everything that is not an improvement.
  const double first_stage_cost = topology.plan_cost(first_stage_added);
  options.max_total_cost = first_stage_cost + 1e-6;

  // Coarse pass: unit multiplier 4 inside the alpha bounds. Much
  // smaller integer space, so it converges fast and its plan becomes a
  // strong incumbent for the exact pass — §4.3's "easy to incorporate
  // additional modifications to the pruned search space from other
  // heuristics" in action.
  std::vector<int> best_seed = first_stage_added;
  double best_cost = first_stage_cost;
  std::vector<int> binding_failures;
  {
    // The coarse pass is the workhorse: its rounds converge fast, so it
    // gets most of the budget and as many scenario-generation rounds as
    // fit. The exact pass afterwards only shaves the 4x granularity.
    plan::FormulationOptions coarse = options;
    coarse.unit_multiplier = 4;
    LazySolveConfig lazy;
    lazy.total_time_limit_seconds = 0.7 * time_limit_seconds;
    lazy.time_limit_per_solve_seconds =
        std::min(25.0, std::max(8.0, 0.7 * time_limit_seconds / 8.0));
    lazy.relative_gap = std::max(relative_gap, 1e-2);
    lazy.seed_added_units = first_stage_added;
    const LazySolveResult coarse_result = lazy_solve(topology, coarse, lazy);
    if (coarse_result.plan.feasible && coarse_result.plan.cost < best_cost) {
      best_seed = coarse_result.plan.added_units;
      best_cost = coarse_result.plan.cost;
    }
    binding_failures = coarse_result.binding_failures;
  }

  // Exact pass at base units, seeded with the best plan so far and cut
  // off at its cost.
  options.max_total_cost = best_cost + 1e-6;
  LazySolveConfig lazy;
  lazy.total_time_limit_seconds = 0.3 * time_limit_seconds;
  lazy.time_limit_per_solve_seconds = std::max(15.0, 0.3 * time_limit_seconds / 4.0);
  lazy.relative_gap = relative_gap;
  // The seed plan is feasible for every scenario subset and lies inside
  // the alpha bounds: a guaranteed incumbent for every round. The
  // binding scenarios the coarse pass discovered carry over.
  lazy.seed_added_units = best_seed;
  lazy.initial_scenario_set = binding_failures;
  LazySolveResult solved = lazy_solve(topology, options, lazy);
  solved.plan.detail = "second-stage " + solved.plan.detail;
  return solved.plan;
}

NeuroPlanResult neuroplan(const topo::Topology& topology,
                          const NeuroPlanConfig& config) {
  NeuroPlanResult result;
  Stopwatch watch;

  // ---- stage 1: RL agent learns to generate plans ----
  rl::A2cTrainer trainer(topology, config.train);
  result.history = trainer.train();
  if (config.greedy_rollout) (void)trainer.greedy_rollout();
  result.train_seconds = watch.seconds();

  if (trainer.has_feasible_plan()) {
    result.first_stage.feasible = true;
    result.first_stage.added_units = trainer.best_added_units();
    result.first_stage.cost = trainer.best_cost();
    result.first_stage.detail = "rl best plan";
  } else if (config.fallback_to_greedy) {
    log_warn("neuroplan: RL found no feasible plan; falling back to greedy");
    PlanResult greedy = solve_greedy(topology);
    if (greedy.feasible) {
      result.first_stage = greedy;
      result.first_stage.detail = "greedy fallback (RL found no feasible plan)";
    }
  }
  result.first_stage.seconds = result.train_seconds;
  if (!result.first_stage.feasible) {
    result.final.detail = "no first-stage plan; second stage skipped";
    return result;
  }

  // ---- stage 2: pruned ILP around the first-stage plan ----
  watch.restart();
  result.final = second_stage(topology, result.first_stage.added_units,
                              config.relax_factor, config.ilp_time_limit_seconds,
                              config.ilp_relative_gap);
  result.ilp_seconds = watch.seconds();
  if (!result.final.feasible) {
    // Alpha pruned away every solution the solver could find in budget;
    // the first-stage plan itself is always inside the pruned space, so
    // this only happens on timeouts. Fall back to the stage-1 plan.
    log_warn("neuroplan: second stage returned no plan (", result.final.detail,
             "); keeping the first-stage plan");
    PlanResult fallback = result.first_stage;
    fallback.detail = "first-stage plan (second stage: " + result.final.detail + ")";
    result.final = fallback;
  }
  return result;
}

}  // namespace np::core
