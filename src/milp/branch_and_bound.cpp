#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace np::milp {

const char* to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kTimeLimit: return "time-limit";
    case MilpStatus::kNodeLimit: return "node-limit";
    case MilpStatus::kUnbounded: return "unbounded";
  }
  return "unknown";
}

namespace {

/// One branching decision; nodes share ancestors through shared_ptr
/// chains so storing a node is O(1) instead of O(num integer vars).
struct BoundChange {
  std::shared_ptr<const BoundChange> parent;
  int variable = -1;
  bool is_upper = false;
  double value = 0.0;
};

struct Node {
  std::shared_ptr<const BoundChange> chain;
  double bound = -lp::kInfinity;  // parent LP bound (lower bound on subtree)
  int depth = 0;
  /// Parent's optimal basis: dual feasible for the child (only a bound
  /// changed), so the child LP re-solves via the dual simplex in a few
  /// pivots instead of a cold two-phase run.
  std::shared_ptr<const lp::Basis> parent_basis;
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;  // min-heap on bound
    return a.depth < b.depth;                          // tie-break: deeper first
  }
};

class BranchAndBound {
 public:
  BranchAndBound(const lp::Model& model, const MilpOptions& options)
      : model_(model), options_(options), work_(model) {
    for (int j = 0; j < model.num_variables(); ++j) {
      if (model.variable(j).is_integer) integer_vars_.push_back(j);
    }
  }

  MilpResult run() {
    NP_SPAN("milp.solve");
    static obs::Counter& solves = obs::counter("milp.solves");
    solves.add(1);
    Stopwatch watch;
    MilpResult result;
    try_warm_start(result);
    try_integer_warm_start(result, watch);

    std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
    open.push(Node{});
    double best_open_bound = -lp::kInfinity;

    while (!open.empty()) {
      if (watch.seconds() > options_.time_limit_seconds) {
        return finish(result, MilpStatus::kTimeLimit, best_open_bound, watch);
      }
      if (result.nodes_explored >= options_.max_nodes) {
        return finish(result, MilpStatus::kNodeLimit, best_open_bound, watch);
      }
      Node node = open.top();
      open.pop();
      best_open_bound = node.bound;
      if (result.has_incumbent &&
          node.bound >= result.objective - absolute_gap_slack(result.objective)) {
        continue;  // pruned by bound
      }
      ++result.nodes_explored;
      static obs::Counter& nodes = obs::counter("milp.nodes");
      nodes.add(1);

      if (!apply_bounds(node.chain)) continue;
      lp::SimplexOptions lp_opts = options_.lp_options;
      const double remaining = options_.time_limit_seconds - watch.seconds();
      lp_opts.time_limit_seconds = std::min(lp_opts.time_limit_seconds, remaining);
      if (node.parent_basis != nullptr) lp_opts.warm_start = node.parent_basis.get();
      // Pricing per dive: warm child nodes are repaired by the dual
      // simplex and finish in a few primal pivots (weight upkeep is
      // overhead there); cold dives keep the configured rule (devex by
      // default).
      if (node.parent_basis != nullptr) {
        lp_opts.pricing = lp::PricingRule::kDantzig;
      }
      lp::Solution relax = lp::solve(work_, lp_opts);
      result.lp_iterations += relax.iterations;

      if (relax.status == lp::SolveStatus::kTimeLimit) {
        return finish(result, MilpStatus::kTimeLimit, best_open_bound, watch);
      }
      if (relax.status == lp::SolveStatus::kUnbounded) {
        if (node.depth == 0 && !result.has_incumbent) {
          result.status = MilpStatus::kUnbounded;
          result.solve_seconds = watch.seconds();
          return result;
        }
        // An unbounded subproblem with an incumbent cannot be pruned
        // soundly in general, but with bounded integer variables (our
        // planning models) it means the continuous part is unbounded
        // and the whole MILP is too.
        result.status = MilpStatus::kUnbounded;
        result.solve_seconds = watch.seconds();
        return result;
      }
      if (relax.status != lp::SolveStatus::kOptimal) continue;  // infeasible node

      if (result.has_incumbent &&
          relax.objective >= result.objective - absolute_gap_slack(result.objective)) {
        continue;
      }

      const int branch_var = most_fractional(relax.x);
      if (branch_var < 0) {
        // Integral: new incumbent.
        accept_incumbent(result, relax.x, relax.objective);
        if (gap_closed(result, open.empty() ? relax.objective : best_open_bound)) {
          return finish(result, MilpStatus::kOptimal, best_open_bound, watch);
        }
        continue;
      }

      if (options_.heuristic_interval > 0 &&
          result.nodes_explored % options_.heuristic_interval == 1) {
        rounding_heuristic(result, relax.x, watch);
      }

      const double value = relax.x[branch_var];
      auto basis = std::make_shared<const lp::Basis>(std::move(relax.basis));
      Node down{std::make_shared<BoundChange>(BoundChange{
                    node.chain, branch_var, /*is_upper=*/true, std::floor(value)}),
                relax.objective, node.depth + 1, basis};
      Node up{std::make_shared<BoundChange>(BoundChange{
                  node.chain, branch_var, /*is_upper=*/false, std::ceil(value)}),
              relax.objective, node.depth + 1, basis};
      open.push(std::move(down));
      open.push(std::move(up));
    }

    // Queue exhausted: the incumbent (if any) is optimal.
    if (result.has_incumbent) {
      return finish(result, MilpStatus::kOptimal, result.objective, watch);
    }
    result.status = MilpStatus::kInfeasible;
    result.best_bound = lp::kInfinity;
    result.solve_seconds = watch.seconds();
    return result;
  }

 private:
  double absolute_gap_slack(double incumbent) const {
    return options_.relative_gap * std::max(1.0, std::abs(incumbent));
  }

  bool gap_closed(const MilpResult& result, double bound) const {
    if (!result.has_incumbent) return false;
    return result.objective - bound <= absolute_gap_slack(result.objective);
  }

  void try_warm_start(MilpResult& result) {
    const std::vector<double>* start = options_.warm_start;
    if (start == nullptr) return;
    if (start->size() != static_cast<std::size_t>(model_.num_variables())) {
      log_warn("milp: warm start has wrong size; ignored");
      return;
    }
    for (int j : integer_vars_) {
      if (std::abs((*start)[j] - std::round((*start)[j])) >
          options_.integrality_tolerance) {
        log_warn("milp: warm start not integral; ignored");
        return;
      }
    }
    if (model_.max_violation(*start) > 1e-6) {
      log_warn("milp: warm start infeasible; ignored");
      return;
    }
    result.has_incumbent = true;
    result.x = *start;
    result.objective = model_.objective_value(*start);
  }

  void try_integer_warm_start(MilpResult& result, const Stopwatch& watch) {
    const std::vector<double>* start = options_.integer_warm_start;
    if (start == nullptr) return;
    if (start->size() != static_cast<std::size_t>(model_.num_variables())) {
      log_warn("milp: integer warm start has wrong size; ignored");
      return;
    }
    std::vector<std::pair<double, double>> saved;
    saved.reserve(integer_vars_.size());
    bool applicable = true;
    for (int j : integer_vars_) {
      const lp::Variable& v = work_.variable(j);
      saved.emplace_back(v.lower, v.upper);
      double fixed = std::round((*start)[j]);
      fixed = std::min(fixed, v.upper);
      fixed = std::max(fixed, v.lower);
      if (std::abs(fixed - std::round(fixed)) > options_.integrality_tolerance) {
        applicable = false;
        break;
      }
      work_.set_variable_bounds(j, fixed, fixed);
    }
    if (applicable) {
      lp::SimplexOptions lp_opts = options_.lp_options;
      lp_opts.time_limit_seconds =
          std::min(lp_opts.time_limit_seconds,
                   options_.time_limit_seconds - watch.seconds());
      lp::Solution fixed = lp::solve(work_, lp_opts);
      result.lp_iterations += fixed.iterations;
      if (fixed.status == lp::SolveStatus::kOptimal) {
        accept_incumbent(result, fixed.x, fixed.objective);
      }
    }
    for (std::size_t k = 0; k < saved.size(); ++k) {
      work_.set_variable_bounds(integer_vars_[k], saved[k].first, saved[k].second);
    }
  }

  /// Returns false when the replayed chain produces an empty box (the
  /// node is trivially infeasible and should be discarded).
  bool apply_bounds(const std::shared_ptr<const BoundChange>& chain) {
    // Reset integer bounds to the originals, then replay the chain
    // root-to-leaf so deeper (tighter) decisions win.
    for (int j : integer_vars_) {
      const lp::Variable& v = model_.variable(j);
      work_.set_variable_bounds(j, v.lower, v.upper);
    }
    std::vector<const BoundChange*> stack;
    for (const BoundChange* c = chain.get(); c != nullptr; c = c->parent.get()) {
      stack.push_back(c);
    }
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      const BoundChange& c = **it;
      const lp::Variable& v = work_.variable(c.variable);
      double lo = v.lower, hi = v.upper;
      if (c.is_upper) hi = std::min(hi, c.value);
      else lo = std::max(lo, c.value);
      if (lo > hi) return false;
      work_.set_variable_bounds(c.variable, lo, hi);
    }
    return true;
  }

  int most_fractional(const std::vector<double>& x) const {
    // Cost-weighted most-fractional branching: a wrong rounding on an
    // expensive variable moves the objective more, so settle those
    // first. Falls back to plain fractionality on zero-cost variables.
    int best = -1;
    double best_score = 0.0;
    for (int j : integer_vars_) {
      const double frac = x[j] - std::floor(x[j]);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist <= options_.integrality_tolerance) continue;
      const double score =
          dist * (std::abs(model_.variable(j).objective) + 1e-9);
      if (best < 0 || score > best_score) {
        best_score = score;
        best = j;
      }
    }
    return best;
  }

  /// Fix every integer variable to round(x_j), re-solve the continuous
  /// LP; an optimal result is a new incumbent candidate.
  void rounding_heuristic(MilpResult& result, const std::vector<double>& x,
                          const Stopwatch& watch) {
    std::vector<std::pair<double, double>> saved;
    saved.reserve(integer_vars_.size());
    bool applicable = true;
    for (int j : integer_vars_) {
      const lp::Variable& v = work_.variable(j);
      saved.emplace_back(v.lower, v.upper);
      // Round up: capacity-style models stay feasible when capacities
      // only grow. Clamp into the node box.
      double fixed = std::ceil(x[j] - options_.integrality_tolerance);
      fixed = std::min(fixed, v.upper);
      fixed = std::max(fixed, v.lower);
      if (std::abs(fixed - std::round(fixed)) > options_.integrality_tolerance) {
        applicable = false;
        break;
      }
      work_.set_variable_bounds(j, fixed, fixed);
    }
    if (applicable) {
      lp::SimplexOptions lp_opts = options_.lp_options;
      lp_opts.time_limit_seconds =
          std::min(lp_opts.time_limit_seconds,
                   options_.time_limit_seconds - watch.seconds());
      lp::Solution fixed = lp::solve(work_, lp_opts);
      result.lp_iterations += fixed.iterations;
      if (fixed.status == lp::SolveStatus::kOptimal &&
          (!result.has_incumbent || fixed.objective < result.objective)) {
        accept_incumbent(result, fixed.x, fixed.objective);
      }
    }
    for (std::size_t k = 0; k < saved.size(); ++k) {
      work_.set_variable_bounds(integer_vars_[k], saved[k].first, saved[k].second);
    }
  }

  void accept_incumbent(MilpResult& result, std::vector<double> x, double objective) {
    if (result.has_incumbent && objective >= result.objective) return;
#if NP_CHECKS_ENABLED
    // Incumbent contract: for this minimization the incumbent objective
    // must only ever improve, and a point accepted as integral must
    // actually be integral up to the branching tolerance before the
    // exact snap below.
    NP_ASSERT(std::isfinite(objective),
              "milp: non-finite incumbent objective ", objective);
    NP_ASSERT(!result.has_incumbent || objective < result.objective,
              "milp: incumbent worsened: ", result.objective, " -> ", objective);
    for (int j : integer_vars_) {
      NP_ASSERT(std::abs(x[j] - std::round(x[j])) <=
                    options_.integrality_tolerance + 1e-9,
                "milp: non-integral incumbent coordinate ", j, " = ", x[j]);
    }
#endif
    // Snap integer coordinates exactly.
    for (int j : integer_vars_) x[j] = std::round(x[j]);
    result.has_incumbent = true;
    result.x = std::move(x);
    result.objective = objective;
    log_debug("milp: incumbent ", objective);
  }

  MilpResult finish(MilpResult& result, MilpStatus status, double bound,
                    const Stopwatch& watch) {
    result.status = status;
    result.best_bound = status == MilpStatus::kOptimal && result.has_incumbent
                            ? result.objective
                            : bound;
    if (result.has_incumbent) {
      result.gap = (result.objective - result.best_bound) /
                   std::max(1.0, std::abs(result.objective));
      result.gap = std::max(result.gap, 0.0);
    }
    result.solve_seconds = watch.seconds();
    return result;
  }

  const lp::Model& model_;
  const MilpOptions& options_;
  lp::Model work_;
  std::vector<int> integer_vars_;
};

}  // namespace

MilpResult solve(const lp::Model& model, const MilpOptions& options) {
  model.validate();
  BranchAndBound bnb(model, options);
  return bnb.run();
}

}  // namespace np::milp
