// Deliberately-bad sample for the obs-name rule: two unregistered
// names (a span and a counter), plus registered ones that must NOT be
// flagged. A name in a comment is invisible: NP_SPAN("comment.span").
void instrumented() {
  NP_SPAN("good.span");
  NP_SPAN("rogue.span");
  static obs::Counter& ok = obs::counter("good.counter");
  static obs::Counter& bad = obs::counter("rogue.counter");
  obs::histogram(
      "rogue.split.histogram", obs::exponential_buckets(1.0, 4.0, 12));
  const char* in_string = "NP_SPAN is only checked as a call";
  (void)ok;
  (void)bad;
  (void)in_string;
}
