#include "rl/rollout.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "ad/tape.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/fault.hpp"

namespace np::rl {

namespace {

/// Episode-level reward/length stats, observed once per finished
/// trajectory. Returns are sums of (negative) cost-shaped rewards, so
/// the return buckets are symmetric around zero; lengths are positive.
void record_episode(int length, double episode_return) {
  static obs::Histogram& lengths = obs::histogram(
      "rl.episode_length", obs::exponential_buckets(1.0, 2.0, 12));
  static obs::Histogram& returns = obs::histogram(
      "rl.episode_return",
      {-1e4, -1e3, -100.0, -10.0, -1.0, 0.0, 1.0, 10.0, 100.0, 1e3, 1e4});
  lengths.observe(static_cast<double>(length));
  returns.observe(episode_return);
}

/// Rollout volume counters, bumped once per collect() call.
void record_rollout_totals(const std::vector<WorkerRollout>& rollouts) {
  long steps = 0, trajectories = 0, feasible = 0;
  for (const WorkerRollout& r : rollouts) {
    steps += static_cast<long>(r.records.size());
    trajectories += r.trajectories;
    feasible += r.feasible_trajectories;
  }
  static obs::Counter& env_steps = obs::counter("rl.env_steps");
  static obs::Counter& trajectories_counter = obs::counter("rl.trajectories");
  static obs::Counter& feasible_counter =
      obs::counter("rl.feasible_trajectories");
  env_steps.add(steps);
  trajectories_counter.add(trajectories);
  feasible_counter.add(feasible);
}

}  // namespace

int sample_from_log_probs(const la::Matrix& log_probs,
                          const std::vector<std::uint8_t>& mask, Rng& rng) {
  return sample_from_log_probs(log_probs.data(), mask, rng);
}

int sample_from_log_probs(const double* log_probs,
                          const std::vector<std::uint8_t>& mask, Rng& rng) {
  // Categorical sample over valid entries; probabilities sum to 1.
  double r = rng.uniform();
  int last_valid = -1;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (!mask[i]) continue;
    last_valid = static_cast<int>(i);
    r -= std::exp(log_probs[i]);
    if (r < 0.0) return static_cast<int>(i);
  }
  if (last_valid < 0) throw std::logic_error("sample_from_log_probs: dead mask");
  return last_valid;  // numeric slack
}

RolloutWorkers::RolloutWorkers(PlanningEnv& env, Rng& rng, nn::ActorCritic& network)
    : network_(network),
      workers_(1),
      mode_(nn::inference_mode_from_env()),
      borrowed_env_(&env),
      borrowed_rng_(&rng) {
  feature_buffers_.resize(1);
  mask_buffers_.resize(1);
}

RolloutWorkers::RolloutWorkers(const topo::Topology& topology,
                               const EnvConfig& env_config,
                               nn::ActorCritic& network, int workers,
                               unsigned seed)
    : network_(network), workers_(workers), mode_(nn::inference_mode_from_env()) {
  if (workers < 1) {
    throw std::invalid_argument("RolloutWorkers: workers must be >= 1");
  }
  feature_buffers_.resize(workers);
  mask_buffers_.resize(workers);
  envs_.reserve(workers);
  rngs_.reserve(workers);
  Rng base(seed);
  for (int w = 0; w < workers; ++w) {
    envs_.push_back(std::make_unique<PlanningEnv>(topology, env_config));
    rngs_.push_back(base.split());
  }
  // All envs share one topology, so one block-diagonal family serves
  // every round; the cache also keeps the block matrices alive at
  // stable addresses (the GAT neighbor cache keys on the address).
  adjacency_cache_ =
      std::make_unique<la::BlockDiagonalCache>(envs_.front()->adjacency());
  const int participants = std::min(workers, util::ThreadPool::hardware_threads());
  pool_ = std::make_unique<util::ThreadPool>(std::max(0, participants - 1));
}

std::vector<std::array<std::uint64_t, 4>> RolloutWorkers::rng_states() const {
  std::vector<std::array<std::uint64_t, 4>> states;
  states.reserve(rngs_.size());
  for (const Rng& rng : rngs_) states.push_back(rng.state());
  return states;
}

void RolloutWorkers::set_rng_states(
    const std::vector<std::array<std::uint64_t, 4>>& states) {
  if (states.size() != rngs_.size()) {
    throw std::runtime_error(
        "RolloutWorkers::set_rng_states: stream count mismatch (" +
        std::to_string(states.size()) + " saved, " +
        std::to_string(rngs_.size()) + " live) — resume with the same "
        "--rollout-workers the checkpoint was written with");
  }
  for (std::size_t w = 0; w < states.size(); ++w) rngs_[w].set_state(states[w]);
}

long RolloutWorkers::total_lp_iterations() const {
  if (borrowed_env_ != nullptr) return borrowed_env_->evaluator_lp_iterations();
  long total = 0;
  for (const auto& env : envs_) total += env->evaluator_lp_iterations();
  return total;
}

double RolloutWorkers::total_lp_seconds() const {
  if (borrowed_env_ != nullptr) return borrowed_env_->evaluator_lp_seconds();
  double total = 0.0;
  for (const auto& env : envs_) total += env->evaluator_lp_seconds();
  return total;
}

void RolloutWorkers::set_inference_mode(nn::InferenceMode mode) {
  mode_ = mode;
  if (mode == nn::InferenceMode::kTape) engine_.reset();
}

void RolloutWorkers::prepare_engine() {
  if (engine_ == nullptr) {
    engine_ = std::make_unique<nn::InferenceEngine>(network_);
  } else {
    // The optimizer stepped since the last epoch; re-snapshot.
    engine_->refresh();
  }
}

std::vector<WorkerRollout> RolloutWorkers::collect(int total_steps) {
  if (total_steps < 1) {
    throw std::invalid_argument("RolloutWorkers::collect: total_steps < 1");
  }
  NP_SPAN("rollout.collect");
  if (mode_ == nn::InferenceMode::kFast) prepare_engine();
  std::vector<WorkerRollout> out;
  if (borrowed_env_ != nullptr) {
    out.push_back(collect_serial(*borrowed_env_, *borrowed_rng_, total_steps));
  } else {
    out = collect_lockstep(total_steps);
  }
  record_rollout_totals(out);
  return out;
}

WorkerRollout RolloutWorkers::collect_serial(PlanningEnv& env, Rng& rng,
                                             int steps) {
  // Mirrors the original serial trainer loop operation-for-operation
  // (same tape layout, same single rng.uniform() per step) so borrowed
  // mode reproduces the pre-threading trainer bit-for-bit.
  WorkerRollout rollout;
  rollout.records.reserve(steps);
  double trajectory_return = 0.0;
  int episode_length = 0;

  la::Matrix& features = feature_buffers_[0];
  std::vector<std::uint8_t>& mask = mask_buffers_[0];

  env.reset();
  // Watchdog liveness: one beat per env step (each step is an LP-backed
  // plan evaluation, so a quiet heartbeat means a wedged solve).
  obs::HeartbeatScope heartbeat("hb.rollout_step");
  while (static_cast<int>(rollout.records.size()) < steps) {
    heartbeat.beat(static_cast<long>(rollout.records.size()));
    StepRecord record;
    env.features_into(features);
    env.action_mask_into(mask);
    record.features = features;  // records own copies; buffers stay warm
    record.mask = mask;

    {
      NP_SPAN("rollout.forward");
      if (engine_ != nullptr) {
        // Tape-free path: one shared encoder pass for policy + value,
        // bit-identical to the tape forwards below.
        const nn::InferenceEngine::Output out = engine_->forward(
            *env.adjacency(), record.features, record.mask, /*want_value=*/true);
        record.action = sample_from_log_probs(out.log_probs, record.mask, rng);
        record.log_prob = out.log_probs[record.action];
        record.value = out.value;
      } else {
        ad::Tape tape;
        ad::Tensor log_probs = network_.policy_log_probs(tape, env.adjacency(),
                                                         record.features, record.mask);
        ad::Tensor value = network_.value(tape, env.adjacency(), record.features);
        record.action = sample_from_log_probs(tape.value(log_probs), record.mask, rng);
        record.log_prob = tape.value(log_probs)(0, record.action);
        record.value = tape.value(value)(0, 0);
      }
    }

    StepResult step;
    {
      NP_SPAN("rollout.env_step");
      NP_FAULT_POINT("rollout.step");
      step = env.step(record.action);
    }
    record.reward = step.reward;
    record.terminal = step.done;
    trajectory_return += step.reward;
    ++episode_length;
    rollout.records.push_back(std::move(record));

    if (step.done) {
      ++rollout.trajectories;
      rollout.return_sum += trajectory_return;
      record_episode(episode_length, trajectory_return);
      trajectory_return = 0.0;
      episode_length = 0;
      if (step.feasible) {
        ++rollout.feasible_trajectories;
        const double cost = env.added_cost();
        if (cost < rollout.best_cost) {
          rollout.best_cost = cost;
          rollout.best_added = env.added_units();
        }
      }
      env.reset();
    }
  }

  if (!rollout.records.back().terminal) {
    env.features_into(features);
    if (engine_ != nullptr) {
      rollout.last_value = engine_->value(*env.adjacency(), features);
    } else {
      ad::Tape tape;
      ad::Tensor v = network_.value(tape, env.adjacency(), features);
      rollout.last_value = tape.value(v)(0, 0);
    }
  }
  return rollout;
}

std::vector<WorkerRollout> RolloutWorkers::collect_lockstep(int total_steps) {
  const int k = workers_;
  std::vector<int> quota(k, total_steps / k);
  for (int w = 0; w < total_steps % k; ++w) ++quota[w];

  std::vector<WorkerRollout> rollouts(k);
  std::vector<double> trajectory_return(k, 0.0);
  std::vector<int> episode_length(k, 0);
  for (int w = 0; w < k; ++w) {
    rollouts[w].records.reserve(quota[w]);
    envs_[w]->reset();
  }

  // Worker utilization: active_worker_steps / (rounds * workers) is the
  // fraction of lockstep slots doing useful work (tail rounds run with
  // fewer active workers once quotas fill up).
  static obs::Counter& rounds_counter = obs::counter("rollout.rounds");
  static obs::Counter& active_steps_counter =
      obs::counter("rollout.active_worker_steps");
  static obs::Gauge& workers_gauge = obs::gauge("rollout.workers");
  workers_gauge.set(static_cast<double>(k));

  std::vector<int> active;
  std::vector<la::Matrix>& features = feature_buffers_;
  std::vector<std::vector<std::uint8_t>>& masks = mask_buffers_;
  std::vector<StepResult> results(k);

  // Round-loop liveness on the coordinating thread; the pool workers
  // publish their own per-step heartbeats inside the step tasks.
  obs::HeartbeatScope heartbeat("hb.rollout_step");
  long round = 0;
  for (;;) {
    heartbeat.beat(round++);
    active.clear();
    for (int w = 0; w < k; ++w) {
      if (static_cast<int>(rollouts[w].records.size()) < quota[w]) active.push_back(w);
    }
    if (active.empty()) break;
    rounds_counter.add(1);
    active_steps_counter.add(static_cast<long>(active.size()));

    // One batched policy+value forward over all active workers' states.
    // Observations land in the reused per-worker buffers; the records
    // copy them so the buffers keep their capacity across rounds.
    for (int w : active) {
      envs_[w]->features_into(features[w]);
      envs_[w]->action_mask_into(masks[w]);
    }

    if (engine_ != nullptr) {
      NP_SPAN("rollout.forward");
      // Tape-free ragged batch: per-block forwards against each env's
      // own adjacency are bit-identical to the block-diagonal tape
      // forward below, with no stacking copy and no tape nodes.
      graph_inputs_.clear();
      for (int w : active) {
        graph_inputs_.push_back(nn::InferenceEngine::GraphInput{
            envs_[w]->adjacency().get(), &features[w], &masks[w]});
      }
      const nn::InferenceEngine::BatchOutput& forward = engine_->forward_ragged(
          graph_inputs_.data(), graph_inputs_.size(), /*want_values=*/true);

      // Sample in ascending worker order, each from its own RNG stream:
      // the draw sequence depends only on (seed, worker), not scheduling.
      for (std::size_t s = 0; s < active.size(); ++s) {
        const int w = active[s];
        StepRecord record;
        record.features = features[w];
        record.mask = masks[w];
        record.action =
            sample_from_log_probs(forward.log_probs[s], record.mask, rngs_[w]);
        record.log_prob = forward.log_probs[s][record.action];
        record.value = forward.values[s];
        rollouts[w].records.push_back(std::move(record));
      }
    } else {
      NP_SPAN("rollout.forward");
      std::vector<const la::Matrix*> feature_parts;
      std::vector<const std::vector<std::uint8_t>*> mask_parts;
      feature_parts.reserve(active.size());
      mask_parts.reserve(active.size());
      for (int w : active) {
        feature_parts.push_back(&features[w]);
        mask_parts.push_back(&masks[w]);
      }

      ad::Tape tape;
      const la::Matrix stacked = la::vstack(feature_parts);
      auto forward = network_.forward_batch(
          tape, adjacency_cache_->get(static_cast<int>(active.size())), stacked,
          mask_parts, /*want_values=*/true);

      // Sample in ascending worker order, each from its own RNG stream:
      // the draw sequence depends only on (seed, worker), not scheduling.
      for (std::size_t s = 0; s < active.size(); ++s) {
        const int w = active[s];
        StepRecord record;
        record.features = features[w];
        record.mask = masks[w];
        record.action =
            sample_from_log_probs(tape.value(forward.log_probs[s]), record.mask, rngs_[w]);
        record.log_prob = tape.value(forward.log_probs[s])(0, record.action);
        record.value = tape.value(forward.values[s])(0, 0);
        rollouts[w].records.push_back(std::move(record));
      }
    }

    {
      // Env stepping (the LP feasibility checks dominate here) runs on the
      // pool; each task touches only its own env, results land per slot.
      NP_SPAN("rollout.env_step");
      std::vector<std::function<void()>> tasks;
      tasks.reserve(active.size());
      for (int w : active) {
        const int action = rollouts[w].records.back().action;
        tasks.push_back([this, w, action, &results] {
          obs::HeartbeatScope step_heartbeat("hb.rollout_step");
          NP_FAULT_POINT("rollout.step");
          results[w] = envs_[w]->step(action);
        });
      }
      pool_->run_all(std::move(tasks));
    }

    // Post-process in ascending worker order (stats merging is ordered).
    for (int w : active) {
      StepRecord& record = rollouts[w].records.back();
      const StepResult& step = results[w];
      record.reward = step.reward;
      record.terminal = step.done;
      trajectory_return[w] += step.reward;
      ++episode_length[w];
      if (step.done) {
        ++rollouts[w].trajectories;
        rollouts[w].return_sum += trajectory_return[w];
        record_episode(episode_length[w], trajectory_return[w]);
        trajectory_return[w] = 0.0;
        episode_length[w] = 0;
        if (step.feasible) {
          ++rollouts[w].feasible_trajectories;
          const double cost = envs_[w]->added_cost();
          if (cost < rollouts[w].best_cost) {
            rollouts[w].best_cost = cost;
            rollouts[w].best_added = envs_[w]->added_units();
          }
        }
        envs_[w]->reset();
      }
    }
  }

  // Bootstrap values for workers whose last trajectory was cut off.
  for (int w = 0; w < k; ++w) {
    if (rollouts[w].records.empty() || rollouts[w].records.back().terminal) continue;
    envs_[w]->features_into(features[w]);
    if (engine_ != nullptr) {
      rollouts[w].last_value = engine_->value(*envs_[w]->adjacency(), features[w]);
    } else {
      ad::Tape tape;
      ad::Tensor v = network_.value(tape, envs_[w]->adjacency(), features[w]);
      rollouts[w].last_value = tape.value(v)(0, 0);
    }
  }
  return rollouts;
}

}  // namespace np::rl
