// Per-failure-scenario feasibility LP (§5 of the paper).
//
// For one scenario (the healthy network or one failure), checks whether
// a capacity plan carries all required flows. We use an *elastic*
// multicommodity-flow formulation: minimize total unserved demand with
// per-sink slack variables. The plan is feasible for the scenario iff
// the optimum is ~0. Elasticity keeps the LP always-feasible, so every
// solve yields an optimal basis that warm-starts the next check of the
// same scenario after a capacity increment — the mechanism behind the
// paper's stateful failure checking speedup.
//
// With `aggregate_sources` (the paper's source aggregation, [60]) flows
// sharing a source become one commodity, shrinking constraints from
// s(fm + 2l) to s(m^2 + 2l) as derived in §5.
#pragma once

#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "topo/topology.hpp"

namespace np::plan {

/// Scenario index convention throughout np::plan and np::rl:
/// 0 = healthy network, k >= 1 = topology.failure(k - 1).
inline constexpr int kHealthyScenario = 0;

struct ScenarioLp {
  lp::Model model;
  /// Capacity-row index for (link, direction) -> row, or -1 when the
  /// link is down in this scenario. Row upper bound = C_l in Gbps.
  std::vector<int> capacity_row;  // size 2 * num_links, dir-major: 2*l + dir
  /// Total demand that must be served in this scenario (Gbps).
  double total_demand = 0.0;
  /// Warm-start basis of the previous solve.
  lp::Basis basis;
  bool has_basis = false;
  int failure_index = -1;  ///< -1 = healthy
};

/// Build the LP for one scenario. `scenario` follows the convention
/// above. Links down in the scenario get no flow variables.
ScenarioLp build_scenario_lp(const topo::Topology& topology, int scenario,
                             bool aggregate_sources);

/// Update the capacity rows for new per-link total units. O(links).
void set_plan_capacities(ScenarioLp& lp, const topo::Topology& topology,
                         const std::vector<int>& total_units);

/// Outcome of one scenario check. kUnknown means the solver ran out of
/// budget (wall-clock deadline or iteration cap) before reaching a
/// verdict; callers must degrade conservatively — treat the scenario as
/// not-yet-satisfied, never as passed.
enum class Verdict { kFeasible, kInfeasible, kUnknown };

const char* to_string(Verdict verdict);

struct ScenarioCheck {
  bool feasible = false;
  /// Three-valued outcome; `feasible` stays the conservative boolean
  /// projection (kUnknown => false).
  Verdict verdict = Verdict::kUnknown;
  /// True when the solve stopped on the wall-clock deadline / time
  /// limit rather than finishing (implies verdict == kUnknown).
  bool deadline_hit = false;
  double unserved_gbps = 0.0;
  long lp_iterations = 0;
  /// Wall-clock seconds spent inside lp::solve (including a cold retry
  /// after a failed warm start).
  double solve_seconds = 0.0;
  /// Seconds of solve_seconds spent in entering-variable pricing (the
  /// bench's pricing-time share).
  double pricing_seconds = 0.0;
};

/// Solve the elastic LP (optionally warm-started from lp.basis) and
/// report feasibility. Stores the final basis back for the next call.
ScenarioCheck solve_scenario(ScenarioLp& lp, const lp::SimplexOptions& base_options,
                             bool use_warm_start);

}  // namespace np::plan
