file(REMOVE_RECURSE
  "CMakeFiles/fig09_large_scale.dir/fig09_large_scale.cpp.o"
  "CMakeFiles/fig09_large_scale.dir/fig09_large_scale.cpp.o.d"
  "fig09_large_scale"
  "fig09_large_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_large_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
