// Robustness fuzzing (deterministic): mutated topology files must
// either parse into a structurally valid topology or throw a typed
// error — never crash, hang, or produce an inconsistent object.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "ad/snapshot.hpp"
#include "serve/protocol.hpp"
#include "topo/generator.hpp"
#include "topo/serialize.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace np::topo {
namespace {

/// Deterministic per-test seed: fixed in (suite parameter), offset as a
/// whole by NEUROPLAN_TEST_SEED so a different corpus can be swept
/// reproducibly. Every assertion failure reports it via SCOPED_TRACE.
std::uint64_t fuzz_seed(unsigned param) {
  return static_cast<std::uint64_t>(env_long("NEUROPLAN_TEST_SEED", 0)) +
         param * 7919u + 101u;
}

class SerializeFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(SerializeFuzz, MutatedInputNeverCrashes) {
  const std::uint64_t seed = fuzz_seed(GetParam());
  SCOPED_TRACE(::testing::Message()
               << "fuzz seed " << seed
               << " (offset the sweep with NEUROPLAN_TEST_SEED=<n>)");
  RecordProperty("seed", static_cast<int>(seed));
  const std::string base = to_text(make_preset('B'));
  Rng rng(seed);
  for (int trial = 0; trial < 40; ++trial) {
    std::string text = base;
    const int mutations = 1 + static_cast<int>(rng.uniform_index(4));
    for (int k = 0; k < mutations; ++k) {
      const std::size_t pos = rng.uniform_index(text.size());
      switch (rng.uniform_index(4)) {
        case 0:  // flip a character
          text[pos] = static_cast<char>(' ' + rng.uniform_index(95));
          break;
        case 1:  // delete a span
          text.erase(pos, 1 + rng.uniform_index(10));
          break;
        case 2:  // duplicate a span
          text.insert(pos, text.substr(pos, 1 + rng.uniform_index(10)));
          break;
        default:  // truncate
          text.resize(pos);
      }
    }
    try {
      Topology t = from_text(text);
      // Parsed: the object must at least be internally consistent
      // enough that accessors and re-serialization do not blow up.
      (void)to_text(t);
      for (int l = 0; l < t.num_links(); ++l) (void)t.link_length_km(l);
    } catch (const std::runtime_error&) {
      // typed parse error: fine
    } catch (const std::invalid_argument&) {
      // typed semantic error from Topology validation: fine
    } catch (const std::out_of_range&) {
      // typed index error from referencing records: fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzz, ::testing::Range(0u, 10u));

/// Checkpoint containers under the same mutation model: a mutated
/// snapshot file must either round-trip the original payload untouched
/// (mutation landed outside the validated region — impossible here,
/// every byte is covered by the checksum or header grammar) or throw a
/// clean std::runtime_error. Anything else is a corruption-detection
/// hole that would let a torn checkpoint resume training silently.
class SnapshotFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(SnapshotFuzz, MutatedSnapshotNeverResumesSilently) {
  const std::uint64_t seed = fuzz_seed(GetParam()) + 500009u;
  SCOPED_TRACE(::testing::Message() << "fuzz seed " << seed);
  const std::string path = ::testing::TempDir() + "fuzz_snapshot.state";
  std::string payload = "epoch 12\nrng deadbeef 1 2 3\nparams 0\nend\n";
  payload.push_back('\0');
  payload += "binary tail \xff\x01";
  ad::write_snapshot_file(path, "trainer", payload);
  std::string pristine;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    pristine = buf.str();
  }
  Rng rng(seed);
  for (int trial = 0; trial < 40; ++trial) {
    std::string bytes = pristine;
    const int mutations = 1 + static_cast<int>(rng.uniform_index(4));
    for (int k = 0; k < mutations && !bytes.empty(); ++k) {
      const std::size_t pos = rng.uniform_index(bytes.size());
      switch (rng.uniform_index(4)) {
        case 0:  // flip a byte
          bytes[pos] = static_cast<char>(rng.uniform_index(256));
          break;
        case 1:  // delete a span
          bytes.erase(pos, 1 + rng.uniform_index(8));
          break;
        case 2:  // duplicate a span
          bytes.insert(pos, bytes.substr(pos, 1 + rng.uniform_index(8)));
          break;
        default:  // truncate
          bytes.resize(pos);
      }
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    try {
      const std::string got = ad::read_snapshot_file(path, "trainer");
      EXPECT_EQ(got, payload) << "trial " << trial
                              << ": accepted a corrupted snapshot";
    } catch (const std::runtime_error&) {
      // typed corruption verdict: fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotFuzz, ::testing::Range(0u, 6u));

TEST(SerializeFuzz, EmptyAndDegenerateInputs) {
  EXPECT_NO_THROW(from_text(""));              // empty topology object
  EXPECT_NO_THROW(from_text("\n\n# only\n"));  // comments only
  EXPECT_THROW(from_text("site"), std::runtime_error);       // truncated
  EXPECT_THROW(from_text("fiber \"x\""), std::runtime_error);
  EXPECT_THROW(from_text("link \"x\" 0"), std::runtime_error);
  EXPECT_THROW(from_text("unit -5\n"), std::invalid_argument);
  EXPECT_THROW(from_text("policy notanint"), std::runtime_error);
}

// ---- np::serve framing/parse layer under hostile byte streams ----
//
// The serving contract: any byte stream either yields frames that parse
// (or map to typed ERROR replies) or poisons the reader with a typed
// fatal — never a crash, hang, or unbounded allocation. Sessions built
// on the reader must survive every malformed frame and die exactly once
// on unframeable input (the mid-frame-disconnect model: the stream just
// ends, which must leave kNeedMore, not an error).
class ServeFrameFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ServeFrameFuzz, HostilePrefixesAndPayloadsNeverCrashTheReader) {
  const std::uint64_t seed = fuzz_seed(GetParam()) + 900007u;
  SCOPED_TRACE(::testing::Message() << "fuzz seed " << seed);
  Rng rng(seed);
  for (int trial = 0; trial < 60; ++trial) {
    serve::FrameReader reader;
    // Build a stream of valid frames, then corrupt it.
    std::string stream;
    const int frames = 1 + static_cast<int>(rng.uniform_index(4));
    for (int f = 0; f < frames; ++f) {
      stream += serve::frame("np1 ping id=" + std::to_string(f));
    }
    const int mutations = 1 + static_cast<int>(rng.uniform_index(3));
    for (int k = 0; k < mutations && !stream.empty(); ++k) {
      const std::size_t pos = rng.uniform_index(stream.size());
      switch (rng.uniform_index(4)) {
        case 0:  // corrupt a byte (length prefixes included)
          stream[pos] = static_cast<char>(rng.uniform_index(256));
          break;
        case 1:  // drop a span (mid-frame truncation)
          stream.erase(pos, 1 + rng.uniform_index(6));
          break;
        case 2:  // inject garbage
          stream.insert(pos, std::string(1 + rng.uniform_index(6),
                                         static_cast<char>(
                                             rng.uniform_index(256))));
          break;
        default:  // disconnect mid-frame
          stream.resize(pos);
      }
    }
    // Deliver in random-sized chunks, as a socket would.
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const std::size_t chunk =
          1 + rng.uniform_index(std::min<std::size_t>(
                  stream.size() - offset, 64));
      reader.feed(stream.data() + offset, chunk);
      offset += chunk;
      // Drain: every frame either parses or throws the typed ParseError;
      // fatal poisons the reader permanently.
      std::string payload;
      std::string error;
      for (bool drained = false; !drained;) {
        switch (reader.next(&payload, &error)) {
          case serve::FrameEvent::kFrame:
            EXPECT_LE(payload.size(), serve::kMaxFrameBytes);
            try {
              (void)serve::parse_request(payload);
            } catch (const serve::ParseError&) {
              // typed rejection: fine
            }
            break;
          case serve::FrameEvent::kFatal:
            EXPECT_FALSE(error.empty());
            EXPECT_TRUE(reader.poisoned());
            drained = true;
            break;
          case serve::FrameEvent::kNeedMore:
            drained = true;
            break;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeFrameFuzz, ::testing::Range(0u, 8u));

// The specific hostile prefixes, deterministically.
TEST(ServeFrameFuzzEdges, TruncatedOversizedAndGarbagePrefixes) {
  std::string payload;
  std::string error;
  {
    // Truncated prefix: two bytes of length, then disconnect.
    serve::FrameReader reader;
    reader.feed("\x10\x00", 2);
    EXPECT_EQ(reader.next(&payload, &error), serve::FrameEvent::kNeedMore);
    EXPECT_FALSE(reader.poisoned());
  }
  {
    // Oversized length prefix: fatal, poisoned, typed error.
    serve::FrameReader reader;
    const char huge[4] = {'\xff', '\xff', '\xff', '\xff'};
    reader.feed(huge, 4);
    EXPECT_EQ(reader.next(&payload, &error), serve::FrameEvent::kFatal);
    EXPECT_TRUE(reader.poisoned());
    EXPECT_FALSE(error.empty());
    // Poison is permanent: a valid frame afterwards stays dead.
    const std::string ok = serve::frame("np1 ping id=1");
    reader.feed(ok.data(), ok.size());
    EXPECT_EQ(reader.next(&payload, &error), serve::FrameEvent::kFatal);
  }
  {
    // Garbage that happens to frame: parses as a request or throws the
    // typed ParseError — the session layer's containment contract.
    serve::FrameReader reader;
    const std::string garbage = serve::frame("\x01garbage !! not np1");
    reader.feed(garbage.data(), garbage.size());
    ASSERT_EQ(reader.next(&payload, &error), serve::FrameEvent::kFrame);
    EXPECT_THROW((void)serve::parse_request(payload), serve::ParseError);
  }
  {
    // Zero-length frame: delivered as an empty payload, which the
    // parser rejects as typed, not fatal.
    serve::FrameReader reader;
    const std::string empty = serve::frame("");
    reader.feed(empty.data(), empty.size());
    ASSERT_EQ(reader.next(&payload, &error), serve::FrameEvent::kFrame);
    EXPECT_TRUE(payload.empty());
    EXPECT_THROW((void)serve::parse_request(payload), serve::ParseError);
  }
}

}  // namespace
}  // namespace np::topo
