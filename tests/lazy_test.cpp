// Lazy scenario generation and shortest-path routing tests.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/lazy_solve.hpp"
#include "plan/evaluator.hpp"
#include "topo/generator.hpp"
#include "topo/paths.hpp"

namespace np::core {
namespace {

TEST(LazySolve, MatchesFullIlpOptimumOnPresetA) {
  topo::Topology t = topo::make_preset('A');
  // Full-model optimum via the formulation with all scenarios.
  plan::FormulationOptions full;
  plan::PlanningMilp milp(t, full);
  milp::MilpOptions mo;
  mo.time_limit_seconds = 120.0;
  const milp::MilpResult exact = milp::solve(milp.model(), mo);
  ASSERT_EQ(exact.status, milp::MilpStatus::kOptimal);

  LazySolveConfig config;
  config.time_limit_per_solve_seconds = 60.0;
  config.total_time_limit_seconds = 240.0;
  const LazySolveResult lazy = lazy_solve(t, plan::FormulationOptions{}, config);
  ASSERT_TRUE(lazy.plan.feasible) << lazy.plan.detail;
  EXPECT_NEAR(lazy.plan.cost, exact.objective, 1e-4 * exact.objective + 1e-6);
  // Lazy generation should need only a fraction of the failures.
  EXPECT_LE(lazy.scenarios_used, t.num_failures());
  EXPECT_GE(lazy.rounds, 1);
}

TEST(LazySolve, SeedPlanGuaranteesIncumbentUnderTinyBudget) {
  topo::Topology t = topo::make_preset('B');
  const PlanResult greedy = solve_greedy(t);
  ASSERT_TRUE(greedy.feasible);
  LazySolveConfig config;
  config.time_limit_per_solve_seconds = 0.5;  // far too little to solve
  config.total_time_limit_seconds = 5.0;
  config.relative_gap = 1e-2;
  config.seed_added_units = greedy.added_units;
  const LazySolveResult lazy = lazy_solve(t, plan::FormulationOptions{}, config);
  // With the seed injected, even a starved run returns a feasible plan
  // no worse than the seed.
  if (lazy.plan.feasible) {
    EXPECT_LE(lazy.plan.cost, greedy.cost + 1e-6);
    PlanResult verified = verify_result(t, lazy.plan);
    EXPECT_TRUE(verified.feasible);
  }
}

TEST(LazySolve, RejectsBadSeedSize) {
  topo::Topology t = topo::make_preset('A');
  LazySolveConfig config;
  config.seed_added_units = {1, 2, 3};
  EXPECT_THROW(lazy_solve(t, plan::FormulationOptions{}, config),
               std::invalid_argument);
}

TEST(LazySolve, HonorsTotalTimeLimit) {
  topo::Topology t = topo::make_preset('C');
  LazySolveConfig config;
  config.total_time_limit_seconds = 0.0;
  const LazySolveResult lazy = lazy_solve(t, plan::FormulationOptions{}, config);
  EXPECT_FALSE(lazy.plan.feasible);
  EXPECT_TRUE(lazy.plan.timed_out);
}

TEST(Paths, ShortestPathBasics) {
  topo::Topology t = topo::make_preset('A');
  const topo::Flow& flow = t.flow(0);
  const std::vector<int> path = topo::shortest_ip_path(t, flow.src, flow.dst);
  ASSERT_FALSE(path.empty());
  // The path must be a connected IP walk from src to dst.
  int at = flow.src;
  for (int l : path) {
    const topo::IpLink& link = t.link(l);
    ASSERT_TRUE(link.site_a == at || link.site_b == at);
    at = link.site_a == at ? link.site_b : link.site_a;
  }
  EXPECT_EQ(at, flow.dst);
}

TEST(Paths, RespectsUsableMask) {
  topo::Topology t = topo::make_preset('A');
  const topo::Flow& flow = t.flow(0);
  std::vector<bool> usable(t.num_links(), true);
  const std::vector<int> path = topo::shortest_ip_path(t, flow.src, flow.dst, usable);
  ASSERT_FALSE(path.empty());
  for (int l : path) usable[l] = false;  // knock out the whole path
  const std::vector<int> alt = topo::shortest_ip_path(t, flow.src, flow.dst, usable);
  for (int l : alt) EXPECT_TRUE(usable[l]);
}

TEST(Paths, DisconnectedReturnsEmpty) {
  topo::Topology t = topo::make_preset('A');
  std::vector<bool> none(t.num_links(), false);
  EXPECT_TRUE(topo::shortest_ip_path(t, 0, 1, none).empty());
}

TEST(Paths, ValidatesArguments) {
  topo::Topology t = topo::make_preset('A');
  EXPECT_THROW(topo::shortest_ip_path(t, 0, 1, {true}), std::invalid_argument);
  EXPECT_THROW(topo::shortest_ip_path(t, -1, 1), std::invalid_argument);
  EXPECT_THROW(topo::shortest_ip_path(t, 0, 999), std::invalid_argument);
}

}  // namespace
}  // namespace np::core
