// Differential tests for the simplex backends: the sparse-LU and
// dense-inverse basis engines crossed with the three pricing rules
// (Dantzig / devex / steepest edge) are interchangeable configurations
// of the same simplex, so on any model every combination must return
// identical verdicts and (for optimal solves) objectives within 1e-7 —
// on the scenario feasibility LPs the evaluators solve, on
// warm-started trajectories, and on randomized general LPs. Plus
// pricing regressions (degenerate LPs must terminate under partial
// pricing; weight invariants must hold under frequent refactorization)
// and property tests of BasisFactor itself: a factorization (before
// and after product-form eta accumulation, including degenerate
// exchanges) must keep solving the basis it claims to represent.
//
// All randomness is seeded; NEUROPLAN_TEST_SEED offsets every seed so
// a different corpus can be swept reproducibly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "lp/factor.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "plan/scenario_lp.hpp"
#include "topo/generator.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace np::lp {
namespace {

std::uint64_t test_seed(unsigned salt) {
  return static_cast<std::uint64_t>(env_long("NEUROPLAN_TEST_SEED", 0)) +
         salt * 7919u + 131u;
}

constexpr SimplexEngine kEngines[] = {SimplexEngine::kSparseLu,
                                      SimplexEngine::kDenseInverse};
constexpr PricingRule kRules[] = {PricingRule::kDantzig, PricingRule::kDevex,
                                  PricingRule::kSteepestEdge};

SimplexOptions solver_options(SimplexEngine engine,
                              PricingRule rule = PricingRule::kDevex) {
  SimplexOptions options;
  options.engine = engine;
  options.pricing = rule;
  options.max_iterations = 1000000;
  return options;
}

/// Objective agreement tolerance: absolute for small values, relative
/// for large ones (the ISSUE-level contract is 1e-7).
void expect_objectives_match(double sparse, double dense) {
  EXPECT_NEAR(sparse, dense, 1e-7 * std::max(1.0, std::abs(sparse)));
}

// ---- scenario-LP differential ----

TEST(EngineDifferential, ScenarioLpsAgreeAcrossCapacityPlans) {
  const topo::Topology topology = topo::make_preset('B');
  Rng rng(test_seed(1));
  for (const bool aggregate : {true, false}) {
    for (int scenario = 0; scenario <= topology.num_failures(); scenario += 3) {
      plan::ScenarioLp lp = plan::build_scenario_lp(topology, scenario, aggregate);
      std::vector<int> units = topology.initial_units();
      for (int trial = 0; trial < 4; ++trial) {
        // Random monotone capacity plan, from scarce to plentiful.
        for (int l = 0; l < topology.num_links(); ++l) {
          const int headroom = topology.spectrum_headroom_units(l, units);
          units[l] += static_cast<int>(
              rng.uniform_index(static_cast<std::size_t>(headroom) + 1));
        }
        plan::set_plan_capacities(lp, topology, units);
        // Reference: sparse LU under Dantzig; every engine x rule combo
        // must agree with it.
        const Solution reference = solve(
            lp.model, solver_options(SimplexEngine::kSparseLu, kRules[0]));
        const double tol = 1e-6 * std::max(1.0, lp.total_demand);
        for (const SimplexEngine engine : kEngines) {
          for (const PricingRule rule : kRules) {
            if (engine == kEngines[0] && rule == kRules[0]) continue;
            const Solution got = solve(lp.model, solver_options(engine, rule));
            SCOPED_TRACE(::testing::Message()
                         << (aggregate ? "aggregated" : "per-flow")
                         << " scenario " << scenario << " trial " << trial
                         << " engine " << to_string(engine) << " rule "
                         << to_string(rule) << " seed " << test_seed(1));
            ASSERT_EQ(reference.status, SolveStatus::kOptimal);
            ASSERT_EQ(got.status, SolveStatus::kOptimal);
            expect_objectives_match(got.objective, reference.objective);
            // Identical feasibility verdicts under the evaluator's rule.
            EXPECT_EQ(got.objective <= tol, reference.objective <= tol);
          }
        }
      }
    }
  }
}

TEST(EngineDifferential, WarmTrajectoriesAgree) {
  // Replay one env-like trajectory (one link upgraded per step, every
  // scenario re-checked warm) once per engine x pricing-rule combo in
  // lockstep; every combo's warm path must produce the same verdicts
  // and objectives at every step.
  const topo::Topology topology = topo::make_preset('B');
  const int scenarios = topology.num_failures() + 1;
  struct Combo {
    SimplexEngine engine;
    PricingRule rule;
    std::vector<plan::ScenarioLp> lps;
  };
  std::vector<Combo> combos;
  for (const SimplexEngine engine : kEngines) {
    for (const PricingRule rule : kRules) {
      Combo combo{engine, rule, {}};
      for (int s = 0; s < scenarios; ++s) {
        combo.lps.push_back(plan::build_scenario_lp(topology, s, true));
      }
      combos.push_back(std::move(combo));
    }
  }
  Rng rng(test_seed(2));
  std::vector<int> units = topology.initial_units();
  for (int step = 0; step < 25; ++step) {
    const int l = static_cast<int>(rng.uniform_index(topology.num_links()));
    if (topology.spectrum_headroom_units(l, units) > 0) units[l] += 1;
    for (int s = 0; s < scenarios; ++s) {
      plan::ScenarioCheck reference{};
      for (std::size_t c = 0; c < combos.size(); ++c) {
        Combo& combo = combos[c];
        plan::set_plan_capacities(combo.lps[s], topology, units);
        const plan::ScenarioCheck got = plan::solve_scenario(
            combo.lps[s], solver_options(combo.engine, combo.rule), true);
        if (c == 0) {
          reference = got;
          continue;
        }
        SCOPED_TRACE(::testing::Message()
                     << "step " << step << " scenario " << s << " engine "
                     << to_string(combo.engine) << " rule "
                     << to_string(combo.rule) << " seed " << test_seed(2));
        EXPECT_EQ(got.feasible, reference.feasible);
        expect_objectives_match(got.unserved_gbps, reference.unserved_gbps);
      }
    }
  }
}

TEST(EngineDifferential, RandomGeneralLpsAgree) {
  // Random small LPs with every bound flavor (finite/infinite/fixed,
  // free variables, equality and range rows). Both engines must agree
  // on the verdict, and on the objective when optimal.
  Rng rng(test_seed(3));
  int optimal = 0;
  for (int trial = 0; trial < 120; ++trial) {
    Model m;
    const int n = 2 + static_cast<int>(rng.uniform_index(6));
    const int rows = 1 + static_cast<int>(rng.uniform_index(6));
    for (int j = 0; j < n; ++j) {
      const double lo = rng.uniform_index(4) == 0
                            ? -kInfinity
                            : -2.0 + 4.0 * rng.uniform();
      double hi = rng.uniform_index(4) == 0 ? kInfinity
                                            : 1.0 + 4.0 * rng.uniform();
      if (std::isfinite(lo) && hi < lo) hi = lo;  // occasional fixed variable
      m.add_variable(lo, hi, -2.0 + 4.0 * rng.uniform());
    }
    for (int r = 0; r < rows; ++r) {
      std::vector<Coefficient> coeffs;
      for (int j = 0; j < n; ++j) {
        if (rng.uniform_index(3) != 0) {
          coeffs.push_back({j, -3.0 + 6.0 * rng.uniform()});
        }
      }
      const double mid = -2.0 + 4.0 * rng.uniform();
      const double half = 3.0 * rng.uniform();
      switch (rng.uniform_index(4)) {
        case 0: m.add_row(mid, mid, std::move(coeffs)); break;        // equality
        case 1: m.add_row(mid, kInfinity, std::move(coeffs)); break;  // >=
        case 2: m.add_row(-kInfinity, mid, std::move(coeffs)); break; // <=
        default: m.add_row(mid - half, mid + half, std::move(coeffs)); break;
      }
    }
    const Solution reference =
        solve(m, solver_options(SimplexEngine::kSparseLu, kRules[0]));
    bool all_optimal = reference.status == SolveStatus::kOptimal;
    for (const SimplexEngine engine : kEngines) {
      for (const PricingRule rule : kRules) {
        if (engine == kEngines[0] && rule == kRules[0]) continue;
        const Solution got = solve(m, solver_options(engine, rule));
        SCOPED_TRACE(::testing::Message()
                     << "trial " << trial << " engine " << to_string(engine)
                     << " rule " << to_string(rule) << " seed "
                     << test_seed(3));
        EXPECT_EQ(got.status, reference.status);
        all_optimal = all_optimal && got.status == SolveStatus::kOptimal;
        if (got.status == SolveStatus::kOptimal &&
            reference.status == SolveStatus::kOptimal) {
          expect_objectives_match(got.objective, reference.objective);
          EXPECT_LE(m.max_violation(got.x), 1e-6);
        }
      }
    }
    if (all_optimal) ++optimal;
  }
  EXPECT_GE(optimal, 30);  // the sweep must actually exercise optimal solves
}

// ---- pricing regressions ----

/// A degenerate LP: rows x_a + x_b <= 0 with x >= 0 pin every variable
/// to zero while profitable-looking reduced costs (cost -1) keep
/// tempting entering candidates whose ratio test allows no movement.
/// Regression for the partial-pricing fall-through: the solver must
/// still terminate at the (all-zero) optimum, and must do so with the
/// candidate list forced on (threshold below the column count).
TEST(Pricing, DegenerateLpTerminatesUnderPartialPricing) {
  for (const SimplexEngine engine : kEngines) {
    for (const PricingRule rule : kRules) {
      Model m;
      const int n = 40;
      for (int j = 0; j < n; ++j) m.add_variable(0.0, kInfinity, -1.0);
      for (int j = 0; j + 1 < n; j += 2) {
        m.add_row(-kInfinity, 0.0, {{j, 1.0}, {j + 1, 1.0}});
      }
      SimplexOptions options = solver_options(engine, rule);
      options.partial_pricing_threshold = 8;  // force the candidate list
      options.max_iterations = 10000;         // termination, not a time out
      const Solution solution = solve(m, options);
      SCOPED_TRACE(::testing::Message() << "engine " << to_string(engine)
                                        << " rule " << to_string(rule));
      ASSERT_EQ(solution.status, SolveStatus::kOptimal);
      EXPECT_NEAR(solution.objective, 0.0, 1e-9);
    }
  }
}

/// Frequent refactorization exercises the devex reset-to-reference and
/// the steepest-edge weight audit (NP_CHECK contracts in debug builds:
/// devex weights >= 1, steepest-edge weights equal to the true norm).
/// In release builds this still pins down verdict/objective stability
/// under a pathological refactor cadence.
TEST(Pricing, WeightInvariantsHoldUnderFrequentRefactorization) {
  const topo::Topology topology = topo::make_preset('B');
  plan::ScenarioLp lp = plan::build_scenario_lp(topology, 0, false);
  plan::set_plan_capacities(lp, topology, topology.initial_units());
  const Solution reference =
      solve(lp.model, solver_options(SimplexEngine::kSparseLu));
  ASSERT_EQ(reference.status, SolveStatus::kOptimal);
  for (const PricingRule rule : kRules) {
    SimplexOptions options = solver_options(SimplexEngine::kSparseLu, rule);
    options.refactor_interval = 8;
    const Solution got = solve(lp.model, options);
    SCOPED_TRACE(::testing::Message() << "rule " << to_string(rule));
    ASSERT_EQ(got.status, SolveStatus::kOptimal);
    expect_objectives_match(got.objective, reference.objective);
  }
}

// ---- BasisFactor properties ----

/// Dense row-space product B·w over the basis columns (w by position).
std::vector<double> multiply_basis(const std::vector<SparseColumn>& columns,
                                   const std::vector<double>& w) {
  std::vector<double> out(columns.size(), 0.0);
  for (std::size_t p = 0; p < columns.size(); ++p) {
    if (w[p] == 0.0) continue;
    for (const auto& [r, v] : columns[p]) out[r] += v * w[p];
  }
  return out;
}

std::vector<ColumnView> views_of(const std::vector<SparseColumn>& columns) {
  return {columns.begin(), columns.end()};
}

/// Random sparse diagonally-dominant basis: guaranteed nonsingular, a
/// few off-diagonal entries per column like the scenario-LP bases.
std::vector<SparseColumn> random_basis(int m, Rng& rng) {
  std::vector<SparseColumn> columns(m);
  for (int p = 0; p < m; ++p) {
    columns[p].push_back({p, 3.0 + rng.uniform()});
    const int extras = static_cast<int>(rng.uniform_index(3));
    for (int e = 0; e < extras; ++e) {
      const int r = static_cast<int>(rng.uniform_index(m));
      if (r != p) columns[p].push_back({r, -1.0 + 2.0 * rng.uniform()});
    }
  }
  return columns;
}

/// w = B^{-1} a must reproduce a when multiplied back by the basis.
void expect_solves_basis(const BasisFactor& factor,
                         const std::vector<SparseColumn>& columns,
                         const SparseColumn& a, const char* what) {
  std::vector<double> w;
  factor.ftran_column(a, w);
  const std::vector<double> reconstructed = multiply_basis(columns, w);
  std::vector<double> dense_a(columns.size(), 0.0);
  double scale = 1.0;
  for (const auto& [r, v] : a) {
    dense_a[r] += v;
    scale = std::max(scale, std::abs(v));
  }
  for (std::size_t r = 0; r < columns.size(); ++r) {
    ASSERT_NEAR(reconstructed[r], dense_a[r], 1e-6 * scale) << what << " row " << r;
  }
}

SparseColumn random_rhs(int m, Rng& rng) {
  SparseColumn a;
  const int nnz = 1 + static_cast<int>(rng.uniform_index(3));
  for (int e = 0; e < nnz; ++e) {
    a.push_back({static_cast<int>(rng.uniform_index(m)),
                 -2.0 + 4.0 * rng.uniform()});
  }
  return a;
}

TEST(BasisFactorProperty, FactorizationSolvesItsBasis) {
  for (const int m : {1, 4, 17, 60}) {
    Rng rng(test_seed(4) + m);
    const std::vector<SparseColumn> columns = random_basis(m, rng);
    BasisFactor factor;
    ASSERT_TRUE(factor.factorize(m, views_of(columns)));
    EXPECT_EQ(factor.dim(), m);
    EXPECT_EQ(factor.eta_count(), 0);
    for (int trial = 0; trial < 10; ++trial) {
      expect_solves_basis(factor, columns, random_rhs(m, rng), "fresh factor");
    }
    // FTRAN/BTRAN adjoint consistency: <y, B^{-1}x> == <B^{-T}y, x>.
    std::vector<double> x(m), y(m);
    for (int i = 0; i < m; ++i) {
      x[i] = -1.0 + 2.0 * rng.uniform();
      y[i] = -1.0 + 2.0 * rng.uniform();
    }
    std::vector<double> binv_x = x, btrans_y = y;
    factor.ftran(binv_x);
    factor.btran(btrans_y);
    double lhs = 0.0, rhs = 0.0;
    for (int i = 0; i < m; ++i) {
      lhs += y[i] * binv_x[i];
      rhs += btrans_y[i] * x[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-8 * std::max(1.0, std::abs(lhs)));
  }
}

TEST(BasisFactorProperty, SingularBasisRejected) {
  // Two identical columns: structurally nonsingular by counts, but
  // numerically rank deficient.
  std::vector<SparseColumn> columns(3);
  columns[0] = {{0, 1.0}, {1, 2.0}};
  columns[1] = {{0, 1.0}, {1, 2.0}};
  columns[2] = {{2, 1.0}};
  BasisFactor factor;
  EXPECT_FALSE(factor.factorize(3, views_of(columns)));
}

TEST(BasisFactorProperty, EtaFileTracksBasisExchanges) {
  const int m = 40;
  Rng rng(test_seed(5));
  std::vector<SparseColumn> columns = random_basis(m, rng);
  BasisFactor factor;
  ASSERT_TRUE(factor.factorize(m, views_of(columns)));

  bool saw_refactor_preference = false;
  int exchanges = 0;
  for (int update = 0; update < 400; ++update) {
    SparseColumn entering;
    if (update % 3 == 0) {
      // Degenerate exchange: the entering column is a scaled copy of a
      // basis column, so the eta is (near-)trivial — the historical
      // breeding ground for drift and bookkeeping bugs.
      const int p = static_cast<int>(rng.uniform_index(m));
      entering = columns[p];
      for (auto& [r, v] : entering) v *= 2.0;
    } else {
      entering = random_rhs(m, rng);
      entering.push_back({static_cast<int>(rng.uniform_index(m)),
                          3.0 + rng.uniform()});
    }
    std::vector<double> w;
    factor.ftran_column(entering, w);
    int p = -1;
    for (int i = 0; i < m; ++i) {
      if (std::abs(w[i]) > 1e-4 && (p < 0 || std::abs(w[i]) > std::abs(w[p]))) p = i;
    }
    if (p < 0) continue;  // numerically unusable exchange, as in the simplex
    factor.append_eta(p, w);
    columns[p] = entering;
    ++exchanges;
    if (factor.prefers_refactor()) saw_refactor_preference = true;
    if (exchanges % 8 == 0) {
      expect_solves_basis(factor, columns, random_rhs(m, rng), "eta file");
    }
  }
  ASSERT_GT(exchanges, 150);
  // Long eta files must eventually ask for refactorization...
  EXPECT_TRUE(saw_refactor_preference);
  EXPECT_GT(factor.eta_count(), 0);
  // ...and refactorizing the exchanged basis resets the eta file while
  // still solving the same (updated) basis.
  ASSERT_TRUE(factor.factorize(m, views_of(columns)));
  EXPECT_EQ(factor.eta_count(), 0);
  for (int trial = 0; trial < 10; ++trial) {
    expect_solves_basis(factor, columns, random_rhs(m, rng), "refactorized");
  }
}

TEST(BasisFactorProperty, StatsReflectFactorizationAndEtas) {
  const int m = 10;
  Rng rng(test_seed(6));
  std::vector<SparseColumn> columns = random_basis(m, rng);
  BasisFactor factor;
  ASSERT_TRUE(factor.factorize(m, views_of(columns)));
  const long factorizations = factor.stats().factorizations;
  EXPECT_GE(factor.stats().lu_entries, m);  // at least the diagonal
  EXPECT_EQ(factor.stats().eta_entries, 0);
  std::vector<double> w;
  factor.ftran_column(columns[0], w);  // w = e_0
  factor.append_eta(0, w);
  EXPECT_EQ(factor.eta_count(), 1);
  EXPECT_GE(factor.stats().eta_entries, 1);
  ASSERT_TRUE(factor.factorize(m, views_of(columns)));
  EXPECT_EQ(factor.stats().factorizations, factorizations + 1);
  EXPECT_EQ(factor.stats().eta_entries, 0);
}

}  // namespace
}  // namespace np::lp
