// Fault-injection harness: trigger arithmetic is exercised in every
// build; the throw-site integration tests (LP refactorization,
// checkpoint I/O, evaluator workers, rollout steps) require a build
// with NEUROPLAN_FAULTS=ON and skip elsewhere.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "ad/snapshot.hpp"
#include "plan/parallel_evaluator.hpp"
#include "plan/scenario_lp.hpp"
#include "rl/trainer.hpp"
#include "topo/generator.hpp"
#include "util/fault.hpp"

namespace np::util {
namespace {

/// Every test runs against the process-wide injector; disarming on both
/// ends keeps tests order-independent.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().disarm_all(); }
  void TearDown() override { FaultInjector::instance().disarm_all(); }
};

// ---- trigger arithmetic (runs in every build) ----

TEST_F(FaultTest, UnarmedNeverFires) {
  FaultInjector& f = FaultInjector::instance();
  EXPECT_FALSE(f.any_armed());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(f.should_fire("anything"));
  EXPECT_EQ(f.total_triggered(), 0);
  // Unarmed sites do not even count calls (fast path skips bookkeeping).
  EXPECT_EQ(f.calls("anything"), 0);
}

TEST_F(FaultTest, NthCallFiresExactlyOnce) {
  FaultInjector& f = FaultInjector::instance();
  f.arm("site", FaultSpec{0.0, 3});
  EXPECT_TRUE(f.any_armed());
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    if (f.should_fire("site")) {
      EXPECT_EQ(i, 3);
      ++fired;
    }
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(f.calls("site"), 10);
  EXPECT_EQ(f.triggered("site"), 1);
  EXPECT_EQ(f.total_triggered(), 1);
}

TEST_F(FaultTest, ArmedSiteDoesNotAffectOtherSites) {
  FaultInjector& f = FaultInjector::instance();
  f.arm("site", FaultSpec{1.0, 0});
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(f.should_fire("other"));
}

TEST_F(FaultTest, ProbabilityZeroNeverFires) {
  FaultInjector& f = FaultInjector::instance();
  f.arm("site", FaultSpec{0.0, 0});
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(f.should_fire("site"));
}

TEST_F(FaultTest, ProbabilityOneAlwaysFires) {
  FaultInjector& f = FaultInjector::instance();
  f.arm("site", FaultSpec{1.0, 0});
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(f.should_fire("site"));
  EXPECT_EQ(f.triggered("site"), 50);
}

TEST_F(FaultTest, ReseedMakesBernoulliStreamReproducible) {
  FaultInjector& f = FaultInjector::instance();
  std::vector<bool> first, second;
  for (int round = 0; round < 2; ++round) {
    f.disarm_all();
    f.reseed(1234);
    f.arm("site", FaultSpec{0.5, 0});
    auto& out = round == 0 ? first : second;
    for (int i = 0; i < 64; ++i) out.push_back(f.should_fire("site"));
  }
  EXPECT_EQ(first, second);
}

TEST_F(FaultTest, RearmResetsCallCount) {
  FaultInjector& f = FaultInjector::instance();
  f.arm("site", FaultSpec{0.0, 2});
  EXPECT_FALSE(f.should_fire("site"));
  EXPECT_TRUE(f.should_fire("site"));
  f.arm("site", FaultSpec{0.0, 2});  // re-arm: fires on the 2nd call again
  EXPECT_EQ(f.calls("site"), 0);
  EXPECT_FALSE(f.should_fire("site"));
  EXPECT_TRUE(f.should_fire("site"));
}

TEST_F(FaultTest, DisarmAllClearsEverything) {
  FaultInjector& f = FaultInjector::instance();
  f.arm("a", FaultSpec{1.0, 0});
  f.arm("b", FaultSpec{0.0, 1});
  (void)f.should_fire("a");
  f.disarm_all();
  EXPECT_FALSE(f.any_armed());
  EXPECT_EQ(f.total_triggered(), 0);
  EXPECT_EQ(f.calls("a"), 0);
  EXPECT_FALSE(f.should_fire("a"));
  EXPECT_FALSE(f.should_fire("b"));
}

TEST_F(FaultTest, OnSiteThrowsInjectedFaultNamingTheSite) {
  FaultInjector& f = FaultInjector::instance();
  f.arm("lp.refactor", FaultSpec{0.0, 1});
  try {
    f.on_site("lp.refactor");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.site(), "lp.refactor");
    EXPECT_NE(std::string(e.what()).find("lp.refactor"), std::string::npos);
  }
  // Past the nth call the site is quiet again.
  f.on_site("lp.refactor");
}

TEST_F(FaultTest, InjectedFaultIsARuntimeError) {
  // Recovery paths catch std::runtime_error (real I/O and solver
  // failures); injected faults must flow through the same ones.
  EXPECT_THROW(throw InjectedFault("x"), std::runtime_error);
}

TEST_F(FaultTest, ConfigureFromEnvArmsListedSites) {
  FaultInjector& f = FaultInjector::instance();
  ::setenv("NEUROPLAN_FAULT_SITES", "ckpt.write=nth:2;lp.refactor=p:1.0", 1);
  ::setenv("NEUROPLAN_FAULT_SEED", "77", 1);
  f.configure_from_env();
  ::unsetenv("NEUROPLAN_FAULT_SITES");
  ::unsetenv("NEUROPLAN_FAULT_SEED");
  EXPECT_TRUE(f.any_armed());
  EXPECT_FALSE(f.should_fire("ckpt.write"));
  EXPECT_TRUE(f.should_fire("ckpt.write"));
  EXPECT_TRUE(f.should_fire("lp.refactor"));
}

TEST_F(FaultTest, ConfigureFromEnvSkipsMalformedEntries) {
  FaultInjector& f = FaultInjector::instance();
  ::setenv("NEUROPLAN_FAULT_SITES",
           "no-separator;=nth:1;bad=weird:3;bad2=nth:xyz;good=nth:1", 1);
  f.configure_from_env();
  ::unsetenv("NEUROPLAN_FAULT_SITES");
  EXPECT_TRUE(f.should_fire("good"));
  EXPECT_FALSE(f.should_fire("bad"));
  EXPECT_FALSE(f.should_fire("bad2"));
}

TEST_F(FaultTest, ConfigureFromEnvUnsetLeavesDisarmed) {
  ::unsetenv("NEUROPLAN_FAULT_SITES");
  ::unsetenv("NEUROPLAN_FAULT_SEED");
  FaultInjector::instance().configure_from_env();
  EXPECT_FALSE(FaultInjector::instance().any_armed());
}

// ---- throw-site integration (needs a NEUROPLAN_FAULTS=ON build) ----

TEST_F(FaultTest, CheckpointWriteFaultLeavesPreviousSnapshotIntact) {
  if (!NP_FAULTS_ENABLED) GTEST_SKIP() << "built without NEUROPLAN_FAULTS";
  const std::string path = ::testing::TempDir() + "fault_ckpt.state";
  ad::write_snapshot_file(path, "unit", "good");
  FaultInjector::instance().arm("ckpt.write", FaultSpec{0.0, 1});
  EXPECT_THROW(ad::write_snapshot_file(path, "unit", "doomed"), InjectedFault);
  EXPECT_EQ(ad::read_snapshot_file(path, "unit"), "good");
  // The site fired before the temp file existed; a retry succeeds.
  ad::write_snapshot_file(path, "unit", "recovered");
  EXPECT_EQ(ad::read_snapshot_file(path, "unit"), "recovered");
}

TEST_F(FaultTest, LpRefactorFaultPropagatesFromSolve) {
  if (!NP_FAULTS_ENABLED) GTEST_SKIP() << "built without NEUROPLAN_FAULTS";
  const topo::Topology t = topo::make_preset('A');
  plan::ScenarioLp lp = plan::build_scenario_lp(t, plan::kHealthyScenario, true);
  FaultInjector::instance().arm("lp.refactor", FaultSpec{0.0, 1});
  EXPECT_THROW(plan::solve_scenario(lp, {}, false), InjectedFault);
  FaultInjector::instance().disarm_all();
  // The model is still usable once the fault clears.
  plan::ScenarioCheck check = plan::solve_scenario(lp, {}, false);
  EXPECT_GE(check.lp_iterations, 0);
}

TEST_F(FaultTest, ParallelEvaluatorWorkerFaultPropagatesAndPoolSurvives) {
  if (!NP_FAULTS_ENABLED) GTEST_SKIP() << "built without NEUROPLAN_FAULTS";
  const topo::Topology t = topo::make_preset('A');
  plan::ParallelPlanEvaluator eval(t, 3);
  const std::vector<int> plan_units(static_cast<std::size_t>(t.num_links()), 1);
  FaultInjector::instance().arm("plan.worker", FaultSpec{0.0, 1});
  EXPECT_THROW(eval.check(plan_units), InjectedFault);
  FaultInjector::instance().disarm_all();
  // Exception safety contract: the pool drained, the evaluator works.
  const plan::CheckResult after = eval.check(plan_units);
  EXPECT_EQ(after.scenarios_checked, eval.num_scenarios());
  // And a second faulted round still cancels cleanly.
  FaultInjector::instance().arm("plan.worker", FaultSpec{0.0, 2});
  EXPECT_THROW(eval.check(plan_units), InjectedFault);
  FaultInjector::instance().disarm_all();
  EXPECT_EQ(eval.check(plan_units).scenarios_checked, eval.num_scenarios());
}

TEST_F(FaultTest, RolloutStepFaultAbortsEpochAndTrainerRecovers) {
  if (!NP_FAULTS_ENABLED) GTEST_SKIP() << "built without NEUROPLAN_FAULTS";
  const topo::Topology t = topo::make_preset('A');
  rl::TrainConfig config;
  config.env.max_units_per_step = 4;
  config.env.max_trajectory_steps = 100;
  config.network.gcn_layers = 2;
  config.network.gcn_hidden = 8;
  config.network.mlp_hidden = {16};
  config.epochs = 1;
  config.steps_per_epoch = 64;
  config.chunk_steps = 32;
  config.seed = 5;
  rl::A2cTrainer trainer(t, config);
  FaultInjector::instance().arm("rollout.step", FaultSpec{0.0, 7});
  EXPECT_THROW(trainer.run_epoch(), InjectedFault);
  FaultInjector::instance().disarm_all();
  const rl::EpochStats stats = trainer.run_epoch();
  EXPECT_EQ(stats.steps, config.steps_per_epoch);
}

}  // namespace
}  // namespace np::util
