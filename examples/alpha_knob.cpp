// The relax factor alpha as an operator knob (§4.3, Figure 13): sweep
// alpha for a fixed first-stage plan and watch the optimality /
// tractability trade-off — larger alpha explores a bigger pruned space
// (better plans, longer solves).
//
//   ./alpha_knob [topology A-E] [epochs]
//
// Also demonstrates interpretability: the pruned bounds are printed so
// an operator can inspect exactly which search space the ILP was given.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/neuroplan.hpp"
#include "rl/trainer.hpp"
#include "topo/generator.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  np::set_log_level(np::LogLevel::kWarn);
  const char topo_id = argc > 1 ? argv[1][0] : 'A';
  const long epochs = argc > 2 ? std::atol(argv[2]) : 24;

  np::topo::Topology topology = np::topo::make_preset(topo_id);

  // Train once; sweep alpha over the same first-stage plan.
  np::rl::TrainConfig train = np::core::default_train_config(topology, /*seed=*/5);
  train.epochs = static_cast<int>(epochs);
  np::rl::A2cTrainer trainer(topology, train);
  trainer.train();
  trainer.greedy_rollout();
  if (!trainer.has_feasible_plan()) {
    std::printf("RL found no plan in %ld epochs; increase the budget\n", epochs);
    return 1;
  }
  const std::vector<int> first_stage = trainer.best_added_units();
  std::printf("first-stage plan cost: %.1f\n", trainer.best_cost());

  // Interpretability: show the operator the pruned search space.
  std::printf("pruned per-link bounds at alpha=1.5 (non-zero only):\n");
  for (int l = 0; l < topology.num_links(); ++l) {
    if (first_stage[l] > 0) {
      std::printf("  %-16s <= %d units\n", topology.link(l).name.c_str(),
                  static_cast<int>(std::ceil(1.5 * first_stage[l])));
    }
  }

  np::Table table({"alpha", "final cost", "vs first-stage", "ILP seconds"});
  for (double alpha : {1.0, 1.25, 1.5, 2.0}) {
    const np::core::PlanResult r =
        np::core::second_stage(topology, first_stage, alpha, 240.0);
    table.add_row({np::fmt_double(alpha, 2),
                   r.feasible ? np::fmt_double(r.cost, 1) : "x",
                   r.feasible ? np::fmt_double(r.cost / trainer.best_cost(), 3) : "x",
                   np::fmt_double(r.seconds, 1)});
  }
  table.print();
  return 0;
}
