file(REMOVE_RECURSE
  "CMakeFiles/np_ad.dir/adam.cpp.o"
  "CMakeFiles/np_ad.dir/adam.cpp.o.d"
  "CMakeFiles/np_ad.dir/checkpoint.cpp.o"
  "CMakeFiles/np_ad.dir/checkpoint.cpp.o.d"
  "CMakeFiles/np_ad.dir/tape.cpp.o"
  "CMakeFiles/np_ad.dir/tape.cpp.o.d"
  "libnp_ad.a"
  "libnp_ad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_ad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
