# Empty dependencies file for alpha_knob.
# This may be replaced when dependencies are built.
