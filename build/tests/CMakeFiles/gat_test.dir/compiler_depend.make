# Empty compiler generated dependencies file for gat_test.
# This may be replaced when dependencies are built.
