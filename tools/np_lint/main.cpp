// np_lint CLI. Default invocation lints the repo the way CI does:
//
//   np_lint [--repo-root DIR]
//
// scans <root>/src and <root>/tools against the checked-in registries
// <root>/docs/obs_names.txt and <root>/docs/fault_sites.txt, with
// quoted includes resolved against src/ and tools/.
//
// Explicit form (used by the golden-fixture tests):
//
//   np_lint --scan DIR [--scan DIR ...]
//           [--include-root DIR ...]
//           [--obs-names FILE] [--fault-sites FILE]
//
// Output: one "file:line: rule: message" diagnostic per line on
// stdout. Exit 0 = clean (warnings may still print — they are
// advisory), 1 = violations found, 2 = usage or I/O error (an
// unreadable tree must never read as "clean").
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "np_lint/lint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--repo-root DIR]\n"
               "       %s --scan DIR [--scan DIR ...] "
               "[--include-root DIR ...] [--obs-names FILE] "
               "[--fault-sites FILE]\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  np::lint::Options options;
  std::string repo_root = ".";
  bool explicit_scan = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--repo-root") == 0 && has_value) {
      repo_root = argv[++i];
    } else if (std::strcmp(arg, "--scan") == 0 && has_value) {
      options.scan_roots.emplace_back(argv[++i]);
      explicit_scan = true;
    } else if (std::strcmp(arg, "--include-root") == 0 && has_value) {
      options.include_roots.emplace_back(argv[++i]);
    } else if (std::strcmp(arg, "--obs-names") == 0 && has_value) {
      options.obs_names_file = argv[++i];
    } else if (std::strcmp(arg, "--fault-sites") == 0 && has_value) {
      options.fault_sites_file = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (!explicit_scan) {
    options.scan_roots = {repo_root + "/src", repo_root + "/tools"};
    options.include_roots = {repo_root + "/src", repo_root + "/tools"};
    options.obs_names_file = repo_root + "/docs/obs_names.txt";
    options.fault_sites_file = repo_root + "/docs/fault_sites.txt";
  }

  try {
    const auto diagnostics = np::lint::run(options);
    std::size_t errors = 0;
    std::size_t warnings = 0;
    for (const auto& d : diagnostics) {
      std::printf("%s\n", d.to_string().c_str());
      ++(d.warning ? warnings : errors);
    }
    if (errors > 0) {
      std::fprintf(stderr, "np_lint: %zu violation%s, %zu warning%s\n", errors,
                   errors == 1 ? "" : "s", warnings,
                   warnings == 1 ? "" : "s");
      return 1;
    }
    if (warnings > 0) {
      std::fprintf(stderr, "np_lint: clean (%zu warning%s)\n", warnings,
                   warnings == 1 ? "" : "s");
    } else {
      std::fprintf(stderr, "np_lint: clean\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "np_lint: error: %s\n", e.what());
    return 2;
  }
}
