# Empty dependencies file for neuroplan_cli.
# This may be replaced when dependencies are built.
