// Annotated synchronization primitives for Clang's compile-time
// thread-safety analysis (-Wthread-safety).
//
// util::Mutex / util::LockGuard / util::CondVar wrap the std
// primitives and carry capability attributes, so the `thread-safety`
// CMake preset (clang, -Werror=thread-safety-analysis) proves at
// compile time that every access to NP_GUARDED_BY state happens under
// its lock and that NP_EXCLUDES contracts hold — the static complement
// to the TSan preset, which only sees races the tests execute. Under
// GCC (or any non-clang compiler) every attribute expands to nothing
// and the wrappers cost exactly a std::mutex / std::lock_guard /
// std::condition_variable.
//
// Usage pattern (see util/thread_pool.hpp for the canonical example):
//
//   util::Mutex mutex_;
//   std::queue<Task> queue_ NP_GUARDED_BY(mutex_);
//   void submit(Task t) NP_EXCLUDES(mutex_) {
//     util::LockGuard lock(mutex_);
//     queue_.push(std::move(t));
//   }
//
// Layering note: this header is deliberately header-only and std-only
// so np_obs (which np_util links — obs must never link np_util) can
// use the annotated primitives too. Including it adds no link edge.
//
// np_lint enforces the migration: any raw std::mutex / std::lock_guard
// / std::condition_variable outside src/util/ is a lint error
// (rule raw-mutex), so new concurrent code cannot silently opt out of
// the analysis.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// Attribute spellings from the Clang thread-safety-analysis docs.
// Gated on __clang__: GCC would warn (-Wattributes) on the unknown
// attribute names.
#if defined(__clang__)
#define NP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NP_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define NP_CAPABILITY(x) NP_THREAD_ANNOTATION(capability(x))
#define NP_SCOPED_CAPABILITY NP_THREAD_ANNOTATION(scoped_lockable)
#define NP_GUARDED_BY(x) NP_THREAD_ANNOTATION(guarded_by(x))
#define NP_PT_GUARDED_BY(x) NP_THREAD_ANNOTATION(pt_guarded_by(x))
#define NP_REQUIRES(...) \
  NP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define NP_ACQUIRE(...) \
  NP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define NP_RELEASE(...) \
  NP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define NP_TRY_ACQUIRE(...) \
  NP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define NP_EXCLUDES(...) NP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define NP_ASSERT_CAPABILITY(x) \
  NP_THREAD_ANNOTATION(assert_capability(x))
#define NP_RETURN_CAPABILITY(x) NP_THREAD_ANNOTATION(lock_returned(x))
#define NP_NO_THREAD_SAFETY_ANALYSIS \
  NP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace np::util {

/// std::mutex carrying the `capability` attribute so the analysis can
/// track it. Prefer LockGuard over manual lock()/unlock() pairs.
class NP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NP_ACQUIRE() { mutex_.lock(); }
  void unlock() NP_RELEASE() { mutex_.unlock(); }
  bool try_lock() NP_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// The wrapped std::mutex, for interop with std wait machinery.
  /// Only CondVar (below) should need this.
  std::mutex& native_handle() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// Scoped lock over util::Mutex — std::lock_guard with the
/// `scoped_lockable` attribute, so the analysis knows the capability
/// is held for exactly this scope.
class NP_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) NP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() NP_RELEASE() { mutex_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable for util::Mutex, absl::CondVar-style: wait()
/// REQUIRES the mutex, releases it atomically while blocked and
/// reacquires before returning. Callers keep the usual
/// `while (!ready) cv.wait(mutex)` loop, which the analysis can check
/// (a predicate-lambda overload would hide the guarded reads from it).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Block until notified (or spuriously woken — callers loop on their
  /// predicate). The mutex must be held; it is held again on return.
  void wait(Mutex& mutex) NP_REQUIRES(mutex) {
    // Adopt the already-held mutex for the wait, then release ownership
    // back to the caller's LockGuard so it is not unlocked twice.
    std::unique_lock<std::mutex> lock(mutex.native_handle(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Timed wait: returns after `timeout`, a notification, or a spurious
  /// wakeup — callers loop on their predicate either way (the watchdog
  /// monitor is the canonical user: poll interval + prompt shutdown).
  template <class Rep, class Period>
  void wait_for(Mutex& mutex, const std::chrono::duration<Rep, Period>& timeout)
      NP_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.native_handle(), std::adopt_lock);
    cv_.wait_for(lock, timeout);
    lock.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace np::util
