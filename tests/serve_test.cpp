// np::serve test suite: wire-protocol strictness, the engine's
// degradation ladder against ground-truth evaluator verdicts, session
// fault containment, and the chaos acceptance scenario from
// docs/INTERNALS.md §10 — under injected worker faults (including a
// stall wedge watched by the watchdog) every accepted query gets
// exactly one OK/DEGRADED/SHED/ERROR reply and the engine drains clean.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/watchdog.hpp"
#include "plan/evaluator.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "topo/generator.hpp"
#include "util/fault.hpp"

namespace np::serve {
namespace {

/// Collects engine replies across threads; tests block on exact counts
/// so "exactly one reply per submit" is an assertion, not an assumption.
class ReplyBox {
 public:
  void operator()(const Reply& reply) {
    std::lock_guard<std::mutex> lock(mutex_);
    replies_.push_back(reply);
    cv_.notify_all();
  }

  std::vector<Reply> wait_for(std::size_t count) {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool done = cv_.wait_for(lock, std::chrono::seconds(60),
                                   [&] { return replies_.size() >= count; });
    EXPECT_TRUE(done) << "only " << replies_.size() << " of " << count
                      << " replies arrived";
    return replies_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Reply> replies_;
};

Request check_request(long id, const topo::Topology& topology, int units,
                      double deadline_ms = 0.0) {
  Request request;
  request.kind = RequestKind::kCheck;
  request.id = id;
  request.deadline_ms = deadline_ms;
  request.plan.assign(static_cast<std::size_t>(topology.num_links()), units);
  return request;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::instance().disarm_all(); }
  void TearDown() override {
    util::FaultInjector::instance().disarm_all();
    obs::Watchdog::instance().stop();
  }
};

// ---- protocol ----

TEST_F(ServeTest, RequestRoundTripsThroughEncodeParse) {
  Request request;
  request.kind = RequestKind::kCheck;
  request.id = 42;
  request.deadline_ms = 125.5;
  request.plan = {0, 3, 1, 0, 7};
  const Request parsed = parse_request(encode_request(request));
  EXPECT_EQ(parsed.kind, RequestKind::kCheck);
  EXPECT_EQ(parsed.id, 42);
  EXPECT_DOUBLE_EQ(parsed.deadline_ms, 125.5);
  EXPECT_EQ(parsed.plan, request.plan);

  Request ping;
  ping.kind = RequestKind::kPing;
  ping.id = 7;
  EXPECT_EQ(parse_request(encode_request(ping)).kind, RequestKind::kPing);
}

TEST_F(ServeTest, ReplyRoundTripsThroughEncodeParse) {
  Reply reply;
  reply.status = ReplyStatus::kDegraded;
  reply.id = 9;
  reply.reason = "deadline";
  reply.verdict = "unknown";
  reply.scenarios_checked = 4;
  reply.quarantined = 1;
  reply.retries = 1;
  reply.latency_us = 1234.0;
  const Reply parsed = parse_reply(encode_reply(reply));
  EXPECT_EQ(parsed.status, ReplyStatus::kDegraded);
  EXPECT_EQ(parsed.id, 9);
  EXPECT_EQ(parsed.reason, "deadline");
  EXPECT_EQ(parsed.verdict, "unknown");
  EXPECT_EQ(parsed.scenarios_checked, 4);
  EXPECT_EQ(parsed.quarantined, 1);
  EXPECT_EQ(parsed.retries, 1);
}

TEST_F(ServeTest, ParserRejectsEveryDeviationFromTheSchema) {
  // Wrong or missing version token.
  EXPECT_THROW(parse_request("np0 ping id=1"), ParseError);
  EXPECT_THROW(parse_request("ping id=1"), ParseError);
  // Unknown verb, unknown key, key not allowed for the verb.
  EXPECT_THROW(parse_request("np1 explode id=1"), ParseError);
  EXPECT_THROW(parse_request("np1 ping id=1 color=red"), ParseError);
  EXPECT_THROW(parse_request("np1 ping id=1 plan=1,2"), ParseError);
  // Missing / duplicate / malformed values.
  EXPECT_THROW(parse_request("np1 check plan=1,2"), ParseError);
  EXPECT_THROW(parse_request("np1 ping id=1 id=2"), ParseError);
  EXPECT_THROW(parse_request("np1 ping id=banana"), ParseError);
  EXPECT_THROW(parse_request("np1 check id=1 plan=1,,2"), ParseError);
  EXPECT_THROW(parse_request("np1 check id=1 plan=1,-2"), ParseError);
  EXPECT_THROW(parse_request(""), ParseError);
}

TEST_F(ServeTest, FrameReaderReassemblesByteDribbles) {
  const std::string framed = frame("np1 ping id=3");
  FrameReader reader;
  std::string payload;
  std::string error;
  for (std::size_t i = 0; i + 1 < framed.size(); ++i) {
    reader.feed(&framed[i], 1);
    EXPECT_EQ(reader.next(&payload, &error), FrameEvent::kNeedMore);
  }
  reader.feed(&framed[framed.size() - 1], 1);
  ASSERT_EQ(reader.next(&payload, &error), FrameEvent::kFrame);
  EXPECT_EQ(payload, "np1 ping id=3");
  EXPECT_EQ(reader.next(&payload, &error), FrameEvent::kNeedMore);
}

TEST_F(ServeTest, FrameReaderPoisonsOnOversizedLength) {
  FrameReader reader;
  const char huge[4] = {'\xff', '\xff', '\xff', '\x7f'};
  reader.feed(huge, sizeof(huge));
  std::string payload;
  std::string error;
  EXPECT_EQ(reader.next(&payload, &error), FrameEvent::kFatal);
  EXPECT_FALSE(error.empty());
  // Poisoned: later feeds cannot smuggle frames past the corruption.
  const std::string framed = frame("np1 ping id=1");
  reader.feed(framed.data(), framed.size());
  EXPECT_EQ(reader.next(&payload, &error), FrameEvent::kFatal);
}

// ---- engine: the happy rungs of the ladder ----

TEST_F(ServeTest, CheckVerdictsMatchGroundTruthEvaluator) {
  const topo::Topology topology = topo::make_preset('A');
  EngineConfig config;
  config.workers = 1;
  Engine engine(topology, config);

  plan::PlanEvaluator truth(topology, plan::EvaluatorMode::kVanilla);
  for (const int units : {0, 2}) {
    std::vector<int> total = topology.initial_units();
    for (int& u : total) u += units;
    const plan::CheckResult expected = truth.check(total);
    ASSERT_NE(expected.verdict, plan::Verdict::kUnknown);

    ReplyBox box;
    engine.submit(check_request(units, topology, units), std::ref(box));
    const Reply reply = box.wait_for(1).at(0);
    EXPECT_EQ(reply.status, ReplyStatus::kOk);
    EXPECT_EQ(reply.feasible, expected.feasible);
    EXPECT_EQ(reply.verdict, plan::to_string(expected.verdict));
    const std::vector<int> added(static_cast<std::size_t>(topology.num_links()),
                                 units);
    EXPECT_DOUBLE_EQ(reply.cost, topology.plan_cost(added));
  }
  EXPECT_EQ(engine.stats().ok, 2);
  EXPECT_EQ(engine.stats().queries, 2);
}

TEST_F(ServeTest, CostQuotesAndPingInfoAnswerInline) {
  const topo::Topology topology = topo::make_preset('A');
  Engine engine(topology, EngineConfig{});

  ReplyBox box;
  Request cost = check_request(1, topology, 1);
  cost.kind = RequestKind::kCost;
  engine.submit(cost, std::ref(box));

  Request info;
  info.kind = RequestKind::kInfo;
  info.id = 2;
  engine.submit(info, std::ref(box));

  Request ping;
  ping.kind = RequestKind::kPing;
  ping.id = 3;
  engine.submit(ping, std::ref(box));

  const std::vector<Reply> replies = box.wait_for(3);
  for (const Reply& reply : replies) {
    EXPECT_EQ(reply.status, ReplyStatus::kOk);
    if (reply.id == 1) {
      EXPECT_DOUBLE_EQ(reply.cost, topology.plan_cost(cost.plan));
    }
    if (reply.id == 2) {
      EXPECT_EQ(reply.links, topology.num_links());
      EXPECT_EQ(reply.scenarios, topology.num_failures() + 1);
    }
  }
}

TEST_F(ServeTest, MalformedPlanIsATypedErrorNotACrash) {
  const topo::Topology topology = topo::make_preset('A');
  Engine engine(topology, EngineConfig{});

  ReplyBox box;
  Request bad = check_request(1, topology, 1);
  bad.plan.pop_back();
  engine.submit(bad, std::ref(box));
  Request negative = check_request(2, topology, 1);
  negative.plan[0] = -4;
  engine.submit(negative, std::ref(box));

  const std::vector<Reply> replies = box.wait_for(2);
  EXPECT_EQ(replies[0].status, ReplyStatus::kError);
  EXPECT_EQ(replies[0].reason, "bad_plan_size");
  EXPECT_EQ(replies[1].status, ReplyStatus::kError);
  EXPECT_EQ(replies[1].reason, "bad_plan_units");
  EXPECT_EQ(engine.stats().errors, 2);
}

// ---- engine: degradation ----

TEST_F(ServeTest, ExpiredDeadlineDegradesToUnknown) {
  const topo::Topology topology = topo::make_preset('A');
  EngineConfig config;
  config.workers = 1;
  Engine engine(topology, config);

  // ~1us of budget is always gone by the time a worker dequeues.
  ReplyBox box;
  engine.submit(check_request(1, topology, 1, /*deadline_ms=*/0.001),
                std::ref(box));
  const Reply reply = box.wait_for(1).at(0);
  EXPECT_EQ(reply.status, ReplyStatus::kDegraded);
  EXPECT_EQ(reply.reason, "deadline");
  EXPECT_EQ(reply.verdict, "unknown");
  EXPECT_EQ(engine.stats().degraded, 1);
}

TEST_F(ServeTest, SaturatedQueueShedsInsteadOfQueueingUnbounded) {
  const topo::Topology topology = topo::make_preset('A');
  EngineConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  Engine engine(topology, config);

  // Wedge the single worker inside query 0's delivery so the admission
  // decisions are deterministic: exactly one queue slot free, then
  // sheds.
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  ReplyBox box;
  engine.submit(check_request(0, topology, 1), [&, gate](const Reply& reply) {
    entered.set_value();
    gate.wait();
    box(reply);
  });
  entered.get_future().wait();

  engine.submit(check_request(1, topology, 1), std::ref(box));  // queued
  constexpr long kOverflow = 10;
  for (long id = 2; id < 2 + kOverflow; ++id) {
    engine.submit(check_request(id, topology, 1), std::ref(box));  // shed
  }
  release.set_value();

  const std::vector<Reply> replies = box.wait_for(2 + kOverflow);
  EXPECT_EQ(replies.size(), static_cast<std::size_t>(2 + kOverflow));
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.shed, kOverflow);
  EXPECT_EQ(stats.ok, 2);
  for (const Reply& reply : replies) {
    if (reply.status == ReplyStatus::kShed) {
      EXPECT_EQ(reply.reason, "queue_full");
    }
  }
}

TEST_F(ServeTest, DrainShedsNewWorkAndAnswersEverythingAccepted) {
  const topo::Topology topology = topo::make_preset('A');
  EngineConfig config;
  config.workers = 2;
  Engine engine(topology, config);

  ReplyBox box;
  for (long id = 0; id < 10; ++id) {
    engine.submit(check_request(id, topology, 1), std::ref(box));
  }
  engine.drain();
  // Everything admitted before the drain is answered by the time
  // drain() returns; a post-drain submit is shed synchronously.
  engine.submit(check_request(99, topology, 1), std::ref(box));
  const std::vector<Reply> replies = box.wait_for(11);
  EXPECT_EQ(replies.size(), 11u);
  EXPECT_EQ(replies.back().status, ReplyStatus::kShed);
  EXPECT_EQ(replies.back().reason, "draining");
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, 11);
  EXPECT_EQ(stats.ok + stats.shed + stats.degraded + stats.errors, 11);
}

// ---- session fault containment ----

TEST_F(ServeTest, SessionSurvivesMalformedPayloadAndDiesOnCorruptLength) {
  const topo::Topology topology = topo::make_preset('A');
  Engine engine(topology, EngineConfig{});
  std::mutex mutex;
  std::vector<std::string> frames;
  Session session(engine, [&](const std::string& framed) {
    std::lock_guard<std::mutex> lock(mutex);
    frames.push_back(framed);
  });

  // Malformed payload: one typed ERROR (id=-1), connection lives.
  const std::string garbage = frame("np1 bogus id=!!");
  session.on_bytes(garbage.data(), garbage.size());
  ASSERT_EQ(frames.size(), 1u);
  {
    FrameReader reader;
    reader.feed(frames[0].data(), frames[0].size());
    std::string payload;
    std::string error;
    ASSERT_EQ(reader.next(&payload, &error), FrameEvent::kFrame);
    const Reply reply = parse_reply(payload);
    EXPECT_EQ(reply.status, ReplyStatus::kError);
    EXPECT_EQ(reply.id, -1);
  }
  EXPECT_FALSE(session.dead());

  // The same session still serves valid traffic afterwards.
  const std::string ping = frame("np1 ping id=5");
  session.on_bytes(ping.data(), ping.size());
  ASSERT_EQ(frames.size(), 2u);

  // A corrupt length prefix is fatal: one goodbye error, then dead.
  const char huge[4] = {'\xff', '\xff', '\xff', '\x7f'};
  session.on_bytes(huge, sizeof(huge));
  EXPECT_TRUE(session.dead());
  ASSERT_EQ(frames.size(), 3u);
  // Dead sessions ignore further input entirely.
  session.on_bytes(ping.data(), ping.size());
  EXPECT_EQ(frames.size(), 3u);
}

// ---- fault-injected ladder rungs (need NEUROPLAN_FAULTS=ON) ----

TEST_F(ServeTest, TransientWorkerFaultRetriesOnceThenAnswersOk) {
  if (!NP_FAULTS_ENABLED) GTEST_SKIP() << "built without NEUROPLAN_FAULTS";
  const topo::Topology topology = topo::make_preset('A');
  EngineConfig config;
  config.workers = 1;
  Engine engine(topology, config);

  util::FaultInjector::instance().arm("serve.worker", util::FaultSpec{0.0, 1});
  ReplyBox box;
  engine.submit(check_request(1, topology, 1), std::ref(box));
  const Reply reply = box.wait_for(1).at(0);
  EXPECT_EQ(reply.status, ReplyStatus::kOk);
  EXPECT_EQ(reply.retries, 1);
  EXPECT_EQ(engine.stats().retries, 1);
  EXPECT_EQ(engine.stats().ok, 1);
}

TEST_F(ServeTest, TransientScenarioFaultRetriesColdThenAnswersOk) {
  if (!NP_FAULTS_ENABLED) GTEST_SKIP() << "built without NEUROPLAN_FAULTS";
  const topo::Topology topology = topo::make_preset('A');
  EngineConfig config;
  config.workers = 1;
  Engine engine(topology, config);

  // One LP refactorization fault: the first scenario solve dies, the
  // cold retry succeeds — OK with the retry counted, nothing
  // quarantined.
  util::FaultInjector::instance().arm("lp.refactor", util::FaultSpec{0.0, 1});
  ReplyBox box;
  engine.submit(check_request(1, topology, 1), std::ref(box));
  const Reply reply = box.wait_for(1).at(0);
  EXPECT_EQ(reply.status, ReplyStatus::kOk);
  EXPECT_EQ(reply.retries, 1);
  EXPECT_TRUE(engine.quarantined_scenarios().empty());
}

TEST_F(ServeTest, PersistentScenarioFaultQuarantinesAndKeepsServing) {
  if (!NP_FAULTS_ENABLED) GTEST_SKIP() << "built without NEUROPLAN_FAULTS";
  const topo::Topology topology = topo::make_preset('A');
  EngineConfig config;
  config.workers = 1;
  Engine engine(topology, config);

  // Every solve fails: the retry fails too, so the offending scenario
  // is quarantined and the query degrades instead of crashing the
  // shard.
  util::FaultSpec always;
  always.probability = 1.0;
  util::FaultInjector::instance().arm("lp.refactor", always);
  ReplyBox box;
  engine.submit(check_request(1, topology, 1), std::ref(box));
  const Reply faulted = box.wait_for(1).at(0);
  EXPECT_EQ(faulted.status, ReplyStatus::kDegraded);
  EXPECT_EQ(faulted.reason, "quarantined");
  EXPECT_FALSE(engine.quarantined_scenarios().empty());
  EXPECT_GE(engine.stats().quarantined, 1);

  // Faults cleared: the quarantine outlives them. A plan that passes
  // every solved scenario cannot be trusted while scenarios are
  // skipped, so the reply is DEGRADED kUnknown (a definitive
  // infeasibility at a non-quarantined scenario would still answer OK).
  util::FaultInjector::instance().disarm_all();
  plan::PlanEvaluator truth(topology, plan::EvaluatorMode::kVanilla);
  int units = 1;
  for (; units <= 64; units *= 2) {
    std::vector<int> total = topology.initial_units();
    for (int& u : total) u += units;
    if (truth.check(total).feasible) break;
  }
  ASSERT_LE(units, 64) << "no feasible uniform plan on preset A";
  engine.submit(check_request(2, topology, units), std::ref(box));
  const Reply after = box.wait_for(2).at(1);
  EXPECT_EQ(after.status, ReplyStatus::kDegraded);
  EXPECT_EQ(after.reason, "quarantined");
  EXPECT_GT(after.scenarios_checked, 0);
  EXPECT_GT(after.quarantined, 0);
}

// ---- chaos acceptance (ISSUE: the robustness contract, end to end) ----

TEST_F(ServeTest, ChaosEveryAcceptedQueryGetsExactlyOneReplyAndDrainIsClean) {
  if (!NP_FAULTS_ENABLED) GTEST_SKIP() << "built without NEUROPLAN_FAULTS";
  const topo::Topology topology = topo::make_preset('A');
  EngineConfig config;
  config.workers = 2;
  config.queue_capacity = 16;
  config.default_deadline_ms = 200.0;
  config.max_backlog_ms = 2000.0;
  Engine engine(topology, config);

  obs::WatchdogConfig watchdog;
  watchdog.stall_seconds = 0.05;
  obs::Watchdog::instance().start(watchdog);
  const long stalls_before = obs::Watchdog::instance().stalls_flagged();

  // Phase 1: wedge a worker mid-query for far longer than the watchdog
  // interval (and the query deadline). The worker must get flagged, the
  // query must still terminate (degraded on its deadline), nothing may
  // crash.
  util::FaultSpec wedge;
  wedge.nth_call = 1;
  wedge.stall_ms = 400;
  util::FaultInjector::instance().arm("serve.worker", wedge);

  constexpr long kPhase1 = 30;
  ReplyBox box;
  const double deadlines[] = {5.0, 50.0, 0.0};  // mixed deadline classes
  for (long id = 0; id < kPhase1; ++id) {
    engine.submit(check_request(id, topology, 1, deadlines[id % 3]),
                  std::ref(box));
  }
  box.wait_for(kPhase1);
  EXPECT_GT(obs::Watchdog::instance().stalls_flagged(), stalls_before)
      << "watchdog missed the wedged serve worker";

  // Phase 2: random worker faults under continued load.
  util::FaultSpec flaky;
  flaky.probability = 0.3;
  util::FaultInjector::instance().arm("serve.worker", flaky);
  constexpr long kPhase2 = 70;
  for (long id = kPhase1; id < kPhase1 + kPhase2; ++id) {
    engine.submit(check_request(id, topology, 1, deadlines[id % 3]),
                  std::ref(box));
  }
  const std::vector<Reply> replies = box.wait_for(kPhase1 + kPhase2);
  util::FaultInjector::instance().disarm_all();

  // Exactly one terminal reply per submission, each a ladder state.
  ASSERT_EQ(replies.size(), static_cast<std::size_t>(kPhase1 + kPhase2));
  std::vector<int> seen(static_cast<std::size_t>(kPhase1 + kPhase2), 0);
  for (const Reply& reply : replies) {
    ASSERT_GE(reply.id, 0);
    ASSERT_LT(reply.id, kPhase1 + kPhase2);
    ++seen[static_cast<std::size_t>(reply.id)];
    EXPECT_TRUE(reply.status == ReplyStatus::kOk ||
                reply.status == ReplyStatus::kDegraded ||
                reply.status == ReplyStatus::kShed ||
                reply.status == ReplyStatus::kError)
        << "unexpected status for id " << reply.id;
  }
  for (long id = 0; id < kPhase1 + kPhase2; ++id) {
    EXPECT_EQ(seen[static_cast<std::size_t>(id)], 1)
        << "query " << id << " answered " << seen[static_cast<std::size_t>(id)]
        << " times";
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, kPhase1 + kPhase2);
  EXPECT_EQ(stats.ok + stats.degraded + stats.shed + stats.errors,
            kPhase1 + kPhase2);

  // Clean drain with faults disarmed: no stuck workers, no leftovers.
  engine.drain();
  EXPECT_TRUE(engine.draining());
}

}  // namespace
}  // namespace np::serve
