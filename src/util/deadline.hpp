// Monotonic wall-clock deadline threaded through the solver stack so
// every scenario check is bounded in *time*, not just iterations: one
// degenerate LP must never stall an epoch. A Deadline is a point on
// std::chrono::steady_clock; the default-constructed value is
// unlimited and costs a single branch to test, so plumbing it through
// hot paths is free for callers that never set one.
//
// Deadlines compose with the per-solve `time_limit_seconds` budget the
// simplex already honors: the solver stops at whichever bound trips
// first and reports SolveStatus::kTimeLimit either way.
#pragma once

#include <chrono>
#include <limits>

namespace np::util {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited: never expires.
  Deadline() = default;

  /// Expires `seconds` of wall clock from now. Non-positive budgets
  /// produce an already-expired deadline (callers treat "no budget
  /// left" uniformly).
  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.unlimited_ = false;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline unlimited() { return Deadline(); }

  bool is_unlimited() const { return unlimited_; }

  /// True once the deadline has passed. Unlimited deadlines never
  /// expire and skip the clock read entirely.
  bool expired() const { return !unlimited_ && Clock::now() >= at_; }

  /// Seconds of budget left (clamped at 0); +inf when unlimited.
  double remaining_seconds() const {
    if (unlimited_) return std::numeric_limits<double>::infinity();
    const double left = std::chrono::duration<double>(at_ - Clock::now()).count();
    return left > 0.0 ? left : 0.0;
  }

 private:
  bool unlimited_ = true;
  Clock::time_point at_{};
};

}  // namespace np::util
