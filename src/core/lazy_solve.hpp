// Lazy scenario generation for planning MILPs.
//
// Materializing every failure scenario in one MILP (the paper's naive
// ILP) blows up with topology size — exactly the scalability wall §3.2
// describes. This helper keeps the MILP small: solve with a scenario
// subset, check the resulting plan against ALL scenarios with the plan
// evaluator, add the violated scenario, repeat.
//
// Soundness: each round's MILP is a relaxation of the full problem
// (fewer constraints), so its optimum lower-bounds the full optimum;
// when the returned plan also passes the full evaluator check it is
// feasible for the full problem — hence optimal (up to the MILP gap).
//
// Both NeuroPlan's second stage and the ILP-heur baseline run through
// this helper (ILP-heur additionally coarsens the capacity unit, which
// is where its optimality loss comes from).
#pragma once

#include <string>
#include <vector>

#include "core/planner.hpp"
#include "milp/branch_and_bound.hpp"
#include "plan/formulation.hpp"

namespace np::core {

struct LazySolveConfig {
  int initial_failures = 1;     ///< seed scenarios besides the healthy one
  int max_rounds = 128;
  double total_time_limit_seconds = 600.0;
  double time_limit_per_solve_seconds = 120.0;
  double relative_gap = 1e-4;
  /// Optional per-link ADDED units of a plan known to be feasible for
  /// every scenario and inside `base`'s bounds (e.g. NeuroPlan's
  /// first-stage plan). Injected as an integer warm start into every
  /// round's MILP so time-limited rounds still carry an incumbent.
  std::vector<int> seed_added_units;
  /// Failure indices to include from round 1 (in addition to the first
  /// initial_failures ones) — e.g. the binding set a previous coarse
  /// pass discovered.
  std::vector<int> initial_scenario_set;
};

struct LazySolveResult {
  PlanResult plan;
  int rounds = 0;
  int scenarios_used = 0;  ///< failures in the final MILP (healthy excluded)
  /// Failure indices that ended up in the MILP — the binding set.
  std::vector<int> binding_failures;
  long lp_iterations = 0;
};

/// `base` supplies bounds / unit multiplier / aggregation; its failure
/// subset fields are overwritten by the generation loop.
LazySolveResult lazy_solve(const topo::Topology& topology,
                           plan::FormulationOptions base,
                           const LazySolveConfig& config = {});

}  // namespace np::core
