file(REMOVE_RECURSE
  "CMakeFiles/abl_seed_variance.dir/abl_seed_variance.cpp.o"
  "CMakeFiles/abl_seed_variance.dir/abl_seed_variance.cpp.o.d"
  "abl_seed_variance"
  "abl_seed_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_seed_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
