#include "topo/transform.hpp"

#include <cmath>
#include <stdexcept>

namespace np::topo {

namespace {

/// z-normalize a strided sequence in place (mean 0, std 1); constant
/// sequences normalize to all zeros. Works on matrix columns directly
/// so node_features_into needs no scratch vector; the ascending
/// accumulation matches the old contiguous version bitwise.
void z_normalize(double* values, std::size_t count, std::size_t stride) {
  if (count == 0) return;
  double mean = 0.0;
  for (std::size_t i = 0; i < count; ++i) mean += values[i * stride];
  mean /= static_cast<double>(count);
  double var = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double v = values[i * stride];
    var += (v - mean) * (v - mean);
  }
  var /= static_cast<double>(count);
  const double std_dev = std::sqrt(var);
  for (std::size_t i = 0; i < count; ++i) {
    double& v = values[i * stride];
    v = std_dev > 1e-12 ? (v - mean) / std_dev : 0.0;
  }
}

}  // namespace

TransformedGraph node_link_transform(const Topology& topology) {
  TransformedGraph graph;
  const int n = topology.num_links();
  graph.num_nodes = n;

  auto unordered_pair_equal = [&](int i, int j) {
    const IpLink& a = topology.link(i);
    const IpLink& b = topology.link(j);
    const int a_lo = std::min(a.site_a, a.site_b), a_hi = std::max(a.site_a, a.site_b);
    const int b_lo = std::min(b.site_a, b.site_b), b_hi = std::max(b.site_a, b.site_b);
    return a_lo == b_lo && a_hi == b_hi;
  };
  auto share_endpoint = [&](int i, int j) {
    const IpLink& a = topology.link(i);
    const IpLink& b = topology.link(j);
    return a.site_a == b.site_a || a.site_a == b.site_b || a.site_b == b.site_a ||
           a.site_b == b.site_b;
  };

  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (share_endpoint(i, j) && !unordered_pair_equal(i, j)) {
        graph.edges.emplace_back(i, j);
      }
    }
  }

  // Eq. 7 operator: D^{-1/2} (A + I) D^{-1/2} with D the degree matrix
  // of A + I (self-loops included).
  std::vector<double> degree(n, 1.0);  // self-loop
  for (const auto& [i, j] : graph.edges) {
    degree[i] += 1.0;
    degree[j] += 1.0;
  }
  std::vector<la::Triplet> triplets;
  triplets.reserve(graph.edges.size() * 2 + n);
  for (int i = 0; i < n; ++i) {
    triplets.push_back({static_cast<std::size_t>(i), static_cast<std::size_t>(i),
                        1.0 / degree[i]});
  }
  for (const auto& [i, j] : graph.edges) {
    const double w = 1.0 / std::sqrt(degree[i] * degree[j]);
    triplets.push_back({static_cast<std::size_t>(i), static_cast<std::size_t>(j), w});
    triplets.push_back({static_cast<std::size_t>(j), static_cast<std::size_t>(i), w});
  }
  graph.normalized_adjacency = std::make_shared<la::CsrMatrix>(
      la::CsrMatrix(static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                    std::move(triplets)));
  return graph;
}

int feature_dimension(bool include_static_features) {
  return include_static_features ? 4 : 1;
}

la::Matrix node_features(const Topology& topology,
                         const std::vector<int>& total_units,
                         bool include_static_features) {
  la::Matrix features;
  node_features_into(topology, total_units, include_static_features, features);
  return features;
}

void node_features_into(const Topology& topology,
                        const std::vector<int>& total_units,
                        bool include_static_features, la::Matrix& out) {
  const int n = topology.num_links();
  if (total_units.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("node_features: unit vector size mismatch");
  }
  const std::size_t f =
      static_cast<std::size_t>(feature_dimension(include_static_features));
  if (out.rows() != static_cast<std::size_t>(n) || out.cols() != f) {
    out = la::Matrix(static_cast<std::size_t>(n), f, 0.0);
  }

  for (int i = 0; i < n; ++i) out(i, 0) = static_cast<double>(total_units[i]);
  z_normalize(out.data(), static_cast<std::size_t>(n), f);

  if (include_static_features) {
    for (int i = 0; i < n; ++i) {
      const int cap = topology.link_max_units(i);
      out(i, 1) = cap > 0 ? static_cast<double>(total_units[i]) / cap : 0.0;
      out(i, 2) = topology.link_length_km(i);
      out(i, 3) = cap > 0 ? static_cast<double>(cap - total_units[i]) / cap : 0.0;
    }
    z_normalize(out.data() + 2, static_cast<std::size_t>(n), f);
  }
}

}  // namespace np::topo
