// Bump allocator for inference intermediates (nn::InferenceEngine).
//
// An Arena hands out cache-line-aligned double/byte spans from one
// preallocated chunk; reset() rewinds the cursor without releasing
// memory, so a steady-state forward pass that stays within the
// high-water mark of its warmup pass performs ZERO heap allocations.
// Overflow mid-pass is handled without invalidating live pointers: the
// overflowing request is served from a fresh chunk, and the next
// reset() coalesces every chunk into one buffer sized to the high-water
// mark — after which the arena is allocation-free again. The
// `reallocations()` counter makes that warmup/steady-state boundary
// testable (tests assert it stops moving).
//
// Not thread-safe; keep one Arena per owner (the inference engine runs
// forwards on a single thread).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace np::la {

class Arena {
 public:
  /// Starts empty; the first allocation (or reserve()) creates storage.
  Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Grow capacity to at least `bytes` (no-op when already large
  /// enough). Call during setup so the hot path never overflows.
  void reserve(std::size_t bytes);

  /// `count` doubles, 64-byte aligned, zero-INITIALIZED BY THE CALLER
  /// (contents are indeterminate). Valid until the next reset().
  double* alloc_doubles(std::size_t count);

  /// `count` bytes, 64-byte aligned. Valid until the next reset().
  std::uint8_t* alloc_bytes(std::size_t count);

  /// Rewind to empty, keeping capacity. If the previous pass
  /// overflowed into extra chunks, they are coalesced into one buffer
  /// here (the one place allocation can happen between passes).
  void reset();

  /// Bytes handed out since the last reset() (aligned sizes).
  std::size_t used_bytes() const { return used_; }
  /// Largest used_bytes() ever observed — the steady-state footprint.
  std::size_t high_water_bytes() const { return high_water_; }
  /// Total bytes owned across chunks.
  std::size_t capacity_bytes() const { return capacity_; }
  /// Number of heap allocations ever made by this arena. Stable across
  /// passes == the hot path is allocation-free.
  long reallocations() const { return reallocations_; }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
    std::size_t offset = 0;
  };

  std::uint8_t* alloc_aligned(std::size_t bytes);
  void add_chunk(std::size_t bytes);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< chunk currently being bumped
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t capacity_ = 0;
  long reallocations_ = 0;
};

}  // namespace np::la
