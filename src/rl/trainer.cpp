#include "rl/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace np::rl {

namespace {

nn::NetworkConfig reconcile(const TrainConfig& config) {
  nn::NetworkConfig net = config.network;
  net.feature_dim = topo::feature_dimension(config.env.include_static_features);
  net.max_units_per_step = config.env.max_units_per_step;
  return net;
}

}  // namespace

A2cTrainer::A2cTrainer(const topo::Topology& topology, const TrainConfig& config)
    : config_(config),
      rng_(config.seed),
      env_(topology, config.env),
      network_(reconcile(config), rng_),
      actor_optimizer_(ad::AdamConfig{.learning_rate = config.actor_learning_rate}),
      critic_optimizer_(ad::AdamConfig{.learning_rate = config.critic_learning_rate}) {
  if (config.steps_per_epoch < 1 || config.epochs < 1 || config.chunk_steps < 1) {
    throw std::invalid_argument("A2cTrainer: epochs/steps/chunk must be positive");
  }
  // Algorithm 1 line 19/22: the actor update touches theta and theta_g,
  // the critic update theta_v and theta_g.
  actor_optimizer_.add_parameters(network_.actor_parameters());
  actor_optimizer_.add_parameters(network_.gnn_parameters());
  critic_optimizer_.add_parameters(network_.critic_parameters());
  critic_optimizer_.add_parameters(network_.gnn_parameters());
}

int A2cTrainer::sample_action(const la::Matrix& log_probs,
                              const std::vector<std::uint8_t>& mask) {
  // Categorical sample over valid entries; probabilities sum to 1.
  double r = rng_.uniform();
  int last_valid = -1;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (!mask[i]) continue;
    last_valid = static_cast<int>(i);
    r -= std::exp(log_probs(0, i));
    if (r < 0.0) return static_cast<int>(i);
  }
  if (last_valid < 0) throw std::logic_error("sample_action: dead mask");
  return last_valid;  // numeric slack
}

double A2cTrainer::critic_value_now() {
  ad::Tape tape;
  ad::Tensor v = network_.value(tape, env_.adjacency(), env_.features());
  return tape.value(v)(0, 0);
}

EpochStats A2cTrainer::run_epoch() {
  Stopwatch watch;
  EpochStats stats;
  stats.epoch = ++epoch_counter_;
  stats.best_cost_in_epoch = kUnset;

  std::vector<StepRecord> buffer;
  buffer.reserve(config_.steps_per_epoch);
  double trajectory_return = 0.0;
  double return_sum = 0.0;

  env_.reset();
  while (static_cast<int>(buffer.size()) < config_.steps_per_epoch) {
    StepRecord record;
    record.features = env_.features();
    record.mask = env_.action_mask();

    {
      ad::Tape tape;
      ad::Tensor log_probs = network_.policy_log_probs(tape, env_.adjacency(),
                                                       record.features, record.mask);
      ad::Tensor value = network_.value(tape, env_.adjacency(), record.features);
      record.action = sample_action(tape.value(log_probs), record.mask);
      record.log_prob = tape.value(log_probs)(0, record.action);
      record.value = tape.value(value)(0, 0);
    }

    const StepResult step = env_.step(record.action);
    record.reward = step.reward;
    record.terminal = step.done;
    trajectory_return += step.reward;
    buffer.push_back(std::move(record));

    if (step.done) {
      ++stats.trajectories;
      return_sum += trajectory_return;
      trajectory_return = 0.0;
      if (step.feasible) {
        ++stats.feasible_trajectories;
        const double cost = env_.added_cost();
        stats.best_cost_in_epoch = std::min(stats.best_cost_in_epoch, cost);
        if (cost < best_cost_) {
          best_cost_ = cost;
          best_added_ = env_.added_units();
          log_info("rl: new best feasible plan, cost ", cost, " (epoch ",
                   stats.epoch, ")");
        }
      }
      env_.reset();
    }
  }
  stats.steps = static_cast<int>(buffer.size());

  // GAE over the epoch buffer; a cut-off trajectory bootstraps with the
  // critic's estimate of the state after the last step.
  std::vector<double> rewards(buffer.size()), values(buffer.size());
  std::vector<bool> terminal(buffer.size());
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    rewards[i] = buffer[i].reward;
    values[i] = buffer[i].value;
    terminal[i] = buffer[i].terminal;
  }
  const double last_value = buffer.back().terminal ? 0.0 : critic_value_now();
  GaeResult gae = compute_gae(rewards, values, terminal, last_value, config_.gae);
  normalize_advantages(gae.advantages);

  for (int it = 0; it < std::max(1, config_.update_iterations); ++it) {
    update_policy(buffer, gae.advantages);
    update_critic(buffer, gae.rewards_to_go);
  }

  if (stats.trajectories > 0) stats.mean_return = return_sum / stats.trajectories;
  stats.best_cost_so_far = best_cost_;
  stats.seconds = watch.seconds();
  return stats;
}

void A2cTrainer::update_policy(const std::vector<StepRecord>& buffer,
                               const std::vector<double>& advantages) {
  actor_optimizer_.zero_grad();
  const double inv_n = 1.0 / static_cast<double>(buffer.size());
  for (std::size_t begin = 0; begin < buffer.size(); begin += config_.chunk_steps) {
    const std::size_t end =
        std::min(buffer.size(), begin + static_cast<std::size_t>(config_.chunk_steps));
    ad::Tape tape;
    ad::Tensor loss = tape.constant(la::Matrix(1, 1, 0.0));
    for (std::size_t i = begin; i < end; ++i) {
      ad::Tensor log_probs = network_.policy_log_probs(
          tape, env_.adjacency(), buffer[i].features, buffer[i].mask);
      ad::Tensor logp =
          tape.pick(log_probs, 0, static_cast<std::size_t>(buffer[i].action));
      if (config_.ppo_clip > 0.0) {
        // Clipped surrogate: -min(ratio*A, clip(ratio)*A). When the
        // clipped branch is active the objective is locally constant in
        // the parameters, so the step contributes no gradient.
        ad::Tensor ratio = tape.exp(tape.sub(
            logp, tape.constant(la::Matrix(1, 1, buffer[i].log_prob))));
        const double r = tape.value(ratio)(0, 0);
        const double clipped =
            std::clamp(r, 1.0 - config_.ppo_clip, 1.0 + config_.ppo_clip);
        const double adv = advantages[i];
        if (r * adv <= clipped * adv + 1e-15) {
          loss = tape.add(loss, tape.scale(ratio, -adv * inv_n));
        }
      } else {
        // Algorithm 1's plain policy-gradient loss: -(advantage * logp).
        loss = tape.add(loss, tape.scale(logp, -advantages[i] * inv_n));
      }
      if (config_.entropy_coefficient > 0.0) {
        ad::Tensor entropy = tape.entropy_from_log_probs(log_probs);
        loss = tape.add(loss,
                        tape.scale(entropy, -config_.entropy_coefficient * inv_n));
      }
    }
    tape.backward(loss);  // accumulates into actor + gnn parameter grads
  }
  actor_optimizer_.step();
}

void A2cTrainer::update_critic(const std::vector<StepRecord>& buffer,
                               const std::vector<double>& rewards_to_go) {
  critic_optimizer_.zero_grad();
  const double inv_n = 1.0 / static_cast<double>(buffer.size());
  for (std::size_t begin = 0; begin < buffer.size(); begin += config_.chunk_steps) {
    const std::size_t end =
        std::min(buffer.size(), begin + static_cast<std::size_t>(config_.chunk_steps));
    ad::Tape tape;
    ad::Tensor loss = tape.constant(la::Matrix(1, 1, 0.0));
    for (std::size_t i = begin; i < end; ++i) {
      ad::Tensor value = network_.value(tape, env_.adjacency(), buffer[i].features);
      ad::Tensor diff =
          tape.sub(value, tape.constant(la::Matrix(1, 1, rewards_to_go[i])));
      loss = tape.add(loss, tape.scale(tape.square(diff), inv_n));
    }
    tape.backward(loss);
  }
  critic_optimizer_.step();
}

A2cTrainer::PolicyEvaluation A2cTrainer::evaluate_policy(int rollouts) {
  if (rollouts < 1) throw std::invalid_argument("evaluate_policy: rollouts < 1");
  PolicyEvaluation eval;
  eval.rollouts = rollouts;
  double cost_sum = 0.0;
  double best = kUnset;
  for (int r = 0; r < rollouts; ++r) {
    env_.reset();
    while (!env_.done()) {
      const la::Matrix features = env_.features();
      const std::vector<std::uint8_t> mask = env_.action_mask();
      int action = -1;
      {
        ad::Tape tape;
        ad::Tensor log_probs =
            network_.policy_log_probs(tape, env_.adjacency(), features, mask);
        action = sample_action(tape.value(log_probs), mask);
      }
      const StepResult step = env_.step(action);
      if (step.feasible) {
        ++eval.feasible;
        const double cost = env_.added_cost();
        cost_sum += cost;
        best = std::min(best, cost);
        if (cost < best_cost_) {
          best_cost_ = cost;
          best_added_ = env_.added_units();
        }
      }
    }
  }
  env_.reset();
  if (eval.feasible > 0) {
    eval.best_cost = best;
    eval.mean_cost = cost_sum / eval.feasible;
  }
  return eval;
}

bool A2cTrainer::greedy_rollout() {
  env_.reset();
  bool feasible = false;
  while (!env_.done()) {
    const la::Matrix features = env_.features();
    const std::vector<std::uint8_t> mask = env_.action_mask();
    int action = -1;
    {
      ad::Tape tape;
      ad::Tensor log_probs =
          network_.policy_log_probs(tape, env_.adjacency(), features, mask);
      const la::Matrix& lp = tape.value(log_probs);
      double best = -1e301;
      for (std::size_t i = 0; i < mask.size(); ++i) {
        if (mask[i] && lp(0, i) > best) {
          best = lp(0, i);
          action = static_cast<int>(i);
        }
      }
    }
    if (action < 0) break;  // dead mask
    const StepResult step = env_.step(action);
    if (step.feasible) {
      feasible = true;
      const double cost = env_.added_cost();
      if (cost < best_cost_) {
        best_cost_ = cost;
        best_added_ = env_.added_units();
        log_info("rl: greedy rollout improved best plan to ", cost);
      }
    }
  }
  env_.reset();
  return feasible;
}

std::vector<EpochStats> A2cTrainer::train() {
  std::vector<EpochStats> history;
  double best_seen = kUnset;
  int stale_epochs = 0;
  for (int e = 0; e < config_.epochs; ++e) {
    history.push_back(run_epoch());
    const EpochStats& stats = history.back();
    log_info("rl: epoch ", stats.epoch, " return ", stats.mean_return, " best ",
             stats.best_cost_so_far == kUnset ? -1.0 : stats.best_cost_so_far);
    if (config_.patience > 0) {
      if (best_cost_ < best_seen - 1e-9) {
        best_seen = best_cost_;
        stale_epochs = 0;
      } else if (has_feasible_plan() && ++stale_epochs >= config_.patience) {
        log_info("rl: early stop after ", stale_epochs, " stale epochs");
        break;
      }
    }
  }
  return history;
}

}  // namespace np::rl
