// Two-phase bounded-variable revised simplex.
//
// The model  min c^T x,  lo_r <= a_r.x <= hi_r,  lb <= x <= ub  is put in
// the computational form  A z = 0  by introducing one slack per row
// (a_r.x - s_r = 0 with s_r in [lo_r, hi_r]). Cold starts use a slack
// crash: every row whose resting activity fits its slack bounds gets
// the slack basic, so phase 1 minimizes artificials only on the
// genuinely violated rows (equality rows with nonzero rhs) instead of
// all of them; phase 2 fixes artificials to zero and optimizes the
// real objective. Basis linear
// algebra goes through a pluggable engine: the default keeps a sparse
// LU factorization with a product-form eta file (lp/factor.hpp) —
// FTRAN/BTRAN in O(fill), refactorization in O(fill^2)-ish — and the
// legacy dense m x m inverse survives behind
// SimplexOptions::engine = kDenseInverse for differential testing.
// Entering-variable selection is a pluggable PricingRule (Dantzig /
// devex / steepest edge) over a sharded partial-pricing candidate list
// on large models (optimality is only declared after a full failed
// sweep with current duals), with an automatic Bland fallback against
// cycling; the ratio test supports bound flips.
//
// Scale target: the NeuroPlan plan-evaluator feasibility LPs (hundreds
// of rows, a few thousand columns) and the pruned planning ILPs solved
// by np::milp. This plays the role Gurobi plays in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/model.hpp"
#include "util/deadline.hpp"

namespace np::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeLimit,
};

const char* to_string(SolveStatus status);

/// Simplex status of one variable (structural or slack) in a basis.
enum class VarStatus : std::uint8_t {
  kBasic,
  kAtLower,
  kAtUpper,
  kNonbasicFree,  // free variable held at zero
};

/// Warm-start basis: one status per structural variable followed by one
/// per row slack (size = num_variables + num_rows). The solver verifies
/// it (count of basics, nonsingularity) and silently falls back to a
/// cold start when invalid — warm starts are an optimization, never a
/// correctness requirement.
struct Basis {
  std::vector<VarStatus> statuses;
  bool empty() const { return statuses.empty(); }
};

/// Basis linear-algebra backend.
enum class SimplexEngine {
  /// Sparse LU + product-form eta file (lp/factor.hpp). Default: the
  /// scenario LPs are extremely sparse, so FTRAN/BTRAN cost O(fill)
  /// instead of O(m^2) and refactorization is far below O(m^3).
  kSparseLu,
  /// Dense m x m basis inverse, updated in product form. Retained as
  /// the differential-testing reference for the sparse engine.
  kDenseInverse,
};

const char* to_string(SimplexEngine engine);

/// Entering-variable selection rule.
enum class PricingRule {
  /// Most-violated reduced cost. Cheapest per iteration, most pivots;
  /// retained as the differential-testing reference and as the warm
  /// default (warm solves finish in a handful of pivots, so weight
  /// upkeep would be pure overhead).
  kDantzig,
  /// Devex reference-framework weights (Forrest-Goldfarb): approximate
  /// steepest-edge at O(pivot-row nnz) per pivot, weights reset to the
  /// reference framework on refactorization. Default — close to
  /// steepest-edge pivot counts at a fraction of the update cost.
  kDevex,
  /// Exact steepest-edge norms gamma_j = 1 + ||B^{-1} a_j||^2: exact
  /// initial norms (cheap for the cold artificial basis), recurrence
  /// updates per pivot using the already-computed FTRAN column plus one
  /// extra BTRAN. Fewest pivots, priciest update; norms are
  /// basis-dependent, not factorization-dependent, so they survive
  /// refactorization untouched.
  kSteepestEdge,
};

const char* to_string(PricingRule rule);

struct SimplexOptions {
  double feasibility_tolerance = 1e-7;
  double optimality_tolerance = 1e-7;
  long max_iterations = 200000;
  double time_limit_seconds = kInfinity;
  /// Absolute wall-clock deadline shared across a batch of solves (one
  /// scenario sweep, one branch-and-bound dive, ...). Checked alongside
  /// time_limit_seconds; whichever trips first ends the solve with
  /// SolveStatus::kTimeLimit. Defaults to unlimited, which costs one
  /// branch per iteration.
  util::Deadline deadline{};
  const Basis* warm_start = nullptr;
  /// Refactorize the basis every this many pivots. Product-form
  /// updates stay accurate for hundreds of pivots on well-scaled
  /// models. The sparse engine additionally refactorizes early when its
  /// eta file outgrows the factorization (refactoring is cheap there);
  /// for the dense engine refactorization is O(m^3), so a small
  /// interval dominates solve time on LPs with many rows.
  int refactor_interval = 400;
  SimplexEngine engine = SimplexEngine::kSparseLu;
  /// Entering-variable selection rule. Devex by default for cold
  /// solves: reference-framework weights price at near-Dantzig
  /// per-iteration cost while guarding against the textbook Dantzig
  /// stalls on badly scaled columns. Callers doing short warm solves
  /// (np::plan stateful checks, warm B&B dives) switch to kDantzig per
  /// solve, where weight maintenance cannot pay for itself.
  PricingRule pricing = PricingRule::kDevex;
  /// Sharded partial pricing on models with more than this many columns
  /// (structural + slack + artificial): a bounded candidate list of
  /// weighted reduced costs is re-priced each iteration and refilled
  /// round-robin from column shards when it runs thin. Optimality is
  /// only declared on an iteration whose (re-)scan covered every shard
  /// with the current duals and found nothing — the full weighted
  /// sweep fall-through. <= 0 disables partial pricing (every
  /// iteration prices all columns). The default covers the scenario
  /// feasibility LPs, where a full sweep would dominate the
  /// per-iteration cost of the sparse engine.
  int partial_pricing_threshold = 128;
};

/// Which start the solver ended up using (telemetry for tuning).
enum class StartPath {
  kCold,         // two-phase from scratch
  kWarmPrimal,   // warm basis was primal feasible
  kDualRepair,   // warm basis repaired by the dual simplex
  kWarmFailed,   // warm basis rejected or repair gave up -> cold
};

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;   // structural variable values (empty unless optimal)
  Basis basis;             // final basis for warm starts
  long iterations = 0;
  double solve_seconds = 0.0;
  /// Seconds spent inside entering-variable selection and pricing-
  /// weight maintenance (subset of solve_seconds) — the bench reports
  /// it as the pricing-time share per rule.
  double pricing_seconds = 0.0;
  StartPath start_path = StartPath::kCold;
};

/// Solve the model. Integer markers on variables are ignored (this is
/// the LP relaxation); np::milp layers integrality on top.
Solution solve(const Model& model, const SimplexOptions& options = {});

}  // namespace np::lp
