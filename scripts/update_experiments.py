#!/usr/bin/env python3
"""Splice bench_output.txt sections into EXPERIMENTS.md placeholders.

Usage: python3 scripts/update_experiments.py
Each `<!-- TAG -->` placeholder is replaced by the corresponding bench
binary's output, fenced as a code block. Idempotent: re-running after a
fresh bench run refreshes the numbers (placeholders are preserved as
markers above each block).
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
MAPPING = {
    "FIG7": "fig07_evaluator_efficiency",
    "FIG8": "fig08_small_scale_optimality",
    "FIG9": "fig09_large_scale",
    "FIG10": "fig10_gnn_layers",
    "FIG11": "fig11_mlp_hidden",
    "FIG12": "fig12_capacity_units",
    "FIG13": "fig13_relax_factor",
    "ABLGAT": "abl_gat_vs_gcn",
    "ABLSEED": "abl_seed_variance",
}

def main() -> int:
    bench = (ROOT / "bench_output.txt").read_text()
    sections = {}
    for block in bench.split("===== ")[1:]:
        header, _, body = block.partition("\n")
        name = header.strip().rstrip("= ").split("/")[-1].strip()
        sections[name] = body.strip()

    text = (ROOT / "EXPERIMENTS.md").read_text()
    for tag, binary in MAPPING.items():
        if binary not in sections:
            print(f"warning: no bench output for {binary}", file=sys.stderr)
            continue
        fenced = f"<!-- {tag} -->\n```\n{sections[binary]}\n```"
        pattern = re.compile(rf"<!-- {tag} -->(\n```\n.*?\n```)?", re.DOTALL)
        text = pattern.sub(lambda _m: fenced, text, count=1)
    (ROOT / "EXPERIMENTS.md").write_text(text)
    print("EXPERIMENTS.md updated")
    return 0

if __name__ == "__main__":
    raise SystemExit(main())
