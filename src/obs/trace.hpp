// Scoped trace spans exported as Chrome trace-event JSON.
//
//   { NP_SPAN("simplex.solve"); ... }   // one complete ("ph":"X") event
//
// Hot path: when tracing is disabled (the default) a span costs one
// relaxed atomic load in the constructor and a branch in the
// destructor — nothing is recorded, timestamped or allocated. When
// enabled, the destructor appends a 24-byte event to a per-thread
// buffer under that buffer's own (uncontended) mutex; the mutex exists
// only so the exporter can read buffers of live threads safely.
//
// Buffers are registered in a process-wide collector and held by
// shared_ptr from both the collector and a thread_local, so events
// survive thread exit (pool workers) and the exporter sees every
// thread. Thread ids are assigned sequentially in registration order —
// stable and human-readable in the Perfetto UI (tid 1 = main thread,
// 2..N = workers in spawn order).
//
// Export format: {"traceEvents":[{"name","cat","ph":"X","ts","dur",
// "pid","tid"}]}, ts/dur in microseconds since process start —
// loadable in Perfetto / chrome://tracing. The "cat" field is derived
// from the span name's prefix before the first '.' ("simplex.solve"
// -> "simplex"), which gives Perfetto a useful per-subsystem grouping
// for free.
//
// Compile-time kill switch: -DNEUROPLAN_DISABLE_TRACING turns NP_SPAN
// into ((void)0) for builds that must not even pay the atomic load.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdio>

#include "obs/flight.hpp"

namespace np::obs {

/// Microseconds since process start (steady clock) — the trace
/// timebase, also used for thread-pool task latency.
double now_us();

/// Runtime gate; off by default. set_trace_out() (obs.hpp) switches it
/// on. Spans check it once, in the constructor.
bool tracing_enabled();
void set_tracing_enabled(bool enabled);

/// Total events currently buffered across all threads.
std::size_t trace_event_count();

/// Events dropped because a thread hit its buffer cap.
std::size_t trace_dropped_count();

/// Discard all buffered events (buffers stay registered).
void clear_trace();

/// Write the Chrome trace-event JSON document for everything buffered
/// so far. Returns the number of events written.
std::size_t write_chrome_trace(std::FILE* out);

namespace detail {
struct ThreadBuffer;
ThreadBuffer& thread_buffer();
void record_span(ThreadBuffer& buffer, const char* name, double start_us,
                 double end_us);
}  // namespace detail

/// Record one complete event with explicit bounds. For spans whose time
/// is accumulated across a hot loop and emitted once per enclosing unit
/// of work (e.g. "lp.price" sums per-iteration pricing time and emits
/// one event per solve) — a per-iteration RAII Span would flood the
/// buffers. The event is back-dated to end at "now", so its duration
/// aggregates correctly in trace_summary but its placement on the
/// timeline is synthetic. No-op while tracing is disabled. `name` must
/// outlive the export (string literal).
void record_aggregate_span(const char* name, double duration_us);

/// RAII complete-event span. `name` must be a string literal (or
/// otherwise outlive the export) — spans store the pointer, not a copy.
///
/// Besides the Chrome-trace event, a span feeds the flight recorder
/// (obs/flight.hpp): begin/end events on the thread's ring plus an
/// active-span-stack push/pop, so a crash report shows where every
/// thread was. The recorder is on by default; with it off a span is
/// back to one relaxed load per gate.
class Span {
 public:
  explicit Span(const char* name)
      : name_(tracing_enabled() ? name : nullptr),
        start_us_(name_ != nullptr ? now_us() : 0.0),
        fr_name_(flight_recorder_enabled() ? name : nullptr) {
    if (fr_name_ != nullptr) fr_detail::fr_span_begin(fr_name_);
  }
  ~Span() {
    if (name_ != nullptr) {
      detail::record_span(detail::thread_buffer(), name_, start_us_, now_us());
    }
    // Pop unconditionally once pushed — the recorder gate may have
    // flipped mid-span and the stack must stay balanced.
    if (fr_name_ != nullptr) fr_detail::fr_span_end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  double start_us_;
  const char* fr_name_;
};

}  // namespace np::obs

#define NP_SPAN_CONCAT_INNER(a, b) a##b
#define NP_SPAN_CONCAT(a, b) NP_SPAN_CONCAT_INNER(a, b)

#ifdef NEUROPLAN_DISABLE_TRACING
#define NP_SPAN(name) ((void)0)
#else
/// Scoped trace span: NP_SPAN("simplex.solve"); — ends at scope exit.
#define NP_SPAN(name) \
  ::np::obs::Span NP_SPAN_CONCAT(np_span_, __LINE__)(name)
#endif
