// Rollout-throughput benchmark for the multi-worker subsystem
// (rl::RolloutWorkers): env steps per second at 1, 2 and 4 workers,
// written as JSON for scripts/bench_rollout.sh -> BENCH_rollout.json.
//
// The 1-worker row uses borrowed mode (the exact serial trainer path),
// so speedups are measured against the true pre-threading baseline.
// Interpreting the numbers needs `hardware_threads` from the JSON:
// worker counts beyond the core count still gain from cross-worker
// batched network forwards, but the env-stepping parallelism only
// materializes on real cores.
//
// Knobs: NEUROPLAN_TOPOS (first letter, default B),
//        NEUROPLAN_ROLLOUT_STEPS (steps per measured collect, default 768),
//        NEUROPLAN_SEED (default 7).
#include <cstdio>
#include <string>
#include <vector>

#include "nn/actor_critic.hpp"
#include "rl/rollout.hpp"
#include "topo/generator.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace np;

nn::NetworkConfig network_config(const rl::EnvConfig& env) {
  nn::NetworkConfig c;
  c.feature_dim = topo::feature_dimension(env.include_static_features);
  c.gcn_layers = 2;
  c.gcn_hidden = 32;
  c.mlp_hidden = {64, 64};
  c.max_units_per_step = env.max_units_per_step;
  return c;
}

double steps_per_second(const topo::Topology& topology, const rl::EnvConfig& env,
                        nn::ActorCritic& net, int workers, unsigned seed,
                        int steps) {
  // Fresh PlanningEnv per measurement so LP caches start cold for every
  // worker count; one warmup collect builds them before timing.
  if (workers == 1) {
    rl::PlanningEnv serial_env(topology, env);
    Rng rng(seed);
    rl::RolloutWorkers rollout(serial_env, rng, net);
    rollout.collect(steps);  // warmup
    Stopwatch watch;
    const auto result = rollout.collect(steps);
    return result.front().records.size() / watch.seconds();
  }
  rl::RolloutWorkers rollout(topology, env, net, workers, seed);
  rollout.collect(steps);  // warmup
  Stopwatch watch;
  const auto result = rollout.collect(steps);
  std::size_t collected = 0;
  for (const auto& r : result) collected += r.records.size();
  return collected / watch.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string topos = env_string("NEUROPLAN_TOPOS", "B");
  const char preset = topos.empty() ? 'B' : topos[0];
  const unsigned seed = static_cast<unsigned>(env_long("NEUROPLAN_SEED", 7));
  const int steps = static_cast<int>(env_long("NEUROPLAN_ROLLOUT_STEPS", 768));

  const topo::Topology topology = topo::make_preset(preset);
  rl::EnvConfig env;
  env.max_trajectory_steps = 256;
  Rng net_rng(seed);
  nn::ActorCritic net(network_config(env), net_rng);

  const std::vector<int> worker_counts = {1, 2, 4};
  std::vector<double> rates;
  for (int k : worker_counts) {
    rates.push_back(steps_per_second(topology, env, net, k, seed, steps));
    std::printf("workers %d: %.1f steps/s\n", k, rates.back());
  }
  const double speedup = rates.back() / rates.front();
  std::printf("speedup 4 vs 1: %.2fx (on %d hardware threads)\n", speedup,
              util::ThreadPool::hardware_threads());

  const char* out_path = argc > 1 ? argv[1] : "BENCH_rollout.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"rollout_throughput\",\n"
               "  \"topology\": \"%c\",\n"
               "  \"steps_per_collect\": %d,\n"
               "  \"hardware_threads\": %d,\n"
               "  \"workers\": [\n",
               preset, steps, util::ThreadPool::hardware_threads());
  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    std::fprintf(out, "    {\"workers\": %d, \"steps_per_sec\": %.2f}%s\n",
                 worker_counts[i], rates[i],
                 i + 1 < worker_counts.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"speedup_4v1\": %.3f\n"
               "}\n",
               speedup);
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}
