// Minimal leveled logger. Thread-safe: worker threads (rollout
// workers, parallel evaluator groups) log concurrently, so each line
// is written to stderr under a process-wide mutex and the level
// threshold is atomic. Formatting happens outside the lock.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace np {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// library users are not spammed; benches/examples raise it explicitly.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr with a level tag. Prefer the NP_LOG helpers.
void log_line(LogLevel level, std::string_view message);

namespace detail {
template <class... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_line(level, os.str());
}
}  // namespace detail

template <class... Args>
void log_debug(const Args&... args) { detail::log_fmt(LogLevel::kDebug, args...); }
template <class... Args>
void log_info(const Args&... args) { detail::log_fmt(LogLevel::kInfo, args...); }
template <class... Args>
void log_warn(const Args&... args) { detail::log_fmt(LogLevel::kWarn, args...); }
template <class... Args>
void log_error(const Args&... args) { detail::log_fmt(LogLevel::kError, args...); }

}  // namespace np
