#include "util/thread_pool.hpp"

#include <stdexcept>

namespace np::util {

ThreadPool::ThreadPool(int workers) {
  if (workers < 0) throw std::invalid_argument("ThreadPool: negative worker count");
  threads_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task stores any exception in the future
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> result = wrapped.get_future();
  if (threads_.empty()) {
    wrapped();
    return result;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::logic_error("ThreadPool::submit: pool is stopping");
    queue_.push(std::move(wrapped));
  }
  ready_.notify_one();
  return result;
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (threads_.empty()) {
    for (auto& task : tasks) task();  // inline; first exception propagates as-is
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(tasks.size() - 1);
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    pending.push_back(submit(std::move(tasks[i])));
  }
  std::exception_ptr first;
  try {
    tasks[0]();
  } catch (...) {
    first = std::current_exception();
  }
  for (std::future<void>& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace np::util
