#include "nn/actor_critic.hpp"

#include <stdexcept>

namespace np::nn {

namespace {

std::unique_ptr<GraphEncoder> make_encoder(const NetworkConfig& config, Rng& rng) {
  if (config.gnn_type == GnnType::kGat) {
    return std::make_unique<GatEncoder>("gnn", config.feature_dim,
                                        config.gcn_hidden, config.gcn_layers, rng);
  }
  return std::make_unique<GcnEncoder>("gnn", config.feature_dim, config.gcn_hidden,
                                      config.gcn_layers, rng);
}

}  // namespace

ActorCritic::ActorCritic(const NetworkConfig& config, Rng& rng)
    : config_(config),
      encoder_(make_encoder(config, rng)),
      actor_("actor", encoder_->output_dim(), config.mlp_hidden,
             config.max_units_per_step, rng),
      critic_("critic", encoder_->output_dim(), config.mlp_hidden, 1, rng) {
  if (config.max_units_per_step < 1) {
    throw std::invalid_argument("ActorCritic: max_units_per_step must be >= 1");
  }
}

ad::Tensor ActorCritic::policy_log_probs(
    ad::Tape& tape, std::shared_ptr<const la::CsrMatrix> adjacency,
    const la::Matrix& features, const std::vector<std::uint8_t>& action_mask) {
  const std::size_t n = features.rows();
  if (action_mask.size() != n * static_cast<std::size_t>(config_.max_units_per_step)) {
    throw std::invalid_argument("policy_log_probs: mask size mismatch");
  }
  ad::Tensor embedding =
      encoder_->forward(tape, std::move(adjacency), tape.constant(features));
  ad::Tensor logits = actor_.forward(tape, embedding);        // n x m
  ad::Tensor flat = tape.flatten_to_row(logits);              // 1 x (n*m)
  return tape.masked_log_softmax(flat, action_mask);
}

ad::Tensor ActorCritic::value(ad::Tape& tape,
                              std::shared_ptr<const la::CsrMatrix> adjacency,
                              const la::Matrix& features) {
  ad::Tensor embedding =
      encoder_->forward(tape, std::move(adjacency), tape.constant(features));
  return critic_.forward(tape, tape.mean_rows(embedding));
}

int ActorCritic::encode_action(ActionId action) const {
  if (action.units < 1 || action.units > config_.max_units_per_step) {
    throw std::invalid_argument("encode_action: units out of range");
  }
  if (action.link < 0) throw std::invalid_argument("encode_action: negative link");
  return action.link * config_.max_units_per_step + (action.units - 1);
}

ActionId ActorCritic::decode_action(int flat_index) const {
  if (flat_index < 0) throw std::invalid_argument("decode_action: negative index");
  ActionId action;
  action.link = flat_index / config_.max_units_per_step;
  action.units = flat_index % config_.max_units_per_step + 1;
  return action;
}

std::vector<ad::Parameter*> ActorCritic::all_parameters() {
  std::vector<ad::Parameter*> params = encoder_->parameters();
  for (ad::Parameter* p : actor_.parameters()) params.push_back(p);
  for (ad::Parameter* p : critic_.parameters()) params.push_back(p);
  return params;
}

}  // namespace np::nn
