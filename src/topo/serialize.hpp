// Plain-text (de)serialization for topologies.
//
// A line-oriented format so planning problems can be saved, shared and
// diffed. Grammar (one record per line, '#' starts a comment):
//
//   topology <name>
//   unit <capacity_unit_gbps>
//   costmodel <ip_cost_per_gbps_km> <fiber_cost_per_ghz_fraction>
//   policy <protected_cos:int>
//   site <name> <x> <y> <region>
//   fiber <name> <site_a> <site_b> <length_km> <spectrum_ghz> <cost> <existing:0|1>
//   link <name> <site_a> <site_b> <spectrum_per_unit> <initial_units> <k> <f_1..f_k>
//   flow <src> <dst> <demand_gbps> <cos:int>
//   failure <name> <k> <fiber_1..fiber_k> <m> <site_1..site_m>
//
// Records must appear after the entities they reference (the natural
// write order). Parsing errors throw std::runtime_error with the line
// number.
#pragma once

#include <iosfwd>
#include <string>

#include "topo/topology.hpp"

namespace np::topo {

void save(const Topology& topology, std::ostream& out);
Topology load(std::istream& in);

std::string to_text(const Topology& topology);
Topology from_text(const std::string& text);

void save_file(const Topology& topology, const std::string& path);
Topology load_file(const std::string& path);

}  // namespace np::topo
