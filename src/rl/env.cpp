#include "rl/env.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace np::rl {

PlanningEnv::PlanningEnv(const topo::Topology& topology, const EnvConfig& config)
    : topology_(topology),
      config_(config),
      transform_(topo::node_link_transform(topology)),
      initial_units_(topology.initial_units()) {
  if (config.max_units_per_step < 1) {
    throw std::invalid_argument("PlanningEnv: max_units_per_step must be >= 1");
  }
  if (config.max_trajectory_steps < 1) {
    throw std::invalid_argument("PlanningEnv: max_trajectory_steps must be >= 1");
  }
  if (config.evaluator_threads < 1) {
    throw std::invalid_argument("PlanningEnv: evaluator_threads must be >= 1");
  }
  if (config.evaluator_threads > 1) {
    parallel_evaluator_ = std::make_unique<plan::ParallelPlanEvaluator>(
        topology, config.evaluator_threads);
    parallel_evaluator_->set_scenario_budget(config.scenario_time_limit_seconds);
  } else {
    sequential_evaluator_ =
        std::make_unique<plan::PlanEvaluator>(topology, config.evaluator_mode);
    sequential_evaluator_->set_scenario_budget(config.scenario_time_limit_seconds);
  }
  // Reward scale: the most expensive possible single step, so each
  // intermediate reward lands in [-1, 0] (§4.2 "reward representation").
  double max_unit_cost = 0.0;
  for (int l = 0; l < topology.num_links(); ++l) {
    max_unit_cost = std::max(max_unit_cost, topology.link_unit_cost(l));
  }
  reward_scale_ = std::max(1e-9, max_unit_cost * config.max_units_per_step);
  reset();
}

void PlanningEnv::reset() {
  units_ = initial_units_;
  steps_ = 0;
  done_ = false;
  if (parallel_evaluator_) {
    parallel_evaluator_->reset();
  } else {
    sequential_evaluator_->reset();
  }
}

la::Matrix PlanningEnv::features() const {
  return topo::node_features(topology_, units_, config_.include_static_features);
}

void PlanningEnv::features_into(la::Matrix& out) const {
  topo::node_features_into(topology_, units_, config_.include_static_features,
                           out);
}

std::vector<std::uint8_t> PlanningEnv::action_mask() const {
  std::vector<std::uint8_t> mask;
  action_mask_into(mask);
  return mask;
}

void PlanningEnv::action_mask_into(std::vector<std::uint8_t>& mask) const {
  mask.assign(num_actions(), 0);
  for (int l = 0; l < topology_.num_links(); ++l) {
    const int headroom = topology_.spectrum_headroom_units(l, units_);
    const int allowed = std::min(headroom, config_.max_units_per_step);
    for (int k = 1; k <= allowed; ++k) {
      mask[l * config_.max_units_per_step + (k - 1)] = 1;
    }
  }
#if NP_CHECKS_ENABLED
  // Post-condition (Eq. 4): the mask must agree with a fresh headroom
  // recomputation — a stale or corrupted mask corrupts the policy's
  // action distribution silently.
  std::vector<int> headroom_units(topology_.num_links());
  for (int l = 0; l < topology_.num_links(); ++l) {
    headroom_units[l] = topology_.spectrum_headroom_units(l, units_);
  }
  NP_CHECK_ACTION_MASK(mask, headroom_units, config_.max_units_per_step,
                       "PlanningEnv::action_mask");
#endif
}

bool PlanningEnv::has_valid_action() const {
  for (int l = 0; l < topology_.num_links(); ++l) {
    if (topology_.spectrum_headroom_units(l, units_) > 0) return true;
  }
  return false;
}

StepResult PlanningEnv::step(int flat_action) {
  if (done_) throw std::logic_error("PlanningEnv::step: episode is done");
  if (flat_action < 0 || flat_action >= num_actions()) {
    throw std::invalid_argument("PlanningEnv::step: action out of range");
  }
  const int link = flat_action / config_.max_units_per_step;
  const int add = flat_action % config_.max_units_per_step + 1;
  if (topology_.spectrum_headroom_units(link, units_) < add) {
    throw std::invalid_argument("PlanningEnv::step: masked action (spectrum)");
  }

  units_[link] += add;
  ++steps_;

  StepResult result;
  result.reward = -(add * topology_.link_unit_cost(link)) / reward_scale_;

  const plan::CheckResult check = parallel_evaluator_
                                      ? parallel_evaluator_->check(units_)
                                      : sequential_evaluator_->check(units_);
  if (check.feasible) {
    result.done = true;
    result.feasible = true;
  } else if (steps_ >= config_.max_trajectory_steps || !has_valid_action()) {
    result.done = true;
    result.truncated = true;
    result.reward += -1.0;  // timeout penalty (§4.2)
  }
  done_ = result.done;
  return result;
}

void PlanningEnv::restore_units(const std::vector<int>& units) {
  if (units.size() != static_cast<std::size_t>(topology_.num_links())) {
    throw std::invalid_argument("PlanningEnv::restore_units: size mismatch");
  }
  for (std::size_t l = 0; l < units.size(); ++l) {
    if (units[l] < initial_units_[l]) {
      throw std::invalid_argument(
          "PlanningEnv::restore_units: units below initial topology");
    }
  }
  units_ = units;
}

std::vector<int> PlanningEnv::added_units() const {
  std::vector<int> added(units_.size());
  for (std::size_t l = 0; l < units_.size(); ++l) {
    added[l] = units_[l] - initial_units_[l];
  }
  return added;
}

double PlanningEnv::added_cost() const { return topology_.plan_cost(added_units()); }

}  // namespace np::rl
