// Shortest-path routing over the IP layer — shared by the topology
// generator (reference capacities), the greedy baseline planner and
// examples.
#pragma once

#include <vector>

#include "topo/topology.hpp"

namespace np::topo {

/// Dijkstra by link length over the IP links with usable[l] == true.
/// Returns the link indices of a shortest src->dst path, or empty when
/// disconnected. `usable` must have size num_links().
std::vector<int> shortest_ip_path(const Topology& topology, int src, int dst,
                                  const std::vector<bool>& usable);

/// Convenience: all links usable.
std::vector<int> shortest_ip_path(const Topology& topology, int src, int dst);

}  // namespace np::topo
