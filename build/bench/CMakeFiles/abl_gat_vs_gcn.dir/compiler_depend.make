# Empty compiler generated dependencies file for abl_gat_vs_gcn.
# This may be replaced when dependencies are built.
