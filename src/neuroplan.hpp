// Umbrella header: the public API of NeuroPlan-cpp in one include.
//
//   #include "neuroplan.hpp"
//
//   auto topology = np::topo::make_preset('A');
//   np::core::NeuroPlanConfig config;
//   config.train = np::core::default_train_config(topology);
//   auto result = np::core::neuroplan(topology, config);
//
// Individual headers remain includable on their own; this is a
// convenience for applications, examples and quick experiments.
#pragma once

// Topology model, generators, transformation, serialization.
#include "topo/generator.hpp"
#include "topo/paths.hpp"
#include "topo/serialize.hpp"
#include "topo/topology.hpp"
#include "topo/transform.hpp"

// Plan evaluation and the planning MILP formulation.
#include "plan/evaluator.hpp"
#include "plan/formulation.hpp"
#include "plan/parallel_evaluator.hpp"
#include "plan/report.hpp"

// Solvers (Gurobi's role in the paper).
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "milp/branch_and_bound.hpp"

// Learning stack (PyTorch/SpinningUp's role in the paper).
#include "ad/adam.hpp"
#include "ad/checkpoint.hpp"
#include "ad/tape.hpp"
#include "nn/actor_critic.hpp"
#include "rl/trainer.hpp"

// The two-stage pipeline and baselines.
#include "core/baselines.hpp"
#include "core/decomposition.hpp"
#include "core/lazy_solve.hpp"
#include "core/neuroplan.hpp"
