// Long-term planning (§2, §4.1 "unifying short-term and long-term
// planning"): the candidate IP links start at zero capacity and the
// planner effectively designs the future topology — links left at zero
// are simply not built.
//
//   ./long_term_planning [topology A-E] [epochs]
//
// Demonstrates: scale_initial_capacity(t, 0) as the A-0 long-term
// variant, topology serialization of the resulting plan, and how the
// same NeuroPlan agent covers both planning horizons.
#include <cstdio>
#include <cstdlib>

#include "core/baselines.hpp"
#include "core/neuroplan.hpp"
#include "topo/generator.hpp"
#include "topo/serialize.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  np::set_log_level(np::LogLevel::kWarn);
  const char topo_id = argc > 1 ? argv[1][0] : 'A';
  const long epochs = argc > 2 ? std::atol(argv[2]) : 24;

  // Long-term variant: all candidate links exist with zero capacity
  // (the paper's key observation that makes one agent cover both
  // horizons).
  np::topo::Topology base = np::topo::make_preset(topo_id);
  np::topo::Topology topology = np::topo::scale_initial_capacity(base, 0.0);
  std::printf("Long-term planning on %s: %d candidate IP links (all at 0 units)\n",
              topology.name().c_str(), topology.num_links());

  np::core::NeuroPlanConfig config;
  config.train = np::core::default_train_config(topology, /*seed=*/23);
  config.train.epochs = static_cast<int>(epochs);
  config.relax_factor = 2.0;  // from-scratch plans benefit from wider relaxation
  const np::core::NeuroPlanResult result = np::core::neuroplan(topology, config);
  if (!result.final.feasible) {
    std::printf("planning failed: %s\n", result.final.detail.c_str());
    return 1;
  }

  int built = 0;
  for (int units : result.final.added_units) built += units > 0 ? 1 : 0;
  std::printf("NeuroPlan builds %d of %d candidate links, cost %.1f\n", built,
              topology.num_links(), result.final.cost);
  std::printf("first stage %.1fs (cost %.1f), second stage %.1fs [%s]\n",
              result.train_seconds, result.first_stage.cost, result.ilp_seconds,
              result.final.detail.c_str());

  // Persist the built topology: the plan's units become the new
  // existing capacity of the next planning cycle.
  np::topo::Topology built_topology = topology;
  for (int l = 0; l < topology.num_links(); ++l) {
    built_topology.set_link_initial_units(l, result.final.added_units[l]);
  }
  const std::string path = "/tmp/neuroplan_longterm_" + std::string(1, topo_id) + ".topo";
  np::topo::save_file(built_topology, path);
  std::printf("built topology written to %s (load with topo::load_file)\n",
              path.c_str());
  return 0;
}
