file(REMOVE_RECURSE
  "CMakeFiles/fig11_mlp_hidden.dir/fig11_mlp_hidden.cpp.o"
  "CMakeFiles/fig11_mlp_hidden.dir/fig11_mlp_hidden.cpp.o.d"
  "fig11_mlp_hidden"
  "fig11_mlp_hidden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_mlp_hidden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
