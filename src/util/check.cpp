#include "util/check.hpp"

#include <algorithm>
#include <cmath>

#include "obs/flight.hpp"
#include "util/log.hpp"

namespace np::util {

ContractViolation::ContractViolation(const std::string& what_arg)
    : std::logic_error(what_arg) {}

void contract_failure(const char* kind, const char* expr, const char* file,
                      int line, const std::string& detail) {
  std::string message = detail::concat(kind, " failed: ", expr, " at ", file,
                                       ":", line);
  if (!detail.empty()) message += detail::concat(" — ", detail);
  log_error(message);
  // Flight recorder: log the violation event and, when a .npcrash path
  // is armed, write the fatal report *before* the unwind destroys the
  // violating frame's state (the message is still at hand here).
  obs::fr_on_contract_violation(file, line, expr);
  throw ContractViolation(message);
}

namespace {

[[noreturn]] void fail(const char* where, const std::string& detail) {
  const std::string message =
      detail::concat("NP_CHECK failed in ", where, ": ", detail);
  log_error(message);
  // `where` is a call-site string literal, so it is stable storage for
  // the flight-recorder ring; the dynamic detail goes into the report's
  // trigger section only.
  obs::fr_on_contract_violation(where, 0, detail.c_str());
  throw ContractViolation(message);
}

}  // namespace

void check_csr(std::size_t rows, std::size_t cols,
               const std::vector<std::size_t>& row_offsets,
               const std::vector<std::size_t>& col_indices,
               std::size_t values_size, const char* where) {
  if (row_offsets.size() != rows + 1) {
    fail(where, detail::concat("row_offsets size ", row_offsets.size(),
                               " != rows+1 = ", rows + 1));
  }
  if (row_offsets.front() != 0) {
    fail(where, detail::concat("row_offsets[0] = ", row_offsets.front(),
                               ", expected 0"));
  }
  if (row_offsets.back() != col_indices.size()) {
    fail(where, detail::concat("row_offsets back ", row_offsets.back(),
                               " != nnz ", col_indices.size()));
  }
  if (values_size != col_indices.size()) {
    fail(where, detail::concat("values size ", values_size,
                               " != col_indices size ", col_indices.size()));
  }
  for (std::size_t r = 0; r < rows; ++r) {
    if (row_offsets[r] > row_offsets[r + 1]) {
      fail(where, detail::concat("row_offsets decrease at row ", r));
    }
    for (std::size_t k = row_offsets[r]; k < row_offsets[r + 1]; ++k) {
      if (col_indices[k] >= cols) {
        fail(where, detail::concat("column index ", col_indices[k],
                                   " out of bounds (cols = ", cols, ") in row ",
                                   r));
      }
      if (k > row_offsets[r] && col_indices[k] <= col_indices[k - 1]) {
        fail(where, detail::concat("column indices not strictly ascending in row ",
                                   r, " at nnz ", k));
      }
    }
  }
}

void check_dims(std::size_t rows, std::size_t cols, long expected_rows,
                long expected_cols, const char* where) {
  if (expected_rows >= 0 && rows != static_cast<std::size_t>(expected_rows)) {
    fail(where, detail::concat("shape (", rows, " x ", cols, ") has ", rows,
                               " rows, expected ", expected_rows));
  }
  if (expected_cols >= 0 && cols != static_cast<std::size_t>(expected_cols)) {
    fail(where, detail::concat("shape (", rows, " x ", cols, ") has ", cols,
                               " cols, expected ", expected_cols));
  }
}

void check_finite(const double* data, std::size_t count, const char* where) {
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::isfinite(data[i])) {
      fail(where, detail::concat("non-finite value ", data[i], " at index ", i,
                                 " of ", count));
    }
  }
}

void check_finite(const std::vector<double>& values, const char* where) {
  check_finite(values.data(), values.size(), where);
}

void check_action_mask(const std::vector<std::uint8_t>& mask,
                       const std::vector<int>& headroom_units,
                       int max_units_per_step, const char* where) {
  if (max_units_per_step < 1) {
    fail(where, detail::concat("max_units_per_step = ", max_units_per_step));
  }
  const std::size_t m = static_cast<std::size_t>(max_units_per_step);
  if (mask.size() != headroom_units.size() * m) {
    fail(where, detail::concat("mask size ", mask.size(), " != links ",
                               headroom_units.size(), " * m ", m));
  }
  for (std::size_t l = 0; l < headroom_units.size(); ++l) {
    const int allowed = std::min(headroom_units[l], max_units_per_step);
    for (std::size_t k = 1; k <= m; ++k) {
      const bool expected = static_cast<int>(k) <= allowed;
      const bool got = mask[l * m + (k - 1)] != 0;
      if (got != expected) {
        fail(where,
             detail::concat("mask[link ", l, ", add ", k, "] = ", got,
                            " but spectrum headroom ", headroom_units[l],
                            " allows <= ", allowed));
      }
    }
  }
}

void check_monotone_units(const std::vector<int>& previous,
                          const std::vector<int>& current, const char* where) {
  if (previous.size() != current.size()) {
    fail(where, detail::concat("unit vector size changed: ", previous.size(),
                               " -> ", current.size()));
  }
  for (std::size_t l = 0; l < current.size(); ++l) {
    if (current[l] < previous[l]) {
      fail(where, detail::concat("capacity decreased on link ", l, ": ",
                                 previous[l], " -> ", current[l]));
    }
  }
}

void check_lu(int dim,
              const std::vector<std::vector<std::pair<int, double>>>& lower,
              const std::vector<std::vector<std::pair<int, double>>>& upper,
              const std::vector<double>& diag,
              const std::vector<std::vector<std::pair<int, double>>>& permuted_columns,
              double tolerance, const char* where) {
  const std::size_t n = static_cast<std::size_t>(dim);
  if (lower.size() != n || upper.size() != n || diag.size() != n ||
      permuted_columns.size() != n) {
    fail(where, detail::concat("LU shape mismatch for dim ", dim, ": L ",
                               lower.size(), ", U ", upper.size(), ", diag ",
                               diag.size(), ", columns ",
                               permuted_columns.size()));
  }
  for (int k = 0; k < dim; ++k) {
    if (!std::isfinite(diag[k]) || diag[k] == 0.0) {
      fail(where, detail::concat("U diagonal entry ", k, " = ", diag[k],
                                 " (singular or non-finite)"));
    }
    for (const auto& [i, v] : lower[k]) {
      if (i <= k || i >= dim) {
        fail(where, detail::concat("L entry at (", i, ", ", k,
                                   ") outside the strict lower triangle"));
      }
      if (!std::isfinite(v)) {
        fail(where, detail::concat("non-finite L entry at (", i, ", ", k, ")"));
      }
    }
    for (const auto& [i, v] : upper[k]) {
      if (i < 0 || i >= k) {
        fail(where, detail::concat("U entry at (", i, ", ", k,
                                   ") outside the strict upper triangle"));
      }
      if (!std::isfinite(v)) {
        fail(where, detail::concat("non-finite U entry at (", i, ", ", k, ")"));
      }
    }
  }
  // Residual P·B·Q - L·U, column by column: the reconstructed column
  // sum_i U_ik * L[:, i] (L's diagonal implicit 1) must match the
  // permuted basis column.
  std::vector<double> work(n, 0.0);
  std::vector<int> touched;
  for (int k = 0; k < dim; ++k) {
    touched.clear();
    double scale = 1.0;
    auto accumulate = [&](int i, double u) {
      work[i] += u;
      touched.push_back(i);
      for (const auto& [r, v] : lower[i]) {
        work[r] += v * u;
        touched.push_back(r);
      }
    };
    for (const auto& [i, u] : upper[k]) accumulate(i, u);
    accumulate(k, diag[k]);
    for (const auto& [r, v] : permuted_columns[k]) {
      work[r] -= v;
      touched.push_back(r);
      scale = std::max(scale, std::abs(v));
    }
    for (int r : touched) {
      if (std::abs(work[r]) > tolerance * scale) {
        const double residual = work[r];
        for (int t : touched) work[t] = 0.0;
        fail(where, detail::concat("P·B·Q - L·U residual ", residual,
                                   " at position (", r, ", ", k,
                                   ") exceeds ", tolerance, " * ", scale));
      }
    }
    for (int r : touched) work[r] = 0.0;
  }
}

}  // namespace np::util
