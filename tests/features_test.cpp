// Tests for the §5/§3.2 extensions: parallel failure checking, region
// decomposition, and parameter checkpoints.
#include <gtest/gtest.h>

#include <sstream>

#include "ad/checkpoint.hpp"
#include "core/baselines.hpp"
#include "core/decomposition.hpp"
#include "nn/actor_critic.hpp"
#include "plan/evaluator.hpp"
#include "plan/parallel_evaluator.hpp"
#include "topo/generator.hpp"
#include "util/rng.hpp"

namespace np {
namespace {

// ---- parallel failure checking ----

TEST(ParallelEvaluator, AgreesWithSequentialVerdicts) {
  topo::Topology t = topo::make_preset('B');
  plan::ParallelPlanEvaluator parallel(t, 4);
  plan::PlanEvaluator sequential(t, plan::EvaluatorMode::kSourceAggregation);
  Rng rng(3);
  std::vector<int> units = t.initial_units();
  for (int step = 0; step < 5; ++step) {
    const plan::CheckResult p = parallel.check(units);
    const plan::CheckResult s = sequential.check(units);
    EXPECT_EQ(p.feasible, s.feasible) << "step " << step;
    if (!p.feasible) {
      EXPECT_EQ(p.violated_scenario, s.violated_scenario);
    }
    const int link = static_cast<int>(rng.uniform_index(t.num_links()));
    units[link] = std::min(units[link] + 3, t.link_max_units(link));
  }
}

TEST(ParallelEvaluator, SingleThreadDegradesGracefully) {
  topo::Topology t = topo::make_preset('A');
  plan::ParallelPlanEvaluator eval(t, 1);
  EXPECT_EQ(eval.threads(), 1);
  std::vector<int> saturated(t.num_links());
  for (int l = 0; l < t.num_links(); ++l) saturated[l] = t.link_max_units(l);
  EXPECT_TRUE(eval.check(saturated).feasible);
}

TEST(ParallelEvaluator, ThreadCountCappedByScenarios) {
  topo::Topology t = topo::make_preset('A');
  plan::ParallelPlanEvaluator eval(t, 1000);
  EXPECT_LE(eval.threads(), eval.num_scenarios());
}

TEST(ParallelEvaluator, ValidatesInputs) {
  topo::Topology t = topo::make_preset('A');
  EXPECT_THROW(plan::ParallelPlanEvaluator(t, 0), std::invalid_argument);
  plan::ParallelPlanEvaluator eval(t, 2);
  EXPECT_THROW(eval.check({1}), std::invalid_argument);
  std::vector<int> bad(t.num_links(), -1);
  EXPECT_THROW(eval.check(bad), std::invalid_argument);
}

TEST(ParallelEvaluator, ReportsSmallestViolatedScenario) {
  topo::Topology t = topo::make_preset('A');
  plan::ParallelPlanEvaluator parallel(t, 3);
  plan::PlanEvaluator sequential(t, plan::EvaluatorMode::kSourceAggregation);
  const std::vector<int> zeros(t.num_links(), 0);
  const plan::CheckResult p = parallel.check(zeros);
  const plan::CheckResult s = sequential.check(zeros);
  ASSERT_FALSE(p.feasible);
  EXPECT_EQ(p.violated_scenario, s.violated_scenario);
}

// ---- region decomposition ----

TEST(Decomposition, ProducesFeasiblePlan) {
  topo::Topology t = topo::make_preset('B');
  core::DecompositionConfig config;
  config.regional.time_limit_per_solve_seconds = 20.0;
  config.regional.total_time_limit_seconds = 60.0;
  config.regional.relative_gap = 1e-2;
  const core::DecompositionResult r = core::solve_region_decomposition(t, config);
  ASSERT_TRUE(r.plan.feasible) << r.plan.detail;
  EXPECT_EQ(r.regions, 2);
  EXPECT_TRUE(core::verify_result(t, r.plan).feasible);
}

TEST(Decomposition, NoWorseThanGreedyEverywhere) {
  // The repair pass takes elementwise max with greedy only when needed,
  // so cost <= greedy + regional refinement can only shave regional fat
  // ... but stitching may also overprovision; assert feasibility and a
  // sane bound instead of strict dominance.
  topo::Topology t = topo::make_preset('A');
  const core::DecompositionResult r = core::solve_region_decomposition(t, {});
  const core::PlanResult greedy = core::solve_greedy(t);
  ASSERT_TRUE(r.plan.feasible);
  ASSERT_TRUE(greedy.feasible);
  EXPECT_LE(r.plan.cost, 2.0 * greedy.cost);
}

TEST(Decomposition, CoarseUnitsSupported) {
  topo::Topology t = topo::make_preset('A');
  core::DecompositionConfig config;
  config.unit_multiplier = 4;
  const core::DecompositionResult r = core::solve_region_decomposition(t, config);
  EXPECT_TRUE(r.plan.feasible);
}

// ---- checkpoints ----

TEST(Checkpoint, RoundTripRestoresValues) {
  Rng rng(5);
  nn::NetworkConfig c;
  c.feature_dim = 4;
  c.gcn_layers = 1;
  c.gcn_hidden = 8;
  c.mlp_hidden = {8};
  c.max_units_per_step = 2;
  nn::ActorCritic a(c, rng), b(c, rng);
  // Perturb b so it differs from a.
  for (ad::Parameter* p : b.all_parameters()) {
    for (double& v : p->value.flat()) v += 1.0;
  }
  std::stringstream buffer;
  ad::save_parameters(a.all_parameters(), buffer);
  ad::load_parameters(b.all_parameters(), buffer);
  const auto pa = a.all_parameters();
  const auto pb = b.all_parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LT(la::max_abs_diff(pa[i]->value, pb[i]->value), 1e-15) << pa[i]->name;
  }
}

TEST(Checkpoint, ShapeMismatchThrows) {
  ad::Parameter small("w", la::Matrix(2, 2, 1.0));
  ad::Parameter big("w", la::Matrix(3, 3, 1.0));
  std::stringstream buffer;
  ad::save_parameters({&small}, buffer);
  EXPECT_THROW(ad::load_parameters({&big}, buffer), std::runtime_error);
}

TEST(Checkpoint, UnknownParameterThrows) {
  ad::Parameter a("a", la::Matrix(1, 1, 1.0));
  ad::Parameter b("b", la::Matrix(1, 1, 1.0));
  std::stringstream buffer;
  ad::save_parameters({&a}, buffer);
  EXPECT_THROW(ad::load_parameters({&b}, buffer), std::runtime_error);
}

TEST(Checkpoint, MissingParameterThrows) {
  ad::Parameter a("a", la::Matrix(1, 1, 1.0));
  ad::Parameter b("b", la::Matrix(1, 1, 1.0));
  std::stringstream buffer;
  ad::save_parameters({&a}, buffer);
  EXPECT_THROW(ad::load_parameters({&a, &b}, buffer), std::runtime_error);
}

TEST(Checkpoint, RejectsWhitespaceNames) {
  ad::Parameter bad("has space", la::Matrix(1, 1, 1.0));
  std::stringstream buffer;
  EXPECT_THROW(ad::save_parameters({&bad}, buffer), std::invalid_argument);
}

TEST(Checkpoint, FileRoundTrip) {
  ad::Parameter p("w", la::Matrix{{1.5, -2.25}});
  const std::string path = ::testing::TempDir() + "/np_ckpt_test.txt";
  ad::save_parameters_file({&p}, path);
  p.value(0, 0) = 0.0;
  ad::load_parameters_file({&p}, path);
  EXPECT_DOUBLE_EQ(p.value(0, 0), 1.5);
  EXPECT_THROW(ad::load_parameters_file({&p}, "/nonexistent/x.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace np
