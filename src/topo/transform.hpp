// Node-link transformation (§4.2, Figure 5) and GCN inputs.
//
// Each IP link of the topology becomes a node of the transformed graph
// (indices coincide). Two transformed nodes are adjacent iff their
// links share an endpoint site in the original topology, EXCEPT when
// the two links are parallel (same unordered site pair): parallel
// links provide capacity between the same pair and their capacities
// must not be propagated into each other during GCN message passing.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "la/matrix.hpp"
#include "la/sparse.hpp"
#include "topo/topology.hpp"

namespace np::topo {

struct TransformedGraph {
  int num_nodes = 0;  ///< == topology.num_links()
  /// Undirected edges (i < j) between transformed nodes.
  std::vector<std::pair<int, int>> edges;
  /// GCN propagation operator of Eq. 7: D^{-1/2} (A + I) D^{-1/2},
  /// shared across training steps (the structure never changes; only
  /// node features do).
  std::shared_ptr<const la::CsrMatrix> normalized_adjacency;
};

/// Build the transformed graph for a topology.
TransformedGraph node_link_transform(const Topology& topology);

/// Per-node feature matrix for the transformed graph (n x features).
///
/// Column 0 is the paper's dynamic feature: the link's current total
/// capacity units, z-normalized across nodes (mean 0, std 1). When
/// `include_static_features` is set, three static/derived columns are
/// appended: utilization (units / spectrum cap), z-normalized link
/// length, and remaining-headroom fraction. These are deterministic
/// functions of the topology and help the policy distinguish links;
/// the paper's ablation (Fig. 10) is run with column 0 semantics.
la::Matrix node_features(const Topology& topology,
                         const std::vector<int>& total_units,
                         bool include_static_features = true);

/// node_features into a caller-owned matrix: `out` is resized on shape
/// mismatch and written in place otherwise, so a buffer reused across
/// RL steps (whose shape never changes) costs zero allocations after
/// the first call. Produces bit-identical values to node_features.
void node_features_into(const Topology& topology,
                        const std::vector<int>& total_units,
                        bool include_static_features, la::Matrix& out);

/// Number of feature columns produced by node_features.
int feature_dimension(bool include_static_features = true);

}  // namespace np::topo
