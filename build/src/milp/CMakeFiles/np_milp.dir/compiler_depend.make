# Empty compiler generated dependencies file for np_milp.
# This may be replaced when dependencies are built.
