// Flight-recorder tests: ring recording and wrap-around, span-stack
// maintenance, dump well-formedness (parsed with the same tiny JSON
// parser np_postmortem uses, so the report format and the tooling are
// tested against each other), trigger plumbing (contract violation,
// exit dump, one-report-per-process latch), and — the concurrency
// point — snapshot_json and full dumps racing live writers without
// torn JSON or deadlock.
//
// All suites are named Flight* so the tsan ctest preset picks them up.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "np_json.hpp"
#include "obs/obs.hpp"

namespace {

using namespace np;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

np_json::Value parse_report(const std::string& path) {
  const std::string text = read_file(path);
  EXPECT_FALSE(text.empty()) << "no report at " << path;
  return np_json::parse(text);
}

/// The calling thread's tail from a parsed report (tid-matched), or
/// nullptr when the thread never recorded.
const np_json::Value* find_thread(const np_json::Value& report, int tid) {
  const np_json::Value* threads = report.find("threads");
  if (threads == nullptr) return nullptr;
  for (const np_json::Value& t : threads->array) {
    if (static_cast<int>(t.num_or("tid", -1)) == tid) return &t;
  }
  return nullptr;
}

TEST(FlightRecorder, RecordsEventsAndWrapsRing) {
  ASSERT_TRUE(obs::flight_recorder_enabled());
  const std::uint64_t before = obs::fr_total_events();
  const std::size_t n = obs::fr_detail::ThreadRecord::kRingCapacity + 37;
  for (std::size_t i = 0; i < n; ++i) {
    obs::fr_record(obs::FrEventKind::kAnnotation, "flighttest.wrap",
                   static_cast<long>(i));
  }
  EXPECT_EQ(obs::fr_total_events(), before + n);
  // The ring holds only the newest kRingCapacity events; the thread's
  // head keeps the true total.
  obs::fr_detail::ThreadRecord* r = obs::fr_detail::thread_record();
  ASSERT_NE(r, nullptr);
  EXPECT_GE(r->head.load(), n);
}

TEST(FlightRecorder, DisabledRecordsNothing) {
  obs::set_flight_recorder_enabled(false);
  const std::uint64_t before = obs::fr_total_events();
  obs::fr_record(obs::FrEventKind::kAnnotation, "flighttest.disabled");
  EXPECT_EQ(obs::fr_total_events(), before);
  obs::set_flight_recorder_enabled(true);
  obs::fr_record(obs::FrEventKind::kAnnotation, "flighttest.enabled");
  EXPECT_EQ(obs::fr_total_events(), before + 1);
}

TEST(FlightRecorder, SpanStackTracksNesting) {
  obs::fr_detail::ThreadRecord* r = obs::fr_detail::thread_record();
  ASSERT_NE(r, nullptr);
  const int base = r->span_depth.load();
  {
    obs::fr_detail::fr_span_begin("flighttest.outer");
    EXPECT_EQ(r->span_depth.load(), base + 1);
    EXPECT_STREQ(r->span_stack[base].load(), "flighttest.outer");
    obs::fr_detail::fr_span_begin("flighttest.inner");
    EXPECT_EQ(r->span_depth.load(), base + 2);
    obs::fr_detail::fr_span_end();
    obs::fr_detail::fr_span_end();
  }
  EXPECT_EQ(r->span_depth.load(), base);
}

TEST(FlightRecorder, ExplicitDumpIsWellFormedAndCarriesState) {
  const std::string path = testing::TempDir() + "flight_explicit.npcrash";
  obs::counter("flighttest.dump_counter").add(7);
  obs::fr_detail::fr_span_begin("flighttest.active_span");
  obs::fr_record(obs::FrEventKind::kAnnotation, "flighttest.marker", 41, 42);
  obs::set_run_annotation("flight_test explicit dump");
  ASSERT_TRUE(obs::dump_flight_record("test", "explicit", "detail text",
                                      /*fatal=*/false, path.c_str()));
  obs::fr_detail::fr_span_end();

  const np_json::Value report = parse_report(path);
  EXPECT_EQ(report.num_or("npcrash_version", 0), 1);
  const np_json::Value* trigger = report.find("trigger");
  ASSERT_NE(trigger, nullptr);
  EXPECT_EQ(trigger->str_or("kind", ""), "test");
  EXPECT_EQ(trigger->str_or("name", ""), "explicit");
  EXPECT_EQ(trigger->str_or("detail", ""), "detail text");
  EXPECT_EQ(report.str_or("annotation", ""), "flight_test explicit dump");

  // Metrics snapshot rode along.
  const np_json::Value* metrics = report.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const np_json::Value* counters = metrics->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->num_or("flighttest.dump_counter", 0), 7);

  // This thread's tail holds the marker event and the live span stack.
  obs::fr_detail::ThreadRecord* r = obs::fr_detail::thread_record();
  const np_json::Value* mine = find_thread(report, r->tid);
  ASSERT_NE(mine, nullptr);
  const np_json::Value* stack = mine->find("span_stack");
  ASSERT_NE(stack, nullptr);
  bool span_seen = false;
  for (const np_json::Value& s : stack->array) {
    span_seen = span_seen || s.string == "flighttest.active_span";
  }
  EXPECT_TRUE(span_seen);
  bool marker_seen = false;
  for (const np_json::Value& e : mine->find("events")->array) {
    if (e.str_or("name", "") == "flighttest.marker" &&
        e.num_or("a", 0) == 41 && e.num_or("b", 0) == 42) {
      marker_seen = true;
      EXPECT_EQ(e.str_or("kind", ""), "annotation");
    }
  }
  EXPECT_TRUE(marker_seen);
  std::remove(path.c_str());
}

TEST(FlightRecorder, ContractViolationHookDumpsFatalReport) {
  const std::string path = testing::TempDir() + "flight_contract.npcrash";
  obs::set_flight_record_path(path.c_str());
  ASSERT_TRUE(obs::flight_record_armed());
  EXPECT_FALSE(obs::flight_record_dumped());
  obs::fr_on_contract_violation("flight_test.cpp", 123, "x > 0");
  EXPECT_TRUE(obs::flight_record_dumped());

  const np_json::Value report = parse_report(path);
  const np_json::Value* trigger = report.find("trigger");
  ASSERT_NE(trigger, nullptr);
  EXPECT_EQ(trigger->str_or("kind", ""), "contract_violation");
  EXPECT_EQ(trigger->str_or("name", ""), "flight_test.cpp");
  EXPECT_EQ(trigger->str_or("detail", ""), "x > 0");

  // One report per process per class: a second fatal trigger must not
  // overwrite the first.
  EXPECT_FALSE(obs::dump_flight_record("contract_violation", "other.cpp",
                                       "y > 0", /*fatal=*/true));
  obs::set_flight_record_path(nullptr);  // disarm for later tests
  std::remove(path.c_str());
}

TEST(FlightRecorder, ExitDumpHonorsLatchAndRearm) {
  const std::string path = testing::TempDir() + "flight_exit.npcrash";
  obs::set_flight_record_path(path.c_str());
  obs::fr_dump_at_exit();
  EXPECT_TRUE(obs::flight_record_dumped());
  const np_json::Value report = parse_report(path);
  EXPECT_EQ(report.find("trigger")->str_or("kind", ""), "exit");
  // Re-arming resets the latch (tests and long-lived embedders re-arm
  // between runs); a second exit dump then succeeds.
  std::remove(path.c_str());
  obs::set_flight_record_path(path.c_str());
  EXPECT_FALSE(obs::flight_record_dumped());
  obs::fr_dump_at_exit();
  EXPECT_TRUE(obs::flight_record_dumped());
  obs::set_flight_record_path(nullptr);
  std::remove(path.c_str());
}

// The satellite concurrency test: writer threads hammer the recorder
// and the metrics registry while the main thread takes registry
// snapshots and full flight-record dumps. Every artifact must stay
// parseable (no torn JSON) and the test must finish (no deadlock
// between the dump's try_lock path and the registration mutex).
TEST(FlightRecorder, SnapshotAndDumpUnderConcurrentWriters) {
  const int kWriters = 4;
  const int kDumps = 6;
  std::atomic<bool> stop{false};
  obs::Counter& busy = obs::counter("flighttest.busy");
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&stop, &busy, w] {
      while (!stop.load(std::memory_order_relaxed)) {
        obs::fr_detail::fr_span_begin("flighttest.writer");
        obs::fr_record(obs::FrEventKind::kAnnotation, "flighttest.noise", w);
        busy.add(1);
        // Churn the registry's name map too: registration takes the
        // mutex the dump path must only ever try_lock.
        obs::counter("flighttest.churn." + std::to_string(w)).add(1);
        obs::fr_detail::fr_span_end();
      }
    });
  }

  // Register this thread's record before the first dump: writer
  // threads may not have recorded yet (ctest runs each case in its own
  // process), and a dump only lists threads that have.
  obs::fr_record(obs::FrEventKind::kAnnotation, "flighttest.race_main");

  for (int i = 0; i < kDumps; ++i) {
    const std::string snapshot = obs::Registry::instance().snapshot_json();
    EXPECT_NO_THROW(np_json::parse(snapshot)) << "torn registry snapshot";
    const std::string path = testing::TempDir() + "flight_race_" +
                             std::to_string(i) + ".npcrash";
    ASSERT_TRUE(obs::dump_flight_record("test", "race", "", /*fatal=*/false,
                                        path.c_str()));
    const np_json::Value report = parse_report(path);
    EXPECT_GE(report.find("threads")->array.size(), 1u);
    std::remove(path.c_str());
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
}

// emit_metrics_record's final-record path under flight-recorder load:
// shutdown() must append exactly one "final" record even when a dump
// already happened, and later emits are no-ops on the closed sink.
TEST(FlightRecorder, FinalMetricsRecordCoexistsWithDump) {
  const std::string metrics_path = testing::TempDir() + "flight_metrics.jsonl";
  const std::string report_path = testing::TempDir() + "flight_final.npcrash";
  obs::set_metrics_out(metrics_path);
  obs::counter("flighttest.final").add(3);
  obs::emit_metrics_record("train_epoch", 1);
  obs::set_flight_record_path(report_path.c_str());
  obs::shutdown();  // watchdog stop + final record + exit dump
  EXPECT_FALSE(obs::metrics_out_open());
  EXPECT_TRUE(obs::flight_record_dumped());
  obs::emit_metrics_record("train_epoch", 2);  // sink closed: must no-op

  std::ifstream in(metrics_path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"record\":\"train_epoch\",\"index\":1"),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"record\":\"final\",\"index\":-1"),
            std::string::npos);
  for (const std::string& line : lines) {
    EXPECT_NO_THROW(np_json::parse(line)) << "torn metrics record";
  }
  const np_json::Value report = parse_report(report_path);
  EXPECT_EQ(report.find("trigger")->str_or("kind", ""), "exit");
  obs::set_flight_record_path(nullptr);
  std::remove(metrics_path.c_str());
  std::remove(report_path.c_str());
}

}  // namespace
