# Empty dependencies file for np_la.
# This may be replaced when dependencies are built.
