file(REMOVE_RECURSE
  "CMakeFiles/short_term_planning.dir/short_term_planning.cpp.o"
  "CMakeFiles/short_term_planning.dir/short_term_planning.cpp.o.d"
  "short_term_planning"
  "short_term_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/short_term_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
