// Figure 8: optimality on small-scale problems.
//
// Varies topology A's existing capacity (A-0 .. A-1 = 0%..100% of the
// preset's capacities), solves each variant exactly with the ILP and
// with the NeuroPlan pipeline at alpha = 2, and reports First-stage and
// NeuroPlan costs normalized to the ILP optimum — the figure's bars.
#include "bench_common.hpp"
#include "core/baselines.hpp"

int main() {
  using namespace np;
  bench::print_header(
      "Figure 8: optimality for small-scale problems",
      "Costs normalized to the exact ILP optimum on each A-x variant\n"
      "(x = fraction of topology A's existing capacity), alpha = 2.");

  const topo::Topology base = topo::make_preset('A');
  Table table({"variant", "ILP", "First-stage", "NeuroPlan", "train s", "ilp s"});
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const topo::Topology variant = topo::scale_initial_capacity(base, fraction);

    core::IlpConfig ilp_config;
    ilp_config.time_limit_seconds = bench::ilp_time_budget();
    const core::PlanResult exact = core::solve_ilp(variant, ilp_config);

    core::NeuroPlanConfig config;
    config.train = bench::bench_train_config(variant, 'A', bench::bench_seed());
    config.relax_factor = 2.0;
    config.ilp_time_limit_seconds = bench::ilp_time_budget();
    const core::NeuroPlanResult result = core::neuroplan(variant, config);

    const bool have_opt = exact.feasible && !exact.timed_out;
    const double opt = exact.cost;
    table.add_row({"A-" + fmt_double(fraction, 2), have_opt ? "1.000" : "x",
                   fmt_or_cross(result.first_stage.cost / opt,
                                have_opt && result.first_stage.feasible, 3),
                   fmt_or_cross(result.final.cost / opt,
                                have_opt && result.final.feasible, 3),
                   fmt_double(result.train_seconds, 1),
                   fmt_double(result.ilp_seconds, 1)});
  }
  table.print();
  std::printf("\nExpected shape (paper): First-stage within ~1.3x of optimal\n"
              "(closer as existing capacity grows), NeuroPlan within ~1.02x.\n"
              "Our CPU-scale training widens First-stage; the second stage\n"
              "still recovers near-optimal plans (see EXPERIMENTS.md).\n");
  return 0;
}
