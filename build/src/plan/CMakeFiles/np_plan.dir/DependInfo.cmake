
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/evaluator.cpp" "src/plan/CMakeFiles/np_plan.dir/evaluator.cpp.o" "gcc" "src/plan/CMakeFiles/np_plan.dir/evaluator.cpp.o.d"
  "/root/repo/src/plan/formulation.cpp" "src/plan/CMakeFiles/np_plan.dir/formulation.cpp.o" "gcc" "src/plan/CMakeFiles/np_plan.dir/formulation.cpp.o.d"
  "/root/repo/src/plan/parallel_evaluator.cpp" "src/plan/CMakeFiles/np_plan.dir/parallel_evaluator.cpp.o" "gcc" "src/plan/CMakeFiles/np_plan.dir/parallel_evaluator.cpp.o.d"
  "/root/repo/src/plan/report.cpp" "src/plan/CMakeFiles/np_plan.dir/report.cpp.o" "gcc" "src/plan/CMakeFiles/np_plan.dir/report.cpp.o.d"
  "/root/repo/src/plan/scenario_lp.cpp" "src/plan/CMakeFiles/np_plan.dir/scenario_lp.cpp.o" "gcc" "src/plan/CMakeFiles/np_plan.dir/scenario_lp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/np_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/np_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/np_util.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/np_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
