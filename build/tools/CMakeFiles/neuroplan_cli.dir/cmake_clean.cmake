file(REMOVE_RECURSE
  "CMakeFiles/neuroplan_cli.dir/neuroplan_cli.cpp.o"
  "CMakeFiles/neuroplan_cli.dir/neuroplan_cli.cpp.o.d"
  "neuroplan_cli"
  "neuroplan_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuroplan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
