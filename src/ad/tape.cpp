#include "ad/tape.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace np::ad {

namespace {
constexpr double kMaskedLogProb = -1e30;
}

void Tape::clear() {
  nodes_.clear();
  param_leaves_.clear();
}

Tensor Tape::emit(la::Matrix value, bool needs_grad,
                  std::function<void(Tape&, const Node&)> backward_fn) {
  Node n;
  n.value = std::move(value);
  n.needs_grad = needs_grad;
  n.backward_fn = std::move(backward_fn);
  nodes_.push_back(std::move(n));
  return Tensor{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

Tensor Tape::constant(la::Matrix value) {
  return emit(std::move(value), /*needs_grad=*/false, nullptr);
}

Tensor Tape::parameter(Parameter& param) {
  Tensor t = emit(param.value, /*needs_grad=*/true, nullptr);
  param_leaves_.emplace_back(t.index, &param);
  return t;
}

Tensor Tape::add(Tensor a, Tensor b) {
  la::Matrix out = value(a) + value(b);
  const bool needs = node(a).needs_grad || node(b).needs_grad;
  const auto ai = a.index, bi = b.index;
  return emit(std::move(out), needs, [ai, bi](Tape& tape, const Node& self) {
    if (tape.nodes_[ai].needs_grad) tape.grad_ref(ai) += self.grad;
    if (tape.nodes_[bi].needs_grad) tape.grad_ref(bi) += self.grad;
  });
}

Tensor Tape::sub(Tensor a, Tensor b) {
  la::Matrix out = value(a) - value(b);
  const bool needs = node(a).needs_grad || node(b).needs_grad;
  const auto ai = a.index, bi = b.index;
  return emit(std::move(out), needs, [ai, bi](Tape& tape, const Node& self) {
    if (tape.nodes_[ai].needs_grad) tape.grad_ref(ai) += self.grad;
    if (tape.nodes_[bi].needs_grad) tape.grad_ref(bi) -= self.grad;
  });
}

Tensor Tape::scale(Tensor a, double factor) {
  la::Matrix out = value(a) * factor;
  const bool needs = node(a).needs_grad;
  const auto ai = a.index;
  return emit(std::move(out), needs, [ai, factor](Tape& tape, const Node& self) {
    if (tape.nodes_[ai].needs_grad) tape.grad_ref(ai) += self.grad * factor;
  });
}

Tensor Tape::hadamard(Tensor a, Tensor b) {
  la::Matrix out = value(a).hadamard(value(b));
  const bool needs = node(a).needs_grad || node(b).needs_grad;
  const auto ai = a.index, bi = b.index;
  return emit(std::move(out), needs, [ai, bi](Tape& tape, const Node& self) {
    if (tape.nodes_[ai].needs_grad) {
      tape.grad_ref(ai) += self.grad.hadamard(tape.nodes_[bi].value);
    }
    if (tape.nodes_[bi].needs_grad) {
      tape.grad_ref(bi) += self.grad.hadamard(tape.nodes_[ai].value);
    }
  });
}

Tensor Tape::relu(Tensor a) {
  la::Matrix out = value(a).map([](double x) { return x > 0.0 ? x : 0.0; });
  const bool needs = node(a).needs_grad;
  const auto ai = a.index;
  return emit(std::move(out), needs, [ai](Tape& tape, const Node& self) {
    if (!tape.nodes_[ai].needs_grad) return;
    la::Matrix& g = tape.grad_ref(ai);
    const la::Matrix& x = tape.nodes_[ai].value;
    for (std::size_t i = 0; i < g.flat().size(); ++i) {
      if (x.flat()[i] > 0.0) g.flat()[i] += self.grad.flat()[i];
    }
  });
}

Tensor Tape::square(Tensor a) {
  la::Matrix out = value(a).hadamard(value(a));
  const bool needs = node(a).needs_grad;
  const auto ai = a.index;
  return emit(std::move(out), needs, [ai](Tape& tape, const Node& self) {
    if (!tape.nodes_[ai].needs_grad) return;
    la::Matrix& g = tape.grad_ref(ai);
    const la::Matrix& x = tape.nodes_[ai].value;
    for (std::size_t i = 0; i < g.flat().size(); ++i) {
      g.flat()[i] += 2.0 * x.flat()[i] * self.grad.flat()[i];
    }
  });
}

Tensor Tape::exp(Tensor a) {
  la::Matrix out = value(a).map([](double x) { return std::exp(x); });
  const bool needs = node(a).needs_grad;
  const auto ai = a.index;
  // Capture the output index: d exp(x) = exp(x) dx uses the forward value.
  return emit(std::move(out), needs, [ai](Tape& tape, const Node& self) {
    if (!tape.nodes_[ai].needs_grad) return;
    la::Matrix& g = tape.grad_ref(ai);
    for (std::size_t i = 0; i < g.flat().size(); ++i) {
      g.flat()[i] += self.value.flat()[i] * self.grad.flat()[i];
    }
  });
}

Tensor Tape::matmul(Tensor a, Tensor b) {
  la::Matrix out = value(a).matmul(value(b));
  NP_CHECK_FINITE(out.data(), out.size(), "Tape::matmul");
  const bool needs = node(a).needs_grad || node(b).needs_grad;
  const auto ai = a.index, bi = b.index;
  return emit(std::move(out), needs, [ai, bi](Tape& tape, const Node& self) {
    if (tape.nodes_[ai].needs_grad) {
      tape.grad_ref(ai) += self.grad.matmul(tape.nodes_[bi].value.transposed());
    }
    if (tape.nodes_[bi].needs_grad) {
      tape.grad_ref(bi) += tape.nodes_[ai].value.transposed().matmul(self.grad);
    }
  });
}

Tensor Tape::spmm(std::shared_ptr<const la::CsrMatrix> lhs, Tensor rhs) {
  if (lhs == nullptr) throw std::invalid_argument("Tape::spmm: null adjacency");
  la::Matrix out = lhs->multiply(value(rhs));
  NP_CHECK_FINITE(out.data(), out.size(), "Tape::spmm");
  const bool needs = node(rhs).needs_grad;
  const auto ri = rhs.index;
  return emit(std::move(out), needs, [lhs, ri](Tape& tape, const Node& self) {
    if (tape.nodes_[ri].needs_grad) {
      tape.grad_ref(ri) += lhs->multiply_transposed(self.grad);
    }
  });
}

Tensor Tape::add_row_broadcast(Tensor matrix, Tensor bias_row) {
  la::Matrix out = value(matrix).add_row_broadcast(value(bias_row));
  const bool needs = node(matrix).needs_grad || node(bias_row).needs_grad;
  const auto mi = matrix.index, bi = bias_row.index;
  return emit(std::move(out), needs, [mi, bi](Tape& tape, const Node& self) {
    if (tape.nodes_[mi].needs_grad) tape.grad_ref(mi) += self.grad;
    if (tape.nodes_[bi].needs_grad) tape.grad_ref(bi) += self.grad.sum_rows();
  });
}

Tensor Tape::mean_rows(Tensor a) {
  const la::Matrix& x = value(a);
  if (x.rows() == 0) throw std::invalid_argument("Tape::mean_rows: empty input");
  la::Matrix out = x.sum_rows() * (1.0 / static_cast<double>(x.rows()));
  const bool needs = node(a).needs_grad;
  const auto ai = a.index;
  const double inv_n = 1.0 / static_cast<double>(x.rows());
  return emit(std::move(out), needs, [ai, inv_n](Tape& tape, const Node& self) {
    if (!tape.nodes_[ai].needs_grad) return;
    la::Matrix& g = tape.grad_ref(ai);
    for (std::size_t r = 0; r < g.rows(); ++r) {
      for (std::size_t c = 0; c < g.cols(); ++c) g(r, c) += inv_n * self.grad(0, c);
    }
  });
}

Tensor Tape::slice_rows(Tensor a, std::size_t begin, std::size_t count) {
  const la::Matrix& x = value(a);
  if (count == 0) throw std::invalid_argument("Tape::slice_rows: empty slice");
  if (begin + count > x.rows()) {
    throw std::out_of_range("Tape::slice_rows: rows out of range");
  }
  la::Matrix out(count, x.cols());
  std::copy(x.data() + begin * x.cols(), x.data() + (begin + count) * x.cols(),
            out.data());
  const bool needs = node(a).needs_grad;
  const auto ai = a.index;
  return emit(std::move(out), needs, [ai, begin](Tape& tape, const Node& self) {
    if (!tape.nodes_[ai].needs_grad) return;
    la::Matrix& g = tape.grad_ref(ai);
    double* dst = g.data() + begin * g.cols();
    const double* src = self.grad.data();
    for (std::size_t i = 0; i < self.grad.flat().size(); ++i) dst[i] += src[i];
  });
}

Tensor Tape::mean_rows_segments(Tensor a, std::size_t segment) {
  const la::Matrix& x = value(a);
  if (segment == 0 || x.rows() == 0 || x.rows() % segment != 0) {
    throw std::invalid_argument("Tape::mean_rows_segments: rows must be a "
                                "positive multiple of segment");
  }
  const std::size_t segments = x.rows() / segment;
  const double inv = 1.0 / static_cast<double>(segment);
  la::Matrix out(segments, x.cols(), 0.0);
  for (std::size_t s = 0; s < segments; ++s) {
    double* orow = out.data() + s * x.cols();
    // Sum ascending then scale — matches mean_rows (sum_rows * 1/n) bitwise.
    for (std::size_t r = s * segment; r < (s + 1) * segment; ++r) {
      const double* xrow = x.data() + r * x.cols();
      for (std::size_t c = 0; c < x.cols(); ++c) orow[c] += xrow[c];
    }
    for (std::size_t c = 0; c < x.cols(); ++c) orow[c] *= inv;
  }
  const bool needs = node(a).needs_grad;
  const auto ai = a.index;
  return emit(std::move(out), needs, [ai, segment, inv](Tape& tape, const Node& self) {
    if (!tape.nodes_[ai].needs_grad) return;
    la::Matrix& g = tape.grad_ref(ai);
    for (std::size_t r = 0; r < g.rows(); ++r) {
      const double* srow = self.grad.data() + (r / segment) * g.cols();
      double* grow = g.data() + r * g.cols();
      for (std::size_t c = 0; c < g.cols(); ++c) grow[c] += inv * srow[c];
    }
  });
}

Tensor Tape::flatten_to_row(Tensor a) {
  const la::Matrix& x = value(a);
  la::Matrix out(1, x.size());
  out.flat() = x.flat();
  const bool needs = node(a).needs_grad;
  const auto ai = a.index;
  return emit(std::move(out), needs, [ai](Tape& tape, const Node& self) {
    if (!tape.nodes_[ai].needs_grad) return;
    la::Matrix& g = tape.grad_ref(ai);
    for (std::size_t i = 0; i < g.flat().size(); ++i) g.flat()[i] += self.grad.flat()[i];
  });
}

Tensor Tape::sum(Tensor a) {
  la::Matrix out(1, 1, value(a).sum());
  const bool needs = node(a).needs_grad;
  const auto ai = a.index;
  return emit(std::move(out), needs, [ai](Tape& tape, const Node& self) {
    if (!tape.nodes_[ai].needs_grad) return;
    la::Matrix& g = tape.grad_ref(ai);
    const double d = self.grad(0, 0);
    for (double& v : g.flat()) v += d;
  });
}

Tensor Tape::pick(Tensor a, std::size_t r, std::size_t c) {
  const la::Matrix& x = value(a);
  if (r >= x.rows() || c >= x.cols()) throw std::out_of_range("Tape::pick");
  la::Matrix out(1, 1, x(r, c));
  const bool needs = node(a).needs_grad;
  const auto ai = a.index;
  return emit(std::move(out), needs, [ai, r, c](Tape& tape, const Node& self) {
    if (tape.nodes_[ai].needs_grad) tape.grad_ref(ai)(r, c) += self.grad(0, 0);
  });
}

Tensor Tape::masked_log_softmax(Tensor row, const std::vector<std::uint8_t>& mask) {
  const la::Matrix& x = value(row);
  if (x.rows() != 1) throw std::invalid_argument("masked_log_softmax: need a row vector");
  if (mask.size() != x.cols()) {
    throw std::invalid_argument("masked_log_softmax: mask size mismatch");
  }
  double max_valid = -1e300;
  std::size_t valid_count = 0;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) {
      max_valid = std::max(max_valid, x(0, i));
      ++valid_count;
    }
  }
  if (valid_count == 0) {
    throw std::invalid_argument("masked_log_softmax: no valid entries");
  }
  double sum_exp = 0.0;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) sum_exp += std::exp(x(0, i) - max_valid);
  }
  const double log_z = max_valid + std::log(sum_exp);
  la::Matrix out(1, x.cols(), kMaskedLogProb);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) out(0, i) = x(0, i) - log_z;
  }
  const bool needs = node(row).needs_grad;
  const auto ri = row.index;
  // Capture probabilities for the adjoint: dx_j = dy_j - p_j * sum(dy).
  std::vector<double> probs(mask.size(), 0.0);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) probs[i] = std::exp(out(0, i));
  }
  auto mask_copy = mask;
  return emit(std::move(out), needs,
              [ri, probs = std::move(probs), mask_copy = std::move(mask_copy)](
                  Tape& tape, const Node& self) {
                if (!tape.nodes_[ri].needs_grad) return;
                double grad_sum = 0.0;
                for (std::size_t i = 0; i < mask_copy.size(); ++i) {
                  if (mask_copy[i]) grad_sum += self.grad(0, i);
                }
                la::Matrix& g = tape.grad_ref(ri);
                for (std::size_t i = 0; i < mask_copy.size(); ++i) {
                  if (mask_copy[i]) g(0, i) += self.grad(0, i) - probs[i] * grad_sum;
                }
              });
}

Tensor Tape::entropy_from_log_probs(Tensor log_probs) {
  const la::Matrix& lp = value(log_probs);
  if (lp.rows() != 1) {
    throw std::invalid_argument("entropy_from_log_probs: need a row vector");
  }
  double h = 0.0;
  for (std::size_t i = 0; i < lp.cols(); ++i) {
    const double l = lp(0, i);
    if (l > kMaskedLogProb * 0.5) h -= std::exp(l) * l;
  }
  la::Matrix out(1, 1, h);
  const bool needs = node(log_probs).needs_grad;
  const auto li = log_probs.index;
  return emit(std::move(out), needs, [li](Tape& tape, const Node& self) {
    if (!tape.nodes_[li].needs_grad) return;
    const la::Matrix& lp = tape.nodes_[li].value;
    la::Matrix& g = tape.grad_ref(li);
    const double d = self.grad(0, 0);
    for (std::size_t i = 0; i < lp.cols(); ++i) {
      const double l = lp(0, i);
      if (l > kMaskedLogProb * 0.5) g(0, i) += d * (-std::exp(l) * (1.0 + l));
    }
  });
}

Tensor Tape::gat_aggregate(
    Tensor scores_src, Tensor scores_dst, Tensor features,
    std::shared_ptr<const std::vector<std::vector<int>>> neighbors,
    double leaky_slope) {
  if (neighbors == nullptr) {
    throw std::invalid_argument("gat_aggregate: null neighbor lists");
  }
  const la::Matrix& src = value(scores_src);
  const la::Matrix& dst = value(scores_dst);
  const la::Matrix& z = value(features);
  const std::size_t n = z.rows();
  if (src.rows() != n || src.cols() != 1 || dst.rows() != n || dst.cols() != 1) {
    throw std::invalid_argument("gat_aggregate: scores must be n x 1");
  }
  if (neighbors->size() != n) {
    throw std::invalid_argument("gat_aggregate: neighbor list size mismatch");
  }
  for (const auto& list : *neighbors) {
    for (int j : list) {
      if (j < 0 || static_cast<std::size_t>(j) >= n) {
        throw std::invalid_argument("gat_aggregate: neighbor index out of range");
      }
    }
    if (list.empty()) {
      throw std::invalid_argument("gat_aggregate: node without neighbors "
                                  "(self loops are required)");
    }
  }

  // Forward: per-node masked softmax over LeakyReLU(src_i + dst_j).
  // Attention weights are cached for the adjoint.
  auto alphas = std::make_shared<std::vector<std::vector<double>>>(n);
  la::Matrix out(n, z.cols(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& list = (*neighbors)[i];
    std::vector<double>& alpha = (*alphas)[i];
    alpha.resize(list.size());
    double max_e = -1e300;
    for (std::size_t k = 0; k < list.size(); ++k) {
      const double pre = src(i, 0) + dst(list[k], 0);
      alpha[k] = pre > 0.0 ? pre : leaky_slope * pre;
      max_e = std::max(max_e, alpha[k]);
    }
    double total = 0.0;
    for (double& a : alpha) {
      a = std::exp(a - max_e);
      total += a;
    }
    for (std::size_t k = 0; k < list.size(); ++k) {
      alpha[k] /= total;
      const double* zrow = z.data() + static_cast<std::size_t>(list[k]) * z.cols();
      double* orow = out.data() + i * z.cols();
      for (std::size_t c = 0; c < z.cols(); ++c) orow[c] += alpha[k] * zrow[c];
    }
  }

  const bool needs = node(scores_src).needs_grad || node(scores_dst).needs_grad ||
                     node(features).needs_grad;
  const auto si = scores_src.index, di = scores_dst.index, fi = features.index;
  return emit(
      std::move(out), needs,
      [si, di, fi, neighbors, alphas, leaky_slope](Tape& tape, const Node& self) {
        const la::Matrix& src = tape.nodes_[si].value;
        const la::Matrix& dst = tape.nodes_[di].value;
        const la::Matrix& z = tape.nodes_[fi].value;
        const std::size_t n = z.rows();
        const bool need_src = tape.nodes_[si].needs_grad;
        const bool need_dst = tape.nodes_[di].needs_grad;
        const bool need_z = tape.nodes_[fi].needs_grad;
        for (std::size_t i = 0; i < n; ++i) {
          const auto& list = (*neighbors)[i];
          const auto& alpha = (*alphas)[i];
          const double* grow = self.grad.data() + i * z.cols();
          // d alpha_k = dOut_i . z_k ; softmax backward ; LeakyReLU.
          std::vector<double> dalpha(list.size());
          double weighted = 0.0;
          for (std::size_t k = 0; k < list.size(); ++k) {
            const double* zrow =
                z.data() + static_cast<std::size_t>(list[k]) * z.cols();
            double dot = 0.0;
            for (std::size_t c = 0; c < z.cols(); ++c) dot += grow[c] * zrow[c];
            dalpha[k] = dot;
            weighted += alpha[k] * dot;
            if (need_z) {
              la::Matrix& gz = tape.grad_ref(fi);
              double* gzrow =
                  gz.data() + static_cast<std::size_t>(list[k]) * z.cols();
              for (std::size_t c = 0; c < z.cols(); ++c) {
                gzrow[c] += alpha[k] * grow[c];
              }
            }
          }
          if (!need_src && !need_dst) continue;
          for (std::size_t k = 0; k < list.size(); ++k) {
            const double de = alpha[k] * (dalpha[k] - weighted);
            const double pre = src(i, 0) + dst(list[k], 0);
            const double dpre = de * (pre > 0.0 ? 1.0 : leaky_slope);
            if (need_src) tape.grad_ref(si)(i, 0) += dpre;
            if (need_dst) tape.grad_ref(di)(list[k], 0) += dpre;
          }
        }
      });
}

void Tape::backward(Tensor root) {
  NP_SPAN("ad.backward");
  static obs::Counter& backwards = obs::counter("ad.backwards");
  backwards.add(1);
  Node& r = nodes_[root.index];
  if (r.value.rows() != 1 || r.value.cols() != 1) {
    throw std::invalid_argument("Tape::backward: root must be 1x1");
  }
  if (!r.needs_grad) {
    throw std::invalid_argument("Tape::backward: root does not require grad");
  }
  // Allocate gradients lazily: only nodes that need them, only now.
  for (Node& n : nodes_) {
    if (n.needs_grad) n.grad = la::Matrix(n.value.rows(), n.value.cols(), 0.0);
  }
  r.grad(0, 0) = 1.0;
  for (std::size_t i = root.index + 1; i-- > 0;) {
    Node& n = nodes_[i];
    if (n.needs_grad && n.backward_fn) n.backward_fn(*this, n);
  }
  for (auto& [index, param] : param_leaves_) {
    if (index <= root.index) {
      NP_CHECK_FINITE(nodes_[index].grad.data(), nodes_[index].grad.size(),
                      "Tape::backward parameter gradient");
      param->grad += nodes_[index].grad;
    }
  }
}

}  // namespace np::ad
