# Empty compiler generated dependencies file for fig13_relax_factor.
# This may be replaced when dependencies are built.
