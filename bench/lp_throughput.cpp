// LP-engine throughput microbench: dense-inverse vs sparse-LU simplex
// on the scenario feasibility LPs, written as JSON for
// scripts/bench_rollout.sh -> BENCH_lp.json.
//
// The workload replays a reproducible monotone capacity trajectory
// with the RL env's action granularity — each step adds one capacity
// unit to one (seeded-random) link, after which every scenario LP of
// the topology is re-solved, exactly what the plan evaluators do per
// env step. Both evaluator formulations are measured —
//   * "aggregated"  — source-aggregated rows (the stateful-evaluator
//                     training hot path; topology B: ~84 rows), and
//   * "per_flow"    — one commodity per flow (the vanilla-evaluator
//                     formulation; topology B: ~164 rows, where the
//                     dense engine's O(m^2)/O(m^3) costs dominate).
// Each engine runs every workload twice — cold (every solve from
// scratch) and warm (the basis of the previous solve of the same
// scenario carried forward, exactly what the evaluators do across env
// steps). Every configuration is preceded by a discarded warm-up
// execution so one-off process costs (allocator page faults, cache and
// frequency ramp-up) are not charged to whichever engine runs first.
//
// Headline metrics:
//   * sparse_vs_dense_solves_per_sec — engine speedup in the hot-path
//     configuration (warm starts) on the full per-flow formulation;
//   * warm_vs_cold_iteration_ratio — the warm-start win (mean
//     iterations cold / warm) for the sparse engine on the aggregated
//     hot-path LPs.
// Per-formulation cold/warm ratios are all in the JSON.
//
// Knobs: NEUROPLAN_TOPOS (first letter, default B),
//        NEUROPLAN_LP_CHECKS (env steps in the trajectory, default 48),
//        NEUROPLAN_SEED (default 7).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "lp/simplex.hpp"
#include "obs/obs.hpp"
#include "plan/scenario_lp.hpp"
#include "topo/generator.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace np;

/// Reproducible monotone capacity trajectory with the env's action
/// granularity: one unit added to one seeded-random link per step
/// (respecting spectrum headroom), one plan snapshot per step. Warm
/// solves therefore see exactly the basis perturbation the evaluators
/// see between env steps.
std::vector<std::vector<int>> make_workload(const topo::Topology& topology,
                                            int steps, unsigned seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> plans;
  std::vector<int> units = topology.initial_units();
  for (int c = 0; c < steps; ++c) {
    const int l = static_cast<int>(rng.uniform_index(topology.num_links()));
    if (topology.spectrum_headroom_units(l, units) > 0) units[l] += 1;
    plans.push_back(units);
  }
  return plans;
}

struct PassResult {
  long solves = 0;
  long iterations = 0;
  double seconds = 0.0;  ///< wall-clock over the whole pass
  double solves_per_sec() const { return solves / seconds; }
  double iterations_per_sec() const { return iterations / seconds; }
  double mean_iterations() const {
    return solves > 0 ? static_cast<double>(iterations) / solves : 0.0;
  }
};

/// Replay the workload over the given scenario LPs with one engine.
PassResult run_pass(const topo::Topology& topology,
                    const std::vector<std::vector<int>>& plans,
                    std::vector<plan::ScenarioLp>& lps,
                    lp::SimplexEngine engine, bool warm) {
  lp::SimplexOptions options;
  options.max_iterations = 1000000;
  options.engine = engine;

  PassResult pass;
  Stopwatch watch;
  for (const auto& plan : plans) {
    for (plan::ScenarioLp& lp : lps) {
      plan::set_plan_capacities(lp, topology, plan);
      const plan::ScenarioCheck check =
          plan::solve_scenario(lp, options, /*use_warm_start=*/warm);
      ++pass.solves;
      pass.iterations += check.lp_iterations;
    }
  }
  pass.seconds = watch.seconds();
  return pass;
}

/// Timed measurement behind a discarded warm-up execution of the same
/// pass. The warm-up serves two purposes: it absorbs one-off process
/// costs (page faults into the allocator arenas, cache and
/// branch-predictor warm-up, CPU frequency ramp) that would otherwise
/// be charged to whichever engine runs first, and — because the
/// ScenarioLp objects are shared — it primes the stored bases so the
/// warm configuration measures steady-state cross-step basis reuse,
/// the state the evaluators live in after the first env step, instead
/// of charging the one-off cold ramp-in to every warm number.
PassResult measure(const topo::Topology& topology,
                   const std::vector<std::vector<int>>& plans, bool aggregate,
                   lp::SimplexEngine engine, bool warm) {
  std::vector<plan::ScenarioLp> lps;
  const int scenarios = topology.num_failures() + 1;
  lps.reserve(scenarios);
  for (int s = 0; s < scenarios; ++s) {
    lps.push_back(plan::build_scenario_lp(topology, s, aggregate));
  }
  run_pass(topology, plans, lps, engine, warm);  // warm-up, discarded
  // Best-of-2: the faster execution is the estimate least polluted by
  // scheduler and frequency noise (the workload is deterministic, so
  // the two runs differ only in interference).
  PassResult best = run_pass(topology, plans, lps, engine, warm);
  const PassResult second = run_pass(topology, plans, lps, engine, warm);
  if (second.seconds < best.seconds) best = second;
  return best;
}

struct FormulationResult {
  PassResult sparse_cold, sparse_warm, dense_cold, dense_warm;
  double cold_speedup() const {
    return sparse_cold.solves_per_sec() / dense_cold.solves_per_sec();
  }
  double warm_speedup() const {
    return sparse_warm.solves_per_sec() / dense_warm.solves_per_sec();
  }
};

FormulationResult run_formulation(const topo::Topology& topology,
                                  const std::vector<std::vector<int>>& plans,
                                  bool aggregate) {
  FormulationResult result;
  result.sparse_cold = measure(topology, plans, aggregate,
                               lp::SimplexEngine::kSparseLu, /*warm=*/false);
  result.sparse_warm = measure(topology, plans, aggregate,
                               lp::SimplexEngine::kSparseLu, /*warm=*/true);
  result.dense_cold = measure(topology, plans, aggregate,
                              lp::SimplexEngine::kDenseInverse, /*warm=*/false);
  result.dense_warm = measure(topology, plans, aggregate,
                              lp::SimplexEngine::kDenseInverse, /*warm=*/true);
  return result;
}

void print_text(const char* name, const FormulationResult& r) {
  std::printf("%s:\n", name);
  std::printf("  sparse-lu:     cold %.1f solves/s (%.1f iters/solve), "
              "warm %.1f solves/s (%.1f iters/solve)\n",
              r.sparse_cold.solves_per_sec(), r.sparse_cold.mean_iterations(),
              r.sparse_warm.solves_per_sec(), r.sparse_warm.mean_iterations());
  std::printf("  dense-inverse: cold %.1f solves/s (%.1f iters/solve), "
              "warm %.1f solves/s (%.1f iters/solve)\n",
              r.dense_cold.solves_per_sec(), r.dense_cold.mean_iterations(),
              r.dense_warm.solves_per_sec(), r.dense_warm.mean_iterations());
  std::printf("  sparse vs dense: %.2fx cold, %.2fx warm (solves/sec)\n",
              r.cold_speedup(), r.warm_speedup());
}

void print_json_pass(std::FILE* out, const char* key, const PassResult& pass,
                     bool trailing_comma) {
  std::fprintf(out,
               "      \"%s\": {\"solves\": %ld, \"iterations\": %ld, "
               "\"seconds\": %.4f, \"solves_per_sec\": %.2f, "
               "\"iterations_per_sec\": %.1f, \"mean_iterations\": %.2f}%s\n",
               key, pass.solves, pass.iterations, pass.seconds,
               pass.solves_per_sec(), pass.iterations_per_sec(),
               pass.mean_iterations(), trailing_comma ? "," : "");
}

void print_json_formulation(std::FILE* out, const char* name, int rows,
                            const FormulationResult& r, bool trailing_comma) {
  std::fprintf(out, "  \"%s\": {\n    \"rows\": %d,\n", name, rows);
  std::fprintf(out, "    \"sparse_lu\": {\n");
  print_json_pass(out, "cold", r.sparse_cold, true);
  print_json_pass(out, "warm", r.sparse_warm, false);
  std::fprintf(out, "    },\n    \"dense_inverse\": {\n");
  print_json_pass(out, "cold", r.dense_cold, true);
  print_json_pass(out, "warm", r.dense_warm, false);
  std::fprintf(out,
               "    },\n"
               "    \"sparse_vs_dense_cold\": %.3f,\n"
               "    \"sparse_vs_dense_warm\": %.3f\n"
               "  }%s\n",
               r.cold_speedup(), r.warm_speedup(), trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  obs::configure_from_env();  // NEUROPLAN_TRACE_OUT / NEUROPLAN_METRICS_OUT
  const std::string topos = env_string("NEUROPLAN_TOPOS", "B");
  const char preset = topos.empty() ? 'B' : topos[0];
  const unsigned seed = static_cast<unsigned>(env_long("NEUROPLAN_SEED", 7));
  const int checks = static_cast<int>(env_long("NEUROPLAN_LP_CHECKS", 48));

  const topo::Topology topology = topo::make_preset(preset);
  const auto plans = make_workload(topology, checks, seed);
  const int aggregated_rows =
      plan::build_scenario_lp(topology, 0, /*aggregate=*/true).model.num_rows();
  const int per_flow_rows =
      plan::build_scenario_lp(topology, 0, /*aggregate=*/false).model.num_rows();

  std::printf("topology %c: %d scenario LPs x %d env steps\n", preset,
              topology.num_failures() + 1, checks);
  const FormulationResult aggregated =
      run_formulation(topology, plans, /*aggregate=*/true);
  print_text("aggregated (stateful hot path)", aggregated);
  const FormulationResult per_flow =
      run_formulation(topology, plans, /*aggregate=*/false);
  print_text("per-flow (vanilla evaluator)", per_flow);

  // Headline engine speedup: warm starts on the per-flow formulation —
  // the configuration the evaluators actually run (warm bases carried
  // across env steps) on the formulation large enough that basis
  // linear algebra, not shared simplex bookkeeping, dominates.
  const double engine_speedup = per_flow.warm_speedup();
  const double warm_iteration_ratio =
      aggregated.sparse_warm.mean_iterations() > 0.0
          ? aggregated.sparse_cold.mean_iterations() /
                aggregated.sparse_warm.mean_iterations()
          : 0.0;
  std::printf("sparse vs dense (per-flow warm): %.2fx solves/sec\n",
              engine_speedup);
  std::printf("warm vs cold (sparse, aggregated): %.2fx fewer iterations/solve\n",
              warm_iteration_ratio);

  const char* out_path = argc > 1 ? argv[1] : "BENCH_lp.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::print_json_provenance(out);
  std::fprintf(out,
               "  \"benchmark\": \"lp_throughput\",\n"
               "  \"topology\": \"%c\",\n"
               "  \"capacity_steps\": %d,\n"
               "  \"scenarios\": %d,\n",
               preset, checks, topology.num_failures() + 1);
  print_json_formulation(out, "aggregated", aggregated_rows, aggregated, true);
  print_json_formulation(out, "per_flow", per_flow_rows, per_flow, true);
  std::fprintf(out,
               "  \"sparse_vs_dense_solves_per_sec\": %.3f,\n"
               "  \"warm_vs_cold_iteration_ratio\": %.3f\n"
               "}\n",
               engine_speedup, warm_iteration_ratio);
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  obs::shutdown();
  return 0;
}
