// Row layout of a ragged block-diagonal stack: variable-size blocks
// concatenated along the row axis with no padding. Block b owns rows
// [offset(b), offset(b) + rows(b)) of the stacked matrix; per-block
// sparse ops (spmm, gat_aggregate) against the block's own adjacency
// are bit-identical to the same ops against the materialized
// block-diagonal matrix, while dense row-wise ops (matmul, bias, relu,
// log-softmax slices) run once over the whole stack.
#pragma once

#include <cstddef>
#include <vector>

namespace np::la {

class RaggedLayout {
 public:
  RaggedLayout() = default;

  /// Rebuild in place from per-block row counts (every count must be
  /// positive). Reuses capacity, so rebuilding each batch is heap-free
  /// once warm.
  void assign(const std::size_t* rows_per_block, std::size_t blocks);

  std::size_t blocks() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t rows(std::size_t b) const { return offsets_[b + 1] - offsets_[b]; }
  std::size_t offset(std::size_t b) const { return offsets_[b]; }
  std::size_t total_rows() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }

 private:
  std::vector<std::size_t> offsets_;  ///< blocks + 1 prefix sums
};

}  // namespace np::la
