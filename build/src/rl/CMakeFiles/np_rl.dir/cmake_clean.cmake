file(REMOVE_RECURSE
  "CMakeFiles/np_rl.dir/env.cpp.o"
  "CMakeFiles/np_rl.dir/env.cpp.o.d"
  "CMakeFiles/np_rl.dir/gae.cpp.o"
  "CMakeFiles/np_rl.dir/gae.cpp.o.d"
  "CMakeFiles/np_rl.dir/history.cpp.o"
  "CMakeFiles/np_rl.dir/history.cpp.o.d"
  "CMakeFiles/np_rl.dir/trainer.cpp.o"
  "CMakeFiles/np_rl.dir/trainer.cpp.o.d"
  "libnp_rl.a"
  "libnp_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
