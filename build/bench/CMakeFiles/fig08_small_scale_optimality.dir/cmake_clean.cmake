file(REMOVE_RECURSE
  "CMakeFiles/fig08_small_scale_optimality.dir/fig08_small_scale_optimality.cpp.o"
  "CMakeFiles/fig08_small_scale_optimality.dir/fig08_small_scale_optimality.cpp.o.d"
  "fig08_small_scale_optimality"
  "fig08_small_scale_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_small_scale_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
