#include "nn/mlp.hpp"

namespace np::nn {

Mlp::Mlp(std::string name, int in_features, const std::vector<int>& hidden_sizes,
         int out_features, Rng& rng) {
  int in = in_features;
  for (std::size_t i = 0; i < hidden_sizes.size(); ++i) {
    layers_.emplace_back(name + ".fc" + std::to_string(i), in, hidden_sizes[i], rng);
    in = hidden_sizes[i];
  }
  layers_.emplace_back(name + ".out", in, out_features, rng);
}

ad::Tensor Mlp::forward(ad::Tape& tape, ad::Tensor x) {
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    x = tape.relu(layers_[i].forward(tape, x));
  }
  return layers_.back().forward(tape, x);
}

std::vector<ad::Parameter*> Mlp::parameters() {
  std::vector<ad::Parameter*> params;
  for (Linear& layer : layers_) {
    for (ad::Parameter* p : layer.parameters()) params.push_back(p);
  }
  return params;
}

int Mlp::in_features() const { return layers_.front().in_features(); }
int Mlp::out_features() const { return layers_.back().out_features(); }

}  // namespace np::nn
