file(REMOVE_RECURSE
  "libnp_rl.a"
)
