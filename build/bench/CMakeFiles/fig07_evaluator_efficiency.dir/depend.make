# Empty dependencies file for fig07_evaluator_efficiency.
# This may be replaced when dependencies are built.
