# Empty dependencies file for np_lp.
# This may be replaced when dependencies are built.
