// Agent reuse across planning cycles: train once, checkpoint the
// network, reload it into a fresh agent, and plan a *new* demand
// forecast without retraining from scratch (a short fine-tune).
//
//   ./agent_reuse [epochs]
//
// This is the "incrementally deployable" workflow of §1: operators keep
// the trained pruning policy around and re-run it as demands evolve.
#include <cstdio>
#include <cstdlib>

#include "ad/checkpoint.hpp"
#include "core/neuroplan.hpp"
#include "plan/report.hpp"
#include "topo/generator.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  np::set_log_level(np::LogLevel::kWarn);
  const long epochs = argc > 1 ? std::atol(argv[1]) : 24;

  np::topo::Topology today = np::topo::make_preset('A');
  np::rl::TrainConfig train = np::core::default_train_config(today, /*seed=*/31);
  train.epochs = static_cast<int>(epochs);

  // Cycle 1: train on today's forecast, checkpoint the agent.
  np::rl::A2cTrainer trainer(today, train);
  trainer.train();
  trainer.greedy_rollout();
  std::printf("cycle 1: first-stage cost %.1f after %ld epochs\n",
              trainer.best_cost(), epochs);
  const std::string checkpoint = "/tmp/neuroplan_agent.ckpt";
  np::ad::save_parameters_file(trainer.network().all_parameters(), checkpoint);
  std::printf("agent checkpointed to %s\n", checkpoint.c_str());

  // Cycle 2: demand grew 30% (same topology shape). Reload the agent
  // and fine-tune briefly instead of training from scratch.
  np::topo::GeneratorParams params = np::topo::preset('A');
  params.total_demand_tbps *= 1.3;
  np::topo::Topology next_quarter = np::topo::generate(params);

  np::rl::TrainConfig finetune = train;
  finetune.epochs = std::max<long>(2, epochs / 4);
  np::rl::A2cTrainer reused(next_quarter, finetune);
  np::ad::load_parameters_file(reused.network().all_parameters(), checkpoint);
  reused.train();
  reused.greedy_rollout();
  if (!reused.has_feasible_plan()) {
    std::printf("fine-tune budget too small to find a plan; raise epochs\n");
    return 1;
  }
  std::printf("cycle 2 (fine-tuned %d epochs): first-stage cost %.1f\n",
              finetune.epochs, reused.best_cost());

  // Finish with the second stage and an operator report.
  const np::core::PlanResult final_plan = np::core::second_stage(
      next_quarter, reused.best_added_units(), /*relax_factor=*/1.5, 120.0);
  if (final_plan.feasible) {
    const np::plan::PlanReport report =
        np::plan::analyze_plan(next_quarter, final_plan.added_units);
    std::fputs(np::plan::to_text(next_quarter, report).c_str(), stdout);
  }
  return 0;
}
