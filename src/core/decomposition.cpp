#include "core/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "core/baselines.hpp"
#include "plan/evaluator.hpp"
#include "topo/paths.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace np::core {

namespace {

/// A link is regional iff both endpoints share a region.
int link_region(const topo::Topology& t, int link) {
  const topo::IpLink& l = t.link(link);
  const int ra = t.site(l.site_a).region;
  const int rb = t.site(l.site_b).region;
  return ra == rb ? ra : -1;
}

/// Worst-case shortest-path load per link over all scenarios — the
/// "sizing inter-regional links" step, reused from the greedy design
/// but applied only where asked.
std::vector<int> worst_case_sp_load(const topo::Topology& t) {
  std::vector<int> worst(t.num_links(), 0);
  for (int scenario = -1; scenario < t.num_failures(); ++scenario) {
    const topo::Failure healthy{};
    const topo::Failure& failure = scenario < 0 ? healthy : t.failure(scenario);
    std::vector<bool> usable(t.num_links());
    for (int l = 0; l < t.num_links(); ++l) usable[l] = !t.link_failed(l, failure);
    std::vector<int> load(t.num_links(), 0);
    for (int f = 0; f < t.num_flows(); ++f) {
      const topo::Flow& flow = t.flow(f);
      if (!t.flow_required(flow, failure)) continue;
      const auto path = topo::shortest_ip_path(t, flow.src, flow.dst, usable);
      const int needed = static_cast<int>(
          std::ceil(flow.demand_gbps / t.capacity_unit_gbps() - 1e-9));
      for (int l : path) load[l] += needed;
    }
    for (int l = 0; l < t.num_links(); ++l) worst[l] = std::max(worst[l], load[l]);
  }
  return worst;
}

/// Build the sub-topology of one region plus index maps back to the
/// parent. Flows are the healthy-shortest-path segments that cross the
/// region; failures are the parent scenarios touching it.
struct SubProblem {
  topo::Topology topology;
  std::vector<int> parent_link;  // sub link -> parent link
  bool empty = true;
};

SubProblem build_region_subproblem(const topo::Topology& t, int region) {
  SubProblem sub;
  std::map<int, int> site_map;   // parent -> sub
  std::map<int, int> fiber_map;
  std::map<int, int> link_map;

  for (int s = 0; s < t.num_sites(); ++s) {
    if (t.site(s).region != region) continue;
    site_map[s] = sub.topology.add_site(t.site(s));
  }
  if (site_map.empty()) return sub;
  sub.topology.set_name(t.name() + "-region" + std::to_string(region));
  sub.topology.set_capacity_unit_gbps(t.capacity_unit_gbps());
  sub.topology.set_cost_model(t.cost_model());
  sub.topology.set_reliability_policy(t.reliability_policy());

  for (int f = 0; f < t.num_fibers(); ++f) {
    const topo::Fiber& fiber = t.fiber(f);
    if (!site_map.count(fiber.site_a) || !site_map.count(fiber.site_b)) continue;
    topo::Fiber copy = fiber;
    copy.site_a = site_map[fiber.site_a];
    copy.site_b = site_map[fiber.site_b];
    fiber_map[f] = sub.topology.add_fiber(std::move(copy));
  }
  for (int l = 0; l < t.num_links(); ++l) {
    if (link_region(t, l) != region) continue;
    const topo::IpLink& link = t.link(l);
    bool mappable = true;
    topo::IpLink copy = link;
    copy.site_a = site_map[link.site_a];
    copy.site_b = site_map[link.site_b];
    copy.fiber_path.clear();
    for (int f : link.fiber_path) {
      if (!fiber_map.count(f)) {
        mappable = false;  // rides an inter-region fiber: treat as inter
        break;
      }
      copy.fiber_path.push_back(fiber_map[f]);
    }
    if (!mappable) continue;
    link_map[l] = sub.topology.add_ip_link(std::move(copy));
    sub.parent_link.push_back(l);
  }
  if (sub.topology.num_links() == 0) return sub;

  // Flow segments from healthy shortest paths.
  std::map<std::pair<int, int>, double> segment_demand;
  const std::vector<bool> all(t.num_links(), true);
  for (int f = 0; f < t.num_flows(); ++f) {
    const topo::Flow& flow = t.flow(f);
    const auto path = topo::shortest_ip_path(t, flow.src, flow.dst, all);
    int at = flow.src;
    int segment_start = -1;
    auto flush = [&](int end_site) {
      if (segment_start >= 0 && segment_start != end_site &&
          site_map.count(segment_start) && site_map.count(end_site)) {
        segment_demand[{site_map[segment_start], site_map[end_site]}] +=
            flow.demand_gbps;
      }
      segment_start = -1;
    };
    for (int l : path) {
      const topo::IpLink& link = t.link(l);
      const int next = link.site_a == at ? link.site_b : link.site_a;
      const bool in_region = link_map.count(l) > 0;
      if (in_region && segment_start < 0) segment_start = at;
      if (!in_region) flush(at);
      at = next;
    }
    flush(at);
  }
  for (const auto& [pair, demand] : segment_demand) {
    sub.topology.add_flow({pair.first, pair.second, demand, topo::CoS::kGold});
  }
  if (sub.topology.num_flows() == 0) return sub;

  // Failures touching the region, remapped (components outside the
  // region are dropped from the scenario).
  for (int k = 0; k < t.num_failures(); ++k) {
    const topo::Failure& failure = t.failure(k);
    topo::Failure copy;
    copy.name = failure.name;
    for (int f : failure.fibers) {
      if (fiber_map.count(f)) copy.fibers.push_back(fiber_map[f]);
    }
    for (int s : failure.sites) {
      if (site_map.count(s)) copy.sites.push_back(site_map[s]);
    }
    if (copy.fibers.empty() && copy.sites.empty()) continue;
    // Skip scenarios that would disconnect a regional segment — the
    // region alone cannot protect flows that reroute across regions.
    bool survivable = true;
    for (int fl = 0; fl < sub.topology.num_flows() && survivable; ++fl) {
      const topo::Flow& flow = sub.topology.flow(fl);
      if (!sub.topology.flow_required(flow, copy)) continue;
      std::vector<bool> usable(sub.topology.num_links());
      for (int l = 0; l < sub.topology.num_links(); ++l) {
        usable[l] = !sub.topology.link_failed(l, copy);
      }
      survivable =
          !topo::shortest_ip_path(sub.topology, flow.src, flow.dst, usable).empty();
    }
    if (survivable) sub.topology.add_failure(std::move(copy));
  }
  sub.empty = false;
  return sub;
}

}  // namespace

DecompositionResult solve_region_decomposition(const topo::Topology& topology,
                                               const DecompositionConfig& config) {
  Stopwatch watch;
  DecompositionResult result;

  std::set<int> regions;
  for (int s = 0; s < topology.num_sites(); ++s) {
    regions.insert(topology.site(s).region);
  }
  result.regions = static_cast<int>(regions.size());

  // Inter-regional links: sized by worst-case shortest-path load.
  const std::vector<int> worst = worst_case_sp_load(topology);
  std::vector<int> added(topology.num_links(), 0);
  const std::vector<int> initial = topology.initial_units();
  for (int l = 0; l < topology.num_links(); ++l) {
    if (link_region(topology, l) >= 0) continue;
    const int add = std::max(0, worst[l] - initial[l]);
    added[l] = std::min(add, topology.link_max_units(l) - initial[l]);
  }

  // Regional sub-ILPs.
  for (int region : regions) {
    SubProblem sub = build_region_subproblem(topology, region);
    if (sub.empty) continue;
    plan::FormulationOptions options;
    options.unit_multiplier = config.unit_multiplier;
    const LazySolveResult solved =
        lazy_solve(sub.topology, options, config.regional);
    if (solved.plan.feasible) {
      for (int sl = 0; sl < sub.topology.num_links(); ++sl) {
        added[sub.parent_link[sl]] =
            std::max(added[sub.parent_link[sl]], solved.plan.added_units[sl]);
      }
    } else {
      // Regional solve failed: fall back to worst-case loads there too.
      log_warn("decomposition: region ", region, " unsolved (",
               solved.plan.detail, "); sizing by shortest-path load");
      for (int sl = 0; sl < sub.topology.num_links(); ++sl) {
        const int l = sub.parent_link[sl];
        const int add = std::max(0, worst[l] - initial[l]);
        added[l] = std::max(added[l],
                            std::min(add, topology.link_max_units(l) - initial[l]));
      }
    }
  }

  // Stitch + verify; repair blind spots with the greedy design.
  auto feasible_now = [&]() {
    std::vector<int> total = initial;
    for (int l = 0; l < topology.num_links(); ++l) total[l] += added[l];
    plan::PlanEvaluator evaluator(topology, plan::EvaluatorMode::kSourceAggregation);
    return evaluator.check(total).feasible;
  };
  bool feasible = feasible_now();
  if (!feasible) {
    const PlanResult greedy = solve_greedy(topology);
    if (greedy.feasible) {
      for (int l = 0; l < topology.num_links(); ++l) {
        added[l] = std::max(added[l], greedy.added_units[l]);
      }
      result.repaired = true;
      feasible = feasible_now();
    }
  }

  result.plan.feasible = feasible;
  result.plan.added_units = std::move(added);
  result.plan.cost = topology.plan_cost(result.plan.added_units);
  result.plan.seconds = watch.seconds();
  result.plan.detail = "decomposition: " + std::to_string(result.regions) +
                       " regions" + (result.repaired ? " (greedy-repaired)" : "");
  return result;
}

}  // namespace np::core
