#include "obs/metrics.hpp"

#include <cstdio>
#include <limits>

namespace np::obs {

namespace {

std::atomic<bool> g_detail{false};

/// Atomic CAS-min/max over doubles; relaxed is fine — per-field
/// atomicity is all a snapshot needs.
void atomic_min(std::atomic<double>& slot, double x) {
  double cur = slot.load(std::memory_order_relaxed);
  while (x < cur &&
         !slot.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double x) {
  double cur = slot.load(std::memory_order_relaxed);
  while (x > cur &&
         !slot.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

/// Shortest %g-style rendering that survives a JSON round-trip. %.17g
/// would be exact but produces noisy goldens; 12 significant digits are
/// beyond anything the instruments measure.
void append_json_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    // Instrument names are dotted identifiers; escape defensively anyway.
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<long>[bounds_.size() + 1]),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double x) {
  std::size_t b = 0;
  while (b < bounds_.size() && x > bounds_[b]) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed)) {
  }
  atomic_min(min_, x);
  atomic_max(max_, x);
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> exponential_buckets(double start, double factor,
                                        int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

Registry& Registry::instance() {
  // Leaked on purpose: instrumented code (thread pool teardown, static
  // destructors) may record after main() returns.
  static Registry* g = new Registry();
  return *g;
}

Counter& Registry::counter(std::string_view name) {
  util::LockGuard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  util::LockGuard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  util::LockGuard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::string Registry::snapshot_json() const {
  util::LockGuard lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_json_number(out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    const long n = h->count();
    out += ":{\"count\":";
    out += std::to_string(n);
    out += ",\"sum\":";
    append_json_number(out, h->sum());
    if (n > 0) {
      out += ",\"min\":";
      append_json_number(out, h->min());
      out += ",\"max\":";
      append_json_number(out, h->max());
      out += ",\"mean\":";
      append_json_number(out, h->sum() / static_cast<double>(n));
    }
    out += ",\"bounds\":[";
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      if (i > 0) out += ',';
      append_json_number(out, h->bounds()[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(h->bucket_count(i));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

bool Registry::try_visit_for_crash(const CrashSnapshotVisitor& visitor) const {
  if (!mutex_.try_lock()) return false;
  if (visitor.on_counter != nullptr) {
    for (const auto& [name, c] : counters_) {
      visitor.on_counter(visitor.ctx, name.c_str(), c->value());
    }
  }
  if (visitor.on_gauge != nullptr) {
    for (const auto& [name, g] : gauges_) {
      visitor.on_gauge(visitor.ctx, name.c_str(), g->value());
    }
  }
  if (visitor.on_histogram != nullptr) {
    for (const auto& [name, h] : histograms_) {
      visitor.on_histogram(visitor.ctx, name.c_str(), h->count(), h->sum(),
                           h->min(), h->max());
    }
  }
  mutex_.unlock();
  return true;
}

void Registry::reset() {
  util::LockGuard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}

Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}

Histogram& histogram(std::string_view name, std::vector<double> bounds) {
  return Registry::instance().histogram(name, std::move(bounds));
}

bool detail_enabled() { return g_detail.load(std::memory_order_relaxed); }
void set_detail_enabled(bool enabled) {
  g_detail.store(enabled, std::memory_order_relaxed);
}

}  // namespace np::obs
