#include "nn/inference.hpp"

#include <algorithm>
#include <stdexcept>

#include "la/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/env.hpp"

namespace np::nn {

namespace {
// Matches the default of Tape::gat_aggregate (GatEncoder passes it
// implicitly); a mismatch here would silently break bit-identity.
constexpr double kLeakySlope = 0.2;

std::size_t max_row_nnz(const la::CsrMatrix& a) {
  const auto& offsets = a.row_offsets();
  std::size_t best = 0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    best = std::max(best, offsets[r + 1] - offsets[r]);
  }
  return best;
}
}  // namespace

InferenceMode inference_mode_from_env() {
  const std::string value = env_string("NEUROPLAN_INFERENCE", "fast");
  if (value == "fast") return InferenceMode::kFast;
  if (value == "tape") return InferenceMode::kTape;
  throw std::invalid_argument(
      "NEUROPLAN_INFERENCE must be 'tape' or 'fast', got '" + value + "'");
}

const char* to_string(InferenceMode mode) {
  return mode == InferenceMode::kFast ? "fast" : "tape";
}

InferenceEngine::InferenceEngine(ActorCritic& network)
    : network_(&network), config_(network.config()) {
  refresh();
}

const double* InferenceEngine::pack(const la::Matrix& m) {
  double* dst = params_.alloc_doubles(m.size());
  std::copy(m.data(), m.data() + m.size(), dst);
  return dst;
}

InferenceEngine::Lin InferenceEngine::pack_linear(const ad::Parameter& weight,
                                                  const ad::Parameter& bias) {
  NP_ASSERT(bias.value.rows() == 1 && bias.value.cols() == weight.value.cols(),
            "InferenceEngine: bias shape mismatch for ", weight.name);
  Lin lin;
  lin.in = weight.value.rows();
  lin.out = weight.value.cols();
  lin.w = pack(weight.value);
  lin.b = pack(bias.value);
  return lin;
}

void InferenceEngine::refresh() {
  static obs::Counter& refreshes = obs::counter("nn.infer.refreshes");
  refreshes.add(1);
  params_.reset();
  gcn_.clear();
  gat_.clear();
  actor_.clear();
  critic_.clear();

  const std::vector<ad::Parameter*> gnn = network_->gnn_parameters();
  if (config_.gnn_type == GnnType::kGcn) {
    NP_ASSERT(gnn.size() % 2 == 0, "InferenceEngine: odd GCN parameter count");
    for (std::size_t i = 0; i < gnn.size(); i += 2) {
      gcn_.push_back(pack_linear(*gnn[i], *gnn[i + 1]));
    }
  } else {
    NP_ASSERT(gnn.size() % 4 == 0, "InferenceEngine: bad GAT parameter count");
    for (std::size_t i = 0; i < gnn.size(); i += 4) {
      GatLayer layer;
      layer.proj = pack_linear(*gnn[i], *gnn[i + 1]);
      layer.a_src = pack(gnn[i + 2]->value);
      layer.a_dst = pack(gnn[i + 3]->value);
      gat_.push_back(layer);
    }
  }
  const std::vector<ad::Parameter*> actor = network_->actor_parameters();
  NP_ASSERT(actor.size() % 2 == 0, "InferenceEngine: odd actor parameter count");
  for (std::size_t i = 0; i < actor.size(); i += 2) {
    actor_.push_back(pack_linear(*actor[i], *actor[i + 1]));
  }
  const std::vector<ad::Parameter*> critic = network_->critic_parameters();
  NP_ASSERT(critic.size() % 2 == 0,
            "InferenceEngine: odd critic parameter count");
  for (std::size_t i = 0; i < critic.size(); i += 2) {
    critic_.push_back(pack_linear(*critic[i], *critic[i + 1]));
  }
  // The heads' input width is the encoder's output dimension (identity
  // encoders pass features through untouched).
  encoder_dim_ = actor_.front().in;
}

void InferenceEngine::validate(const GraphInput* graphs, std::size_t count,
                               bool want_policy) const {
  if (count == 0) {
    throw std::invalid_argument("InferenceEngine: empty batch");
  }
  const std::size_t m = static_cast<std::size_t>(config_.max_units_per_step);
  for (std::size_t g = 0; g < count; ++g) {
    const GraphInput& in = graphs[g];
    if (in.adjacency == nullptr || in.features == nullptr) {
      throw std::invalid_argument("InferenceEngine: null graph input");
    }
    NP_CHECK_DIMS(in.features->rows(), in.features->cols(), -1,
                  config_.feature_dim, "InferenceEngine::validate");
    if (in.adjacency->rows() != in.features->rows()) {
      throw std::invalid_argument(
          "InferenceEngine: adjacency/feature row mismatch");
    }
    if (want_policy) {
      if (in.action_mask == nullptr ||
          in.action_mask->size() != in.features->rows() * m) {
        throw std::invalid_argument("InferenceEngine: bad action mask");
      }
    }
  }
}

const double* InferenceEngine::encode(const GraphInput* graphs,
                                      const la::RaggedLayout& layout) {
  namespace k = la::kernels;
  const std::size_t total = layout.total_rows();
  const std::size_t blocks = layout.blocks();
  std::size_t width = static_cast<std::size_t>(config_.feature_dim);

  if (config_.gnn_type == GnnType::kGcn && !gcn_.empty()) {
    // Pad-free stacked GCN: per-block SpMM against each graph's own
    // adjacency (bit-identical to block-diagonal SpMM), then one dense
    // fused projection over the whole stack. Layer 0 reads features
    // straight from the per-graph matrices — no stacking copy.
    const double* h = nullptr;
    for (std::size_t l = 0; l < gcn_.size(); ++l) {
      const Lin& lin = gcn_[l];
      double* propagated = arena_.alloc_doubles(total * width);
      for (std::size_t b = 0; b < blocks; ++b) {
        const double* src = (l == 0) ? graphs[b].features->data()
                                     : h + layout.offset(b) * width;
        k::spmm(*graphs[b].adjacency, src, width,
                propagated + layout.offset(b) * width);
      }
      double* next = arena_.alloc_doubles(total * lin.out);
      k::matmul_bias_act(propagated, total, width, lin.w, lin.out, lin.b,
                         k::Activation::kRelu, next);
      h = next;
      width = lin.out;
    }
    return h;
  }

  // GAT (and the zero-layer identity encoder) operate on a stacked
  // feature matrix.
  double* h = arena_.alloc_doubles(total * width);
  for (std::size_t b = 0; b < blocks; ++b) {
    const double* src = graphs[b].features->data();
    std::copy(src, src + layout.rows(b) * width,
              h + layout.offset(b) * width);
  }
  if (gat_.empty()) return h;

  std::size_t scratch_len = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    scratch_len = std::max(scratch_len, max_row_nnz(*graphs[b].adjacency));
  }
  double* scratch = arena_.alloc_doubles(scratch_len);
  for (const GatLayer& layer : gat_) {
    const std::size_t hidden = layer.proj.out;
    double* z = arena_.alloc_doubles(total * hidden);
    k::matmul_bias_act(h, total, width, layer.proj.w, hidden, layer.proj.b,
                       k::Activation::kNone, z);
    double* src = arena_.alloc_doubles(total);
    double* dst = arena_.alloc_doubles(total);
    k::matmul(z, total, hidden, layer.a_src, 1, src);
    k::matmul(z, total, hidden, layer.a_dst, 1, dst);
    double* aggregated = arena_.alloc_doubles(total * hidden);
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t off = layout.offset(b);
      k::gat_aggregate(*graphs[b].adjacency, src + off, dst + off,
                       z + off * hidden, hidden, kLeakySlope, scratch,
                       aggregated + off * hidden);
    }
    k::bias_relu(aggregated, total, hidden, nullptr, k::Activation::kRelu);
    h = aggregated;
    width = hidden;
  }
  return h;
}

const double* InferenceEngine::run_mlp(const std::vector<Lin>& head,
                                       const double* x, std::size_t rows) {
  namespace k = la::kernels;
  for (std::size_t i = 0; i < head.size(); ++i) {
    const Lin& lin = head[i];
    const k::Activation act =
        (i + 1 < head.size()) ? k::Activation::kRelu : k::Activation::kNone;
    double* y = arena_.alloc_doubles(rows * lin.out);
    k::matmul_bias_act(x, rows, lin.in, lin.w, lin.out, lin.b, act, y);
    x = y;
  }
  return x;
}

void InferenceEngine::run(const GraphInput* graphs, std::size_t count,
                          bool want_policy, bool want_values) {
  namespace k = la::kernels;
  static obs::Gauge& arena_bytes = obs::gauge("nn.infer.arena_bytes");
  validate(graphs, count, want_policy);
  arena_.reset();
  out_.log_probs.clear();
  out_.action_dims.clear();
  out_.values.clear();

  block_rows_.clear();
  for (std::size_t g = 0; g < count; ++g) {
    block_rows_.push_back(graphs[g].features->rows());
  }
  layout_.assign(block_rows_.data(), count);
  const std::size_t total = layout_.total_rows();

  const double* embedding = encode(graphs, layout_);

  if (want_policy) {
    const std::size_t m = static_cast<std::size_t>(config_.max_units_per_step);
    // Stacked actor head: one fused pass over all nodes of all graphs.
    // Graph b's logits are its rows of the stack, which flatten to the
    // contiguous range [offset(b)*m, (offset(b)+rows(b))*m).
    const double* logits = run_mlp(actor_, embedding, total);
    for (std::size_t b = 0; b < count; ++b) {
      const std::size_t dim = layout_.rows(b) * m;
      double* lp = arena_.alloc_doubles(dim);
      k::masked_log_softmax(logits + layout_.offset(b) * m,
                            graphs[b].action_mask->data(), dim, lp);
      out_.log_probs.push_back(lp);
      out_.action_dims.push_back(dim);
    }
  }
  if (want_values) {
    double* pooled = arena_.alloc_doubles(count * encoder_dim_);
    for (std::size_t b = 0; b < count; ++b) {
      k::mean_rows(embedding + layout_.offset(b) * encoder_dim_,
                   layout_.rows(b), encoder_dim_, pooled + b * encoder_dim_);
    }
    const double* values = run_mlp(critic_, pooled, count);
    for (std::size_t b = 0; b < count; ++b) {
      out_.values.push_back(values[b]);
    }
  }
  arena_bytes.set(static_cast<double>(arena_.high_water_bytes()));
}

InferenceEngine::Output InferenceEngine::forward(
    const la::CsrMatrix& adjacency, const la::Matrix& features,
    const std::vector<std::uint8_t>& action_mask, bool want_value) {
  NP_SPAN("nn.infer.forward");
  static obs::Counter& forwards = obs::counter("nn.infer.forwards");
  forwards.add(1);
  GraphInput input{&adjacency, &features, &action_mask};
  run(&input, 1, /*want_policy=*/true, want_value);
  Output output;
  output.log_probs = out_.log_probs[0];
  output.action_dim = out_.action_dims[0];
  output.value = want_value ? out_.values[0] : 0.0;
  return output;
}

double InferenceEngine::value(const la::CsrMatrix& adjacency,
                              const la::Matrix& features) {
  NP_SPAN("nn.infer.forward");
  static obs::Counter& forwards = obs::counter("nn.infer.forwards");
  forwards.add(1);
  GraphInput input{&adjacency, &features, nullptr};
  run(&input, 1, /*want_policy=*/false, /*want_values=*/true);
  return out_.values[0];
}

const InferenceEngine::BatchOutput& InferenceEngine::forward_ragged(
    const GraphInput* graphs, std::size_t count, bool want_values) {
  NP_SPAN("nn.infer.batch");
  static obs::Counter& forwards = obs::counter("nn.infer.batch_forwards");
  forwards.add(1);
  run(graphs, count, /*want_policy=*/true, want_values);
  return out_;
}

}  // namespace np::nn
