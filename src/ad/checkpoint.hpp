// Parameter checkpoints: save/load named parameter sets as plain text.
// Lets a trained NeuroPlan agent be reused across planning cycles
// ("incrementally deployable", §1) without retraining.
//
// Format, line oriented:
//   param <name> <rows> <cols> v_00 v_01 ... (row-major, max precision)
// Loading matches by name and requires identical shapes; unknown names
// in the file or missing parameters throw.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ad/parameter.hpp"

namespace np::ad {

void save_parameters(const std::vector<Parameter*>& parameters, std::ostream& out);
void load_parameters(const std::vector<Parameter*>& parameters, std::istream& in);

void save_parameters_file(const std::vector<Parameter*>& parameters,
                          const std::string& path);
void load_parameters_file(const std::vector<Parameter*>& parameters,
                          const std::string& path);

}  // namespace np::ad
