// bench_diff — compare two BENCH_*.json files (or two directories of
// them) and report which numeric results moved. The perf safety net
// for PRs: CI runs the benches on a shared runner, so the output is a
// *conversation starter*, not a verdict — by default the tool prints
// the movement table and exits 0; --gate turns threshold breaches into
// a non-zero exit for jobs that want to block.
//
//   bench_diff <baseline.json|dir> <candidate.json|dir>
//              [--threshold PCT] [--gate]
//
// Every numeric leaf is flattened to a dotted path (arrays by index:
// modes[0].steps_per_sec), so the tool needs no knowledge of any
// bench's schema — new benches are covered the day they exist.
// Mismatched schema_version fields are flagged: the numbers still
// print, but the header says the comparison may be apples-to-oranges.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "np_json.hpp"

namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void flatten(const np_json::Value& v, const std::string& path,
             std::map<std::string, double>& out) {
  switch (v.kind) {
    case np_json::Value::Kind::kNumber: out[path] = v.number; return;
    case np_json::Value::Kind::kObject:
      for (const auto& [key, child] : v.object) {
        flatten(child, path.empty() ? key : path + "." + key, out);
      }
      return;
    case np_json::Value::Kind::kArray:
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        flatten(v.array[i], path + "[" + std::to_string(i) + "]", out);
      }
      return;
    default: return;  // strings/bools/nulls are provenance, not results
  }
}

struct DiffStats {
  int compared = 0;
  int flagged = 0;
  int only_base = 0;
  int only_cand = 0;
};

/// Diff one parsed pair; prints the movement table. `label` prefixes
/// every path when diffing directories (file name).
void diff_documents(const np_json::Value& base, const np_json::Value& cand,
                    const std::string& label, double threshold_pct,
                    DiffStats& stats) {
  const double base_schema = base.num_or("schema_version", -1);
  const double cand_schema = cand.num_or("schema_version", -1);
  if (base_schema != cand_schema) {
    std::printf("%s: WARNING schema_version %.0f vs %.0f — fields may not "
                "be comparable\n",
                label.c_str(), base_schema, cand_schema);
  }

  std::map<std::string, double> before, after;
  flatten(base, "", before);
  flatten(cand, "", after);

  // Benches stamp hw_warning.thread_starved when recorded on a single
  // hardware thread (bench_common.hpp): scaling series from such a run
  // measure contention, not parallel speedup, so say it loudly before
  // anyone reads a worker curve off this table.
  for (const auto* side : {&before, &after}) {
    for (const auto& [path, value] : *side) {
      if (value != 0.0 && path.size() >= 25 &&
          path.rfind("hw_warning.thread_starved") ==
              path.size() - 25) {
        std::printf("%s: NOTICE %s run is thread-starved (hw_threads <= 1) — "
                    "worker-scaling numbers measure contention, not speedup\n",
                    label.c_str(), side == &before ? "baseline" : "candidate");
        break;
      }
    }
  }

  for (const auto& [path, was] : before) {
    const auto it = after.find(path);
    if (it == after.end()) {
      ++stats.only_base;
      std::printf("  %-52s %14.4g  (dropped)\n", (label + path).c_str(), was);
      continue;
    }
    const double now = it->second;
    ++stats.compared;
    if (now == was) continue;
    const double pct = was != 0.0
                           ? 100.0 * (now - was) / std::fabs(was)
                           : std::numeric_limits<double>::infinity();
    const bool flag = std::fabs(pct) >= threshold_pct;
    if (flag) ++stats.flagged;
    std::printf("  %-52s %14.4g -> %-14.4g %+8.1f%%%s\n",
                (label + path).c_str(), was, now, pct, flag ? "  <<" : "");
  }
  for (const auto& [path, now] : after) {
    if (before.find(path) != before.end()) continue;
    ++stats.only_cand;
    std::printf("  %-52s %14s -> %-14.4g (new)\n", (label + path).c_str(), "-",
                now);
  }
}

int run(int argc, char** argv) {
  const char* base_arg = nullptr;
  const char* cand_arg = nullptr;
  double threshold_pct = 10.0;
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold_pct = std::atof(argv[++i]);
    } else if (arg == "--gate") {
      gate = true;
    } else if (base_arg == nullptr) {
      base_arg = argv[i];
    } else if (cand_arg == nullptr) {
      cand_arg = argv[i];
    } else {
      base_arg = nullptr;
      break;
    }
  }
  if (base_arg == nullptr || cand_arg == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json|dir> <candidate.json|dir>"
                 " [--threshold PCT] [--gate]\n");
    return 2;
  }

  DiffStats stats;
  const bool dirs = fs::is_directory(base_arg);
  if (dirs != fs::is_directory(cand_arg)) {
    std::fprintf(stderr, "bench_diff: cannot mix a file and a directory\n");
    return 2;
  }
  if (!dirs) {
    std::printf("bench_diff: %s vs %s (threshold %.1f%%)\n", base_arg, cand_arg,
                threshold_pct);
    diff_documents(np_json::parse(read_file(base_arg)),
                   np_json::parse(read_file(cand_arg)), "", threshold_pct,
                   stats);
  } else {
    // Pair up BENCH_*.json by file name; a bench present on only one
    // side is reported, not an error (benches come and go across PRs).
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(base_arg)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
          name.substr(name.size() - 5) == ".json") {
        names.push_back(name);
      }
    }
    std::sort(names.begin(), names.end());
    std::printf("bench_diff: %s vs %s (threshold %.1f%%, %zu baseline files)\n",
                base_arg, cand_arg, threshold_pct, names.size());
    for (const std::string& name : names) {
      const fs::path base_file = fs::path(base_arg) / name;
      const fs::path cand_file = fs::path(cand_arg) / name;
      if (!fs::exists(cand_file)) {
        std::printf("%s: missing from candidate side\n", name.c_str());
        continue;
      }
      diff_documents(np_json::parse(read_file(base_file)),
                     np_json::parse(read_file(cand_file)), name + ": ",
                     threshold_pct, stats);
    }
    for (const auto& entry : fs::directory_iterator(cand_arg)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 &&
          !fs::exists(fs::path(base_arg) / name)) {
        std::printf("%s: new bench (no baseline)\n", name.c_str());
      }
    }
  }

  std::printf("compared %d metrics: %d over %.1f%% threshold, %d dropped, "
              "%d new\n",
              stats.compared, stats.flagged, threshold_pct, stats.only_base,
              stats.only_cand);
  if (gate && stats.flagged > 0) {
    std::fprintf(stderr, "bench_diff: --gate and %d metric(s) moved more "
                         "than %.1f%%\n",
                 stats.flagged, threshold_pct);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 1;
  }
}
