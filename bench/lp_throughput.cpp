// LP throughput microbench: pricing rules x basis engines on the
// scenario feasibility LPs, written as JSON for
// scripts/bench_rollout.sh -> BENCH_lp.json.
//
// The workload replays a reproducible monotone capacity trajectory
// with the RL env's action granularity — each step adds one capacity
// unit to one (seeded-random) link, after which every scenario LP of
// the topology is re-solved, exactly what the plan evaluators do per
// env step. Both evaluator formulations are measured —
//   * "aggregated"  — source-aggregated rows (the stateful-evaluator
//                     training hot path; topology B: ~84 rows), and
//   * "per_flow"    — one commodity per flow (the vanilla-evaluator
//                     formulation; topology B: ~164 rows, where the
//                     dense engine's O(m^2)/O(m^3) costs dominate).
// For every topology and formulation, each pricing rule (Dantzig /
// devex / steepest edge) runs the workload on the sparse-LU engine,
// cold (every solve from scratch) and warm (the basis of the previous
// solve of the same scenario carried forward, exactly what the
// evaluators do across env steps). The dense-inverse engine runs once
// per formulation under devex as the engine-comparison reference.
// Every configuration is preceded by a discarded warm-up execution so
// one-off process costs (allocator page faults, cache and frequency
// ramp-up) are not charged to whichever configuration runs first.
//
// Headline metrics:
//   * cold_iterations_vs_dantzig — per rule, Dantzig cold mean
//     iterations / rule cold mean iterations (the pricing win);
//   * sparse_vs_dense_solves_per_sec — engine speedup in the hot-path
//     configuration (warm starts) on the full per-flow formulation;
//   * warm_vs_cold_iteration_ratio — the warm-start win (mean
//     iterations cold / warm) for the sparse engine on the aggregated
//     hot-path LPs.
//
// Knobs: NEUROPLAN_TOPOS (letters, default BC),
//        NEUROPLAN_LP_RULES (comma-separated subset of
//            dantzig,devex,steepest-edge — the weekly ASan workflow's
//            pricing axis; default all three),
//        NEUROPLAN_LP_CHECKS (env steps in the trajectory, default 48),
//        NEUROPLAN_SEED (default 7).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "lp/simplex.hpp"
#include "obs/obs.hpp"
#include "plan/scenario_lp.hpp"
#include "topo/generator.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace np;

constexpr lp::PricingRule kAllRules[] = {
    lp::PricingRule::kDantzig,
    lp::PricingRule::kDevex,
    lp::PricingRule::kSteepestEdge,
};

std::vector<lp::PricingRule> rules_from_env() {
  const std::string spec =
      env_string("NEUROPLAN_LP_RULES", "dantzig,devex,steepest-edge");
  std::vector<lp::PricingRule> rules;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(start, comma - start);
    for (const lp::PricingRule rule : kAllRules) {
      if (token == lp::to_string(rule)) rules.push_back(rule);
    }
    start = comma + 1;
  }
  if (rules.empty()) {
    std::fprintf(stderr, "NEUROPLAN_LP_RULES=%s matches no rule; using all\n",
                 spec.c_str());
    rules.assign(std::begin(kAllRules), std::end(kAllRules));
  }
  return rules;
}

/// Reproducible monotone capacity trajectory with the env's action
/// granularity: one unit added to one seeded-random link per step
/// (respecting spectrum headroom), one plan snapshot per step. Warm
/// solves therefore see exactly the basis perturbation the evaluators
/// see between env steps.
std::vector<std::vector<int>> make_workload(const topo::Topology& topology,
                                            int steps, unsigned seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> plans;
  std::vector<int> units = topology.initial_units();
  for (int c = 0; c < steps; ++c) {
    const int l = static_cast<int>(rng.uniform_index(topology.num_links()));
    if (topology.spectrum_headroom_units(l, units) > 0) units[l] += 1;
    plans.push_back(units);
  }
  return plans;
}

struct PassResult {
  long solves = 0;
  long iterations = 0;
  double seconds = 0.0;          ///< wall-clock over the whole pass
  double pricing_seconds = 0.0;  ///< time inside pricing (per lp::Solution)
  double solves_per_sec() const { return solves / seconds; }
  double iterations_per_sec() const { return iterations / seconds; }
  double mean_iterations() const {
    return solves > 0 ? static_cast<double>(iterations) / solves : 0.0;
  }
  double pricing_share() const {
    return seconds > 0.0 ? pricing_seconds / seconds : 0.0;
  }
};

/// Replay the workload over the given scenario LPs with one engine and
/// pricing rule.
PassResult run_pass(const topo::Topology& topology,
                    const std::vector<std::vector<int>>& plans,
                    std::vector<plan::ScenarioLp>& lps,
                    lp::SimplexEngine engine, lp::PricingRule rule, bool warm) {
  lp::SimplexOptions options;
  options.max_iterations = 1000000;
  options.engine = engine;
  options.pricing = rule;

  PassResult pass;
  Stopwatch watch;
  for (const auto& plan : plans) {
    for (plan::ScenarioLp& lp : lps) {
      plan::set_plan_capacities(lp, topology, plan);
      const plan::ScenarioCheck check =
          plan::solve_scenario(lp, options, /*use_warm_start=*/warm);
      ++pass.solves;
      pass.iterations += check.lp_iterations;
      pass.pricing_seconds += check.pricing_seconds;
    }
  }
  pass.seconds = watch.seconds();
  return pass;
}

/// Timed measurement behind a discarded warm-up execution of the same
/// pass. The warm-up serves two purposes: it absorbs one-off process
/// costs (page faults into the allocator arenas, cache and
/// branch-predictor warm-up, CPU frequency ramp) that would otherwise
/// be charged to whichever configuration runs first, and — because the
/// ScenarioLp objects are shared — it primes the stored bases so the
/// warm configuration measures steady-state cross-step basis reuse,
/// the state the evaluators live in after the first env step, instead
/// of charging the one-off cold ramp-in to every warm number.
PassResult measure(const topo::Topology& topology,
                   const std::vector<std::vector<int>>& plans, bool aggregate,
                   lp::SimplexEngine engine, lp::PricingRule rule, bool warm) {
  std::vector<plan::ScenarioLp> lps;
  const int scenarios = topology.num_failures() + 1;
  lps.reserve(scenarios);
  for (int s = 0; s < scenarios; ++s) {
    lps.push_back(plan::build_scenario_lp(topology, s, aggregate));
  }
  run_pass(topology, plans, lps, engine, rule, warm);  // warm-up, discarded
  // Best-of-2: the faster execution is the estimate least polluted by
  // scheduler and frequency noise (the workload is deterministic, so
  // the two runs differ only in interference).
  PassResult best = run_pass(topology, plans, lps, engine, rule, warm);
  const PassResult second = run_pass(topology, plans, lps, engine, rule, warm);
  if (second.seconds < best.seconds) best = second;
  return best;
}

struct RuleResult {
  lp::PricingRule rule = lp::PricingRule::kDantzig;
  PassResult cold, warm;
};

struct FormulationResult {
  int rows = 0;
  std::vector<RuleResult> rules;          // sparse-LU engine, one per rule
  lp::PricingRule dense_rule = lp::PricingRule::kDevex;
  PassResult dense_cold, dense_warm;      // dense-inverse reference

  const RuleResult* find(lp::PricingRule rule) const {
    for (const RuleResult& r : rules) {
      if (r.rule == rule) return &r;
    }
    return nullptr;
  }
  /// The devex rows when measured, else the first rule — also the rule
  /// the dense reference runs under, so the engine speedups compare
  /// equal pricing.
  const RuleResult& reference_rule() const {
    const RuleResult* devex = find(lp::PricingRule::kDevex);
    return devex != nullptr ? *devex : rules.front();
  }
  double cold_speedup() const {
    return reference_rule().cold.solves_per_sec() / dense_cold.solves_per_sec();
  }
  double warm_speedup() const {
    return reference_rule().warm.solves_per_sec() / dense_warm.solves_per_sec();
  }
};

FormulationResult run_formulation(const topo::Topology& topology,
                                  const std::vector<std::vector<int>>& plans,
                                  const std::vector<lp::PricingRule>& rules,
                                  bool aggregate) {
  FormulationResult result;
  result.rows =
      plan::build_scenario_lp(topology, 0, aggregate).model.num_rows();
  for (const lp::PricingRule rule : rules) {
    RuleResult rr;
    rr.rule = rule;
    rr.cold = measure(topology, plans, aggregate, lp::SimplexEngine::kSparseLu,
                      rule, /*warm=*/false);
    rr.warm = measure(topology, plans, aggregate, lp::SimplexEngine::kSparseLu,
                      rule, /*warm=*/true);
    result.rules.push_back(rr);
  }
  result.dense_rule = result.reference_rule().rule;
  result.dense_cold = measure(topology, plans, aggregate,
                              lp::SimplexEngine::kDenseInverse,
                              result.dense_rule, /*warm=*/false);
  result.dense_warm = measure(topology, plans, aggregate,
                              lp::SimplexEngine::kDenseInverse,
                              result.dense_rule, /*warm=*/true);
  return result;
}

struct TopologyResult {
  char preset = 'B';
  int scenarios = 0;
  FormulationResult aggregated, per_flow;
};

void print_text(const char* name, const FormulationResult& r) {
  std::printf("%s (%d rows):\n", name, r.rows);
  const RuleResult* dantzig = r.find(lp::PricingRule::kDantzig);
  for (const RuleResult& rr : r.rules) {
    std::printf("  %-13s cold %7.1f solves/s (%6.1f iters, %4.1f%% pricing), "
                "warm %8.1f solves/s (%4.1f iters)",
                lp::to_string(rr.rule), rr.cold.solves_per_sec(),
                rr.cold.mean_iterations(), 100.0 * rr.cold.pricing_share(),
                rr.warm.solves_per_sec(), rr.warm.mean_iterations());
    if (dantzig != nullptr && rr.rule != lp::PricingRule::kDantzig &&
        rr.cold.mean_iterations() > 0.0) {
      std::printf("  [%.2fx fewer cold iters]",
                  dantzig->cold.mean_iterations() / rr.cold.mean_iterations());
    }
    std::printf("\n");
  }
  std::printf("  dense-inverse (%s): cold %.1f solves/s, warm %.1f solves/s "
              "-> sparse %.2fx cold, %.2fx warm\n",
              lp::to_string(r.dense_rule), r.dense_cold.solves_per_sec(),
              r.dense_warm.solves_per_sec(), r.cold_speedup(),
              r.warm_speedup());
}

void print_json_pass(std::FILE* out, const char* indent, const char* key,
                     const PassResult& pass, bool trailing_comma) {
  std::fprintf(out,
               "%s\"%s\": {\"solves\": %ld, \"iterations\": %ld, "
               "\"seconds\": %.4f, \"solves_per_sec\": %.2f, "
               "\"iterations_per_sec\": %.1f, \"mean_iterations\": %.2f, "
               "\"pricing_seconds\": %.4f, \"pricing_share\": %.3f}%s\n",
               indent, key, pass.solves, pass.iterations, pass.seconds,
               pass.solves_per_sec(), pass.iterations_per_sec(),
               pass.mean_iterations(), pass.pricing_seconds,
               pass.pricing_share(), trailing_comma ? "," : "");
}

void print_json_formulation(std::FILE* out, const char* name,
                            const FormulationResult& r, bool trailing_comma) {
  std::fprintf(out, "      \"%s\": {\n        \"rows\": %d,\n", name, r.rows);
  std::fprintf(out, "        \"sparse_lu\": {\n");
  for (std::size_t k = 0; k < r.rules.size(); ++k) {
    std::fprintf(out, "          \"%s\": {\n", lp::to_string(r.rules[k].rule));
    print_json_pass(out, "            ", "cold", r.rules[k].cold, true);
    print_json_pass(out, "            ", "warm", r.rules[k].warm, false);
    std::fprintf(out, "          }%s\n",
                 k + 1 < r.rules.size() ? "," : "");
  }
  std::fprintf(out, "        },\n        \"dense_inverse\": {\n");
  std::fprintf(out, "          \"rule\": \"%s\",\n",
               lp::to_string(r.dense_rule));
  print_json_pass(out, "          ", "cold", r.dense_cold, true);
  print_json_pass(out, "          ", "warm", r.dense_warm, false);
  std::fprintf(out, "        },\n");
  const RuleResult* dantzig = r.find(lp::PricingRule::kDantzig);
  std::fprintf(out, "        \"cold_iterations_vs_dantzig\": {");
  bool first = true;
  for (const RuleResult& rr : r.rules) {
    const double ratio =
        dantzig != nullptr && rr.cold.mean_iterations() > 0.0
            ? dantzig->cold.mean_iterations() / rr.cold.mean_iterations()
            : 0.0;
    std::fprintf(out, "%s\"%s\": %.3f", first ? "" : ", ",
                 lp::to_string(rr.rule), ratio);
    first = false;
  }
  std::fprintf(out, "},\n");
  std::fprintf(out,
               "        \"sparse_vs_dense_cold\": %.3f,\n"
               "        \"sparse_vs_dense_warm\": %.3f\n"
               "      }%s\n",
               r.cold_speedup(), r.warm_speedup(), trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  obs::configure_from_env();  // NEUROPLAN_TRACE_OUT / NEUROPLAN_METRICS_OUT
  const std::string topos = env_string("NEUROPLAN_TOPOS", "BC");
  const unsigned seed = static_cast<unsigned>(env_long("NEUROPLAN_SEED", 7));
  const int checks = static_cast<int>(env_long("NEUROPLAN_LP_CHECKS", 48));
  const std::vector<lp::PricingRule> rules = rules_from_env();

  std::vector<TopologyResult> results;
  for (const char preset : topos) {
    const topo::Topology topology = topo::make_preset(preset);
    const auto plans = make_workload(topology, checks, seed);
    TopologyResult tr;
    tr.preset = preset;
    tr.scenarios = topology.num_failures() + 1;
    std::printf("topology %c: %d scenario LPs x %d env steps\n", preset,
                tr.scenarios, checks);
    tr.aggregated = run_formulation(topology, plans, rules, /*aggregate=*/true);
    print_text("  aggregated (stateful hot path)", tr.aggregated);
    tr.per_flow = run_formulation(topology, plans, rules, /*aggregate=*/false);
    print_text("  per-flow (vanilla evaluator)", tr.per_flow);
    results.push_back(std::move(tr));
  }

  // Headlines, computed on the first topology: the pricing win on the
  // per-flow cold configuration (the acceptance metric), the engine
  // speedup warm on per-flow, and the warm-start iteration win on the
  // aggregated hot path.
  const TopologyResult& head = results.front();
  const RuleResult& head_ref = head.per_flow.reference_rule();
  const RuleResult* head_dantzig = head.per_flow.find(lp::PricingRule::kDantzig);
  const double pricing_win =
      head_dantzig != nullptr && head_ref.cold.mean_iterations() > 0.0
          ? head_dantzig->cold.mean_iterations() /
                head_ref.cold.mean_iterations()
          : 0.0;
  const double engine_speedup = head.per_flow.warm_speedup();
  const RuleResult& agg_ref = head.aggregated.reference_rule();
  const double warm_iteration_ratio =
      agg_ref.warm.mean_iterations() > 0.0
          ? agg_ref.cold.mean_iterations() / agg_ref.warm.mean_iterations()
          : 0.0;
  std::printf("%s vs dantzig (topology %c, per-flow cold): %.2fx fewer iterations\n",
              lp::to_string(head_ref.rule), head.preset, pricing_win);
  std::printf("sparse vs dense (per-flow warm): %.2fx solves/sec\n",
              engine_speedup);
  std::printf("warm vs cold (sparse, aggregated): %.2fx fewer iterations/solve\n",
              warm_iteration_ratio);

  const char* out_path = argc > 1 ? argv[1] : "BENCH_lp.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::print_json_provenance(out);
  std::fprintf(out,
               "  \"benchmark\": \"lp_throughput\",\n"
               "  \"capacity_steps\": %d,\n"
               "  \"pricing_rules\": [",
               checks);
  for (std::size_t k = 0; k < rules.size(); ++k) {
    std::fprintf(out, "%s\"%s\"", k > 0 ? ", " : "", lp::to_string(rules[k]));
  }
  std::fprintf(out, "],\n  \"topologies\": {\n");
  for (std::size_t t = 0; t < results.size(); ++t) {
    const TopologyResult& tr = results[t];
    std::fprintf(out,
                 "    \"%c\": {\n      \"scenarios\": %d,\n",
                 tr.preset, tr.scenarios);
    print_json_formulation(out, "aggregated", tr.aggregated, true);
    print_json_formulation(out, "per_flow", tr.per_flow, false);
    std::fprintf(out, "    }%s\n", t + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out,
               "  \"cold_iterations_vs_dantzig\": %.3f,\n"
               "  \"sparse_vs_dense_solves_per_sec\": %.3f,\n"
               "  \"warm_vs_cold_iteration_ratio\": %.3f\n"
               "}\n",
               pricing_win, engine_speedup, warm_iteration_ratio);
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}
