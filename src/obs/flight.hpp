// Black-box flight recorder: an always-on, fixed-capacity, lock-free
// per-thread ring buffer of structured events, dumped as a versioned
// *.npcrash JSON report when the process dies (contract violation,
// fatal signal, std::terminate), when a watchdog escalates a stall, or
// explicitly at exit (--flight-record-out).
//
// Recording discipline: an event costs a thread-local lookup, one
// clock read and a handful of relaxed atomic stores — no locks, no
// allocation (after a thread's first event), no syscalls. Every field
// of a ring slot is a relaxed atomic: the owning thread is the only
// writer, but the dump path (possibly a signal handler in *another*
// thread, or the crashing thread itself) reads rings concurrently, so
// the slots must be tear-free per field. A slot being overwritten
// while the dump reads it can yield one mixed old/new event at the
// ring's oldest edge — acceptable in a crash report, never UB.
//
// Dump discipline: the dump path is async-signal-safe — write(2) into
// a small stack buffer, hand-rolled number formatting, no malloc, no
// stdio, no locks taken unconditionally (the metrics snapshot uses
// Registry::try_visit_for_crash, which try_locks and is skipped if the
// interrupted thread held the registration mutex). One report per
// process: the first fatal trigger wins; non-fatal triggers (watchdog
// stall, exit dump) never overwrite a fatal report and vice versa a
// fatal report overwrites a non-fatal one.
//
// Layering: np_obs must never link np_util, so this header is std-only
// (plus the sanctioned header-only util/mutex.hpp — unused here).
// util/check.cpp and util/fault.cpp call down into fr hooks, which is
// the allowed direction (np_util links np_obs).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace np::obs {

/// What a flight-recorder event describes. Values are part of the
/// .npcrash format (emitted as strings; see fr_event_kind_name).
enum class FrEventKind : std::uint8_t {
  kNone = 0,
  kSpanBegin,
  kSpanEnd,
  kContractViolation,
  kDeadlineHit,
  kVerdictDegraded,
  kFaultInjected,
  kCheckpointSave,
  kEpochBoundary,
  kStall,
  kAnnotation,
};

/// Stable string for a kind ("span_begin", "stall", ...).
const char* fr_event_kind_name(FrEventKind kind);

/// Runtime gate, on by default (NEUROPLAN_FLIGHT_RECORD=off|0 disables
/// at startup). Checked with one relaxed load per event.
bool flight_recorder_enabled();
void set_flight_recorder_enabled(bool enabled);

/// Record one event on the calling thread's ring. `name` must outlive
/// the process (string literal, registry key, or other stable storage)
/// — rings store the pointer. No-op when disabled.
void fr_record(FrEventKind kind, const char* name, long a = 0, long b = 0);

namespace fr_detail {

/// Per-thread recorder state. Leaked on purpose: the dump must be able
/// to read the tail of threads that have already exited (pool workers
/// from an earlier phase often explain the crash).
struct ThreadRecord {
  static constexpr std::size_t kRingCapacity = 512;  // power of two
  static constexpr int kMaxSpanDepth = 64;

  struct Event {
    std::atomic<double> ts_us{0.0};
    std::atomic<const char*> name{nullptr};
    std::atomic<long> a{0};
    std::atomic<long> b{0};
    std::atomic<std::uint8_t> kind{0};
  };

  int tid = 0;  ///< 1-based registration order (independent of trace tids)
  /// Total events ever recorded; slot = (head - 1) & (capacity - 1).
  /// release-stored after the slot fields so readers see whole events.
  std::atomic<std::uint64_t> head{0};
  Event ring[kRingCapacity];

  /// Active NP_SPAN stack (entries above kMaxSpanDepth are counted in
  /// depth but not stored, so deep recursion degrades instead of UB).
  std::atomic<int> span_depth{0};
  std::atomic<const char*> span_stack[kMaxSpanDepth];

  /// Watchdog heartbeat published by HeartbeatScope. name == nullptr
  /// means "no heartbeat armed — do not monitor this thread".
  std::atomic<const char*> hb_name{nullptr};
  std::atomic<long> hb_progress{0};
  std::atomic<double> hb_ts_us{0.0};
};

/// The calling thread's record, registering it on first use. Returns
/// nullptr once the process-wide thread-slot table is full (the thread
/// simply stops recording; fr.thread_overflow counts the loss).
ThreadRecord* thread_record();

/// The calling thread's record without registering (nullptr if this
/// thread never recorded) — safe from a signal handler.
ThreadRecord* thread_record_or_null();

/// Registered records, for the dump and the watchdog monitor. Fills
/// `out[0..returned)`; capacity of `out` must be >= max_threads().
int snapshot_thread_records(ThreadRecord** out, int capacity);
int max_threads();

/// Span-stack hooks used by obs::Span (trace.hpp).
void fr_span_begin(const char* name);
void fr_span_end();

}  // namespace fr_detail

// ---------------------------------------------------------------------------
// Dump triggers and report plumbing.

/// Arm `path` as the report destination and request a non-fatal "exit"
/// dump from obs::shutdown(). Empty/null disarms. Resets the
/// one-report-per-process latch (tests re-arm between cases).
void set_flight_record_path(const char* path);

/// Install SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL and std::terminate
/// handlers that dump the report and then re-raise the default action.
/// If no path was armed, arms an implicit "np_crash_<pid>.npcrash" in
/// the working directory (crash-only: no exit dump). Idempotent.
void install_crash_handlers();

bool flight_record_armed();
const char* flight_record_path();  ///< empty string when unarmed
/// True once a report has been written to the armed path.
bool flight_record_dumped();

/// Write a complete report to `path` (or the armed path when `path` is
/// null). `fatal` dumps overwrite earlier non-fatal ones; a second
/// dump of the same class is skipped (first trigger wins). Returns
/// true when a report was written. Async-signal-safe when `path` and
/// the trigger strings are pre-existing (no allocation happens).
bool dump_flight_record(const char* trigger_kind, const char* trigger_name,
                        const char* trigger_detail, bool fatal,
                        const char* path = nullptr);

/// Free-form provenance line embedded in the report (the CLI stores
/// its command line here). Truncated to an internal fixed buffer.
void set_run_annotation(const char* text);

/// Hook for util/check.cpp: records a contract-violation event and, if
/// a path is armed, writes a fatal report before the exception unwinds.
void fr_on_contract_violation(const char* file, int line, const char* expr);

/// Non-fatal "exit" dump if set_flight_record_path() armed one and no
/// report exists yet. Called by obs::shutdown().
void fr_dump_at_exit();

// Test/introspection helpers.
std::uint64_t fr_total_events();  ///< sum of ring heads over all threads
int fr_thread_count();            ///< registered recorder threads

}  // namespace np::obs
