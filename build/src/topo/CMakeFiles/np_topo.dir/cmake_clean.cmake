file(REMOVE_RECURSE
  "CMakeFiles/np_topo.dir/generator.cpp.o"
  "CMakeFiles/np_topo.dir/generator.cpp.o.d"
  "CMakeFiles/np_topo.dir/paths.cpp.o"
  "CMakeFiles/np_topo.dir/paths.cpp.o.d"
  "CMakeFiles/np_topo.dir/serialize.cpp.o"
  "CMakeFiles/np_topo.dir/serialize.cpp.o.d"
  "CMakeFiles/np_topo.dir/topology.cpp.o"
  "CMakeFiles/np_topo.dir/topology.cpp.o.d"
  "CMakeFiles/np_topo.dir/transform.cpp.o"
  "CMakeFiles/np_topo.dir/transform.cpp.o.d"
  "libnp_topo.a"
  "libnp_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
