# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/ad_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/milp_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/rl_test[1]_include.cmake")
include("/root/repo/build/tests/gat_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/lazy_test[1]_include.cmake")
