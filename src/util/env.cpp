#include "util/env.hpp"

#include <cstdlib>

namespace np {

long env_long(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  return (end != nullptr && *end == '\0') ? value : fallback;
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  return (end != nullptr && *end == '\0') ? value : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? fallback : std::string(raw);
}

}  // namespace np
