// Planning-MILP builder: the paper's §3.1 formulation (Eq. 1-5).
//
// Decision variables are per-link *added* capacity units (integers).
// Total capacity C_l = initial_units_l + added_l, so the existing-
// topology constraint (Eq. 5, C_l >= C_l^min) holds by construction and
// the objective (Eq. 1) reduces to the cost of the additions.
//
// FormulationOptions exposes the levers the paper's workflows need:
//  * max_added_units  — per-link upper bounds; this is how the NeuroPlan
//                       second stage encodes the RL plan x relax factor
//                       alpha as "maximum capacity constraints" (§4.3),
//                       and how ILP-heur restricts candidates.
//  * failure_subset   — the failure-selection heuristic (§3.2) solves
//                       with a growing subset of scenarios.
//  * unit_multiplier  — the capacity-unit-enlargement heuristic (§3.2):
//                       plan in multiples of the base unit, shrinking
//                       the integer search space at an optimality loss.
//  * aggregate_sources — source aggregation (§5), on by default.
#pragma once

#include <vector>

#include "lp/model.hpp"
#include "topo/topology.hpp"

namespace np::plan {

struct FormulationOptions {
  bool aggregate_sources = true;
  int unit_multiplier = 1;
  /// Per-link cap on ADDED units (base units); empty = spectrum cap.
  std::vector<int> max_added_units;
  /// Per-link floor on ADDED units (base units); empty = zero. Used by
  /// repair solves that may only top up an existing plan.
  std::vector<int> min_added_units;
  /// Indices into topology.failures(); empty = all failures.
  std::vector<int> failure_subset;
  bool use_all_failures = true;  ///< when false, only failure_subset
  bool include_healthy = true;
  /// Upper bound on the total addition cost (0 disables). When a plan
  /// of this cost is already known (e.g. NeuroPlan's first-stage plan),
  /// the cutoff is a valid inequality that sharply shrinks the MILP's
  /// polytope — the solver only has to look for improvements.
  double max_total_cost = 0.0;
};

class PlanningMilp {
 public:
  PlanningMilp(const topo::Topology& topology, const FormulationOptions& options);

  const lp::Model& model() const { return model_; }
  lp::Model& model() { return model_; }

  /// Integer variable index of link l's added units (multiplier units).
  int added_var(int link) const { return added_vars_.at(link); }

  int unit_multiplier() const { return multiplier_; }

  /// Convert a MILP solution vector into per-link added BASE units.
  std::vector<int> extract_added_units(const std::vector<double>& x) const;

 private:
  lp::Model model_;
  std::vector<int> added_vars_;
  int multiplier_ = 1;
  int num_links_ = 0;
};

}  // namespace np::plan
