// Figure 9: scalability on the five production-like topologies.
//
// Compares First-stage, NeuroPlan (alpha = 1.5), ILP-heur and the exact
// ILP on A..E. Costs are normalized to ILP-heur per topology; crosses
// mark solvers that could not produce a (proven) plan within budget —
// in the paper, ILP only solves topology A.
#include "bench_common.hpp"
#include "core/baselines.hpp"

int main() {
  using namespace np;
  bench::print_header(
      "Figure 9: large-scale comparison",
      "Costs normalized to ILP-heur on each topology; alpha = 1.5.\n"
      "'x' = no proven solution within the budget (the paper's crosses).");

  const std::string topos = bench::topo_selection("ABCDE");
  Table table({"topology", "ILP", "ILP-heur", "First-stage", "NeuroPlan",
               "np secs", "heur secs"});
  for (char id : topos) {
    const topo::Topology topology = topo::make_preset(id);

    core::IlpConfig ilp_config;
    ilp_config.time_limit_seconds = bench::ilp_time_budget();
    const core::PlanResult exact = core::solve_ilp(topology, ilp_config);

    core::IlpHeurConfig heur_config;
    heur_config.time_limit_per_solve_seconds =
        env_double("NEUROPLAN_HEUR_TIME", 30.0);
    heur_config.relative_gap = 1e-3;
    const core::PlanResult heur = core::solve_ilp_heur(topology, heur_config);

    core::NeuroPlanConfig config;
    config.train = bench::bench_train_config(topology, id, bench::bench_seed());
    config.relax_factor = 1.5;
    config.ilp_time_limit_seconds = bench::stage2_budget(id);
    config.ilp_relative_gap = 1e-2;
    const core::NeuroPlanResult result = core::neuroplan(topology, config);

    const double norm = heur.feasible ? heur.cost : 1.0;
    table.add_row(
        {std::string(1, id),
         fmt_or_cross(exact.cost / norm, exact.feasible && !exact.timed_out, 3),
         heur.feasible ? "1.000" : "x",
         fmt_or_cross(result.first_stage.cost / norm, result.first_stage.feasible, 3),
         fmt_or_cross(result.final.cost / norm, result.final.feasible, 3),
         fmt_double(result.train_seconds + result.ilp_seconds, 1),
         fmt_double(heur.seconds, 1)});
    std::printf("  [%c] ILP: %s | heur: %s | NeuroPlan: %s\n", id,
                exact.detail.c_str(), heur.detail.c_str(),
                result.final.detail.c_str());
  }
  table.print();
  std::printf("\nExpected shape (paper): ILP solves only A (crosses beyond);\n"
              "ILP-heur over-trades on A; NeuroPlan 11-17%% cheaper than\n"
              "ILP-heur on B-E.\n");
  return 0;
}
