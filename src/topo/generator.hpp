// Synthetic production-like WAN generator.
//
// The paper evaluates on five proprietary Facebook backbone topologies
// (A..E, ascending size). We reproduce their *structure*: multi-region
// backbones (regional rings with chords, 2x-redundant long-haul
// inter-region fibers), parallel IP links over distinct fiber paths,
// express IP links spanning several fibers, gravity-model traffic with
// two Classes of Service, and failure sets of single-fiber cuts plus
// site failures. Sizes are scaled to a CPU budget; see DESIGN.md §2
// for the substitution rationale.
//
// Every generated instance is *guaranteed plannable*: the generator
// verifies that each required flow remains topologically connected
// under every failure (dropping the rare failure that would disconnect
// one) and that fiber spectrum suffices for worst-case routing.
#pragma once

#include <string>

#include "topo/topology.hpp"

namespace np::topo {

struct GeneratorParams {
  std::string name = "synthetic";
  unsigned seed = 1;

  // ---- optical layer ----
  int regions = 2;
  int sites_per_region = 3;
  int chords_per_region = 1;       ///< extra intra-region fibers beyond the ring
  int interregion_fibers = 2;      ///< disjoint long-hauls between adjacent regions
  double region_radius_km = 300.0;
  double backbone_radius_km = 2000.0;
  double spectrum_ghz = 4800.0;    ///< S_f per fiber
  double fiber_cost_per_km = 10.0; ///< build cost = this * length

  // ---- IP layer ----
  /// Fraction of single-fiber IP links that get a parallel sibling over
  /// a physically distinct (second) fiber.
  double parallel_link_fraction = 0.3;
  int express_links = 2;           ///< IP links over two-fiber paths
  double spectrum_per_unit_ghz = 37.5;
  /// Distance-adaptive modulation: longer IP paths need lower-order
  /// modulation and therefore more spectrum per capacity unit (the
  /// spectral-efficiency literature the paper builds its Eq. 4 on).
  /// When set, spectrum_per_unit_ghz becomes the mid tier and links get
  /// 2/3 x (short, < short_reach_km), 1 x (mid), or 4/3 x (long).
  bool distance_adaptive_modulation = false;
  double short_reach_km = 700.0;
  double long_reach_km = 2500.0;
  double capacity_unit_gbps = 100.0;
  /// Existing capacity = this fraction of a shortest-path reference
  /// plan (0 -> long-term planning from scratch).
  double initial_capacity_fraction = 0.25;

  // ---- traffic ----
  int num_flows = 10;
  double total_demand_tbps = 4.0;  ///< sum of flow demands
  double silver_fraction = 0.3;    ///< CoS mix; silver is unprotected
  /// Flows originate only from the heaviest `max_flow_sources` sites
  /// (0 = unlimited). Production WAN traffic is hub-heavy (datacenters
  /// source most bytes); this also bounds the per-scenario LP size,
  /// which scales with the number of distinct sources.
  int max_flow_sources = 0;

  // ---- failures ----
  int single_fiber_failures = 8;   ///< sampled single-fiber cuts
  int site_failures = 1;
  /// Shared-risk link groups: parallel (twin) fibers ride the same
  /// conduit, so a backhoe cuts both. When set, each twin pair also
  /// yields one two-fiber conduit failure — the cross-layer coupling
  /// the paper's §1 calls out ("a failure in the optical layer may
  /// affect multiple links in the IP layer").
  bool conduit_failures = false;

  // ---- cost model ----
  double ip_cost_per_gbps_km = 0.01;
};

/// Generate a topology; throws std::invalid_argument on nonsense
/// parameters and std::runtime_error if it cannot build a plannable
/// instance (does not happen for the presets).
Topology generate(const GeneratorParams& params);

/// Paper-scale presets 'A'..'E' (ascending size, Figure 7/9 workloads).
GeneratorParams preset(char topology_id);

/// Convenience: generate preset `topology_id` with the given seed.
Topology make_preset(char topology_id, unsigned seed = 1);

/// The A-x synthetic variants of §6.2: scale every link's existing
/// capacity to `fraction` of its current value (A-0 .. A-1).
Topology scale_initial_capacity(const Topology& topology, double fraction);

}  // namespace np::topo
