#include "util/thread_pool.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace np::util {

namespace {

// Pool telemetry: how many tasks flow through, how deep the queue
// gets, and how long tasks wait before a worker picks them up — the
// "are workers starving or drowning" signals. All lock-free updates on
// instruments cached once per process.
obs::Counter& tasks_counter() {
  static obs::Counter& c = obs::counter("pool.tasks");
  return c;
}

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::gauge("pool.queue_depth");
  return g;
}

obs::Histogram& queue_latency_histogram() {
  // 1us .. ~4s: pool tasks are scenario groups / env-step rounds, so
  // waits span from "popped immediately" to "behind a full round".
  static obs::Histogram& h =
      obs::histogram("pool.task_queue_us", obs::exponential_buckets(1.0, 4.0, 12));
  return h;
}

}  // namespace

ThreadPool::ThreadPool(int workers) {
  if (workers < 0) throw std::invalid_argument("ThreadPool: negative worker count");
  threads_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask item;
    {
      LockGuard lock(mutex_);
      while (!stopping_ && queue_.empty()) ready_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ with a drained queue
      item = std::move(queue_.front());
      queue_.pop();
    }
    queue_depth_gauge().add(-1.0);
    queue_latency_histogram().observe(obs::now_us() - item.enqueue_us);
    item.task();  // packaged_task stores any exception in the future
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> result = wrapped.get_future();
  tasks_counter().add(1);
  if (threads_.empty()) {
    wrapped();  // inline execution never queues: no depth/latency signal
    return result;
  }
  {
    LockGuard lock(mutex_);
    if (stopping_) throw std::logic_error("ThreadPool::submit: pool is stopping");
    queue_.push(QueuedTask{std::move(wrapped), obs::now_us()});
  }
  queue_depth_gauge().add(1.0);
  ready_.notify_one();
  return result;
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (threads_.empty()) {
    tasks_counter().add(static_cast<long>(tasks.size()));
    for (auto& task : tasks) task();  // inline; first exception propagates as-is
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(tasks.size() - 1);
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    pending.push_back(submit(std::move(tasks[i])));
  }
  tasks_counter().add(1);  // tasks[0] runs on the caller, bypassing submit()
  std::exception_ptr first;
  try {
    tasks[0]();
  } catch (...) {
    first = std::current_exception();
  }
  for (std::future<void>& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace np::util
