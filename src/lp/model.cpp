#include "lp/model.hpp"

#include <cmath>
#include <stdexcept>

namespace np::lp {

int Model::add_variable(double lower, double upper, double objective,
                        std::string name, bool is_integer) {
  if (lower > upper) throw std::invalid_argument("Model: variable lower > upper");
  if (!std::isfinite(objective)) throw std::invalid_argument("Model: non-finite objective");
  variables_.push_back({lower, upper, objective, is_integer, std::move(name)});
  return static_cast<int>(variables_.size()) - 1;
}

int Model::add_row(double lower, double upper, std::vector<Coefficient> coefficients,
                   std::string name) {
  if (lower > upper) throw std::invalid_argument("Model: row lower > upper");
  for (const auto& [var, coeff] : coefficients) {
    check_variable_index(var);
    if (!std::isfinite(coeff)) throw std::invalid_argument("Model: non-finite coefficient");
  }
  rows_.push_back({lower, upper, std::move(coefficients), std::move(name)});
  return static_cast<int>(rows_.size()) - 1;
}

void Model::check_variable_index(int index) const {
  if (index < 0 || index >= num_variables()) {
    throw std::out_of_range("Model: variable index " + std::to_string(index));
  }
}

void Model::check_row_index(int index) const {
  if (index < 0 || index >= num_rows()) {
    throw std::out_of_range("Model: row index " + std::to_string(index));
  }
}

void Model::set_variable_bounds(int index, double lower, double upper) {
  check_variable_index(index);
  if (lower > upper) throw std::invalid_argument("Model: variable lower > upper");
  variables_[index].lower = lower;
  variables_[index].upper = upper;
}

void Model::set_objective_coefficient(int index, double objective) {
  check_variable_index(index);
  if (!std::isfinite(objective)) throw std::invalid_argument("Model: non-finite objective");
  variables_[index].objective = objective;
}

void Model::set_integer(int index, bool is_integer) {
  check_variable_index(index);
  variables_[index].is_integer = is_integer;
}

void Model::set_row_bounds(int index, double lower, double upper) {
  check_row_index(index);
  if (lower > upper) throw std::invalid_argument("Model: row lower > upper");
  rows_[index].lower = lower;
  rows_[index].upper = upper;
}

void Model::set_row_coefficients(int index, std::vector<Coefficient> coefficients) {
  check_row_index(index);
  for (const auto& [var, coeff] : coefficients) {
    check_variable_index(var);
    if (!std::isfinite(coeff)) throw std::invalid_argument("Model: non-finite coefficient");
  }
  rows_[index].coefficients = std::move(coefficients);
}

double Model::objective_value(const std::vector<double>& x) const {
  if (x.size() != variables_.size()) {
    throw std::invalid_argument("Model::objective_value: size mismatch");
  }
  double total = 0.0;
  for (std::size_t j = 0; j < variables_.size(); ++j) total += variables_[j].objective * x[j];
  return total;
}

double Model::max_violation(const std::vector<double>& x) const {
  if (x.size() != variables_.size()) {
    throw std::invalid_argument("Model::max_violation: size mismatch");
  }
  double worst = 0.0;
  for (std::size_t j = 0; j < variables_.size(); ++j) {
    worst = std::max(worst, variables_[j].lower - x[j]);
    worst = std::max(worst, x[j] - variables_[j].upper);
  }
  for (const Row& row : rows_) {
    double activity = 0.0;
    for (const auto& [var, coeff] : row.coefficients) activity += coeff * x[var];
    worst = std::max(worst, row.lower - activity);
    worst = std::max(worst, activity - row.upper);
  }
  return worst;
}

void Model::validate() const {
  if (validated_) return;
  for (const Variable& v : variables_) {
    if (v.lower > v.upper) throw std::invalid_argument("Model: inverted variable bounds");
  }
  for (const Row& row : rows_) {
    if (row.lower > row.upper) throw std::invalid_argument("Model: inverted row bounds");
    for (const auto& [var, coeff] : row.coefficients) {
      if (var < 0 || var >= num_variables()) {
        throw std::invalid_argument("Model: row references unknown variable");
      }
      if (!std::isfinite(coeff)) throw std::invalid_argument("Model: non-finite coefficient");
    }
  }
  validated_ = true;
}

}  // namespace np::lp
