#include "serve/protocol.hpp"

#include <cerrno>
#include <cstdlib>
#include <set>
#include <sstream>

#include "util/check.hpp"

namespace np::serve {

namespace {

/// Strict decimal-integer value parsing: the whole token must be a
/// number in [min_value, max_value] — letters, empty strings, trailing
/// junk and out-of-range values are typed ParseErrors, never atoi's
/// silent 0.
long parse_long_value(const std::string& key, const std::string& text,
                      long min_value, long max_value) {
  NP_ASSERT(min_value <= max_value);
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    throw ParseError(key + ": expected an integer, got '" + text + "'");
  }
  if (value < min_value || value > max_value) {
    throw ParseError(key + ": value " + text + " out of range [" +
                     std::to_string(min_value) + ", " +
                     std::to_string(max_value) + "]");
  }
  return value;
}

double parse_double_value(const std::string& key, const std::string& text,
                          double min_value, double max_value) {
  NP_ASSERT(min_value <= max_value);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    throw ParseError(key + ": expected a number, got '" + text + "'");
  }
  if (!(value >= min_value && value <= max_value)) {  // rejects NaN too
    throw ParseError(key + ": value " + text + " out of range");
  }
  return value;
}

std::vector<int> parse_plan_value(const std::string& csv) {
  if (csv.empty()) throw ParseError("plan: empty unit list");
  std::vector<int> units;
  std::stringstream is(csv);
  std::string token;
  while (std::getline(is, token, ',')) {
    units.push_back(
        static_cast<int>(parse_long_value("plan unit", token, 0, 1000000)));
  }
  return units;
}

std::string encode_plan_value(const std::vector<int>& plan) {
  std::ostringstream os;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (i > 0) os << ',';
    os << plan[i];
  }
  return os.str();
}

/// Reasons travel as a single token: whitespace would split them into
/// bogus key=value pairs on the way back in.
std::string sanitize_reason(const std::string& reason) {
  std::string out = reason;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '=') c = '_';
  }
  return out;
}

/// Split a strict `key=value` token. Throws ParseError on anything else.
std::pair<std::string, std::string> split_pair(const std::string& token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
    throw ParseError("expected key=value, got '" + token + "'");
  }
  return {token.substr(0, eq), token.substr(eq + 1)};
}

std::vector<std::string> tokenize(const std::string& payload) {
  std::istringstream is(payload);
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

void require_version(const std::vector<std::string>& tokens) {
  if (tokens.empty()) throw ParseError("empty payload");
  if (tokens[0] != kProtocolVersion) {
    throw ParseError("unsupported protocol version '" + tokens[0] + "' (want " +
                     std::string(kProtocolVersion) + ")");
  }
}

}  // namespace

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kCheck: return "check";
    case RequestKind::kCost: return "cost";
    case RequestKind::kInfo: return "info";
    case RequestKind::kPing: return "ping";
  }
  return "unknown";
}

const char* to_string(ReplyStatus status) {
  switch (status) {
    case ReplyStatus::kOk: return "ok";
    case ReplyStatus::kDegraded: return "degraded";
    case ReplyStatus::kShed: return "shed";
    case ReplyStatus::kError: return "error";
  }
  return "unknown";
}

Request parse_request(const std::string& payload) {
  NP_ASSERT(payload.size() <= kMaxFrameBytes, "parse_request: payload over bound");
  const std::vector<std::string> tokens = tokenize(payload);
  require_version(tokens);
  if (tokens.size() < 2) throw ParseError("missing request verb");
  Request request;
  const std::string& verb = tokens[1];
  if (verb == "check") request.kind = RequestKind::kCheck;
  else if (verb == "cost") request.kind = RequestKind::kCost;
  else if (verb == "info") request.kind = RequestKind::kInfo;
  else if (verb == "ping") request.kind = RequestKind::kPing;
  else throw ParseError("unknown request verb '" + verb + "'");

  const bool takes_plan = request.kind == RequestKind::kCheck ||
                          request.kind == RequestKind::kCost;
  std::set<std::string> seen;
  bool has_id = false;
  bool has_plan = false;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const auto [key, value] = split_pair(tokens[i]);
    if (!seen.insert(key).second) {
      throw ParseError("duplicate key '" + key + "'");
    }
    if (key == "id") {
      request.id = parse_long_value("id", value, 0, 1L << 60);
      has_id = true;
    } else if (key == "deadline_ms" && request.kind == RequestKind::kCheck) {
      request.deadline_ms = parse_double_value("deadline_ms", value, 0.0, 1e9);
    } else if (key == "plan" && takes_plan) {
      request.plan = parse_plan_value(value);
      has_plan = true;
    } else {
      throw ParseError("unknown key '" + key + "' for verb '" + verb + "'");
    }
  }
  if (!has_id) throw ParseError("missing required key 'id'");
  if (takes_plan && !has_plan) throw ParseError("missing required key 'plan'");
  return request;
}

std::string encode_request(const Request& request) {
  NP_ASSERT(request.id >= 0);
  std::ostringstream os;
  os << kProtocolVersion << ' ' << to_string(request.kind)
     << " id=" << request.id;
  if (request.kind == RequestKind::kCheck && request.deadline_ms > 0.0) {
    os << " deadline_ms=" << request.deadline_ms;
  }
  if (request.kind == RequestKind::kCheck ||
      request.kind == RequestKind::kCost) {
    os << " plan=" << encode_plan_value(request.plan);
  }
  return os.str();
}

std::string encode_reply(const Reply& reply) {
  NP_ASSERT(reply.id >= -1);
  std::ostringstream os;
  os << kProtocolVersion << ' ' << to_string(reply.status)
     << " id=" << reply.id;
  if (!reply.reason.empty()) os << " reason=" << sanitize_reason(reply.reason);
  if (!reply.verdict.empty()) {
    os << " feasible=" << (reply.feasible ? 1 : 0)
       << " verdict=" << reply.verdict << " cost=" << reply.cost
       << " unserved=" << reply.unserved_gbps
       << " scenarios=" << reply.scenarios_checked
       << " quarantined=" << reply.quarantined << " retries=" << reply.retries;
  }
  if (reply.links > 0) {
    os << " links=" << reply.links << " scenarios=" << reply.scenarios;
  }
  if (reply.latency_us > 0.0) os << " latency_us=" << reply.latency_us;
  return os.str();
}

Reply parse_reply(const std::string& payload) {
  NP_ASSERT(payload.size() <= kMaxFrameBytes, "parse_reply: payload over bound");
  const std::vector<std::string> tokens = tokenize(payload);
  require_version(tokens);
  if (tokens.size() < 2) throw ParseError("missing reply status");
  Reply reply;
  const std::string& status = tokens[1];
  if (status == "ok") reply.status = ReplyStatus::kOk;
  else if (status == "degraded") reply.status = ReplyStatus::kDegraded;
  else if (status == "shed") reply.status = ReplyStatus::kShed;
  else if (status == "error") reply.status = ReplyStatus::kError;
  else throw ParseError("unknown reply status '" + status + "'");

  bool has_id = false;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const auto [key, value] = split_pair(tokens[i]);
    if (key == "id") {
      reply.id = parse_long_value("id", value, -1, 1L << 60);
      has_id = true;
    } else if (key == "reason") {
      reply.reason = value;
    } else if (key == "feasible") {
      reply.feasible = parse_long_value("feasible", value, 0, 1) == 1;
    } else if (key == "verdict") {
      reply.verdict = value;
    } else if (key == "cost") {
      reply.cost = parse_double_value("cost", value, -1e18, 1e18);
    } else if (key == "unserved") {
      reply.unserved_gbps = parse_double_value("unserved", value, -1e18, 1e18);
    } else if (key == "scenarios") {
      reply.scenarios = parse_long_value("scenarios", value, 0, 1L << 40);
      reply.scenarios_checked = static_cast<int>(reply.scenarios);
    } else if (key == "quarantined") {
      reply.quarantined =
          static_cast<int>(parse_long_value("quarantined", value, 0, 1L << 40));
    } else if (key == "retries") {
      reply.retries =
          static_cast<int>(parse_long_value("retries", value, 0, 1L << 40));
    } else if (key == "latency_us") {
      reply.latency_us = parse_double_value("latency_us", value, 0.0, 1e15);
    } else if (key == "links") {
      reply.links = parse_long_value("links", value, 0, 1L << 40);
    } else {
      throw ParseError("unknown reply key '" + key + "'");
    }
  }
  if (!has_id) throw ParseError("missing required key 'id'");
  return reply;
}

std::string frame(const std::string& payload) {
  NP_ASSERT(payload.size() <= kMaxFrameBytes, "frame: payload over bound");
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string framed;
  framed.reserve(4 + payload.size());
  framed.push_back(static_cast<char>(length & 0xff));
  framed.push_back(static_cast<char>((length >> 8) & 0xff));
  framed.push_back(static_cast<char>((length >> 16) & 0xff));
  framed.push_back(static_cast<char>((length >> 24) & 0xff));
  framed += payload;
  return framed;
}

void FrameReader::feed(const char* data, std::size_t size) {
  NP_ASSERT(size == 0 || data != nullptr);
  if (poisoned_) return;  // corrupt stream: no frame may sneak past
  buffer_.append(data, size);
}

FrameEvent FrameReader::next(std::string* payload, std::string* error) {
  NP_ASSERT(payload != nullptr && error != nullptr);
  if (poisoned_) {
    *error = poison_reason_;
    return FrameEvent::kFatal;
  }
  if (buffer_.size() < 4) return FrameEvent::kNeedMore;
  const auto byte = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[i]));
  };
  const std::uint32_t length =
      byte(0) | (byte(1) << 8) | (byte(2) << 16) | (byte(3) << 24);
  if (length > kMaxFrameBytes) {
    // There is no resynchronizing a length-prefixed stream after a
    // corrupt length — poison the reader so the caller replies once
    // and hangs up.
    poisoned_ = true;
    poison_reason_ = "frame length " + std::to_string(length) +
                     " exceeds the " + std::to_string(kMaxFrameBytes) +
                     "-byte bound";
    buffer_.clear();
    *error = poison_reason_;
    return FrameEvent::kFatal;
  }
  if (buffer_.size() < 4 + static_cast<std::size_t>(length)) {
    return FrameEvent::kNeedMore;
  }
  *payload = buffer_.substr(4, length);
  buffer_.erase(0, 4 + static_cast<std::size_t>(length));
  return FrameEvent::kFrame;
}

}  // namespace np::serve
