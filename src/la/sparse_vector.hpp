// Scatter/gather workspace for sparse kernels (LU factorization,
// sparse triangular solves): a dense value array paired with the list
// of touched indices. A kernel accumulates into random positions in
// O(1), walks only the touched pattern afterwards, and resets in
// O(pattern) instead of O(n) — the standard trick that makes sparse
// column operations cost O(fill) rather than O(dimension).
#pragma once

#include <cstdint>
#include <vector>

namespace np::la {

class ScatterVector {
 public:
  ScatterVector() = default;
  explicit ScatterVector(int n) { resize(n); }

  /// Resize the workspace; all entries become zero, the pattern empty.
  void resize(int n);

  int size() const { return static_cast<int>(values_.size()); }

  /// Zero every touched entry and forget the pattern. O(pattern).
  void clear();

  /// values[i] += v, adding i to the pattern on first touch. A position
  /// cancelled back to zero stays in the pattern (callers skip zeros).
  void add(int i, double v) {
    touch(i);
    values_[i] += v;
  }

  /// values[i] = v, adding i to the pattern on first touch.
  void set(int i, double v) {
    touch(i);
    values_[i] = v;
  }

  double operator[](int i) const { return values_[i]; }

  /// Indices touched since the last clear(), in touch order. May
  /// include positions whose value cancelled back to exactly zero.
  const std::vector<int>& pattern() const { return pattern_; }

  /// Gather the pattern's nonzero entries into `out` (appended as
  /// (index, value) pairs), dropping exact zeros.
  void gather(std::vector<std::pair<int, double>>& out) const;

 private:
  void touch(int i) {
    if (touched_[i] == 0) {
      touched_[i] = 1;
      pattern_.push_back(i);
    }
  }

  std::vector<double> values_;
  std::vector<std::uint8_t> touched_;
  std::vector<int> pattern_;
};

}  // namespace np::la
