#!/usr/bin/env bash
# Build and run the rollout-throughput, LP-engine and inference-engine
# benches, writing BENCH_rollout.json (steps/sec at 1, 2 and 4 rollout
# workers, fast vs tape inference, with the LP share of stepping time),
# BENCH_lp.json (dense vs sparse simplex engine, cold vs warm starts)
# and BENCH_infer.json (tape-free nn::InferenceEngine vs tape forwards,
# single-graph and ragged batch) at the repo root.
#
#   scripts/bench_rollout.sh [build-dir]
#
# Scale knobs:
#   NEUROPLAN_TOPOS=B            preset topology (first letter is used)
#   NEUROPLAN_ROLLOUT_STEPS=768  env steps per measured collect
#   NEUROPLAN_LP_CHECKS=48       env steps in the LP workload
#   NEUROPLAN_INFER_ITERS=400    measured forwards per nn_inference row
#   NEUROPLAN_SEED=7             RNG seed
#
# Note: rollout_throughput measures both inference modes itself; the
# NEUROPLAN_INFERENCE=tape|fast escape hatch only affects training
# binaries (trainer/rollout default), not this bench's mode axis.
set -euo pipefail

build_dir="${1:-build}"
root="$(cd "$(dirname "$0")/.." && pwd)"

cmake --build "$root/$build_dir" --target rollout_throughput --target lp_throughput --target nn_inference
"$root/$build_dir/bench/rollout_throughput" "$root/BENCH_rollout.json"
echo "wrote $root/BENCH_rollout.json"
"$root/$build_dir/bench/lp_throughput" "$root/BENCH_lp.json"
echo "wrote $root/BENCH_lp.json"
"$root/$build_dir/bench/nn_inference" "$root/BENCH_infer.json"
echo "wrote $root/BENCH_infer.json"
