// Robustness fuzzing (deterministic): mutated topology files must
// either parse into a structurally valid topology or throw a typed
// error — never crash, hang, or produce an inconsistent object.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "topo/generator.hpp"
#include "topo/serialize.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace np::topo {
namespace {

/// Deterministic per-test seed: fixed in (suite parameter), offset as a
/// whole by NEUROPLAN_TEST_SEED so a different corpus can be swept
/// reproducibly. Every assertion failure reports it via SCOPED_TRACE.
std::uint64_t fuzz_seed(unsigned param) {
  return static_cast<std::uint64_t>(env_long("NEUROPLAN_TEST_SEED", 0)) +
         param * 7919u + 101u;
}

class SerializeFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(SerializeFuzz, MutatedInputNeverCrashes) {
  const std::uint64_t seed = fuzz_seed(GetParam());
  SCOPED_TRACE(::testing::Message()
               << "fuzz seed " << seed
               << " (offset the sweep with NEUROPLAN_TEST_SEED=<n>)");
  RecordProperty("seed", static_cast<int>(seed));
  const std::string base = to_text(make_preset('B'));
  Rng rng(seed);
  for (int trial = 0; trial < 40; ++trial) {
    std::string text = base;
    const int mutations = 1 + static_cast<int>(rng.uniform_index(4));
    for (int k = 0; k < mutations; ++k) {
      const std::size_t pos = rng.uniform_index(text.size());
      switch (rng.uniform_index(4)) {
        case 0:  // flip a character
          text[pos] = static_cast<char>(' ' + rng.uniform_index(95));
          break;
        case 1:  // delete a span
          text.erase(pos, 1 + rng.uniform_index(10));
          break;
        case 2:  // duplicate a span
          text.insert(pos, text.substr(pos, 1 + rng.uniform_index(10)));
          break;
        default:  // truncate
          text.resize(pos);
      }
    }
    try {
      Topology t = from_text(text);
      // Parsed: the object must at least be internally consistent
      // enough that accessors and re-serialization do not blow up.
      (void)to_text(t);
      for (int l = 0; l < t.num_links(); ++l) (void)t.link_length_km(l);
    } catch (const std::runtime_error&) {
      // typed parse error: fine
    } catch (const std::invalid_argument&) {
      // typed semantic error from Topology validation: fine
    } catch (const std::out_of_range&) {
      // typed index error from referencing records: fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzz, ::testing::Range(0u, 10u));

TEST(SerializeFuzz, EmptyAndDegenerateInputs) {
  EXPECT_NO_THROW(from_text(""));              // empty topology object
  EXPECT_NO_THROW(from_text("\n\n# only\n"));  // comments only
  EXPECT_THROW(from_text("site"), std::runtime_error);       // truncated
  EXPECT_THROW(from_text("fiber \"x\""), std::runtime_error);
  EXPECT_THROW(from_text("link \"x\" 0"), std::runtime_error);
  EXPECT_THROW(from_text("unit -5\n"), std::invalid_argument);
  EXPECT_THROW(from_text("policy notanint"), std::runtime_error);
}

}  // namespace
}  // namespace np::topo
