// Under util/ the raw primitives are allowed: this is where the
// annotated wrappers themselves live.
void wrapper_internals() {
  std::mutex m;
  std::lock_guard<std::mutex> lock(m);
}
