// Neural-network layers: shapes, gradient checks through composed
// GCN + MLP graphs, and the actor-critic policy head semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/actor_critic.hpp"
#include "nn/gcn.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"

namespace np::nn {
namespace {

using la::Matrix;

std::shared_ptr<la::CsrMatrix> ring_adjacency(int n) {
  // Normalized ring: each node linked to its two neighbors + self loop.
  std::vector<la::Triplet> t;
  const double w = 1.0 / 3.0;
  for (int i = 0; i < n; ++i) {
    t.push_back({static_cast<std::size_t>(i), static_cast<std::size_t>(i), w});
    t.push_back({static_cast<std::size_t>(i), static_cast<std::size_t>((i + 1) % n), w});
    t.push_back({static_cast<std::size_t>(i),
                 static_cast<std::size_t>((i + n - 1) % n), w});
  }
  return std::make_shared<la::CsrMatrix>(
      la::CsrMatrix(static_cast<std::size_t>(n), static_cast<std::size_t>(n), t));
}

TEST(Linear, ShapeAndBias) {
  Rng rng(1);
  Linear layer("l", 3, 5, rng);
  ad::Tape tape;
  ad::Tensor y = layer.forward(tape, tape.constant(Matrix(4, 3, 1.0)));
  EXPECT_EQ(tape.value(y).rows(), 4u);
  EXPECT_EQ(tape.value(y).cols(), 5u);
  EXPECT_EQ(layer.parameters().size(), 2u);
}

TEST(Linear, RejectsBadDimensions) {
  Rng rng(1);
  EXPECT_THROW(Linear("l", 0, 5, rng), std::invalid_argument);
  EXPECT_THROW(Linear("l", 3, 0, rng), std::invalid_argument);
}

TEST(Linear, InitializationIsScaled) {
  Rng rng(2);
  Linear layer("l", 100, 100, rng);
  // Kaiming: std ~ sqrt(2/100) ~ 0.141; the max over 10k samples should
  // stay well under 1.
  EXPECT_LT(layer.parameters()[0]->value.max_abs(), 1.0);
  EXPECT_DOUBLE_EQ(layer.parameters()[1]->value.max_abs(), 0.0);  // zero bias
}

TEST(Mlp, DepthAndShapes) {
  Rng rng(3);
  Mlp mlp("m", 4, {8, 8}, 2, rng);
  EXPECT_EQ(mlp.in_features(), 4);
  EXPECT_EQ(mlp.out_features(), 2);
  EXPECT_EQ(mlp.parameters().size(), 6u);  // 3 layers x (W, b)
  ad::Tape tape;
  ad::Tensor y = mlp.forward(tape, tape.constant(Matrix(5, 4, 0.5)));
  EXPECT_EQ(tape.value(y).rows(), 5u);
  EXPECT_EQ(tape.value(y).cols(), 2u);
}

TEST(Mlp, NoHiddenLayersIsLinear) {
  Rng rng(4);
  Mlp mlp("m", 3, {}, 2, rng);
  EXPECT_EQ(mlp.parameters().size(), 2u);
}

TEST(Mlp, GradientFlowsToAllParameters) {
  Rng rng(5);
  Mlp mlp("m", 3, {6}, 1, rng);
  ad::Tape tape;
  Matrix x(2, 3);
  for (double& v : x.flat()) v = rng.normal();
  ad::Tensor loss = tape.sum(tape.square(mlp.forward(tape, tape.constant(x))));
  for (ad::Parameter* p : mlp.parameters()) p->zero_grad();
  tape.backward(loss);
  // Weights of both layers should receive nonzero gradient (bias of the
  // last layer always does).
  EXPECT_GT(mlp.parameters()[0]->grad.max_abs(), 0.0);
  EXPECT_GT(mlp.parameters()[2]->grad.max_abs(), 0.0);
  EXPECT_GT(mlp.parameters()[3]->grad.max_abs(), 0.0);
}

TEST(Gcn, ZeroLayersIsIdentity) {
  Rng rng(6);
  GcnEncoder gcn("g", 4, 16, 0, rng);
  EXPECT_EQ(gcn.output_dim(), 4);
  EXPECT_EQ(gcn.num_layers(), 0);
  EXPECT_TRUE(gcn.parameters().empty());
  ad::Tape tape;
  Matrix x(3, 4, 1.5);
  ad::Tensor y = gcn.forward(tape, nullptr, tape.constant(x));  // adjacency unused
  EXPECT_EQ(tape.value(y), x);
}

TEST(Gcn, LayersProjectToHidden) {
  Rng rng(7);
  GcnEncoder gcn("g", 4, 16, 2, rng);
  EXPECT_EQ(gcn.output_dim(), 16);
  EXPECT_EQ(gcn.parameters().size(), 4u);
  ad::Tape tape;
  ad::Tensor y = gcn.forward(tape, ring_adjacency(5), tape.constant(Matrix(5, 4, 1.0)));
  EXPECT_EQ(tape.value(y).rows(), 5u);
  EXPECT_EQ(tape.value(y).cols(), 16u);
}

TEST(Gcn, NullAdjacencyWithLayersThrows) {
  Rng rng(8);
  GcnEncoder gcn("g", 4, 8, 1, rng);
  ad::Tape tape;
  EXPECT_THROW(gcn.forward(tape, nullptr, tape.constant(Matrix(3, 4, 1.0))),
               std::invalid_argument);
}

TEST(Gcn, MessagePassingPropagatesInformation) {
  // With identical features everywhere except one node, a 2-layer GCN
  // must produce different embeddings for neighbors vs distant nodes.
  Rng rng(9);
  GcnEncoder gcn("g", 1, 8, 2, rng);
  ad::Tape tape;
  Matrix x(6, 1, 0.0);
  x(0, 0) = 1.0;
  ad::Tensor y = gcn.forward(tape, ring_adjacency(6), tape.constant(x));
  const Matrix& e = tape.value(y);
  double diff_neighbor = 0.0, diff_far = 0.0;
  for (std::size_t c = 0; c < e.cols(); ++c) {
    diff_neighbor += std::abs(e(1, c) - e(3, c));
    diff_far += std::abs(e(3, c) - e(3, c));
  }
  EXPECT_GT(diff_neighbor, 1e-9);
  EXPECT_DOUBLE_EQ(diff_far, 0.0);
}

TEST(Gcn, InvalidConstructionThrows) {
  Rng rng(10);
  EXPECT_THROW(GcnEncoder("g", 0, 8, 1, rng), std::invalid_argument);
  EXPECT_THROW(GcnEncoder("g", 4, 0, 1, rng), std::invalid_argument);
  EXPECT_THROW(GcnEncoder("g", 4, 8, -1, rng), std::invalid_argument);
}

// ---- actor-critic ----

NetworkConfig small_config() {
  NetworkConfig c;
  c.feature_dim = 4;
  c.gcn_layers = 2;
  c.gcn_hidden = 8;
  c.mlp_hidden = {8};
  c.max_units_per_step = 3;
  return c;
}

TEST(ActorCritic, PolicyIsMaskedDistribution) {
  Rng rng(11);
  ActorCritic net(small_config(), rng);
  const int n = 5;
  Matrix features(n, 4, 0.3);
  std::vector<std::uint8_t> mask(n * 3, 0);
  mask[0] = mask[4] = mask[7] = 1;
  ad::Tape tape;
  ad::Tensor lp = net.policy_log_probs(tape, ring_adjacency(n), features, mask);
  const Matrix& v = tape.value(lp);
  ASSERT_EQ(v.cols(), static_cast<std::size_t>(n * 3));
  double total = 0.0;
  for (std::size_t i = 0; i < v.cols(); ++i) {
    if (mask[i]) {
      total += std::exp(v(0, i));
    } else {
      EXPECT_LT(v(0, i), -1e20);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ActorCritic, ValueIsScalar) {
  Rng rng(12);
  ActorCritic net(small_config(), rng);
  ad::Tape tape;
  ad::Tensor v = net.value(tape, ring_adjacency(4), Matrix(4, 4, 0.1));
  EXPECT_EQ(tape.value(v).rows(), 1u);
  EXPECT_EQ(tape.value(v).cols(), 1u);
}

TEST(ActorCritic, ActionEncodingRoundTrip) {
  Rng rng(13);
  ActorCritic net(small_config(), rng);
  for (int link = 0; link < 7; ++link) {
    for (int units = 1; units <= 3; ++units) {
      const int flat = net.encode_action({link, units});
      const ActionId decoded = net.decode_action(flat);
      EXPECT_EQ(decoded.link, link);
      EXPECT_EQ(decoded.units, units);
    }
  }
  EXPECT_THROW(net.encode_action({0, 0}), std::invalid_argument);
  EXPECT_THROW(net.encode_action({0, 4}), std::invalid_argument);
  EXPECT_THROW(net.encode_action({-1, 1}), std::invalid_argument);
  EXPECT_THROW(net.decode_action(-1), std::invalid_argument);
}

TEST(ActorCritic, ParameterGroupsAreDisjointAndComplete) {
  Rng rng(14);
  ActorCritic net(small_config(), rng);
  const auto gnn = net.gnn_parameters();
  const auto actor = net.actor_parameters();
  const auto critic = net.critic_parameters();
  EXPECT_EQ(gnn.size() + actor.size() + critic.size(), net.all_parameters().size());
  for (ad::Parameter* g : gnn) {
    for (ad::Parameter* a : actor) EXPECT_NE(g, a);
    for (ad::Parameter* c : critic) EXPECT_NE(g, c);
  }
}

TEST(ActorCritic, MaskSizeMismatchThrows) {
  Rng rng(15);
  ActorCritic net(small_config(), rng);
  ad::Tape tape;
  EXPECT_THROW(
      net.policy_log_probs(tape, ring_adjacency(4), Matrix(4, 4, 0.0), {1, 1}),
      std::invalid_argument);
}

TEST(ActorCritic, ZeroGcnLayersUsesRawFeatures) {
  Rng rng(16);
  NetworkConfig c = small_config();
  c.gcn_layers = 0;
  ActorCritic net(c, rng);
  EXPECT_TRUE(net.gnn_parameters().empty());
  ad::Tape tape;
  std::vector<std::uint8_t> mask(4 * 3, 1);
  ad::Tensor lp = net.policy_log_probs(tape, nullptr, Matrix(4, 4, 0.2), mask);
  EXPECT_FALSE(tape.value(lp).has_non_finite());
}

TEST(ActorCritic, RejectsBadConfig) {
  Rng rng(17);
  NetworkConfig c = small_config();
  c.max_units_per_step = 0;
  EXPECT_THROW(ActorCritic(c, rng), std::invalid_argument);
}

TEST(ActorCritic, GradientsReachAllGroupsThroughPolicyLoss) {
  Rng rng(18);
  ActorCritic net(small_config(), rng);
  for (ad::Parameter* p : net.all_parameters()) p->zero_grad();
  ad::Tape tape;
  std::vector<std::uint8_t> mask(5 * 3, 1);
  ad::Tensor lp = net.policy_log_probs(tape, ring_adjacency(5), Matrix(5, 4, 0.4), mask);
  tape.backward(tape.pick(lp, 0, 2));
  bool gnn_touched = false, actor_touched = false;
  for (ad::Parameter* p : net.gnn_parameters()) {
    gnn_touched = gnn_touched || p->grad.max_abs() > 0.0;
  }
  for (ad::Parameter* p : net.actor_parameters()) {
    actor_touched = actor_touched || p->grad.max_abs() > 0.0;
  }
  EXPECT_TRUE(gnn_touched);
  EXPECT_TRUE(actor_touched);
  // Critic untouched by the policy head.
  for (ad::Parameter* p : net.critic_parameters()) {
    EXPECT_DOUBLE_EQ(p->grad.max_abs(), 0.0);
  }
}

// ---- batched forward (shared encoder pass over stacked states) ----

// The batched path must be bit-identical to the per-step path: the
// chunked update recomputation in rl::Trainer relies on it.
void expect_forward_batch_bit_equal(GnnType gnn) {
  Rng rng(31);
  NetworkConfig config = small_config();
  config.gnn_type = gnn;
  ActorCritic net(config, rng);
  const int n = 5;
  const int m = config.max_units_per_step;
  const std::size_t steps = 3;

  Rng data_rng(57);
  std::vector<Matrix> features;
  std::vector<std::vector<std::uint8_t>> masks;
  for (std::size_t s = 0; s < steps; ++s) {
    Matrix f(n, 4, 0.0);
    for (std::size_t i = 0; i < f.rows(); ++i) {
      for (std::size_t j = 0; j < f.cols(); ++j) f(i, j) = data_rng.uniform(-1.0, 1.0);
    }
    features.push_back(f);
    std::vector<std::uint8_t> mask(n * m, 0);
    for (auto& b : mask) b = data_rng.uniform() < 0.6 ? 1 : 0;
    mask[data_rng.uniform_index(mask.size())] = 1;  // keep >= 1 valid action
    masks.push_back(mask);
  }

  auto adjacency = ring_adjacency(n);
  auto block = std::make_shared<const la::CsrMatrix>(
      la::block_diagonal(*adjacency, static_cast<int>(steps)));
  std::vector<const Matrix*> parts;
  std::vector<const std::vector<std::uint8_t>*> mask_parts;
  for (std::size_t s = 0; s < steps; ++s) {
    parts.push_back(&features[s]);
    mask_parts.push_back(&masks[s]);
  }
  const Matrix stacked = la::vstack(parts);

  ad::Tape batch_tape;
  ActorCritic::BatchedForward out =
      net.forward_batch(batch_tape, block, stacked, mask_parts, true);
  ASSERT_EQ(out.log_probs.size(), steps);
  ASSERT_EQ(out.values.size(), steps);

  for (std::size_t s = 0; s < steps; ++s) {
    ad::Tape tape;
    const Matrix& got_lp = batch_tape.value(out.log_probs[s]);
    const Matrix& want_lp =
        tape.value(net.policy_log_probs(tape, adjacency, features[s], masks[s]));
    ASSERT_EQ(got_lp.cols(), want_lp.cols());
    for (std::size_t j = 0; j < want_lp.cols(); ++j) {
      EXPECT_EQ(got_lp(0, j), want_lp(0, j));  // bitwise
    }
    const Matrix& got_v = batch_tape.value(out.values[s]);
    const Matrix& want_v = tape.value(net.value(tape, adjacency, features[s]));
    EXPECT_EQ(got_v(0, 0), want_v(0, 0));
  }

  // Critic-only batched forward: row s == value() on state s, bitwise.
  ad::Tape value_tape;
  ad::Tensor values = net.value_batch(value_tape, block, stacked, steps);
  ASSERT_EQ(value_tape.value(values).rows(), steps);
  for (std::size_t s = 0; s < steps; ++s) {
    ad::Tape tape;
    const Matrix& want_v = tape.value(net.value(tape, adjacency, features[s]));
    EXPECT_EQ(value_tape.value(values)(s, 0), want_v(0, 0));
  }
}

TEST(ActorCritic, BatchedForwardBitEqualsPerStepGcn) {
  expect_forward_batch_bit_equal(GnnType::kGcn);
}

TEST(ActorCritic, BatchedForwardBitEqualsPerStepGat) {
  expect_forward_batch_bit_equal(GnnType::kGat);
}

TEST(ActorCritic, ForwardBatchValidatesShapes) {
  Rng rng(33);
  ActorCritic net(small_config(), rng);
  const int n = 4;
  auto adjacency = ring_adjacency(n);
  auto block = std::make_shared<const la::CsrMatrix>(la::block_diagonal(*adjacency, 2));
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(n) * 3, 1);
  std::vector<const std::vector<std::uint8_t>*> masks = {&mask, &mask};
  ad::Tape tape;
  // Stacked rows not divisible by the number of steps.
  EXPECT_THROW(net.forward_batch(tape, block, Matrix(7, 4, 0.0), masks, false),
               std::invalid_argument);
  // No masks at all.
  std::vector<const std::vector<std::uint8_t>*> empty;
  EXPECT_THROW(net.forward_batch(tape, block, Matrix(8, 4, 0.0), empty, false),
               std::invalid_argument);
  // Wrong-size mask.
  std::vector<std::uint8_t> bad(3, 1);
  std::vector<const std::vector<std::uint8_t>*> bad_masks = {&mask, &bad};
  EXPECT_THROW(net.forward_batch(tape, block, Matrix(8, 4, 0.0), bad_masks, false),
               std::invalid_argument);
}

}  // namespace
}  // namespace np::nn
