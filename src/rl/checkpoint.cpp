// Full-state trainer checkpoints (crash-safe resume).
//
// save_checkpoint serializes everything the A2C training loop needs to
// continue bit-for-bit after a kill: network parameters with their Adam
// moments, both optimizers' bias-correction timesteps, the trainer RNG
// and the per-worker rollout RNG streams, the epoch counter, best-plan
// and patience state, and (belt and braces — every rollout resets the
// env first) the env capacities. Doubles travel as the hex image of
// their IEEE-754 bit pattern, so a round trip is exact by construction
// rather than by printf-precision luck. The bytes go through the atomic
// snapshot container (ad/snapshot.hpp): temp file + fsync + rename,
// versioned header, FNV-1a checksum — a crash mid-save leaves the
// previous checkpoint intact, and any torn or tampered file fails the
// loader with a clean std::runtime_error.
//
// Concurrency model: save/load run on the trainer thread between
// epochs, when no rollout worker or evaluator task is in flight, so
// this file is single-threaded by contract and holds no locks.
#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ad/parameter.hpp"
#include "ad/snapshot.hpp"
#include "obs/metrics.hpp"
#include "rl/trainer.hpp"
#include "util/log.hpp"

namespace np::rl {

namespace {

constexpr const char* kKind = "trainer";

std::string hex_u64(std::uint64_t v) {
  std::ostringstream out;
  out << std::hex << v;
  return out.str();
}

std::uint64_t parse_hex_u64(const std::string& token, const char* what) {
  std::istringstream in(token);
  std::uint64_t v = 0;
  if (!(in >> std::hex >> v) || in.peek() != std::istringstream::traits_type::eof()) {
    throw std::runtime_error(std::string("checkpoint: malformed ") + what +
                             " '" + token + "'");
  }
  return v;
}

std::string hex_double(double d) {
  return hex_u64(std::bit_cast<std::uint64_t>(d));
}

double parse_hex_double(const std::string& token, const char* what) {
  return std::bit_cast<double>(parse_hex_u64(token, what));
}

/// Reads one line and checks its first token. Returns the rest of the
/// line as a stream.
std::istringstream expect_line(std::istream& in, const char* tag) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error(std::string("checkpoint: missing '") + tag +
                             "' record");
  }
  std::istringstream fields(line);
  std::string got;
  fields >> got;
  if (got != tag) {
    throw std::runtime_error(std::string("checkpoint: expected '") + tag +
                             "' record, found '" + got + "'");
  }
  return fields;
}

void write_matrix_line(std::ostringstream& out, const char* tag,
                       const la::Matrix& m) {
  out << tag;
  for (double v : m.flat()) out << ' ' << hex_double(v);
  out << '\n';
}

void read_matrix_line(std::istream& in, const char* tag, la::Matrix& m) {
  std::istringstream fields = expect_line(in, tag);
  for (std::size_t i = 0; i < m.flat().size(); ++i) {
    std::string token;
    if (!(fields >> token)) {
      throw std::runtime_error(std::string("checkpoint: short '") + tag +
                               "' record");
    }
    m.flat()[i] = parse_hex_double(token, tag);
  }
  std::string extra;
  if (fields >> extra) {
    throw std::runtime_error(std::string("checkpoint: oversized '") + tag +
                             "' record");
  }
}

/// Hash of every config field that shapes the RNG/gradient stream: a
/// checkpoint resumed under a different one of these would silently
/// diverge from the uninterrupted run, so the loader rejects it.
/// Deliberately absent: epochs / patience (extending a run is legal),
/// evaluator threading and scenario budgets (they change wall-clock,
/// not results), checkpoint settings themselves.
std::uint64_t config_fingerprint(const TrainConfig& config) {
  std::ostringstream canon;
  canon << config.seed << ' ' << config.steps_per_epoch << ' '
        << config.rollout_workers << ' ' << config.chunk_steps << ' '
        << config.update_iterations << ' ' << config.batched_updates << ' '
        << hex_double(config.ppo_clip) << ' '
        << hex_double(config.entropy_coefficient) << ' '
        << hex_double(config.actor_learning_rate) << ' '
        << hex_double(config.critic_learning_rate) << ' '
        << hex_double(config.gae.gamma) << ' '
        << hex_double(config.gae.gae_lambda) << ' '
        << config.env.max_units_per_step << ' '
        << config.env.max_trajectory_steps << ' '
        << config.env.include_static_features;
  return ad::fnv1a64(canon.str());
}

}  // namespace

void A2cTrainer::save_checkpoint(const std::string& path) {
  std::ostringstream out;
  out << "fingerprint " << hex_u64(config_fingerprint(config_)) << '\n';
  out << "epoch " << epoch_counter_ << '\n';
  out << "best_cost " << hex_double(best_cost_) << '\n';
  out << "best_added " << best_added_.size();
  for (int units : best_added_) out << ' ' << units;
  out << '\n';
  out << "patience " << hex_double(patience_best_) << ' ' << patience_stale_
      << '\n';

  const std::array<std::uint64_t, 4> rng_state = rng_.state();
  out << "rng";
  for (std::uint64_t word : rng_state) out << ' ' << hex_u64(word);
  out << '\n';
  const std::vector<std::array<std::uint64_t, 4>> worker_states =
      rollout_->rng_states();
  out << "worker_rngs " << worker_states.size() << '\n';
  for (const auto& state : worker_states) {
    out << "wrng";
    for (std::uint64_t word : state) out << ' ' << hex_u64(word);
    out << '\n';
  }

  const std::vector<int>& units = env_.total_units();
  out << "env_units " << units.size();
  for (int u : units) out << ' ' << u;
  out << '\n';

  out << "adam_t " << actor_optimizer_.timestep() << ' '
      << critic_optimizer_.timestep() << '\n';

  const std::vector<ad::Parameter*> params = network_.all_parameters();
  out << "params " << params.size() << '\n';
  for (const ad::Parameter* p : params) {
    out << "param " << p->name << ' ' << p->value.rows() << ' '
        << p->value.cols() << '\n';
    write_matrix_line(out, "v", p->value);
    write_matrix_line(out, "m", p->adam_m);
    write_matrix_line(out, "s", p->adam_v);
  }
  out << "end\n";

  ad::write_snapshot_file(path, kKind, out.str());
  log_info("rl: checkpoint saved to ", path, " (epoch ", epoch_counter_, ")");
}

void A2cTrainer::resume_from_checkpoint(const std::string& path) {
  const std::string payload = ad::read_snapshot_file(path, kKind);
  std::istringstream in(payload);

  {
    std::istringstream fields = expect_line(in, "fingerprint");
    std::string token;
    fields >> token;
    const std::uint64_t saved = parse_hex_u64(token, "fingerprint");
    if (saved != config_fingerprint(config_)) {
      throw std::runtime_error(
          "checkpoint '" + path +
          "': training configuration differs from the run that wrote it — "
          "resuming would diverge from the uninterrupted run");
    }
  }

  int epoch = -1;
  expect_line(in, "epoch") >> epoch;
  if (epoch < 0 || epoch > config_.epochs) {
    throw std::runtime_error("checkpoint: epoch counter " +
                             std::to_string(epoch) + " out of range");
  }

  {
    std::istringstream fields = expect_line(in, "best_cost");
    std::string token;
    fields >> token;
    best_cost_ = parse_hex_double(token, "best_cost");
  }
  {
    std::istringstream fields = expect_line(in, "best_added");
    std::size_t n = 0;
    if (!(fields >> n) || n > static_cast<std::size_t>(env_.num_links())) {
      throw std::runtime_error("checkpoint: malformed best_added record");
    }
    best_added_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (!(fields >> best_added_[i])) {
        throw std::runtime_error("checkpoint: short best_added record");
      }
    }
  }
  {
    std::istringstream fields = expect_line(in, "patience");
    std::string token;
    fields >> token;
    patience_best_ = parse_hex_double(token, "patience");
    if (!(fields >> patience_stale_)) {
      throw std::runtime_error("checkpoint: malformed patience record");
    }
  }

  {
    std::istringstream fields = expect_line(in, "rng");
    std::array<std::uint64_t, 4> state{};
    for (std::uint64_t& word : state) {
      std::string token;
      if (!(fields >> token)) {
        throw std::runtime_error("checkpoint: short rng record");
      }
      word = parse_hex_u64(token, "rng");
    }
    rng_.set_state(state);
  }
  {
    std::size_t count = 0;
    expect_line(in, "worker_rngs") >> count;
    std::vector<std::array<std::uint64_t, 4>> states(count);
    for (std::array<std::uint64_t, 4>& state : states) {
      std::istringstream fields = expect_line(in, "wrng");
      for (std::uint64_t& word : state) {
        std::string token;
        if (!(fields >> token)) {
          throw std::runtime_error("checkpoint: short wrng record");
        }
        word = parse_hex_u64(token, "wrng");
      }
    }
    rollout_->set_rng_states(states);
  }

  {
    std::istringstream fields = expect_line(in, "env_units");
    std::size_t n = 0;
    fields >> n;
    std::vector<int> units(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (!(fields >> units[i])) {
        throw std::runtime_error("checkpoint: short env_units record");
      }
    }
    env_.restore_units(units);
  }

  {
    std::istringstream fields = expect_line(in, "adam_t");
    long actor_t = -1, critic_t = -1;
    if (!(fields >> actor_t >> critic_t) || actor_t < 0 || critic_t < 0) {
      throw std::runtime_error("checkpoint: malformed adam_t record");
    }
    actor_optimizer_.set_timestep(actor_t);
    critic_optimizer_.set_timestep(critic_t);
  }

  const std::vector<ad::Parameter*> params = network_.all_parameters();
  std::size_t count = 0;
  expect_line(in, "params") >> count;
  if (count != params.size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch (" +
                             std::to_string(count) + " saved, " +
                             std::to_string(params.size()) + " live)");
  }
  for (ad::Parameter* p : params) {
    std::istringstream fields = expect_line(in, "param");
    std::string name;
    std::size_t rows = 0, cols = 0;
    if (!(fields >> name >> rows >> cols)) {
      throw std::runtime_error("checkpoint: malformed param record");
    }
    if (name != p->name || rows != p->value.rows() || cols != p->value.cols()) {
      throw std::runtime_error("checkpoint: parameter '" + name +
                               "' does not match live parameter '" + p->name +
                               "' (name/shape)");
    }
    read_matrix_line(in, "v", p->value);
    read_matrix_line(in, "m", p->adam_m);
    read_matrix_line(in, "s", p->adam_v);
  }
  expect_line(in, "end");

  epoch_counter_ = epoch;
  static obs::Counter& resumes = obs::counter("train.resumes");
  resumes.add(1);
  log_info("rl: resumed from ", path, " at epoch ", epoch);
}

}  // namespace np::rl
