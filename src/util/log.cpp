#include "util/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/mutex.hpp"

namespace np {

namespace {
// Relaxed is fine for the level: a racing set_log_level only decides
// whether a concurrent message is dropped, never corrupts anything.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes whole lines: worker threads (RolloutWorkers,
// ParallelPlanEvaluator) log concurrently, and a single fprintf is not
// guaranteed atomic with respect to other writers of the same stream.
// (No NP_GUARDED_BY: the guarded resource is the stderr stream, not a
// member the analysis can name.)
util::Mutex g_write_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  util::LockGuard lock(g_write_mutex);
  std::fprintf(stderr, "[np %s] %.*s\n", tag(level),
               static_cast<int>(message.size()), message.data());
  std::fflush(stderr);
}

}  // namespace np
