// Graph Convolutional Network encoder (Eq. 7 of the paper):
//   H^{l+1} = ReLU( D^{-1/2} (A + I) D^{-1/2} H^l W^l ).
// The normalized adjacency is precomputed once per topology by
// topo::node_link_transform; only node features change per RL step.
// Zero layers degrade to the identity encoder (the paper's Figure 10
// "without GNN" ablation).
#pragma once

#include <memory>
#include <vector>

#include "nn/encoder.hpp"
#include "nn/linear.hpp"

namespace np::nn {

class GcnEncoder final : public GraphEncoder {
 public:
  /// `layers` == 0 produces an identity encoder (output dim == input dim).
  GcnEncoder(std::string name, int in_features, int hidden, int layers, Rng& rng);

  /// features: (n x in) -> embedding (n x output_dim()).
  ad::Tensor forward(ad::Tape& tape,
                     std::shared_ptr<const la::CsrMatrix> normalized_adjacency,
                     ad::Tensor features) override;

  std::vector<ad::Parameter*> parameters() override;

  int output_dim() const override {
    return layers_.empty() ? in_features_ : hidden_;
  }
  int num_layers() const { return static_cast<int>(layers_.size()); }

 private:
  int in_features_;
  int hidden_;
  std::vector<Linear> layers_;
};

}  // namespace np::nn
