// NeuroPlan: the paper's two-stage hybrid planner (§4, Figures 2-3).
//
// Stage 1 trains the GCN actor-critic agent (np::rl) against the plan
// evaluator and takes the cheapest feasible plan it produced — the
// "First-stage" series of Figures 8-9. Stage 2 encodes that plan,
// multiplied by the relax factor alpha, as per-link maximum-capacity
// bounds in the ILP of §3.1 and solves the pruned problem to
// optimality (§4.3). Alpha is the operator's knob between optimality
// (large alpha, bigger search space) and tractability (small alpha).
#pragma once

#include <vector>

#include "core/baselines.hpp"
#include "core/planner.hpp"
#include "rl/trainer.hpp"

namespace np::core {

struct NeuroPlanConfig {
  rl::TrainConfig train;
  /// Relax factor alpha (Table 2 sweeps {1, 1.25, 1.5, 2}).
  double relax_factor = 1.5;
  /// Second-stage solver budget.
  double ilp_time_limit_seconds = 300.0;
  double ilp_relative_gap = 1e-4;
  /// Run a deterministic rollout after training to harvest the final
  /// policy's plan in addition to the best sampled one.
  bool greedy_rollout = true;
  /// When RL finds no feasible plan within its budget (possible at tiny
  /// epoch counts), fall back to the greedy design so the pipeline
  /// still returns a plan; the result is marked in `detail`.
  bool fallback_to_greedy = true;
};

struct NeuroPlanResult {
  PlanResult first_stage;             ///< RL plan (Figures 8-9 "First-stage")
  PlanResult final;                   ///< after the pruned ILP
  std::vector<rl::EpochStats> history;  ///< training curve (Figures 11-12 (b))
  double train_seconds = 0.0;
  double ilp_seconds = 0.0;
};

/// Run the full two-stage pipeline on a topology.
NeuroPlanResult neuroplan(const topo::Topology& topology,
                          const NeuroPlanConfig& config);

/// Stage 2 only: prune the ILP around an existing first-stage plan
/// (added units) with the given relax factor and solve it. Exposed so
/// Figure 13 can sweep alpha without retraining.
PlanResult second_stage(const topo::Topology& topology,
                        const std::vector<int>& first_stage_added,
                        double relax_factor, double time_limit_seconds = 300.0,
                        double relative_gap = 1e-4);

/// CPU-budget training defaults that converge on the preset topologies
/// (documented deviations from Table 2: fewer epochs, 10x learning
/// rates, PPO-clipped updates with several iterations per epoch).
rl::TrainConfig default_train_config(const topo::Topology& topology, unsigned seed = 7);

}  // namespace np::core
