// Generalized Advantage Estimation (Eq. 6 of the paper, following
// Schulman et al.) and discounted rewards-to-go over an epoch buffer
// that may contain several (possibly cut-off) trajectories.
#pragma once

#include <vector>

namespace np::rl {

struct GaeConfig {
  double gamma = 0.99;       ///< discount factor (Table 2)
  double gae_lambda = 0.97;  ///< smoothing parameter (Table 2)
};

struct GaeResult {
  std::vector<double> advantages;
  std::vector<double> rewards_to_go;
};

/// rewards[i], values[i]: per step. terminal[i] is true when step i ends
/// a trajectory whose final state has zero value (feasible plan reached
/// or timeout penalty applied). A trailing non-terminal step (epoch cut
/// a trajectory) is bootstrapped with `last_value`, the critic estimate
/// of the state after the final step.
GaeResult compute_gae(const std::vector<double>& rewards,
                      const std::vector<double>& values,
                      const std::vector<bool>& terminal, double last_value,
                      const GaeConfig& config);

/// Normalize advantages to mean 0 / std 1 in place (no-op for size < 2
/// or ~zero variance). Standard A2C variance-reduction practice.
void normalize_advantages(std::vector<double>& advantages);

}  // namespace np::rl
