// Shared helpers for the figure-reproduction benches.
//
// Every bench prints (a) the hyperparameter header (Table 2 values in
// effect), (b) the same normalized rows/series its paper figure
// reports. Scale knobs are environment variables so a user can crank
// fidelity without recompiling:
//   NEUROPLAN_TOPOS    e.g. "ABC"   — subset of preset topologies
//   NEUROPLAN_EPOCHS   e.g. "256"   — RL epochs override (0 = default)
//   NEUROPLAN_SEED     e.g. "7"     — RL / workload seed
//   NEUROPLAN_ILP_TIME e.g. "120"   — exact-ILP budget seconds
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/neuroplan.hpp"
#include "topo/generator.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace np::bench {

/// Schema version stamped into every emitted BENCH_*.json. Bump when a
/// bench changes the meaning or layout of its JSON fields, so perf
/// trajectories across PRs compare like with like.
/// v3: lp_throughput gained the per-pricing-rule breakdown (multiple
/// topologies per file, pricing_seconds/pricing_share per pass).
/// v4: rollout_throughput reports the worker curve per inference mode
/// (fast/tape) under "modes"; new nn_inference bench (BENCH_infer.json).
/// v5: new serve_throughput bench (BENCH_serve.json: QPS vs p50/p99 and
/// shed/degraded rates per worker count); shared provenance gained
/// "hw_threads" and, on single-hardware-thread hosts, a machine-readable
/// "hw_warning" block — throughput scaling numbers from a 1-thread box
/// measure contention, not parallel speedup.
inline constexpr int kBenchSchemaVersion = 5;

/// Git revision baked in at configure time (bench/CMakeLists.txt);
/// "unknown" outside a git checkout.
inline const char* git_rev() {
#ifdef NEUROPLAN_GIT_REV
  return NEUROPLAN_GIT_REV;
#else
  return "unknown";
#endif
}

/// Emit the shared provenance fields. Call right after writing the
/// opening '{' of a BENCH_*.json document (fields end with a comma).
/// Includes hardware-thread provenance: scaling curves recorded on a
/// single-hardware-thread host are flagged with a hw_warning block
/// (thread_starved is numeric so bench_diff's numeric-leaf flattening
/// surfaces it in comparisons).
inline void print_json_provenance(std::FILE* out) {
  const int hw = util::ThreadPool::hardware_threads();
  std::fprintf(out, "  \"schema_version\": %d,\n  \"git_rev\": \"%s\",\n",
               kBenchSchemaVersion, git_rev());
  std::fprintf(out, "  \"hw_threads\": %d,\n", hw);
  if (hw <= 1) {
    std::fprintf(out,
                 "  \"hw_warning\": {\n"
                 "    \"thread_starved\": 1,\n"
                 "    \"detail\": \"single hardware thread: worker-scaling "
                 "series measure contention, not parallel speedup\"\n"
                 "  },\n");
  }
}

inline std::string topo_selection(const std::string& fallback) {
  return env_string("NEUROPLAN_TOPOS", fallback);
}

inline unsigned bench_seed() {
  return static_cast<unsigned>(env_long("NEUROPLAN_SEED", 7));
}

inline double ilp_time_budget() {
  return env_double("NEUROPLAN_ILP_TIME", 120.0);
}

/// Training config for bench runs: the shared CPU-budget defaults with
/// a per-topology epoch schedule, overridable via NEUROPLAN_EPOCHS.
inline rl::TrainConfig bench_train_config(const topo::Topology& topology,
                                          char topo_id, unsigned seed) {
  rl::TrainConfig config = core::default_train_config(topology, seed);
  switch (topo_id) {
    case 'A': config.epochs = 32; break;
    case 'B': config.epochs = 32; break;
    case 'C': config.epochs = 24; break;
    case 'D': config.epochs = 10; break;
    default:  config.epochs = 6; break;
  }
  const long override_epochs = env_long("NEUROPLAN_EPOCHS", 0);
  if (override_epochs > 0) config.epochs = static_cast<int>(override_epochs);
  return config;
}

/// Second-stage ILP budget, scaled with the topology (override with
/// NEUROPLAN_STAGE2_TIME).
inline double stage2_budget(char topo_id) {
  double fallback = 60.0;
  switch (topo_id) {
    case 'C': fallback = 120.0; break;
    case 'D': fallback = 150.0; break;
    case 'E': fallback = 180.0; break;
    default: break;
  }
  return env_double("NEUROPLAN_STAGE2_TIME", fallback);
}

inline void print_header(const char* figure, const char* description) {
  std::printf("==== %s ====\n%s\n", figure, description);
  std::printf("(Table 2 defaults in effect: gamma=0.99 gae-lambda=0.97 GNN=GCN "
              "relu; CPU-budget adaptations per EXPERIMENTS.md)\n\n");
}

}  // namespace np::bench
