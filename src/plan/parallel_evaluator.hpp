// Parallel failure checking (§5): "we can group the failures and employ
// multiple machines to check failure groups in parallel, which enables
// training for problems with a large number of failures."
//
// This is the single-machine, multi-thread rendition: scenarios are
// partitioned round-robin into per-thread groups; each thread owns its
// scenario-LP caches (built once, patched per check, warm-started), so
// no solver state is shared. Verdicts are deterministic — the reported
// violated scenario is the smallest-indexed one — only wall-clock
// changes with the thread count.
//
// Concurrency model: deliberately lock-free. Workers write into
// per-thread result slots sized before the fan-out and coordinate
// solely through one atomic cancel flag; the pool's join is the only
// synchronization point. There is no mutex here to annotate — if a
// change ever needs shared mutable state, guard it with util::Mutex +
// NP_GUARDED_BY rather than weakening this design silently (np_lint
// rejects raw std primitives outside util/).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "plan/evaluator.hpp"
#include "plan/scenario_lp.hpp"
#include "topo/topology.hpp"
#include "util/thread_pool.hpp"

namespace np::plan {

class ParallelPlanEvaluator {
 public:
  /// threads == 1 degrades to sequential checking. Throws on threads < 1.
  ParallelPlanEvaluator(const topo::Topology& topology, int threads);

  /// Check the plan (per-link TOTAL units) against every scenario.
  /// Unlike the sequential evaluator's early exit, all scenarios are
  /// checked (the paper's grouped-parallel pattern); the result still
  /// reports the first violated scenario by index.
  ///
  /// Exception safety: if any worker throws, the remaining scenario
  /// groups are cancelled cooperatively, every pool thread drains, and
  /// the first exception propagates to the caller — check() never
  /// deadlocks the pool and the evaluator stays usable afterwards.
  CheckResult check(const std::vector<int>& total_units);

  /// Wall-clock budget per scenario solve, in seconds; <= 0 means
  /// unlimited. See PlanEvaluator::set_scenario_budget.
  void set_scenario_budget(double seconds) { scenario_budget_seconds_ = seconds; }
  double scenario_budget_seconds() const { return scenario_budget_seconds_; }

  /// Trajectory boundary. Scenario models are patched, not monotone, so
  /// nothing needs invalidating — present for API parity with
  /// PlanEvaluator so callers can hold either behind one interface.
  void reset() {}

  int num_scenarios() const { return topology_.num_failures() + 1; }
  int threads() const { return threads_; }

  /// Cumulative simplex iterations since construction (efficiency metric).
  long total_lp_iterations() const { return total_lp_iterations_; }

  /// Cumulative seconds inside lp::solve since construction, summed
  /// across worker threads (CPU-seconds of LP work, not elapsed time).
  double total_lp_seconds() const { return total_lp_seconds_; }

 private:
  const topo::Topology& topology_;
  int threads_;
  /// Solver options shared by all workers, configured once at
  /// construction — workers only read it, so cross-thread sharing is
  /// safe, and per-model state (warm bases, cached scenario LPs) lives
  /// in cached_ and survives across check() calls.
  lp::SimplexOptions lp_options_;
  double scenario_budget_seconds_ = 0.0;  ///< <= 0 = unlimited
  /// cached_[t] holds thread t's scenario models (lazily built).
  std::vector<std::vector<std::optional<ScenarioLp>>> cached_;
  std::vector<std::vector<int>> groups_;  // thread -> scenario indices
  /// Persistent pool of threads_-1 workers; the calling thread runs
  /// group 0 itself via run_all, so threads_ groups solve concurrently.
  std::unique_ptr<util::ThreadPool> pool_;
  long total_lp_iterations_ = 0;
  double total_lp_seconds_ = 0.0;
};

}  // namespace np::plan
