file(REMOVE_RECURSE
  "libnp_util.a"
)
