#include "core/planner.hpp"

#include <stdexcept>

#include "plan/evaluator.hpp"

namespace np::core {

PlanResult verify_result(const topo::Topology& topology, PlanResult result) {
  if (!result.feasible) return result;
  if (result.added_units.size() != static_cast<std::size_t>(topology.num_links())) {
    throw std::invalid_argument("verify_result: plan size mismatch");
  }
  std::vector<int> total = topology.initial_units();
  for (int l = 0; l < topology.num_links(); ++l) total[l] += result.added_units[l];
  plan::PlanEvaluator evaluator(topology, plan::EvaluatorMode::kSourceAggregation);
  result.feasible = evaluator.check(total).feasible;
  result.cost = topology.plan_cost(result.added_units);
  return result;
}

}  // namespace np::core
