# Empty compiler generated dependencies file for fig10_gnn_layers.
# This may be replaced when dependencies are built.
