#include "obs/flight.hpp"

#include <cstdlib>
#include <cstring>
#include <exception>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define NP_FR_POSIX 1
#include <fcntl.h>
#include <signal.h>  // NOLINT: sigaction needs the POSIX header
#include <unistd.h>
#else
#define NP_FR_POSIX 0
#include <cstdio>
#endif

namespace np::obs {

namespace {

using fr_detail::ThreadRecord;

constexpr int kMaxThreads = 256;
constexpr int kNpcrashVersion = 1;

std::atomic<bool> g_enabled{true};

// Honor the kill switch before main() so even static-init spans obey it.
struct EnvInit {
  EnvInit() {
    const char* v = std::getenv("NEUROPLAN_FLIGHT_RECORD");
    if (v != nullptr &&
        (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
         std::strcmp(v, "false") == 0)) {
      g_enabled.store(false, std::memory_order_relaxed);
    }
  }
};
EnvInit g_env_init;

// Thread-slot table: append-only raw pointers published with release
// stores, so the dump path (a signal handler) can walk it without a
// lock. Records are leaked — exited threads keep their tails readable.
std::atomic<int> g_thread_count{0};
std::atomic<ThreadRecord*> g_threads[kMaxThreads];

thread_local ThreadRecord* t_record = nullptr;
thread_local bool t_overflowed = false;

// Dump state. The path lives in a fixed buffer so the signal handler
// never touches heap memory; latches are plain atomics.
constexpr std::size_t kPathCap = 512;
char g_path[kPathCap];  // NUL-terminated; "" = unarmed
std::atomic<bool> g_armed{false};
std::atomic<bool> g_exit_dump{false};  // only explicit arming requests it
// 0 = no report yet, 1 = non-fatal report written, 2 = fatal written.
std::atomic<int> g_dump_class{0};
std::atomic<int> g_dump_in_progress{0};
std::atomic<bool> g_handlers_installed{false};
std::terminate_handler g_prev_terminate = nullptr;

constexpr std::size_t kAnnotationCap = 1024;
char g_annotation[kAnnotationCap];

void copy_bounded(char* dst, std::size_t cap, const char* src) {
  std::size_t n = 0;
  if (src != nullptr) {
    while (n + 1 < cap && src[n] != '\0') {
      dst[n] = src[n];
      ++n;
    }
  }
  dst[n] = '\0';
}

// ---------------------------------------------------------------------------
// Async-signal-safe buffered writer: write(2) only, hand-rolled number
// formatting, fixed stack buffer. Not a general JSON library — just
// enough to emit the .npcrash document.

class FdWriter {
 public:
  explicit FdWriter(int fd) : fd_(fd) {}
  ~FdWriter() { flush(); }
  FdWriter(const FdWriter&) = delete;
  FdWriter& operator=(const FdWriter&) = delete;

  void raw(const char* s, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) ch(s[i]);
  }
  void str(const char* s) { raw(s, std::strlen(s)); }
  void ch(char c) {
    if (used_ == sizeof(buf_)) flush();
    buf_[used_++] = c;
  }

  /// Quoted JSON string with the escapes that can actually occur in
  /// span names, file paths and command lines.
  void json_str(const char* s) {
    ch('"');
    if (s != nullptr) {
      for (const char* p = s; *p != '\0'; ++p) {
        const unsigned char c = static_cast<unsigned char>(*p);
        if (c == '"' || c == '\\') {
          ch('\\');
          ch(static_cast<char>(c));
        } else if (c < 0x20) {
          // \u00XX for control characters (tabs/newlines included).
          ch('\\');
          ch('u');
          ch('0');
          ch('0');
          ch(hex_digit(c >> 4));
          ch(hex_digit(c & 0xF));
        } else {
          ch(static_cast<char>(c));
        }
      }
    }
    ch('"');
  }

  void num(long long v) {
    if (v < 0) {
      ch('-');
      // Negate via unsigned to survive LLONG_MIN.
      num_u(static_cast<unsigned long long>(-(v + 1)) + 1ULL);
    } else {
      num_u(static_cast<unsigned long long>(v));
    }
  }

  void num_u(unsigned long long v) {
    char tmp[24];
    int n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + (v % 10));
      v /= 10;
    } while (v != 0);
    while (n > 0) ch(tmp[--n]);
  }

  /// Doubles without snprintf: fixed-point with up to 6 fractional
  /// digits in [1e-4, 1e15), hand-rolled scientific outside, null for
  /// nan/inf (JSON has no spelling for them). ~15 significant digits —
  /// plenty for timestamps and metric values in a crash report.
  void num_double(double v) {
    if (v != v) {  // NaN without <cmath>
      str("null");
      return;
    }
    if (v < 0) {
      ch('-');
      v = -v;
    }
    if (v > 1.7976931348623157e308) {  // +inf
      str("null");
      return;
    }
    if (v == 0.0) {
      ch('0');
      return;
    }
    if (v >= 1e15 || v < 1e-4) {
      int exp = 0;
      while (v >= 10.0) {
        v /= 10.0;
        ++exp;
      }
      while (v < 1.0) {
        v *= 10.0;
        --exp;
      }
      fixed(v, 12);
      ch('e');
      num(exp);
      return;
    }
    fixed(v, 6);
  }

  void flush() {
    if (used_ == 0) return;
#if NP_FR_POSIX
    std::size_t off = 0;
    while (off < used_) {
      const ssize_t w = ::write(fd_, buf_ + off, used_ - off);
      if (w <= 0) break;  // EINTR/short write: retry; error: drop rest
      off += static_cast<std::size_t>(w);
    }
#else
    std::fwrite(buf_, 1, used_, fd_ == 2 ? stderr : stdout);
#endif
    used_ = 0;
  }

 private:
  static char hex_digit(unsigned v) {
    return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
  }

  /// v in [1, 1e16): integer part exactly via unsigned long long, then
  /// `frac_digits` fractional digits with trailing zeros trimmed.
  void fixed(double v, int frac_digits) {
    const unsigned long long ip = static_cast<unsigned long long>(v);
    num_u(ip);
    double frac = v - static_cast<double>(ip);
    if (frac <= 0.0 || frac_digits <= 0) return;
    char tmp[16];
    int n = 0;
    for (int i = 0; i < frac_digits; ++i) {
      frac *= 10.0;
      int d = static_cast<int>(frac);
      if (d > 9) d = 9;
      tmp[n++] = static_cast<char>('0' + d);
      frac -= d;
    }
    while (n > 0 && tmp[n - 1] == '0') --n;
    if (n == 0) return;
    ch('.');
    for (int i = 0; i < n; ++i) ch(tmp[i]);
  }

  int fd_;
  char buf_[4096];
  std::size_t used_ = 0;
};

// Metrics snapshot callbacks (function pointers + context — the crash
// path cannot afford std::function's possible allocation).
struct MetricsEmitState {
  FdWriter* w;
  bool first_counter = true;
  bool first_gauge = true;
  bool first_hist = true;
};

void emit_counter_cb(void* ctx, const char* name, long value) {
  auto* s = static_cast<MetricsEmitState*>(ctx);
  if (!s->first_counter) s->w->ch(',');
  s->first_counter = false;
  s->w->json_str(name);
  s->w->ch(':');
  s->w->num(value);
}

void emit_gauge_cb(void* ctx, const char* name, double value) {
  auto* s = static_cast<MetricsEmitState*>(ctx);
  if (!s->first_gauge) s->w->ch(',');
  s->first_gauge = false;
  s->w->json_str(name);
  s->w->ch(':');
  s->w->num_double(value);
}

void emit_histogram_cb(void* ctx, const char* name, long count, double sum,
                       double min, double max) {
  auto* s = static_cast<MetricsEmitState*>(ctx);
  if (!s->first_hist) s->w->ch(',');
  s->first_hist = false;
  s->w->json_str(name);
  s->w->str(":{\"count\":");
  s->w->num(count);
  s->w->str(",\"sum\":");
  s->w->num_double(sum);
  s->w->str(",\"min\":");
  s->w->num_double(min);
  s->w->str(",\"max\":");
  s->w->num_double(max);
  s->w->ch('}');
}

void write_metrics(FdWriter& w) {
  MetricsEmitState state{&w};
  CrashSnapshotVisitor visitor;
  visitor.ctx = &state;
  visitor.on_counter = emit_counter_cb;
  visitor.on_gauge = emit_gauge_cb;
  visitor.on_histogram = emit_histogram_cb;
  // Three passes (one per section) so the JSON groups by kind; each
  // pass re-try_locks, which is fine — contention means we skip.
  w.str("\"metrics\":");
  visitor.on_gauge = nullptr;
  visitor.on_histogram = nullptr;
  w.str("{\"counters\":{");
  const bool got = Registry::instance().try_visit_for_crash(visitor);
  if (!got) {
    // Registration lock unavailable (likely held by the interrupted
    // thread): emit a well-formed empty snapshot plus a flag.
    w.str("},\"gauges\":{},\"histograms\":{}},\"metrics_lock_skipped\":true");
    return;
  }
  visitor.on_counter = nullptr;
  visitor.on_gauge = emit_gauge_cb;
  w.str("},\"gauges\":{");
  Registry::instance().try_visit_for_crash(visitor);
  visitor.on_gauge = nullptr;
  visitor.on_histogram = emit_histogram_cb;
  w.str("},\"histograms\":{");
  Registry::instance().try_visit_for_crash(visitor);
  w.str("}},\"metrics_lock_skipped\":false");
}

void write_thread(FdWriter& w, const ThreadRecord& r) {
  w.str("{\"tid\":");
  w.num(r.tid);
  const std::uint64_t head = r.head.load(std::memory_order_acquire);
  w.str(",\"events_written\":");
  w.num_u(head);

  // Active span stack, innermost last. Depth can race past the stored
  // entries; clamp to what is actually there.
  int depth = r.span_depth.load(std::memory_order_relaxed);
  if (depth < 0) depth = 0;
  if (depth > ThreadRecord::kMaxSpanDepth) depth = ThreadRecord::kMaxSpanDepth;
  w.str(",\"span_stack\":[");
  for (int i = 0; i < depth; ++i) {
    const char* name = r.span_stack[i].load(std::memory_order_relaxed);
    if (name == nullptr) break;
    if (i > 0) w.ch(',');
    w.json_str(name);
  }
  w.ch(']');

  const char* hb = r.hb_name.load(std::memory_order_relaxed);
  if (hb != nullptr) {
    w.str(",\"heartbeat\":{\"name\":");
    w.json_str(hb);
    w.str(",\"progress\":");
    w.num(r.hb_progress.load(std::memory_order_relaxed));
    w.str(",\"ts_us\":");
    w.num_double(r.hb_ts_us.load(std::memory_order_relaxed));
    w.ch('}');
  } else {
    w.str(",\"heartbeat\":null");
  }

  w.str(",\"events\":[");
  std::uint64_t n = head < ThreadRecord::kRingCapacity
                        ? head
                        : ThreadRecord::kRingCapacity;
  bool first = true;
  for (std::uint64_t i = head - n; i < head; ++i) {
    const ThreadRecord::Event& e =
        r.ring[i & (ThreadRecord::kRingCapacity - 1)];
    const auto kind =
        static_cast<FrEventKind>(e.kind.load(std::memory_order_relaxed));
    const char* name = e.name.load(std::memory_order_relaxed);
    if (kind == FrEventKind::kNone || name == nullptr) continue;
    if (!first) w.ch(',');
    first = false;
    w.str("{\"ts_us\":");
    w.num_double(e.ts_us.load(std::memory_order_relaxed));
    w.str(",\"kind\":");
    w.json_str(fr_event_kind_name(kind));
    w.str(",\"name\":");
    w.json_str(name);
    w.str(",\"a\":");
    w.num(e.a.load(std::memory_order_relaxed));
    w.str(",\"b\":");
    w.num(e.b.load(std::memory_order_relaxed));
    w.ch('}');
  }
  w.str("]}");
}

void write_report(int fd, const char* trigger_kind, const char* trigger_name,
                  const char* trigger_detail) {
  FdWriter w(fd);
  w.str("{\"npcrash_version\":");
  w.num(kNpcrashVersion);
  w.str(",\"trigger\":{\"kind\":");
  w.json_str(trigger_kind);
  w.str(",\"name\":");
  w.json_str(trigger_name);
  w.str(",\"detail\":");
  w.json_str(trigger_detail);
  w.str(",\"ts_us\":");
  w.num_double(now_us());
  ThreadRecord* self = fr_detail::thread_record_or_null();
  w.str(",\"tid\":");
  w.num(self != nullptr ? self->tid : 0);
  w.str("},\"build\":{\"git_rev\":");
#ifdef NEUROPLAN_GIT_REV
  w.json_str(NEUROPLAN_GIT_REV);
#else
  w.json_str("unknown");
#endif
  w.str(",\"checks\":");
#ifdef NEUROPLAN_ENABLE_CHECKS
  w.str("true");
#else
  w.str("false");
#endif
  w.str(",\"faults\":");
#ifdef NEUROPLAN_ENABLE_FAULTS
  w.str("true");
#else
  w.str("false");
#endif
  w.str("},\"pid\":");
#if NP_FR_POSIX
  w.num(static_cast<long long>(::getpid()));
#else
  w.num(0);
#endif
  w.str(",\"annotation\":");
  w.json_str(g_annotation);
  w.ch(',');
  write_metrics(w);
  w.str(",\"threads\":[");
  const int count = g_thread_count.load(std::memory_order_acquire);
  bool first = true;
  for (int i = 0; i < count && i < kMaxThreads; ++i) {
    const ThreadRecord* r = g_threads[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;  // slot claimed, record not published yet
    if (!first) w.ch(',');
    first = false;
    write_thread(w, *r);
  }
  w.str("]}\n");
  w.flush();
}

/// write(2) a short NUL-free note to stderr (signal-handler logging).
void stderr_note(const char* a, const char* b, const char* c) {
#if NP_FR_POSIX
  FdWriter w(2);
  w.str(a);
  w.str(b);
  w.str(c);
  w.ch('\n');
#else
  std::fprintf(stderr, "%s%s%s\n", a, b, c);
#endif
}

bool dump_to_path(const char* path, const char* trigger_kind,
                  const char* trigger_name, const char* trigger_detail) {
#if NP_FR_POSIX
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    stderr_note("[np fr] cannot open flight record path ", path, "");
    return false;
  }
  write_report(fd, trigger_kind, trigger_name, trigger_detail);
  ::close(fd);
#else
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  // Non-POSIX fallback is stdio-based and not signal-safe; the crash
  // handlers are not installed on such platforms anyway.
  write_report(fileno(f), trigger_kind, trigger_name, trigger_detail);
  std::fclose(f);
#endif
  stderr_note("[np fr] wrote flight record (", trigger_kind, ") — see .npcrash");
  return true;
}

#if NP_FR_POSIX
const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    case SIGBUS:
      return "SIGBUS";
    case SIGFPE:
      return "SIGFPE";
    case SIGILL:
      return "SIGILL";
    default:
      return "signal";
  }
}

void crash_signal_handler(int sig) {
  // One crash dump per process; a recursive fault inside the dump
  // falls straight through to the default action.
  if (g_dump_in_progress.exchange(1) == 0) {
    dump_flight_record("signal", signal_name(sig), "", /*fatal=*/true);
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}
#endif

[[noreturn]] void terminate_with_dump() {
  if (g_dump_in_progress.exchange(1) == 0) {
    dump_flight_record("terminate", "std::terminate", "", /*fatal=*/true);
  }
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

}  // namespace

const char* fr_event_kind_name(FrEventKind kind) {
  switch (kind) {
    case FrEventKind::kNone:
      return "none";
    case FrEventKind::kSpanBegin:
      return "span_begin";
    case FrEventKind::kSpanEnd:
      return "span_end";
    case FrEventKind::kContractViolation:
      return "contract_violation";
    case FrEventKind::kDeadlineHit:
      return "deadline_hit";
    case FrEventKind::kVerdictDegraded:
      return "verdict_degraded";
    case FrEventKind::kFaultInjected:
      return "fault_injected";
    case FrEventKind::kCheckpointSave:
      return "checkpoint_save";
    case FrEventKind::kEpochBoundary:
      return "epoch_boundary";
    case FrEventKind::kStall:
      return "stall";
    case FrEventKind::kAnnotation:
      return "annotation";
  }
  return "unknown";
}

bool flight_recorder_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_flight_recorder_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

namespace fr_detail {

ThreadRecord* thread_record() {
  if (t_record != nullptr) return t_record;
  if (t_overflowed) return nullptr;
  const int idx = g_thread_count.fetch_add(1, std::memory_order_acq_rel);
  if (idx >= kMaxThreads) {
    t_overflowed = true;
    static Counter& overflow = obs::counter("fr.thread_overflow");
    overflow.add(1);
    return nullptr;
  }
  auto* r = new ThreadRecord();  // leaked: see header
  r->tid = idx + 1;
  g_threads[idx].store(r, std::memory_order_release);
  t_record = r;
  return r;
}

ThreadRecord* thread_record_or_null() { return t_record; }

int snapshot_thread_records(ThreadRecord** out, int capacity) {
  const int count = g_thread_count.load(std::memory_order_acquire);
  int n = 0;
  for (int i = 0; i < count && i < kMaxThreads && n < capacity; ++i) {
    ThreadRecord* r = g_threads[i].load(std::memory_order_acquire);
    if (r != nullptr) out[n++] = r;
  }
  return n;
}

int max_threads() { return kMaxThreads; }

void fr_span_begin(const char* name) {
  ThreadRecord* r = thread_record();
  if (r == nullptr) return;
  const int depth = r->span_depth.load(std::memory_order_relaxed);
  if (depth < ThreadRecord::kMaxSpanDepth && depth >= 0) {
    r->span_stack[depth].store(name, std::memory_order_relaxed);
  }
  r->span_depth.store(depth + 1, std::memory_order_relaxed);
  fr_record(FrEventKind::kSpanBegin, name);
}

void fr_span_end() {
  ThreadRecord* r = t_record;
  if (r == nullptr) return;
  const int depth = r->span_depth.load(std::memory_order_relaxed);
  if (depth <= 0) return;
  r->span_depth.store(depth - 1, std::memory_order_relaxed);
  const char* name = nullptr;
  if (depth - 1 < ThreadRecord::kMaxSpanDepth) {
    name = r->span_stack[depth - 1].load(std::memory_order_relaxed);
    r->span_stack[depth - 1].store(nullptr, std::memory_order_relaxed);
  }
  if (name != nullptr &&
      g_enabled.load(std::memory_order_relaxed)) {
    fr_record(FrEventKind::kSpanEnd, name);
  }
}

}  // namespace fr_detail

void fr_record(FrEventKind kind, const char* name, long a, long b) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  ThreadRecord* r = fr_detail::thread_record();
  if (r == nullptr || name == nullptr) return;
  const std::uint64_t h = r->head.load(std::memory_order_relaxed);
  ThreadRecord::Event& e = r->ring[h & (ThreadRecord::kRingCapacity - 1)];
  e.ts_us.store(now_us(), std::memory_order_relaxed);
  e.name.store(name, std::memory_order_relaxed);
  e.a.store(a, std::memory_order_relaxed);
  e.b.store(b, std::memory_order_relaxed);
  e.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  r->head.store(h + 1, std::memory_order_release);
}

void set_flight_record_path(const char* path) {
  if (path == nullptr || path[0] == '\0') {
    g_armed.store(false, std::memory_order_relaxed);
    g_exit_dump.store(false, std::memory_order_relaxed);
    g_path[0] = '\0';
    return;
  }
  copy_bounded(g_path, kPathCap, path);
  g_armed.store(true, std::memory_order_release);
  g_exit_dump.store(true, std::memory_order_relaxed);
  g_dump_class.store(0, std::memory_order_relaxed);
}

void install_crash_handlers() {
#if NP_FR_POSIX
  if (g_handlers_installed.exchange(true)) return;
  if (!g_armed.load(std::memory_order_acquire)) {
    // Implicit crash-only destination in the working directory.
    char path[64];
    std::size_t n = 0;
    const char prefix[] = "np_crash_";
    for (const char* p = prefix; *p != '\0'; ++p) path[n++] = *p;
    long pid = static_cast<long>(::getpid());
    char digits[24];
    int d = 0;
    do {
      digits[d++] = static_cast<char>('0' + pid % 10);
      pid /= 10;
    } while (pid != 0);
    while (d > 0) path[n++] = digits[--d];
    const char suffix[] = ".npcrash";
    for (const char* p = suffix; *p != '\0'; ++p) path[n++] = *p;
    path[n] = '\0';
    copy_bounded(g_path, kPathCap, path);
    g_armed.store(true, std::memory_order_release);
    // crash-only: no exit dump for the implicit path
    g_exit_dump.store(false, std::memory_order_relaxed);
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = crash_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  const int signals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
  for (const int sig : signals) sigaction(sig, &sa, nullptr);
  g_prev_terminate = std::set_terminate(terminate_with_dump);
#endif
}

bool flight_record_armed() { return g_armed.load(std::memory_order_acquire); }

const char* flight_record_path() {
  return g_armed.load(std::memory_order_acquire) ? g_path : "";
}

bool flight_record_dumped() {
  return g_dump_class.load(std::memory_order_acquire) != 0;
}

bool dump_flight_record(const char* trigger_kind, const char* trigger_name,
                        const char* trigger_detail, bool fatal,
                        const char* path) {
  const char* dest = path;
  if (dest == nullptr) {
    if (!g_armed.load(std::memory_order_acquire)) return false;
    dest = g_path;
    // First trigger wins per class: a fatal report overwrites at most
    // one earlier non-fatal report, never another fatal one; non-fatal
    // reports never clobber anything.
    const int cls = fatal ? 2 : 1;
    int cur = g_dump_class.load(std::memory_order_acquire);
    do {
      if (cur >= cls) return false;
    } while (!g_dump_class.compare_exchange_weak(cur, cls,
                                                 std::memory_order_acq_rel));
  }
  return dump_to_path(dest, trigger_kind, trigger_name, trigger_detail);
}

void set_run_annotation(const char* text) {
  copy_bounded(g_annotation, kAnnotationCap, text);
}

void fr_on_contract_violation(const char* file, int line, const char* expr) {
  fr_record(FrEventKind::kContractViolation, file, line);
  dump_flight_record("contract_violation", file, expr, /*fatal=*/true);
}

void fr_dump_at_exit() {
  if (!g_exit_dump.load(std::memory_order_relaxed)) return;
  dump_flight_record("exit", "flight-record-out", "", /*fatal=*/false);
}

std::uint64_t fr_total_events() {
  ThreadRecord* records[kMaxThreads];
  const int n = fr_detail::snapshot_thread_records(records, kMaxThreads);
  std::uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    total += records[i]->head.load(std::memory_order_acquire);
  }
  return total;
}

int fr_thread_count() {
  ThreadRecord* records[kMaxThreads];
  return fr_detail::snapshot_thread_records(records, kMaxThreads);
}

}  // namespace np::obs
