// A2C trainer implementing Algorithm 1 of the paper.
//
// Per epoch: roll out trajectories with the current stochastic policy
// until the epoch step budget is filled (trajectories reset on
// feasibility or the step cap, and the last one may be cut off by the
// epoch boundary, exactly as lines 8-15 describe). Then compute
// GAE-lambda advantages (Eq. 6) and rewards-to-go, and apply two
// updates that both flow into the shared GNN: the policy-gradient loss
// to the actor parameters theta and theta_g, and the value MSE loss to
// the critic parameters theta_v and theta_g (lines 16-22).
//
// Implementation note: the rollout stores compact per-step records
// (features, mask, action, reward, value); the update phase recomputes
// forward passes in bounded-size chunks so tape memory stays O(chunk)
// instead of O(epoch) — gradients of a sum accumulate across chunk
// backward passes before each Adam step.
//
// Concurrency model: the trainer is single-threaded orchestration.
// Parallelism lives below it — rollout workers own disjoint env/RNG
// state and the parallel evaluator owns per-thread LP caches — so the
// trainer itself holds no locks and has nothing to NP_GUARDED_BY.
// Checkpoint save/load (checkpoint.cpp) likewise runs only between
// epochs, when no worker is in flight.
#pragma once

#include <memory>
#include <vector>

#include "ad/adam.hpp"
#include "nn/actor_critic.hpp"
#include "rl/env.hpp"
#include "rl/gae.hpp"
#include "rl/rollout.hpp"
#include "util/rng.hpp"

namespace np::rl {

struct TrainConfig {
  nn::NetworkConfig network;
  EnvConfig env;
  int epochs = 64;               ///< Table 2: up to 1024; scaled to CPU budget
  int steps_per_epoch = 512;     ///< Table 2 "max length per epoch"
  double actor_learning_rate = 3e-4;   ///< Table 2
  double critic_learning_rate = 1e-3;  ///< Table 2
  GaeConfig gae;                 ///< gamma 0.99, lambda 0.97 (Table 2)
  double entropy_coefficient = 0.01;  ///< exploration bonus (0 = pure Alg. 1)
  /// Gradient passes over the epoch buffer per epoch. Algorithm 1 uses
  /// 1; values > 1 trade strict on-policyness for sample efficiency —
  /// the CPU-budget substitute for the paper's 1024 GPU epochs.
  int update_iterations = 1;
  /// PPO-style clipped surrogate (epsilon). 0 keeps the plain
  /// policy-gradient loss of Algorithm 1; > 0 makes update_iterations
  /// > 1 stable (the paper implements its agent on the SpinningUp
  /// framework, which ships exactly this objective).
  double ppo_clip = 0.0;
  int chunk_steps = 64;          ///< tape-memory bound for the update phase
  unsigned seed = 1;
  /// Stop early after this many epochs without improving the best
  /// feasible cost (0 disables).
  int patience = 0;
  /// Rollout workers K. 1 reuses the trainer's env/RNG and is
  /// bit-for-bit identical to the pre-threading serial trainer; K > 1
  /// runs K independent envs in lockstep (deterministic for fixed K and
  /// seed, regardless of thread count). See rl/rollout.hpp.
  int rollout_workers = 1;
  /// Recompute update-phase forwards in one batched pass per chunk
  /// (block-diagonal adjacency) instead of per step. Changes gradient
  /// summation order by ulps — off by default to preserve bit-exact
  /// reproducibility with the serial trainer.
  bool batched_updates = false;
  /// Crash safety: save a full-state checkpoint to checkpoint_path
  /// every this many epochs (and again on early stop and completion).
  /// 0 disables. Snapshots are written atomically, so a crash mid-save
  /// leaves the previous checkpoint intact.
  int checkpoint_every = 0;
  std::string checkpoint_path;
};

struct EpochStats {
  int epoch = 0;
  int steps = 0;
  int trajectories = 0;
  int feasible_trajectories = 0;
  double mean_return = 0.0;       ///< mean per-trajectory reward sum
  double best_cost_in_epoch = 0.0;   ///< cheapest feasible plan this epoch (inf if none)
  double best_cost_so_far = 0.0;     ///< cheapest feasible plan since start (inf if none)
  double seconds = 0.0;
  double rollout_seconds = 0.0;      ///< time spent collecting the epoch buffer
};

class A2cTrainer {
 public:
  A2cTrainer(const topo::Topology& topology, const TrainConfig& config);

  /// One epoch of Algorithm 1; returns its statistics.
  EpochStats run_epoch();

  /// Full training loop: runs until config.epochs TOTAL epochs have
  /// completed (so a trainer resumed at epoch E runs the remaining
  /// config.epochs - E), honoring patience and writing periodic
  /// checkpoints when configured. Returns the stats of the epochs run
  /// by THIS call.
  std::vector<EpochStats> train();

  /// Crash-safe full-state checkpoint: network parameters, Adam moments
  /// and bias-correction timesteps, the trainer and per-worker RNG
  /// streams, epoch counter, best-plan and patience state, and the env
  /// capacities. Written via the atomic snapshot container
  /// (ad/snapshot.hpp): temp file + fsync + rename, versioned header,
  /// checksum.
  void save_checkpoint(const std::string& path);

  /// Restore state saved by save_checkpoint. The training configuration
  /// must match the writing run (fingerprint-checked; a mismatch throws
  /// std::runtime_error) — resuming then continues the interrupted run
  /// bit-for-bit with the uninterrupted one. Call before train().
  void resume_from_checkpoint(const std::string& path);

  /// Epochs completed so far (nonzero after a resume).
  int epochs_completed() const { return epoch_counter_; }

  /// Evaluate the current stochastic policy without learning: run
  /// `rollouts` sampled trajectories and report how many reached
  /// feasibility and the cost statistics of those that did. Also feeds
  /// the best-plan tracker. Useful for monitoring and for comparing
  /// checkpoints.
  struct PolicyEvaluation {
    int rollouts = 0;
    int feasible = 0;
    double best_cost = 0.0;   ///< cheapest feasible cost seen (0 if none)
    double mean_cost = 0.0;   ///< mean over feasible rollouts (0 if none)
  };
  PolicyEvaluation evaluate_policy(int rollouts);

  /// Deterministic rollout with the current policy (argmax actions).
  /// Updates the best plan when it finds a cheaper feasible one, and
  /// returns true when the rollout reached feasibility. This is how the
  /// trained agent "outputs an initial plan" for the first stage.
  bool greedy_rollout();

  bool has_feasible_plan() const { return best_cost_ < kUnset; }
  /// Added units of the cheapest feasible plan found (First-stage plan).
  const std::vector<int>& best_added_units() const { return best_added_; }
  double best_cost() const { return best_cost_; }

  nn::ActorCritic& network() { return network_; }
  PlanningEnv& env() { return env_; }
  const TrainConfig& config() const { return config_; }

 private:
  void update_policy(const std::vector<StepRecord>& buffer,
                     const std::vector<double>& advantages);
  void update_critic(const std::vector<StepRecord>& buffer,
                     const std::vector<double>& rewards_to_go);
  /// Tape-free engine for evaluate_policy/greedy_rollout action
  /// selection (NEUROPLAN_INFERENCE=fast, the default); nullptr in tape
  /// mode. Re-snapshots the current weights on every call.
  nn::InferenceEngine* acting_engine();

  static constexpr double kUnset = kUnsetCost;

  TrainConfig config_;
  Rng rng_;
  PlanningEnv env_;
  nn::ActorCritic network_;
  ad::Adam actor_optimizer_;
  ad::Adam critic_optimizer_;
  std::unique_ptr<RolloutWorkers> rollout_;
  std::unique_ptr<nn::InferenceEngine> acting_engine_storage_;
  la::BlockDiagonalCache adjacency_cache_;  ///< for batched updates
  double best_cost_ = kUnset;
  std::vector<int> best_added_;
  int epoch_counter_ = 0;
  /// Early-stop state; members (not train() locals) so checkpoints can
  /// carry it across a kill/resume without perturbing the epoch at
  /// which patience would have fired.
  double patience_best_ = kUnset;
  int patience_stale_ = 0;
};

}  // namespace np::rl
